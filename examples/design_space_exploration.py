"""Design-space exploration with the Morphling performance + area models.

Sweeps the architecture knobs the paper discusses - reuse type, XPU
count, Private-A1 capacity, rotator style - and reports throughput,
area, and throughput-per-mm^2 so the paper's design choices can be seen
paying off (or not) quantitatively.

Run:  python examples/design_space_exploration.py
"""

from repro import get_params
from repro.baselines import equal_resource_variants
from repro.core import AreaPowerModel, MorphlingConfig, simulate_bootstrap

MIB = 1024 * 1024


def sweep_reuse(params) -> None:
    print(f"== reuse-type ladder (equal resources, set {params.name}) ==")
    for name, cfg in equal_resource_variants().items():
        r = simulate_bootstrap(cfg, params)
        print(f"  {name:28s} {r.throughput_bs:10,.0f} BS/s  "
              f"latency {r.bootstrap_latency_ms:.2f} ms")


def sweep_xpus(params) -> None:
    print(f"\n== XPU count vs throughput/area (set {params.name}) ==")
    for n in (1, 2, 4, 5, 6, 8):
        cfg = MorphlingConfig(num_xpus=n)
        r = simulate_bootstrap(cfg, params)
        area = AreaPowerModel(cfg).total()
        eff = r.throughput_bs / area.area_mm2
        print(f"  {n} XPUs: {r.throughput_bs:9,.0f} BS/s  "
              f"{area.area_mm2:6.1f} mm^2  {eff:7,.0f} BS/s/mm^2  "
              f"[{r.bottleneck}]")


def sweep_a1(params) -> None:
    print(f"\n== Private-A1 capacity (set {params.name}) ==")
    for mib in (1, 2, 4, 8):
        cfg = MorphlingConfig(private_a1_bytes=mib * MIB)
        r = simulate_bootstrap(cfg, params)
        print(f"  {mib} MB: {r.throughput_bs:9,.0f} BS/s  "
              f"streams {r.acc_streams}  [{r.bottleneck}]")


def sweep_rotator(params) -> None:
    print(f"\n== rotator style (set {params.name}) ==")
    for style in ("double_pointer", "shifter"):
        cfg = MorphlingConfig(rotator=style)
        r = simulate_bootstrap(cfg, params)
        print(f"  {style:15s} {r.throughput_bs:9,.0f} BS/s")


def main() -> None:
    sweep_reuse(get_params("B"))
    sweep_xpus(get_params("III"))
    sweep_a1(get_params("III"))
    sweep_rotator(get_params("I"))
    print("\nThe shipped configuration (4 XPUs, 4 MB A1, in+out reuse, "
          "double-pointer rotator) sits at the efficiency knee on every axis.")


if __name__ == "__main__":
    main()
