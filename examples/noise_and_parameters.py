"""The parameter-engineering workflow: estimate, search, plan, verify.

Walks the full loop a TFHE deployment goes through before trusting a
parameter set:

1. estimate the security of the candidate sets;
2. search the decomposition space for the cheapest feasible choice;
3. plan where a linear program needs bootstraps (noise budgeting);
4. verify the noise model empirically against real encryptions.

Run:  python examples/noise_and_parameters.py
"""

import numpy as np

from repro import TEST_PARAMS, TfheContext, get_params
from repro.analysis import (
    calibrate_bootstrap_noise,
    calibrate_fresh_noise,
    cheapest_for_modulus,
    classify_parameter_set,
)
from repro.tfhe import BootstrapPlanner, LinearOp


def security_audit() -> None:
    print("== 1. security estimates (first-order model) ==")
    for name in ("I", "II", "III", "IV"):
        params = get_params(name)
        est = classify_parameter_set(params)
        verdict = "ok" if est.meets_claim else "below claim (32-bit port)"
        print(f"  set {name}: claimed {params.lam:3d}-bit, "
              f"effective ~{est.effective_bits:.0f}-bit [{verdict}]")


def decomposition_search() -> None:
    print("\n== 2. cheapest feasible decomposition (p = 8) ==")
    for name in ("I", "II"):
        best = cheapest_for_modulus(get_params(name), p=8)
        p = best.params
        print(f"  set {name}: l_b={p.l_b} beta=2^{p.beta_bits} "
              f"l_k={p.l_k} beta_ks=2^{p.beta_ks_bits} "
              f"(noise margin {best.margin:.1f}x)")
    print("  -> the optimizer independently lands on the paper's l_b choices")


def bootstrap_planning() -> None:
    print("\n== 3. automatic bootstrap placement ==")
    planner = BootstrapPlanner(TEST_PARAMS, p=8)
    # Three stacked heavy accumulation levels: each multiplies the noise
    # std by ~64, so the budget forces a reset partway through.
    wide = tuple([16] * 16)
    program = [
        LinearOp("accumulate-1", wide),
        LinearOp("accumulate-2", wide),
        LinearOp("accumulate-3", wide),
        LinearOp("readout", (1, -1)),
    ]
    plan = planner.plan(program)
    for name, bootstrapped in plan.steps:
        marker = "PBS +" if bootstrapped else "     "
        print(f"  {marker} {name}")
    print(f"  total bootstraps inserted: {plan.total_bootstraps}; "
          f"final noise still decodes: {plan.final_budget.decodes_at(8)}")


def empirical_verification() -> None:
    print("\n== 4. empirical noise vs the analytic model ==")
    ctx = TfheContext.create(TEST_PARAMS, seed=5)
    fresh = calibrate_fresh_noise(ctx, samples=48)
    boot = calibrate_bootstrap_noise(ctx, samples=8)
    for m in (fresh, boot):
        print(f"  {m.label:18s} measured std {m.empirical_std:.2e}  "
              f"predicted {m.predicted_std:.2e}  ratio {m.ratio:.2f}  "
              f"[{'consistent' if m.consistent() else 'INCONSISTENT'}]")


if __name__ == "__main__":
    security_audit()
    decomposition_search()
    bootstrap_planning()
    empirical_verification()
