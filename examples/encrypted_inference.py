"""Encrypted neural-network inference, functional and at scale.

Part 1 runs a real two-layer network on encrypted inputs with the scheme
substrate (plaintext weights x ciphertext activations + ReLU bootstraps).
Part 2 lowers the paper's DeepCNN benchmark models through the SW/HW
scheduler and reports Morphling-vs-CPU times (Table VI).

Run:  python examples/encrypted_inference.py
"""

from repro import TfheContext, get_params
from repro.apps import deepcnn_workload, encrypted_dense_relu, vgg9_workload
from repro.baselines import CpuCostModel
from repro.core import MorphlingConfig, run_workload


def plain_dense_relu(inputs, weight_rows):
    return [max(sum(w * x for w, x in zip(ws, inputs)), 0) for ws in weight_rows]


def functional_demo() -> None:
    print("== functional: 2-layer encrypted MLP ==")
    ctx = TfheContext.create(get_params("test"), seed=11)
    # Values and weights are sized so every accumulator stays inside the
    # signed message range [-p/4, p/4) - the same quantization contract
    # Concrete-ML enforces per layer.
    inputs = [1, -1]
    w1 = [[1, 0], [0, -1]]  # hidden = relu(x0), relu(-x1)
    w2 = [[1, -1]]          # out = relu(h0 - h1)

    enc = [ctx.encrypt_signed(v) for v in inputs]
    hidden = encrypted_dense_relu(ctx, enc, w1)
    out = encrypted_dense_relu(ctx, hidden, w2)

    expected = plain_dense_relu(plain_dense_relu(inputs, w1), w2)
    got = [ctx.decrypt_signed(o) for o in out]
    print(f"  inputs {inputs} -> encrypted inference {got}, plaintext {expected}")
    assert got == expected


def scheduled_demo() -> None:
    print("\n== at scale: Table VI workloads through the scheduler ==")
    params = get_params("III")  # 128-bit security
    config = MorphlingConfig()
    cpu = CpuCostModel()
    for workload in (deepcnn_workload(20), deepcnn_workload(100), vgg9_workload()):
        result = run_workload(config, params, list(workload.layers))
        cpu_s = cpu.workload_seconds(
            params, workload.total_bootstraps, workload.total_linear_macs
        )
        print(f"  {workload.summary()}")
        print(
            f"    Morphling {result.total_seconds:.3f} s vs 64-core CPU "
            f"{cpu_s:.1f} s -> {cpu_s / result.total_seconds:.0f}x speedup "
            f"(XPU utilization {result.utilization['xpu']:.0%})"
        )


if __name__ == "__main__":
    functional_demo()
    scheduled_demo()
