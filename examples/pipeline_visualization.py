"""Visualize the XPU pipeline and the reuse ladder as ASCII timelines.

Renders what the cycle trace records: how rotation, decomposition, the
merge-split FFTs, the VPE array, and the IFFTs overlap across
blind-rotation iterations - and how the picture changes when
transform-domain reuse is taken away.

Run:  python examples/pipeline_visualization.py
"""

from repro import get_params
from repro.core import MorphlingConfig, render_timeline, trace_blind_rotation
from repro.core.xpu import XpuModel


def show(config, params, title):
    trace = trace_blind_rotation(config, params, iterations=5)
    analytic = XpuModel(config, params).iteration_cycles()
    print(f"== {title} ==")
    print(render_timeline(trace))
    print(f"steady-state: {trace.steady_state_interval():.0f} cycles/iteration "
          f"(analytic model: {analytic:.0f}); bottleneck: {trace.bottleneck()}")
    occupancy = ", ".join(f"{k} {v:.0%}" for k, v in trace.occupancy().items())
    print(f"occupancy: {occupancy}\n")


def main() -> None:
    params = get_params("I")
    show(MorphlingConfig(), params,
         "Morphling (input+output reuse, merge-split FFT) - set I")
    show(MorphlingConfig(merge_split=False, name="io-no-ms"), params,
         "input+output reuse, no merge-split - set I")
    show(MorphlingConfig.no_reuse(), params,
         "no reuse (MATCHA-class) - set I")
    show(MorphlingConfig(), get_params("C"),
         "Morphling - set C (k=3, l_b=3: where reuse pays most)")
    print("Reading the timelines: with input+output reuse the FFT row stays "
          "saturated\nand every other stage hides behind it; without reuse the "
          "transform rows\nstretch ~4x and the array starves.")


if __name__ == "__main__":
    main()
