"""Encrypted tree-ensemble classification (the paper's XG-Boost workload).

Part 1 evaluates a real stump ensemble homomorphically: each node
comparison is one programmable bootstrap, leaf selection one more, and
the ensemble score is a plain homomorphic sum - decrypted and checked
against the plaintext model on every input.

Part 2 lowers the paper's 100-estimator benchmark through the scheduler
and prints the Table VI row.

Run:  python examples/encrypted_xgboost.py
"""

import itertools

from repro import TfheContext, get_params
from repro.apps import EncryptedTreeEnsemble, TreeNode, xgboost_workload
from repro.baselines import CpuCostModel
from repro.core import MorphlingConfig, run_workload


def functional_demo() -> None:
    print("== functional: encrypted stump ensemble ==")
    ctx = TfheContext.create(get_params("test"), seed=23)
    # A tiny 2-feature model: score = [f0 >= 0] + [f1 < 1].
    ensemble = EncryptedTreeEnsemble(ctx, [
        TreeNode(feature=0, threshold=0, left_value=0, right_value=1),
        TreeNode(feature=1, threshold=1, left_value=1, right_value=0),
    ])
    for features in itertools.product([-1, 1], repeat=2):
        enc = [ctx.encrypt_signed(f) for f in features]
        score_ct = ensemble.predict_encrypted(enc)
        got = ensemble.decode_score(score_ct)
        expected = ensemble.predict_plain(list(features))
        status = "ok" if got == expected else "MISMATCH"
        print(f"  features {features}: encrypted score {got}, plain {expected} [{status}]")
        assert got == expected


def scheduled_demo() -> None:
    print("\n== at scale: the paper's 100-estimator benchmark ==")
    params = get_params("III")
    workload = xgboost_workload()
    result = run_workload(MorphlingConfig(), params, list(workload.layers))
    cpu_s = CpuCostModel().workload_seconds(
        params, workload.total_bootstraps, workload.total_linear_macs
    )
    print(f"  {workload.summary()}")
    print(
        f"  Morphling {result.total_seconds * 1e3:.0f} ms vs 64-core CPU "
        f"{cpu_s:.2f} s -> {cpu_s / result.total_seconds:.0f}x "
        f"(paper: 0.06 s vs 9.59 s, 144x)"
    )


if __name__ == "__main__":
    functional_demo()
    scheduled_demo()
