"""Encrypted database analytics (the paper's secure-database motivation).

A server stores salary records it cannot read and answers filtered
aggregates - count and sum - with every comparison and selection done
under encryption.  Part 2 costs a production-scale query (thousands of
rows) on the Morphling performance model.

Run:  python examples/encrypted_database.py
"""

from repro import TfheContext, get_params
from repro.apps import EncryptedTable, database_query_workload
from repro.baselines import CpuCostModel
from repro.core import MorphlingConfig, run_workload


def functional_demo() -> None:
    print("== functional: encrypted salary table ==")
    ctx = TfheContext.create(get_params("test"), seed=17)
    table = EncryptedTable(ctx)
    records = [
        ("alice", 30, 12),   # (name, age-key, salary-value)
        ("bob", 30, 9),
        ("carol", 45, 20),
        ("dave", 52, 7),
    ]
    for _, age, salary in records:
        table.insert(age, salary)
    print(f"  inserted {len(table)} encrypted records (server sees only ciphertexts)")

    count = table.decrypt_count(table.count_where("eq", 30))
    print(f"  SELECT COUNT(*) WHERE age = 30      -> {count} (expect 2)")
    total = table.decrypt_sum(table.sum_where("eq", 30))
    print(f"  SELECT SUM(salary) WHERE age = 30   -> {total} (expect 21)")
    total = table.decrypt_sum(table.sum_where("ge", 45))
    print(f"  SELECT SUM(salary) WHERE age >= 45  -> {total} (expect 27)")


def scheduled_demo() -> None:
    print("\n== at scale: a 4096-row filtered aggregate on Morphling ==")
    params = get_params("I")
    workload = database_query_workload(4096, num_digits=8)
    result = run_workload(MorphlingConfig(), params, list(workload.layers))
    cpu_s = CpuCostModel().workload_seconds(params, workload.total_bootstraps)
    print(f"  {workload.summary()}")
    print(f"  Morphling : {result.total_seconds:.2f} s")
    print(f"  64-core CPU: {cpu_s:.1f} s")
    print(f"  speedup    : {cpu_s / result.total_seconds:.0f}x")


if __name__ == "__main__":
    functional_demo()
    scheduled_demo()
