"""Quickstart: encrypt, compute on ciphertexts, bootstrap, decrypt —
then ask the performance model what Morphling would do with it.

Run:  python examples/quickstart.py
"""

from repro import TfheContext, get_params
from repro.core import MorphlingConfig, simulate_bootstrap


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Functional TFHE on the fast test parameter set.
    # ------------------------------------------------------------------
    ctx = TfheContext.create(get_params("test"), seed=42)

    message = 3
    ct = ctx.encrypt(message)
    print(f"encrypted {message}, decrypts to {ctx.decrypt(ct)}")

    # A programmable bootstrap evaluates a lookup table while resetting
    # the ciphertext noise - here f(x) = (x + 1) mod 4.
    bumped = ctx.apply_lut(ct, lambda x: (x + 1) % 4)
    print(f"LUT bootstrap f(x)=x+1: {ctx.decrypt(bumped)}")

    # Boolean gates are one addition + one bootstrap.
    a, b = ctx.encrypt(1), ctx.encrypt(1)
    print(f"NAND(1,1) = {ctx.decrypt(ctx.gate('nand', a, b))}")
    print(f"XOR(1,1)  = {ctx.decrypt(ctx.gate('xor', a, b))}")

    # Signed arithmetic with a single-bootstrap ReLU.
    neg = ctx.encrypt_signed(-2)
    print(f"ReLU(-2) = {ctx.decrypt_signed(ctx.relu_signed(neg))}")

    # ------------------------------------------------------------------
    # 2. The Morphling performance model on the paper's parameter sets.
    # ------------------------------------------------------------------
    print("\nMorphling simulated bootstrap performance (Table V):")
    config = MorphlingConfig()
    for pset in ("I", "II", "III", "IV"):
        r = simulate_bootstrap(config, get_params(pset))
        print(
            f"  set {pset}: latency {r.bootstrap_latency_ms:.2f} ms, "
            f"throughput {r.throughput_bs:,.0f} bootstraps/s "
            f"(bottleneck: {r.bottleneck})"
        )


if __name__ == "__main__":
    main()
