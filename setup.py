"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` can use the legacy setuptools develop path offline
(PEP 660 editable wheels require the ``wheel`` package, which is not
available in the offline environment).
"""

from setuptools import setup

setup()
