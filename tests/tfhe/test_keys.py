"""Direct tests for key material generation (BSK, KSK, KeySet)."""

import numpy as np
import pytest

from repro import TEST_PARAMS
from repro.tfhe.keys import generate_keyset, make_ksk
from repro.tfhe.lwe import lwe_keygen


class TestKeySetStructure:
    def test_bsk_has_one_ggsw_per_key_bit(self, keyset):
        assert len(keyset.bsk) == TEST_PARAMS.n

    def test_bsk_ggsw_shapes(self, keyset):
        p = TEST_PARAMS
        for ggsw in keyset.bsk[:3]:
            assert ggsw.rows.shape == ((p.k + 1) * p.l_b, p.k + 1, p.N)
            assert ggsw.beta_bits == p.beta_bits

    def test_ksk_dimensions(self, keyset):
        p = TEST_PARAMS
        assert keyset.ksk.in_dimension == p.k * p.N
        assert keyset.ksk.out_dimension == p.n
        assert keyset.ksk.l_k == p.l_k

    def test_bsk_spectra_cached(self, keyset):
        spectra = keyset.bsk_spectra()
        assert len(spectra) == TEST_PARAMS.n
        assert spectra[0] is keyset.bsk[0].spectrum()


class TestSpectrumTableCache:
    def test_second_call_is_a_cache_hit(self, keyset):
        first = keyset.bsk_spectrum_table("double")
        assert keyset.bsk_spectrum_table("double") is first

    def test_precisions_cached_independently(self, keyset):
        double = keyset.bsk_spectrum_table("double")
        single = keyset.bsk_spectrum_table("single")
        assert double is not single
        assert double.dtype == np.complex128
        assert single.dtype == np.complex64
        assert keyset.bsk_spectrum_table("double") is double
        assert keyset.bsk_spectrum_table("single") is single

    def test_drop_spectrum_cache_clears_everything(self, keyset):
        table = keyset.bsk_spectrum_table("double")
        keyset.bsk_spectra()  # populate the lazy per-GGSW spectra too
        assert any(g._spectrum is not None for g in keyset.bsk)

        keyset.drop_spectrum_cache()
        assert keyset._bsk_tables == {}
        assert all(g._spectrum is None for g in keyset.bsk)

        rebuilt = keyset.bsk_spectrum_table("double")
        assert rebuilt is not table
        np.testing.assert_array_equal(rebuilt, table)


class TestDeterminism:
    def test_same_seed_same_keys(self):
        a = generate_keyset(TEST_PARAMS, np.random.default_rng(5))
        b = generate_keyset(TEST_PARAMS, np.random.default_rng(5))
        np.testing.assert_array_equal(a.lwe_key.bits, b.lwe_key.bits)
        np.testing.assert_array_equal(a.bsk[0].rows, b.bsk[0].rows)
        np.testing.assert_array_equal(a.ksk.bodies, b.ksk.bodies)

    def test_different_seeds_differ(self):
        a = generate_keyset(TEST_PARAMS, np.random.default_rng(5))
        b = generate_keyset(TEST_PARAMS, np.random.default_rng(6))
        assert not np.array_equal(a.lwe_key.bits, b.lwe_key.bits) or not np.array_equal(
            a.bsk[0].rows, b.bsk[0].rows
        )


class TestMakeKsk:
    def test_switches_between_independent_keys(self, rng):
        """A standalone KSK between two fresh LWE keys round-trips."""
        from repro.tfhe.bootstrap import key_switch
        from repro.tfhe.lwe import lwe_decrypt_phase, lwe_encrypt
        from repro.tfhe.torus import decode_message, encode_message

        key_in = lwe_keygen(24, rng)
        key_out = lwe_keygen(16, rng)
        ksk = make_ksk(key_in.bits, key_out, beta_ks_bits=6, l_k=3,
                       rng=rng, noise_log2=-25.0)
        m = int(encode_message(3, 8)[()])
        ct = lwe_encrypt(m, key_in, rng, noise_log2=-25.0)
        switched = key_switch(ct, ksk)
        phase = lwe_decrypt_phase(switched, key_out)
        assert int(decode_message(np.asarray(phase), 8)[()]) == 3

    def test_shape_validation(self, rng):
        from repro.tfhe.keys import KeySwitchingKey

        with pytest.raises(ValueError):
            KeySwitchingKey(
                np.zeros((4, 2, 8), dtype=np.uint32),
                np.zeros((4, 3), dtype=np.uint32),  # mismatched levels
                4,
            )
