"""Tests for GLWE ciphertexts, rotation, and sample extraction."""

import numpy as np
import pytest

from repro.tfhe.glwe import (
    GlweCiphertext,
    GlweSecretKey,
    glwe_add,
    glwe_decrypt_phase,
    glwe_encrypt,
    glwe_keygen,
    glwe_rotate,
    glwe_sub,
    glwe_trivial,
    sample_extract,
)
from repro.tfhe.lwe import LweSecretKey, lwe_decrypt_phase
from repro.tfhe.polynomial import monomial_mul
from repro.tfhe.torus import encode_message

K, N = 2, 64
NOISE = -26.0


@pytest.fixture(scope="module")
def gkey():
    return glwe_keygen(K, N, np.random.default_rng(5))


def phase_error(phase, expected):
    diff = (phase.astype(np.int64) - expected.astype(np.int64) + (1 << 31)) % (1 << 32) - (1 << 31)
    return np.abs(diff).max()


def random_message(rng, p=16):
    return encode_message(rng.integers(0, p, size=N), p)


class TestKeygen:
    def test_shape(self, gkey):
        assert gkey.polys.shape == (K, N)

    def test_binary(self, gkey):
        assert set(np.unique(gkey.polys)) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            GlweSecretKey(np.full((2, 4), 3))
        with pytest.raises(ValueError):
            GlweSecretKey(np.zeros(4))

    def test_extracted_bits_flatten_in_order(self, gkey):
        flat = gkey.extracted_lwe_bits()
        assert flat.shape == (K * N,)
        np.testing.assert_array_equal(flat[:N], gkey.polys[0])


class TestEncryptDecrypt:
    def test_phase_recovers_message_within_noise(self, gkey, rng):
        m = random_message(rng)
        ct = glwe_encrypt(m, gkey, rng, noise_log2=NOISE)
        phase = glwe_decrypt_phase(ct, gkey)
        assert phase_error(phase, m) < (1 << 12)

    def test_trivial_encryption_phase_is_exact(self, rng):
        m = random_message(rng)
        ct = glwe_trivial(m, K)
        key = glwe_keygen(K, N, rng)  # any key decrypts a trivial ct
        np.testing.assert_array_equal(glwe_decrypt_phase(ct, key), m)

    def test_wrong_message_shape_rejected(self, gkey, rng):
        with pytest.raises(ValueError):
            glwe_encrypt(np.zeros(N // 2, dtype=np.uint32), gkey, rng)

    def test_ciphertext_shape_validated(self):
        with pytest.raises(ValueError):
            GlweCiphertext(np.zeros(N, dtype=np.uint32))


class TestHomomorphisms:
    def test_add(self, gkey, rng):
        m1, m2 = random_message(rng, 8), random_message(rng, 8)
        c = glwe_add(
            glwe_encrypt(m1, gkey, rng, noise_log2=NOISE),
            glwe_encrypt(m2, gkey, rng, noise_log2=NOISE),
        )
        assert phase_error(glwe_decrypt_phase(c, gkey), m1 + m2) < (1 << 13)

    def test_sub_of_self_is_small(self, gkey, rng):
        m = random_message(rng)
        c = glwe_encrypt(m, gkey, rng, noise_log2=NOISE)
        d = glwe_sub(c, c)
        assert phase_error(glwe_decrypt_phase(d, gkey), np.zeros(N, np.uint32)) == 0


class TestRotation:
    def test_rotation_rotates_the_phase(self, gkey, rng):
        m = random_message(rng)
        ct = glwe_encrypt(m, gkey, rng, noise_log2=NOISE)
        for t in [1, 7, N, N + 3, 2 * N - 1]:
            rotated = glwe_rotate(ct, t)
            expected = monomial_mul(glwe_decrypt_phase(ct, gkey), t)
            assert phase_error(glwe_decrypt_phase(rotated, gkey), expected) == 0

    def test_rotation_composes(self, gkey, rng):
        ct = glwe_encrypt(random_message(rng), gkey, rng, noise_log2=NOISE)
        once = glwe_rotate(glwe_rotate(ct, 3), 5)
        both = glwe_rotate(ct, 8)
        np.testing.assert_array_equal(once.data, both.data)


class TestSampleExtraction:
    def test_extracts_constant_coefficient(self, gkey, rng):
        m = random_message(rng)
        ct = glwe_encrypt(m, gkey, rng, noise_log2=NOISE)
        lwe_key = LweSecretKey(gkey.extracted_lwe_bits())
        extracted = sample_extract(ct, 0)
        assert extracted.n == K * N
        phase = int(lwe_decrypt_phase(extracted, lwe_key))
        glwe_phase = int(glwe_decrypt_phase(ct, gkey)[0])
        assert phase == glwe_phase

    @pytest.mark.parametrize("h", [1, 5, N - 1])
    def test_extracts_arbitrary_coefficient(self, h, gkey, rng):
        m = random_message(rng)
        ct = glwe_encrypt(m, gkey, rng, noise_log2=NOISE)
        lwe_key = LweSecretKey(gkey.extracted_lwe_bits())
        extracted = sample_extract(ct, h)
        phase = int(lwe_decrypt_phase(extracted, lwe_key))
        glwe_phase = int(glwe_decrypt_phase(ct, gkey)[h])
        assert phase == glwe_phase

    def test_out_of_range_coefficient_rejected(self, gkey, rng):
        ct = glwe_trivial(np.zeros(N, np.uint32), K)
        with pytest.raises(ValueError):
            sample_extract(ct, N)
