"""Failure-injection tests: the scheme must fail loudly and predictably.

A cryptographic library's negative behaviour matters as much as its
happy path: wrong keys must not decrypt, corrupted evaluation keys must
not silently produce plausible plaintexts, and noise overflows must
surface as decode errors - never as exceptions deep in numpy.
"""

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext
from repro.tfhe import (
    identity_test_polynomial,
    programmable_bootstrap,
)
from repro.tfhe.keys import KeySet
from repro.tfhe.lwe import lwe_decrypt_phase, lwe_scalar_mul
from repro.tfhe.torus import decode_message

P = 8


@pytest.fixture(scope="module")
def other_ctx():
    """An unrelated party with its own keys."""
    return TfheContext.create(TEST_PARAMS, seed=999)


class TestWrongKeys:
    def test_wrong_key_does_not_decrypt(self, ctx, other_ctx):
        """Decrypting under the wrong key yields noise, not the message.

        With random masks the wrong-key phase is uniform; over many
        samples it cannot consistently equal the message.
        """
        hits = 0
        for _ in range(16):
            ct = ctx.encrypt(2, P)
            phase = lwe_decrypt_phase(ct, other_ctx.keyset.lwe_key)
            if int(decode_message(np.asarray(phase), P)[()]) == 2:
                hits += 1
        assert hits < 8  # uniform guessing lands ~2/16

    def test_wrong_bootstrapping_key_garbles(self, ctx, other_ctx):
        """Bootstrapping with another party's BSK must not preserve data."""
        franken = KeySet(
            ctx.params, ctx.keyset.lwe_key, ctx.keyset.glwe_key,
            other_ctx.keyset.bsk, ctx.keyset.ksk,
        )
        tp = identity_test_polynomial(ctx.params, P)
        wrong = 0
        for m in range(4):
            out = programmable_bootstrap(ctx.encrypt(m, P), tp, franken)
            if ctx.decrypt(out, P) != m:
                wrong += 1
        assert wrong >= 2


class TestCorruptedKeys:
    def test_corrupted_ksk_breaks_decryption(self, ctx, rng):
        import copy

        broken = copy.deepcopy(ctx.keyset.ksk)
        broken.bodies = broken.bodies + np.uint32(1 << 28)  # blast the bodies
        franken = KeySet(ctx.params, ctx.keyset.lwe_key, ctx.keyset.glwe_key,
                         ctx.keyset.bsk, broken)
        tp = identity_test_polynomial(ctx.params, P)
        wrong = 0
        for m in range(4):
            out = programmable_bootstrap(ctx.encrypt(m, P), tp, franken)
            if ctx.decrypt(out, P) != m:
                wrong += 1
        assert wrong >= 2

    def test_corrupted_serialized_keys_detected(self, ctx, tmp_path):
        from repro.tfhe.serialization import save_keyset, load_keyset

        path = tmp_path / "keys.npz"
        save_keyset(path, ctx.keyset)
        blob = bytearray(path.read_bytes())
        blob[100] ^= 0xFF  # flip bits inside the zip container
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception):
            load_keyset(path)


class TestNoiseOverflow:
    def test_scalar_overflow_breaks_decoding_not_the_code(self, ctx):
        """Multiplying by a huge scalar must decode wrongly, not crash."""
        ct = lwe_scalar_mul(1 << 20, ctx.encrypt(1, P))
        decoded = ctx.decrypt(ct, P)  # runs fine
        assert isinstance(decoded, int)

    def test_message_past_padding_wraps_negacyclically(self, ctx):
        """Encrypting past the padding bit and bootstrapping hits the
        anti-periodic branch: f(m + p/2) = -f(m)."""
        from repro.tfhe.lwe import lwe_add

        # Build an encryption of 5 (> p/2 - 1 = 3) by adding 3 + 2.
        ct = lwe_add(ctx.encrypt(3, P), ctx.encrypt(2, P))
        tp = identity_test_polynomial(ctx.params, P)
        out = programmable_bootstrap(ct, tp, ctx.keyset)
        # identity anti-periodic extension: f(5) = -f(1) = -1 = 7 mod 8.
        assert ctx.decrypt(out, P) == 7
