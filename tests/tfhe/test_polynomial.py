"""Tests for negacyclic torus-polynomial operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.polynomial import (
    from_spectrum,
    monomial_mul,
    poly_add,
    poly_mul,
    poly_mul_spectrum,
    poly_neg,
    poly_sub,
    to_spectrum,
    zeros,
)
from repro.tfhe.torus import to_torus

N = 64


def random_torus_poly(rng, n=N):
    return rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(np.uint32)


class TestLinearOps:
    def test_add_sub_roundtrip(self, rng):
        a, b = random_torus_poly(rng), random_torus_poly(rng)
        np.testing.assert_array_equal(poly_sub(poly_add(a, b), b), a)

    def test_neg_twice_is_identity(self, rng):
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(poly_neg(poly_neg(a)), a)

    def test_zeros_shape_and_dtype(self):
        z = zeros((3, N))
        assert z.shape == (3, N)
        assert z.dtype == np.uint32
        assert not z.any()


class TestMonomialMul:
    def test_shift_by_zero_is_copy(self, rng):
        a = random_torus_poly(rng)
        out = monomial_mul(a, 0)
        np.testing.assert_array_equal(out, a)
        assert out is not a

    def test_shift_by_one_moves_and_flips(self):
        a = np.zeros(4, dtype=np.uint32)
        a[3] = 7  # 7*X^3
        out = monomial_mul(a, 1)  # X * 7X^3 = 7X^4 = -7
        assert out[0] == to_torus(-7)[()]
        assert not out[1:].any()

    def test_shift_by_n_negates(self, rng):
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(monomial_mul(a, N), poly_neg(a))

    def test_period_is_2n(self, rng):
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(monomial_mul(a, 2 * N), a)

    def test_negative_shift(self, rng):
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(monomial_mul(a, -3), monomial_mul(a, 2 * N - 3))

    @given(st.integers(-300, 300), st.integers(-300, 300), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_composition(self, s, t, seed):
        r = np.random.default_rng(seed)
        a = random_torus_poly(r, 16)
        lhs = monomial_mul(monomial_mul(a, s), t)
        rhs = monomial_mul(a, s + t)
        np.testing.assert_array_equal(lhs, rhs)

    def test_batched(self, rng):
        a = rng.integers(0, 1 << 32, size=(3, N), dtype=np.uint64).astype(np.uint32)
        out = monomial_mul(a, 5)
        for i in range(3):
            np.testing.assert_array_equal(out[i], monomial_mul(a[i], 5))


class TestPolyMul:
    def test_engines_agree(self, rng):
        small = rng.integers(-64, 64, size=N)
        big = random_torus_poly(rng)
        np.testing.assert_array_equal(
            poly_mul(small, big, engine="fft"), poly_mul(small, big, engine="exact")
        )

    def test_multiply_by_one(self, rng):
        one = np.zeros(N, dtype=np.int64)
        one[0] = 1
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(poly_mul(one, a), a)

    def test_multiply_by_monomial_matches_rotation(self, rng):
        mono = np.zeros(N, dtype=np.int64)
        mono[3] = 1
        a = random_torus_poly(rng)
        np.testing.assert_array_equal(poly_mul(mono, a), monomial_mul(a, 3))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            poly_mul(np.zeros(N), np.zeros(N, dtype=np.uint32), engine="karatsuba")

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_distributes_over_addition(self, seed):
        r = np.random.default_rng(seed)
        a = r.integers(-32, 32, size=32)
        x, y = random_torus_poly(r, 32), random_torus_poly(r, 32)
        lhs = poly_mul(a, poly_add(x, y), engine="exact")
        rhs = poly_add(poly_mul(a, x, engine="exact"), poly_mul(a, y, engine="exact"))
        np.testing.assert_array_equal(lhs, rhs)


class TestSpectrumPath:
    def test_spectrum_roundtrip(self, rng):
        a = rng.integers(-1000, 1000, size=N)
        np.testing.assert_array_equal(from_spectrum(to_spectrum(a), N), to_torus(a))

    def test_pointwise_product_matches_poly_mul(self, rng):
        small = rng.integers(-64, 64, size=N)
        big = random_torus_poly(rng)
        big_centered = big.astype(np.int32).astype(np.int64)
        spec = poly_mul_spectrum(to_spectrum(small), to_spectrum(big_centered))
        np.testing.assert_array_equal(
            from_spectrum(spec, N), poly_mul(small, big, engine="exact")
        )

    def test_spectrum_accumulation_linearity(self, rng):
        """Accumulating in the transform domain == accumulating coefficients.

        This is the linearity property the Output-Reuse datapath relies on.
        """
        a1 = rng.integers(-32, 32, size=N)
        a2 = rng.integers(-32, 32, size=N)
        b1 = random_torus_poly(rng)
        b2 = random_torus_poly(rng)
        b1c = b1.astype(np.int32).astype(np.int64)
        b2c = b2.astype(np.int32).astype(np.int64)
        spec_sum = to_spectrum(a1) * to_spectrum(b1c) + to_spectrum(a2) * to_spectrum(b2c)
        coeff_sum = poly_add(
            poly_mul(a1, b1, engine="exact"), poly_mul(a2, b2, engine="exact")
        )
        np.testing.assert_array_equal(from_spectrum(spec_sum, N), coeff_sum)
