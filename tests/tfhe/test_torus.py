"""Tests for discretized-torus arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.torus import (
    Q,
    decode_message,
    encode_message,
    from_double,
    modswitch,
    round_to_multiple,
    to_double,
    to_signed,
    to_torus,
    torus_add,
    torus_neg,
    torus_scalar_mul,
    torus_sub,
    u32,
)

u32s = st.integers(min_value=0, max_value=Q - 1)


class TestConversions:
    def test_to_torus_wraps_negative(self):
        assert to_torus(-1)[()] == Q - 1

    def test_to_signed_centers(self):
        assert to_signed(np.uint32(Q - 1))[()] == -1
        assert to_signed(np.uint32(5))[()] == 5

    def test_double_roundtrip(self):
        vals = np.array([0.0, 0.25, 0.5, 0.75])
        np.testing.assert_allclose(to_double(from_double(vals)), vals)

    def test_u32_wraps(self):
        assert u32(Q + 3) == 3
        assert u32(-1) == Q - 1

    @given(u32s)
    @settings(max_examples=100, deadline=None)
    def test_signed_roundtrip(self, x):
        assert to_torus(to_signed(np.uint32(x)))[()] == x


class TestEncoding:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 256])
    def test_encode_decode_roundtrip(self, p):
        msgs = np.arange(p)
        np.testing.assert_array_equal(decode_message(encode_message(msgs, p), p), msgs)

    def test_decode_tolerates_noise_below_half_step(self):
        p = 8
        step = Q // p
        enc = encode_message(3, p)
        noisy = to_torus(enc.astype(np.int64) + step // 2 - 1)
        assert decode_message(noisy, p)[()] == 3

    def test_decode_flips_past_half_step(self):
        p = 8
        step = Q // p
        enc = encode_message(3, p)
        noisy = to_torus(enc.astype(np.int64) + step // 2 + 1)
        assert decode_message(noisy, p)[()] == 4

    def test_rejects_non_power_of_two_modulus(self):
        with pytest.raises(ValueError):
            encode_message(1, 10)
        with pytest.raises(ValueError):
            decode_message(np.uint32(0), 12)

    def test_rejects_oversized_modulus(self):
        with pytest.raises(ValueError):
            encode_message(1, 1 << 33)


class TestArithmetic:
    @given(u32s, u32s)
    @settings(max_examples=100, deadline=None)
    def test_add_sub_inverse(self, a, b):
        x, y = np.uint32(a), np.uint32(b)
        assert torus_sub(torus_add(x, y), y)[()] == a

    @given(u32s)
    @settings(max_examples=100, deadline=None)
    def test_neg_is_additive_inverse(self, a):
        x = np.uint32(a)
        assert torus_add(x, torus_neg(x))[()] == 0

    @given(u32s, u32s, u32s)
    @settings(max_examples=100, deadline=None)
    def test_add_associative(self, a, b, c):
        x, y, z = map(np.uint32, (a, b, c))
        assert torus_add(torus_add(x, y), z)[()] == torus_add(x, torus_add(y, z))[()]

    @given(st.integers(-1000, 1000), u32s)
    @settings(max_examples=100, deadline=None)
    def test_scalar_mul_matches_repeated_add(self, s, a):
        x = np.uint32(a)
        expected = (s * a) % Q
        assert torus_scalar_mul(s, x)[()] == expected


class TestModswitch:
    def test_identity_when_same_modulus(self):
        x = np.uint32(123456)
        # switching to q itself must round-trip exactly
        assert modswitch(x, Q)[()] == 123456

    def test_halving(self):
        # q/2 on the torus is 1/2; switching to modulus 4 gives 2.
        assert modswitch(np.uint32(Q // 2), 4)[()] == 2

    def test_rounding_behaviour(self):
        # A value just below the midpoint of a 2N bucket rounds down.
        two_n = 2048
        bucket = Q // two_n
        assert modswitch(np.uint32(bucket // 2 - 1), two_n)[()] == 0
        assert modswitch(np.uint32(bucket // 2 + 1), two_n)[()] == 1

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            modswitch(np.uint32(0), 0)

    @given(u32s, st.sampled_from([256, 1024, 2048, 8192]))
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_half_bucket(self, a, two_n):
        switched = int(modswitch(np.uint32(a), two_n)[()])
        # Map back and compare on the torus.
        back = switched * (Q // two_n)
        err = (a - back + Q // 2) % Q - Q // 2
        assert abs(err) <= Q // (2 * two_n)


class TestRounding:
    def test_round_to_multiple_exact(self):
        assert round_to_multiple(np.uint32(1000), 250)[()] == 1000

    def test_round_to_multiple_up(self):
        assert round_to_multiple(np.uint32(130), 256)[()] == 256

    def test_round_to_multiple_down(self):
        assert round_to_multiple(np.uint32(120), 256)[()] == 0
