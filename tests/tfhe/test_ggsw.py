"""Tests for GGSW encryption, the external product, and CMux."""

import numpy as np
import pytest

from repro.tfhe.ggsw import (
    cmux,
    external_product,
    external_product_transform,
    ggsw_encrypt,
)
from repro.tfhe.glwe import glwe_decrypt_phase, glwe_encrypt, glwe_keygen, glwe_trivial
from repro.tfhe.torus import encode_message

K, N = 1, 64
BETA_BITS, L_B = 7, 3
NOISE = -30.0
P = 16


@pytest.fixture(scope="module")
def gkey():
    return glwe_keygen(K, N, np.random.default_rng(11))


@pytest.fixture(scope="module")
def module_rng():
    return np.random.default_rng(13)


def enc_bit(bit, gkey, rng):
    return ggsw_encrypt(bit, gkey, BETA_BITS, L_B, rng, noise_log2=NOISE)


def phase_error(phase, expected):
    diff = (phase.astype(np.int64) - np.asarray(expected).astype(np.int64)
            + (1 << 31)) % (1 << 32) - (1 << 31)
    return np.abs(diff).max()


def random_glwe(gkey, rng, p=P):
    m = encode_message(rng.integers(0, p, size=N), p)
    return m, glwe_encrypt(m, gkey, rng, noise_log2=NOISE)


class TestGgswStructure:
    def test_shape(self, gkey, module_rng):
        g = enc_bit(1, gkey, module_rng)
        assert g.rows.shape == ((K + 1) * L_B, K + 1, N)
        assert g.k == K
        assert g.l_b == L_B
        assert g.N == N

    def test_spectrum_cached(self, gkey, module_rng):
        g = enc_bit(1, gkey, module_rng)
        assert g.spectrum() is g.spectrum()

    def test_shape_validation(self):
        from repro.tfhe.ggsw import GgswCiphertext

        with pytest.raises(ValueError):
            GgswCiphertext(np.zeros((4, 8), dtype=np.uint32), 8)


class TestExternalProduct:
    def test_times_zero_gives_near_zero_phase(self, gkey, module_rng):
        _, ct = random_glwe(gkey, module_rng)
        out = external_product(enc_bit(0, gkey, module_rng), ct)
        assert phase_error(glwe_decrypt_phase(out, gkey), np.zeros(N)) < (1 << 16)

    def test_times_one_preserves_phase(self, gkey, module_rng):
        m, ct = random_glwe(gkey, module_rng)
        out = external_product(enc_bit(1, gkey, module_rng), ct)
        assert phase_error(glwe_decrypt_phase(out, gkey), m) < (1 << 16)

    def test_transform_engine_matches_reference(self, gkey, module_rng):
        _, ct = random_glwe(gkey, module_rng)
        g = enc_bit(1, gkey, module_rng)
        ref = external_product(g, ct, engine="exact")
        fast = external_product_transform(g, ct)
        # Both paths compute the same integer result: the FFT is exact for
        # these magnitudes up to sub-integer rounding.
        assert phase_error(glwe_decrypt_phase(fast, gkey),
                           glwe_decrypt_phase(ref, gkey)) <= 2

    def test_dimension_mismatch_rejected(self, gkey, module_rng):
        g = enc_bit(1, gkey, module_rng)
        wrong = glwe_trivial(np.zeros(2 * N, dtype=np.uint32), K)
        with pytest.raises(ValueError):
            external_product(g, wrong)
        with pytest.raises(ValueError):
            external_product_transform(g, wrong)

    def test_trivial_input_times_one(self, gkey, module_rng):
        m = encode_message(np.arange(N) % (P // 2), P)
        ct = glwe_trivial(m, K)
        out = external_product(enc_bit(1, gkey, module_rng), ct)
        assert phase_error(glwe_decrypt_phase(out, gkey), m) < (1 << 16)


class TestCMux:
    def test_selects_false_branch(self, gkey, module_rng):
        m0, c0 = random_glwe(gkey, module_rng)
        m1, c1 = random_glwe(gkey, module_rng)
        out = cmux(enc_bit(0, gkey, module_rng), c0, c1)
        assert phase_error(glwe_decrypt_phase(out, gkey), m0) < (1 << 16)

    def test_selects_true_branch(self, gkey, module_rng):
        m0, c0 = random_glwe(gkey, module_rng)
        m1, c1 = random_glwe(gkey, module_rng)
        out = cmux(enc_bit(1, gkey, module_rng), c0, c1)
        assert phase_error(glwe_decrypt_phase(out, gkey), m1) < (1 << 16)

    @pytest.mark.parametrize("engine", ["transform", "fft", "exact"])
    def test_all_engines_select_correctly(self, engine, gkey, module_rng):
        m0, c0 = random_glwe(gkey, module_rng)
        m1, c1 = random_glwe(gkey, module_rng)
        out = cmux(enc_bit(1, gkey, module_rng), c0, c1, engine=engine)
        assert phase_error(glwe_decrypt_phase(out, gkey), m1) < (1 << 16)

    def test_chained_cmux_noise_stays_bounded(self, gkey, module_rng):
        """Noise after a chain of CMuxes must stay within the decode budget.

        This is a miniature blind rotation: the invariant that makes
        bootstrapping work at all.
        """
        m, ct = random_glwe(gkey, module_rng, p=4)
        for _ in range(16):
            ct = cmux(enc_bit(1, gkey, module_rng), ct, ct)
        assert phase_error(glwe_decrypt_phase(ct, gkey), m) < (1 << 26)
