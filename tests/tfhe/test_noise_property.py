"""Nightly property test: measured bootstrap noise obeys the predicted envelope.

Hypothesis drives random messages through full programmable bootstraps
on three parameter sets (k=1, k=2, and a widened-n variant) and checks
the measured output phase error against the analytic
``bootstrap_output_noise_std_log2`` prediction - the statistical
contract behind both the drift detector's envelope and the
failure-probability estimator's Gaussian tails.

Marked ``nightly``: excluded from tier-1 (``-m 'not nightly'`` is in the
default addopts); run with ``pytest -m nightly``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TEST_PARAMS, TEST_PARAMS_K2
from repro.observability import noise_tracking
from repro.tfhe import identity_test_polynomial, programmable_bootstrap
from repro.tfhe.noise import bootstrap_output_noise_std_log2, measure_lwe_noise
from repro.tfhe.ops import TfheContext
from repro.tfhe.torus import encode_message

pytestmark = pytest.mark.nightly

P = 8
#: 6-sigma two-sided tail ~ 2e-9 per sample: a spurious failure across
#: the whole nightly sweep is vanishingly unlikely, while a variance
#: model off by even 2x trips it almost immediately.
ENVELOPE_SIGMAS = 6.0

PARAM_SETS = [
    TEST_PARAMS,
    TEST_PARAMS_K2,
    TEST_PARAMS.with_overrides(name="test-n32", n=32, lwe_noise_log2=-24.0),
]

_CONTEXTS = {}


def context_for(params):
    """One keyset per parameter set for the whole sweep (keygen dominates)."""
    if params.name not in _CONTEXTS:
        _CONTEXTS[params.name] = TfheContext.create(params, seed=1234)
    return _CONTEXTS[params.name]


@pytest.mark.parametrize("params", PARAM_SETS, ids=lambda p: p.name)
@settings(max_examples=20, deadline=None)
@given(message=st.integers(min_value=0, max_value=P // 2 - 1))
def test_measured_bootstrap_noise_within_predicted_envelope(params, message):
    ctx = context_for(params)
    tp = identity_test_polynomial(params, P)
    out = programmable_bootstrap(ctx.encrypt(message, P), tp, ctx.keyset)
    expected = int(encode_message(message, P)[()])
    err = measure_lwe_noise(out, ctx.keyset.lwe_key, expected)
    bound = ENVELOPE_SIGMAS * 2.0 ** bootstrap_output_noise_std_log2(params)
    assert abs(err) < bound, (
        f"{params.name}: |{err:.3g}| exceeds {ENVELOPE_SIGMAS} sigma "
        f"(2^{bootstrap_output_noise_std_log2(params):.2f})"
    )


@pytest.mark.parametrize("params", PARAM_SETS, ids=lambda p: p.name)
@settings(max_examples=10, deadline=None)
@given(message=st.integers(min_value=0, max_value=P // 2 - 1))
def test_tracker_prediction_agrees_with_closed_form(params, message):
    """The telemetry record on a bootstrap output must match the closed-form
    prediction, and its measured error must sit inside the same envelope."""
    ctx = context_for(params)
    tp = identity_test_polynomial(params, P)
    with noise_tracking(ctx.keyset.lwe_key) as tracker:
        out = programmable_bootstrap(ctx.encrypt(message, P), tp, ctx.keyset)
        record = tracker.record_of(out)
    assert record is not None and record.op == "programmable_bootstrap"
    assert record.predicted_std_log2 == pytest.approx(
        bootstrap_output_noise_std_log2(params), abs=1e-9)
    assert record.measured is not None
    assert record.sigma < ENVELOPE_SIGMAS
    assert math.isfinite(record.measured)
