"""Tests for LWE ciphertexts and their linear homomorphisms."""

import numpy as np
import pytest

from repro.tfhe.lwe import (
    LweCiphertext,
    LweSecretKey,
    lwe_add,
    lwe_add_plain,
    lwe_decrypt_phase,
    lwe_encrypt,
    lwe_keygen,
    lwe_neg,
    lwe_scalar_mul,
    lwe_sub,
    lwe_trivial,
)
from repro.tfhe.torus import decode_message, encode_message

P = 16
NOISE = -20.0


@pytest.fixture(scope="module")
def key():
    return lwe_keygen(32, np.random.default_rng(3))


def enc(m, key, rng):
    return lwe_encrypt(int(encode_message(m, P)[()]), key, rng, noise_log2=NOISE)


def dec(ct, key):
    return int(decode_message(np.asarray(lwe_decrypt_phase(ct, key)), P)[()])


class TestKeygen:
    def test_key_is_binary(self, rng):
        key = lwe_keygen(64, rng)
        assert set(np.unique(key.bits)) <= {0, 1}

    def test_key_validation(self):
        with pytest.raises(ValueError):
            LweSecretKey(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            LweSecretKey(np.zeros((2, 2)))


class TestEncryptDecrypt:
    @pytest.mark.parametrize("m", range(0, P, 3))
    def test_roundtrip(self, m, key, rng):
        assert dec(enc(m, key, rng), key) == m

    def test_trivial_has_no_mask(self):
        ct = lwe_trivial(int(encode_message(5, P)[()]), 32)
        assert not ct.a.any()
        assert decode_message(np.asarray(ct.b), P)[()] == 5

    def test_masks_are_random(self, key, rng):
        c1, c2 = enc(1, key, rng), enc(1, key, rng)
        assert not np.array_equal(c1.a, c2.a)


class TestHomomorphisms:
    def test_add(self, key, rng):
        c = lwe_add(enc(3, key, rng), enc(4, key, rng))
        assert dec(c, key) == 7

    def test_add_wraps_modulo_p(self, key, rng):
        c = lwe_add(enc(10, key, rng), enc(10, key, rng))
        assert dec(c, key) == (20 % P)

    def test_sub(self, key, rng):
        c = lwe_sub(enc(9, key, rng), enc(4, key, rng))
        assert dec(c, key) == 5

    def test_neg(self, key, rng):
        c = lwe_neg(enc(3, key, rng))
        assert dec(c, key) == P - 3

    def test_scalar_mul(self, key, rng):
        c = lwe_scalar_mul(3, enc(2, key, rng))
        assert dec(c, key) == 6

    def test_scalar_mul_negative(self, key, rng):
        c = lwe_scalar_mul(-2, enc(3, key, rng))
        assert dec(c, key) == (P - 6)

    def test_add_plain(self, key, rng):
        c = lwe_add_plain(enc(3, key, rng), int(encode_message(2, P)[()]))
        assert dec(c, key) == 5

    def test_dimension_mismatch_rejected(self, key, rng):
        short = lwe_trivial(0, 8)
        with pytest.raises(ValueError):
            lwe_add(enc(0, key, rng), short)
        with pytest.raises(ValueError):
            lwe_sub(enc(0, key, rng), short)


class TestCiphertextContainer:
    def test_copy_is_deep(self, key, rng):
        ct = enc(1, key, rng)
        cp = ct.copy()
        cp.a[0] += 1
        assert ct.a[0] != cp.a[0]

    def test_dtype_coercion(self):
        ct = LweCiphertext(np.arange(4, dtype=np.int64), 9)
        assert ct.a.dtype == np.uint32
        assert isinstance(ct.b, np.uint32)
