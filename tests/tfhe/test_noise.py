"""Tests for noise variance prediction vs measurement."""

import pytest

from repro import TEST_PARAMS, get_params
from repro.tfhe import identity_test_polynomial, programmable_bootstrap
from repro.tfhe.noise import (
    blind_rotation_noise_variance,
    bootstrap_output_noise_std_log2,
    external_product_noise_variance,
    key_switch_noise_variance,
    max_noise_for_message_modulus,
    measure_lwe_noise,
)
from repro.tfhe.torus import encode_message

P = 8


class TestFormulas:
    def test_external_product_noise_grows_with_input(self):
        lo = external_product_noise_variance(TEST_PARAMS, 0.0)
        hi = external_product_noise_variance(TEST_PARAMS, 1e-12)
        assert hi > lo

    def test_blind_rotation_scales_with_n(self):
        small = TEST_PARAMS
        big = TEST_PARAMS.with_overrides(name="big-n", n=4 * TEST_PARAMS.n)
        assert blind_rotation_noise_variance(big) == pytest.approx(
            4 * blind_rotation_noise_variance(small)
        )

    def test_key_switch_adds_noise(self):
        base = 1e-15
        assert key_switch_noise_variance(TEST_PARAMS, base) > base

    def test_paper_sets_have_positive_budgets(self):
        for name in ["I", "II", "III", "IV", "A", "B", "C"]:
            params = get_params(name)
            std_log2 = bootstrap_output_noise_std_log2(params)
            assert std_log2 < 0  # stddev below 1 torus unit

    def test_decode_budget(self):
        assert max_noise_for_message_modulus(8) == pytest.approx(1 / 16)


class TestMeasurement:
    def test_fresh_encryption_noise_is_small(self, ctx):
        expected = int(encode_message(1, P)[()])
        ct = ctx.encrypt(1, P)
        err = abs(measure_lwe_noise(ct, ctx.keyset.lwe_key, expected))
        assert err < 2.0 ** (TEST_PARAMS.lwe_noise_log2 + 6)

    def test_measured_bootstrap_noise_within_predicted_budget(self, ctx):
        """The paper's correctness invariant: observed noise < decode budget."""
        tp = identity_test_polynomial(ctx.params, P)
        expected = int(encode_message(2, P)[()])
        worst = 0.0
        for _ in range(5):
            out = programmable_bootstrap(ctx.encrypt(2, P), tp, ctx.keyset)
            worst = max(worst, abs(measure_lwe_noise(out, ctx.keyset.lwe_key, expected)))
        assert worst < max_noise_for_message_modulus(P)

    def test_predicted_std_is_sane_for_test_params(self, ctx):
        # Predicted output noise must leave margin under the p=8 budget,
        # otherwise the functional tests above could not be passing.
        std = 2.0 ** bootstrap_output_noise_std_log2(TEST_PARAMS)
        assert 4 * std < max_noise_for_message_modulus(P)
