"""Integration tests for the full programmable bootstrap (Algorithm 1)."""

import numpy as np
import pytest

from repro.tfhe import (
    BootstrapTrace,
    identity_test_polynomial,
    key_switch,
    make_test_polynomial,
    modulus_switch,
    programmable_bootstrap,
)
from repro.tfhe.lwe import LweSecretKey, lwe_decrypt_phase, lwe_encrypt
from repro.tfhe.torus import decode_message, encode_message

P = 8


def enc(ctx, m, p=P):
    return ctx.encrypt(m, p)


class TestModulusSwitch:
    def test_output_range(self, ctx, rng):
        ct = enc(ctx, 1)
        a_t, b_t = modulus_switch(ct, ctx.params.N)
        assert 0 <= b_t < 2 * ctx.params.N
        assert a_t.min() >= 0 and a_t.max() < 2 * ctx.params.N

    def test_preserves_phase_approximately(self, ctx):
        ct = enc(ctx, 2)
        a_t, b_t = modulus_switch(ct, ctx.params.N)
        key_bits = ctx.keyset.lwe_key.bits
        two_n = 2 * ctx.params.N
        phase_2n = (b_t - int(np.sum(a_t * key_bits))) % two_n
        expected = 2 * two_n // P
        err = min((phase_2n - expected) % two_n, (expected - phase_2n) % two_n)
        assert err <= two_n // (2 * P)


class TestKeySwitch:
    def test_switches_back_to_small_key(self, ctx, rng):
        params = ctx.params
        glwe_key = ctx.keyset.glwe_key
        big_key = LweSecretKey(glwe_key.extracted_lwe_bits())
        m = int(encode_message(3, P)[()])
        big_ct = lwe_encrypt(m, big_key, rng, noise_log2=-25.0)
        small_ct = key_switch(big_ct, ctx.keyset.ksk)
        assert small_ct.n == params.n
        phase = lwe_decrypt_phase(small_ct, ctx.keyset.lwe_key)
        assert decode_message(np.asarray(phase), P)[()] == 3

    def test_dimension_mismatch_rejected(self, ctx):
        from repro.tfhe.lwe import lwe_trivial

        with pytest.raises(ValueError):
            key_switch(lwe_trivial(0, 3), ctx.keyset.ksk)

    def test_trace_counts_scalar_mults(self, ctx, rng):
        glwe_key = ctx.keyset.glwe_key
        big_key = LweSecretKey(glwe_key.extracted_lwe_bits())
        big_ct = lwe_encrypt(0, big_key, rng, noise_log2=-25.0)
        trace = BootstrapTrace()
        key_switch(big_ct, ctx.keyset.ksk, trace=trace)
        params = ctx.params
        expected = params.k * params.N * params.l_k * (params.n + 1)
        assert trace.ks_scalar_mults == expected


class TestProgrammableBootstrap:
    @pytest.mark.parametrize("m", range(P // 2))
    def test_identity_bootstrap_all_messages(self, ctx, m):
        tp = identity_test_polynomial(ctx.params, P)
        out = programmable_bootstrap(enc(ctx, m), tp, ctx.keyset)
        assert ctx.decrypt(out, P) == m

    def test_square_lut(self, ctx):
        lut = np.array([(x * x) % P for x in range(P // 2)], dtype=np.int64)
        tp = make_test_polynomial(lut, ctx.params, P)
        out = programmable_bootstrap(enc(ctx, 3), tp, ctx.keyset)
        assert ctx.decrypt(out, P) == (9 % P)

    @pytest.mark.parametrize("engine", ["transform", "fft", "exact"])
    def test_engines_agree_on_decryption(self, ctx, engine):
        tp = identity_test_polynomial(ctx.params, P)
        out = programmable_bootstrap(enc(ctx, 2), tp, ctx.keyset, engine=engine)
        assert ctx.decrypt(out, P) == 2

    def test_output_dimension(self, ctx):
        tp = identity_test_polynomial(ctx.params, P)
        out = programmable_bootstrap(enc(ctx, 1), tp, ctx.keyset)
        assert out.n == ctx.params.n

    def test_refreshes_noise(self, ctx):
        """Bootstrapping output noise must be independent of input noise."""
        from repro.tfhe.noise import measure_lwe_noise

        tp = identity_test_polynomial(ctx.params, P)
        ct = enc(ctx, 1)
        # Walk the ciphertext close to the decode boundary by adding noise.
        noisy = ct
        for _ in range(3):
            from repro.tfhe.lwe import lwe_add

            noisy = lwe_add(noisy, ctx.encrypt(0, P))
        out = programmable_bootstrap(noisy, tp, ctx.keyset)
        expected = int(encode_message(1, P)[()])
        refreshed = abs(measure_lwe_noise(out, ctx.keyset.lwe_key, expected))
        assert refreshed < 1.0 / (2 * P)

    def test_trace_operation_counts(self, ctx):
        params = ctx.params
        trace = BootstrapTrace()
        tp = identity_test_polynomial(params, P)
        programmable_bootstrap(enc(ctx, 1), tp, ctx.keyset, trace=trace)
        # Zero-valued switched masks are skipped, so <= n externals.
        assert 0 < trace.external_products <= params.n
        per_iter_fwd = (params.k + 1) * params.l_b
        assert trace.forward_transforms == trace.external_products * per_iter_fwd
        assert trace.inverse_transforms == trace.external_products * (params.k + 1)
        assert trace.pointwise_mult_polys == (
            trace.external_products * (params.k + 1) ** 2 * params.l_b
        )
        assert trace.ms_operations == params.n + 1

    def test_bootstrap_composes(self, ctx):
        """Output of one bootstrap is a valid input to the next."""
        tp = identity_test_polynomial(ctx.params, P)
        ct = enc(ctx, 3)
        for _ in range(2):
            ct = programmable_bootstrap(ct, tp, ctx.keyset)
        assert ctx.decrypt(ct, P) == 3
