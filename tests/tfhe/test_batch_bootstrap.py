"""Batched bootstrap pipeline: bit-identity, precision modes, reuse accounting.

The batch-first hot path must be a pure reshape of the scalar path: the
same einsum contraction with a fixed reduction order, the same FFT
butterflies applied elementwise along the batch axes.  These tests pin
that down as *bit*-identity (``np.array_equal`` on raw torus words, not
approximate decryption agreement), on the toy sets and on a secure
Table III parameter set, and check the telemetry actually proves the
Input/Output-reuse transform counts the paper claims.
"""

import tracemalloc

import numpy as np
import pytest

from repro import observability as obs
from repro.params import PARAM_SETS, TEST_PARAMS_K2
from repro.tfhe import (
    KeySwitchingKey,
    identity_test_polynomial,
    key_switch_batch,
    make_test_polynomial,
    programmable_bootstrap,
    programmable_bootstrap_batch,
)
from repro.tfhe.decomposition import decompose
from repro.tfhe.ops import TfheContext
from repro.tfhe.torus import TORUS_DTYPE, to_torus

P = 8


def _assert_bit_identical(batch_outs, scalar_outs):
    assert len(batch_outs) == len(scalar_outs)
    for got, ref in zip(batch_outs, scalar_outs):
        assert np.array_equal(got.a, ref.a)
        assert got.b == ref.b


class TestBitIdentity:
    def test_batch16_matches_scalar_toy(self, ctx):
        msgs = [m % (P // 2) for m in range(16)]
        cts = [ctx.encrypt(m, P) for m in msgs]
        tp = identity_test_polynomial(ctx.params, P)
        batch = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        scalar = [programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
        _assert_bit_identical(batch, scalar)
        for m, out in zip(msgs, batch):
            assert ctx.decrypt(out, P) == m

    def test_per_sample_test_polynomials(self, ctx):
        """A (B, N) test-poly stack applies row r's LUT to sample r."""
        identity = identity_test_polynomial(ctx.params, P)
        square = make_test_polynomial(
            np.array([(x * x) % P for x in range(P // 2)], dtype=np.int64),
            ctx.params, P,
        )
        cts = [ctx.encrypt(3, P), ctx.encrypt(3, P)]
        tps = np.stack([identity, square])
        batch = programmable_bootstrap_batch(cts, tps, ctx.keyset)
        _assert_bit_identical(
            batch,
            [programmable_bootstrap(cts[0], identity, ctx.keyset),
             programmable_bootstrap(cts[1], square, ctx.keyset)],
        )
        assert ctx.decrypt(batch[0], P) == 3
        assert ctx.decrypt(batch[1], P) == 1  # 9 mod 8

    def test_batch_matches_scalar_k2(self):
        """GLWE dimension k=2 exercises the full (component, level) grid."""
        ctx = TfheContext.create(TEST_PARAMS_K2, seed=11)
        msgs = [0, 1, 2, 3, 1]
        cts = [ctx.encrypt(m, P) for m in msgs]
        tp = identity_test_polynomial(ctx.params, P)
        batch = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        _assert_bit_identical(
            batch, [programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
        )
        for m, out in zip(msgs, batch):
            assert ctx.decrypt(out, P) == m

    def test_batch_matches_scalar_secure_set(self):
        """Bit-identity holds on a secure Table III set, not just toys."""
        ctx = TfheContext.create(PARAM_SETS["I"], seed=1)
        msgs = [0, 2, 3]
        cts = [ctx.encrypt(m, P) for m in msgs]
        tp = identity_test_polynomial(ctx.params, P)
        batch = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        _assert_bit_identical(
            batch, [programmable_bootstrap(ct, tp, ctx.keyset) for ct in cts]
        )
        for m, out in zip(msgs, batch):
            assert ctx.decrypt(out, P) == m


class TestPrecisionModes:
    def test_single_precision_decodes_correctly(self, ctx):
        msgs = [0, 1, 2, 3]
        cts = [ctx.encrypt(m, P) for m in msgs]
        tp = identity_test_polynomial(ctx.params, P)
        outs = programmable_bootstrap_batch(cts, tp, ctx.keyset, precision="single")
        for m, out in zip(msgs, outs):
            assert ctx.decrypt(out, P) == m

    def test_tables_cached_per_precision(self, ctx):
        double = ctx.keyset.bsk_spectrum_table("double")
        single = ctx.keyset.bsk_spectrum_table("single")
        assert ctx.keyset.bsk_spectrum_table("double") is double
        assert ctx.keyset.bsk_spectrum_table("single") is single
        assert double.dtype == np.complex128
        assert single.dtype == np.complex64
        p = ctx.params
        assert double.shape == (p.n, (p.k + 1) * p.l_b, p.k + 1, p.N // 2)

    def test_double_table_matches_lazy_spectra(self, ctx):
        """The eager whole-BSK transform is bit-compatible with the lazy path."""
        table = ctx.keyset.bsk_spectrum_table("double")
        for i in (0, 1, ctx.params.n - 1):
            assert np.array_equal(table[i], ctx.keyset.bsk[i].spectrum())

    def test_invalid_precision_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.keyset.bsk_spectrum_table("half")
        with pytest.raises(ValueError):
            programmable_bootstrap_batch(
                [ctx.encrypt(0, P)], identity_test_polynomial(ctx.params, P),
                ctx.keyset, precision="half",
            )


class TestTransformReuseCounters:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self):
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _counter(self, name, **labels):
        metric = obs.REGISTRY.get(name)
        value = metric.value(**labels) if metric is not None else None
        return 0.0 if value is None else value

    def test_fft_counts_prove_transform_reuse(self, ctx):
        """Per blind-rotation step the batch does exactly (k+1)*l_b forward
        and k+1 inverse transforms per sample: the BSK contributes *zero*
        (pre-transformed table, Input reuse) and each output polynomial is
        inverse-transformed once, not once per partial product (Output
        reuse in the POLY-ACC-REG)."""
        p = ctx.params
        cts = [ctx.encrypt(m % (P // 2), P) for m in range(4)]
        tp = identity_test_polynomial(p, P)
        ctx.keyset.bsk_spectrum_table("double")  # pre-transform outside the window
        with obs.telemetry():
            outs = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        steps = self._counter("tfhe_blind_rotation_steps_total")
        assert 0 < steps <= len(cts) * p.n
        forward = self._counter("transforms_fft_total", direction="forward")
        inverse = self._counter("transforms_fft_total", direction="inverse")
        # Forward: only the decomposed accumulator digits, never BSK rows.
        assert forward == steps * (p.k + 1) * p.l_b
        # Inverse: one per output polynomial per step...
        assert inverse == steps * (p.k + 1)
        # ...not one per pointwise partial product (what no reuse would cost).
        assert inverse < steps * (p.k + 1) ** 2 * p.l_b
        assert self._counter("tfhe_bootstraps_total") == len(cts)
        for m, out in zip(range(4), outs):
            assert ctx.decrypt(out, P) == m % (P // 2)

    def test_batch_and_scalar_transform_counts_match(self, ctx):
        """Shared kernel: B scalar calls cost exactly what one B-batch costs."""
        cts = [ctx.encrypt(m, P) for m in (1, 2, 3)]
        tp = identity_test_polynomial(ctx.params, P)
        ctx.keyset.bsk_spectrum_table("double")
        with obs.telemetry():
            programmable_bootstrap_batch(cts, tp, ctx.keyset)
        batched = (
            self._counter("transforms_fft_total", direction="forward"),
            self._counter("transforms_fft_total", direction="inverse"),
        )
        with obs.telemetry():
            for ct in cts:
                programmable_bootstrap(ct, tp, ctx.keyset)
        scalar = (
            self._counter("transforms_fft_total", direction="forward"),
            self._counter("transforms_fft_total", direction="inverse"),
        )
        assert batched == scalar


class TestKeySwitchMemory:
    """The KSK contraction must not materialize the (m, l_k, n) product."""

    def _make_ksk(self, rng, m, l_k, n):
        masks = rng.integers(0, 1 << 32, size=(m, l_k, n), dtype=np.uint64)
        bodies = rng.integers(0, 1 << 32, size=(m, l_k), dtype=np.uint64)
        return KeySwitchingKey(
            masks.astype(TORUS_DTYPE), bodies.astype(TORUS_DTYPE), beta_ks_bits=7
        )

    def test_matches_naive_broadcast_reference(self):
        rng = np.random.default_rng(2)
        m, l_k, n, batch = 32, 3, 12, 4
        ksk = self._make_ksk(rng, m, l_k, n)
        a = rng.integers(0, 1 << 32, size=(batch, m), dtype=np.uint64).astype(TORUS_DTYPE)
        b = rng.integers(0, 1 << 32, size=(batch,), dtype=np.uint64).astype(TORUS_DTYPE)
        out_a, out_b = key_switch_batch(a, b, ksk)
        d64 = decompose(a, ksk.beta_ks_bits, ksk.l_k).transpose(0, 2, 1)
        for r in range(batch):
            # The pre-optimization formula, allocation blowup and all.
            ref_a = to_torus(-(d64[r][:, :, None] * ksk.masks.astype(np.int64)).sum(axis=(0, 1)))
            ref_b = to_torus(np.int64(b[r]) - (d64[r] * ksk.bodies.astype(np.int64)).sum())
            assert np.array_equal(out_a[r], ref_a)
            assert out_b[r] == ref_b

    def test_peak_allocation_regression(self):
        rng = np.random.default_rng(3)
        m, l_k, n, batch = 2048, 4, 500, 2
        ksk = self._make_ksk(rng, m, l_k, n)
        a = rng.integers(0, 1 << 32, size=(batch, m), dtype=np.uint64).astype(TORUS_DTYPE)
        b = rng.integers(0, 1 << 32, size=(batch,), dtype=np.uint64).astype(TORUS_DTYPE)
        key_switch_batch(a, b, ksk)  # warm caches outside the measured window
        tracemalloc.start()
        key_switch_batch(a, b, ksk)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The broadcast formula materialized (B, m, l_k, n) int64 partials.
        naive_bytes = batch * m * l_k * n * 8
        assert peak < naive_bytes / 8, (
            f"key_switch_batch peaked at {peak / 2**20:.1f} MiB; "
            f"the naive product would be {naive_bytes / 2**20:.1f} MiB"
        )
