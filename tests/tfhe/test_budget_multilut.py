"""Tests for noise-budget planning and multi-LUT bootstrapping."""

import pytest

from repro import TEST_PARAMS
from repro.tfhe.budget import BootstrapPlanner, LinearOp, NoiseBudget
from repro.tfhe.multilut import (
    make_multi_test_polynomial,
    max_luts_for_params,
    multi_lut_bootstrap,
)

P = 8


class TestNoiseBudget:
    def test_fresh_below_bootstrapped(self):
        fresh = NoiseBudget.fresh(TEST_PARAMS)
        boot = NoiseBudget.bootstrapped(TEST_PARAMS)
        assert fresh.variance < boot.variance

    def test_addition_adds_variances(self):
        a = NoiseBudget.fresh(TEST_PARAMS)
        assert a.add(a).variance == pytest.approx(2 * a.variance)

    def test_scalar_mul_squares(self):
        a = NoiseBudget.fresh(TEST_PARAMS)
        assert a.scalar_mul(3).variance == pytest.approx(9 * a.variance)

    def test_weighted_sum(self):
        a = NoiseBudget.fresh(TEST_PARAMS)
        assert a.weighted_sum((1, 2, 2)).variance == pytest.approx(9 * a.variance)

    def test_decode_check_monotone_in_p(self):
        boot = NoiseBudget.bootstrapped(TEST_PARAMS)
        assert boot.decodes_at(2)
        # a large enough modulus must eventually fail
        assert not boot.decodes_at(1 << 16)


class TestBootstrapPlanner:
    def test_light_program_needs_no_bootstraps(self):
        planner = BootstrapPlanner(TEST_PARAMS, P)
        plan = planner.plan([LinearOp("a", (1, 1)), LinearOp("b", (1, -1))])
        assert plan.total_bootstraps == 0
        assert all(not b for _, b in plan.steps)

    def test_heavy_chain_inserts_bootstraps(self):
        # Each level multiplies the noise std by ~64: two levels must
        # force a reset in between.
        planner = BootstrapPlanner(TEST_PARAMS, P)
        heavy = LinearOp("heavy", tuple([16] * 16))
        plan = planner.plan([heavy, heavy, heavy])
        assert plan.total_bootstraps >= 1
        assert plan.final_budget.decodes_at(P)

    def test_impossible_op_rejected(self):
        planner = BootstrapPlanner(TEST_PARAMS, P)
        with pytest.raises(ValueError):
            planner.plan([LinearOp("monster", tuple([1 << 14] * 64))])

    def test_plan_to_layers(self):
        planner = BootstrapPlanner(TEST_PARAMS, P)
        heavy = LinearOp("heavy", tuple([16] * 16))
        plan = planner.plan([heavy, heavy, heavy])
        layers = plan.to_layers(values_per_level=10)
        assert sum(l.bootstraps for l in layers) == 10 * plan.total_bootstraps

    def test_linear_only_plan_has_empty_layer(self):
        planner = BootstrapPlanner(TEST_PARAMS, P)
        plan = planner.plan([LinearOp("a", (1,))])
        layers = plan.to_layers()
        assert len(layers) == 1
        assert layers[0].bootstraps == 0

    def test_undecodable_modulus_rejected_up_front(self):
        with pytest.raises(ValueError):
            BootstrapPlanner(TEST_PARAMS, 1 << 16)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            BootstrapPlanner(TEST_PARAMS, 1)


class TestMultiLut:
    def test_two_luts_one_rotation(self, ctx):
        luts = [lambda x: x, lambda x: (x * 2) % 4]
        for m in range(4):
            outs = multi_lut_bootstrap(ctx.encrypt(m, P), luts, ctx.keyset, P)
            assert ctx.decrypt(outs[0], P) == m
            assert ctx.decrypt(outs[1], P) == (m * 2) % 4

    def test_three_luts(self, ctx):
        luts = [lambda x: x, lambda x: (3 - x) % 4, lambda x: 1 if x > 1 else 0]
        outs = multi_lut_bootstrap(ctx.encrypt(2, P), luts, ctx.keyset, P)
        assert [ctx.decrypt(o, P) for o in outs] == [2, 1, 1]

    def test_sequence_tables_accepted(self, ctx):
        outs = multi_lut_bootstrap(ctx.encrypt(1, P), [[0, 1, 2, 3]], ctx.keyset, P)
        assert ctx.decrypt(outs[0], P) == 1

    def test_too_many_tables_rejected(self):
        too_many = [lambda x: x] * (2 * TEST_PARAMS.N)
        with pytest.raises(ValueError):
            make_multi_test_polynomial(too_many, TEST_PARAMS, P)

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            make_multi_test_polynomial([], TEST_PARAMS, P)

    def test_single_lut_matches_plain_test_polynomial(self):
        from repro.tfhe.encoding import make_test_polynomial
        import numpy as np

        lut = np.arange(P // 2, dtype=np.int64)
        multi = make_multi_test_polynomial([lut], TEST_PARAMS, P)
        plain = make_test_polynomial(lut, TEST_PARAMS, P)
        np.testing.assert_array_equal(multi, plain)

    def test_budget_shrinks_with_more_tables(self):
        assert max_luts_for_params(TEST_PARAMS, 8) >= 2
        assert max_luts_for_params(TEST_PARAMS, 8) > max_luts_for_params(TEST_PARAMS, 32)
