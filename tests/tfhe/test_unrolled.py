"""Tests for bootstrapping-key unrolling (MATCHA's technique, refs [59][60])."""

import numpy as np
import pytest

from repro.params import get_params
from repro.tfhe import identity_test_polynomial, make_test_polynomial, programmable_bootstrap
from repro.tfhe.keys import KeySet
from repro.tfhe.unrolled import (
    generate_unrolled_bsk,
    programmable_bootstrap_unrolled,
    unrolled_blind_rotation_tradeoff,
)

P = 8


@pytest.fixture(scope="module")
def unrolled(ctx):
    return generate_unrolled_bsk(ctx.keyset, np.random.default_rng(97))


class TestUnrolledKey:
    def test_pair_count(self, ctx, unrolled):
        assert unrolled.num_pairs == ctx.params.n // 2

    def test_ggsw_count_is_1_5x(self, ctx, unrolled):
        # Even n: 3 GGSWs per 2 bits vs 2.
        assert unrolled.ggsw_count() == 3 * ctx.params.n // 2

    def test_requires_secret_key(self, ctx):
        stripped = KeySet(ctx.params, None, None, ctx.keyset.bsk, ctx.keyset.ksk)
        with pytest.raises(ValueError):
            generate_unrolled_bsk(stripped, np.random.default_rng(0))


class TestUnrolledBootstrap:
    @pytest.mark.parametrize("m", range(4))
    def test_identity_all_messages(self, ctx, unrolled, m):
        tp = identity_test_polynomial(ctx.params, P)
        out = programmable_bootstrap_unrolled(ctx.encrypt(m, P), tp, ctx.keyset, unrolled)
        assert ctx.decrypt(out, P) == m

    def test_lut_matches_plain_bootstrap(self, ctx, unrolled):
        lut = np.array([1, 3, 0, 2], dtype=np.int64)
        tp = make_test_polynomial(lut, ctx.params, P)
        ct = ctx.encrypt(2, P)
        plain = programmable_bootstrap(ct, tp, ctx.keyset)
        fast = programmable_bootstrap_unrolled(ct, tp, ctx.keyset, unrolled)
        assert ctx.decrypt(plain, P) == ctx.decrypt(fast, P) == 0

    def test_output_feeds_next_bootstrap(self, ctx, unrolled):
        tp = identity_test_polynomial(ctx.params, P)
        ct = ctx.encrypt(3, P)
        once = programmable_bootstrap_unrolled(ct, tp, ctx.keyset, unrolled)
        twice = programmable_bootstrap_unrolled(once, tp, ctx.keyset, unrolled)
        assert ctx.decrypt(twice, P) == 3


class TestTradeoff:
    def test_halves_iterations(self):
        t = unrolled_blind_rotation_tradeoff(get_params("I"))
        assert t["unrolled_iterations"] == t["plain_iterations"] // 2
        assert t["latency_ratio"] == pytest.approx(0.5)

    def test_work_grows_1_5x(self):
        t = unrolled_blind_rotation_tradeoff(get_params("I"))
        assert t["work_ratio"] == pytest.approx(1.5)

    def test_key_grows_1_5x(self):
        t = unrolled_blind_rotation_tradeoff(get_params("I"))
        assert t["unrolled_bsk_bytes"] == pytest.approx(1.5 * t["plain_bsk_bytes"])

    def test_odd_n_keeps_a_tail(self):
        t = unrolled_blind_rotation_tradeoff(get_params("C"))  # n = 487
        assert t["unrolled_iterations"] == 487 // 2 + 1
