"""Integration tests: noise telemetry through the functional TFHE path.

The tracker unit tests use stand-in objects; here real ciphertexts flow
through encrypt -> linear ops -> bootstrap -> decode with tracking on,
and the records must carry correct plaintext shadows, sane predicted
variances, full provenance chains, and (with the debug key registered)
measured phase errors inside the analytic envelope.
"""

import pytest

from repro import TEST_PARAMS
from repro.observability import NOISE, drift_report, noise_tracking
from repro.tfhe.integer import add_integers, decrypt_integer, encrypt_integer
from repro.tfhe.lwe import lwe_add, lwe_scalar_mul
from repro.tfhe.noise import (
    blind_rotation_noise_variance,
    key_switch_noise_variance,
)


class TestGatePath:
    def test_gate_is_tracked_end_to_end(self, ctx):
        with noise_tracking(ctx.keyset.lwe_key) as tracker:
            x, y = ctx.encrypt(1), ctx.encrypt(0)
            out = ctx.gate("nand", x, y)
            assert ctx.decrypt(out) == 1
            ops = {r.op for r in tracker.records()}
            assert {"lwe_encrypt", "lwe_add", "programmable_bootstrap"} <= ops
            kinds = {p.kind for p in tracker.failure_points()}
            assert {"bootstrap_decision", "decode"} <= kinds

    def test_gate_records_carry_the_gate_label(self, ctx):
        with noise_tracking() as tracker:
            ctx.gate("xor", ctx.encrypt(1), ctx.encrypt(1))
            bootstraps = tracker.records_for("programmable_bootstrap")
            assert bootstraps and all(r.label == "gate:xor" for r in bootstraps)

    def test_provenance_chains_back_to_the_encrypts(self, ctx):
        with noise_tracking() as tracker:
            x, y = ctx.encrypt(1), ctx.encrypt(0)
            out = ctx.gate("and", x, y)
            record = tracker.record_of(out)
            assert record is not None
            by_id = {r.op_id: r for r in tracker.records()}
            frontier, seen_ops = list(record.parents), set()
            while frontier:
                parent = by_id[frontier.pop()]
                seen_ops.add(parent.op)
                frontier.extend(parent.parents)
            assert {"lwe_add", "lwe_encrypt"} <= seen_ops

    def test_measured_errors_stay_inside_the_envelope(self, ctx):
        with noise_tracking(ctx.keyset.lwe_key) as tracker:
            for name in ("and", "or", "nand"):
                ctx.decrypt(ctx.gate(name, ctx.encrypt(1), ctx.encrypt(0)))
            measured = [r for r in tracker.records() if r.measured is not None]
            assert measured
            assert max(r.sigma for r in measured) < 8.0
            assert all(d.within_envelope for d in drift_report(tracker))

    def test_bootstrap_output_variance_is_input_independent(self, ctx):
        expected = key_switch_noise_variance(
            TEST_PARAMS, blind_rotation_noise_variance(TEST_PARAMS))
        with noise_tracking() as tracker:
            ctx.gate("or", ctx.encrypt(0), ctx.encrypt(0))
            (record,) = tracker.records_for("programmable_bootstrap")
            assert record.predicted_variance == pytest.approx(expected)


class TestLinearAlgebra:
    def test_fresh_encrypt_variance_matches_params(self, ctx):
        with noise_tracking() as tracker:
            ctx.encrypt(1)
            (record,) = tracker.records()
            assert record.predicted_variance == pytest.approx(
                (2.0 ** TEST_PARAMS.lwe_noise_log2) ** 2)

    def test_self_addition_quadruples_variance(self, ctx):
        """lwe_add(x, x) doubles the value, so the variance quadruples."""
        with noise_tracking() as tracker:
            x = ctx.encrypt(1)
            fresh = tracker.record_of(x).predicted_variance
            doubled = lwe_add(x, x)
            record = tracker.record_of(doubled)
            assert record.predicted_variance == pytest.approx(4 * fresh)

    def test_scalar_mul_scales_variance_by_square(self, ctx):
        with noise_tracking() as tracker:
            x = ctx.encrypt(1)
            fresh = tracker.record_of(x).predicted_variance
            record = tracker.record_of(lwe_scalar_mul(3, x))
            assert record.predicted_variance == pytest.approx(9 * fresh)

    def test_shadow_tracks_the_actual_phase(self, ctx):
        """With the debug key the measured error must be tiny for fresh
        linear combinations - shadow and ciphertext agree."""
        with noise_tracking(ctx.keyset.lwe_key) as tracker:
            x, y = ctx.encrypt(1), ctx.encrypt(0)
            record = tracker.record_of(lwe_add(x, y))
            assert record.measured is not None
            assert abs(record.measured) < 2.0 ** (TEST_PARAMS.lwe_noise_log2 + 6)


class TestHigherLayers:
    def test_integer_add_labels_records(self, ctx):
        with noise_tracking() as tracker:
            a = encrypt_integer(ctx, 5, num_digits=2)
            b = encrypt_integer(ctx, 6, num_digits=2)
            total = add_integers(ctx, a, b)
            assert decrypt_integer(ctx, total) == 11
            labelled = [r for r in tracker.records() if r.label == "int:add"]
            assert labelled
            assert any(r.op == "programmable_bootstrap" for r in labelled)

    def test_circuit_nodes_annotate_records(self, ctx):
        from repro.tfhe.boolean import Circuit

        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        circuit.mark_output(circuit.gate("xor", a, b), "out")
        with noise_tracking() as tracker:
            enc = {"a": ctx.encrypt(1), "b": ctx.encrypt(0)}
            out = circuit.evaluate_encrypted(ctx, enc)
            assert ctx.decrypt(out["out"]) == 1
            annotated = [r for r in tracker.records()
                         if "circuit_node" in r.meta]
            assert annotated


class TestDisabledPath:
    def test_disabled_tracker_leaves_ciphertexts_bare(self, ctx):
        assert not NOISE.enabled  # tier-1 default
        NOISE.reset()
        out = ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0))
        assert NOISE.record_of(out) is None
        assert len(NOISE) == 0

    def test_tracking_block_leaves_no_residue(self, ctx):
        with noise_tracking(ctx.keyset.lwe_key):
            ctx.gate("or", ctx.encrypt(1), ctx.encrypt(0))
        assert not NOISE.enabled
        assert not NOISE.measuring
