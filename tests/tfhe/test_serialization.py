"""Tests for key/ciphertext serialization."""

import numpy as np
import pytest

from repro.tfhe.serialization import (
    load_ciphertext,
    load_evaluation_keys,
    load_keyset,
    save_ciphertext,
    save_evaluation_keys,
    save_keyset,
)
from repro.tfhe import identity_test_polynomial, programmable_bootstrap
from repro.tfhe.lwe import lwe_decrypt_phase
from repro.tfhe.torus import decode_message

P = 8


class TestKeysetRoundtrip:
    def test_full_keyset(self, ctx, tmp_path):
        path = tmp_path / "keys.npz"
        save_keyset(path, ctx.keyset)
        loaded = load_keyset(path)
        np.testing.assert_array_equal(loaded.lwe_key.bits, ctx.keyset.lwe_key.bits)
        np.testing.assert_array_equal(loaded.glwe_key.polys, ctx.keyset.glwe_key.polys)
        assert loaded.params.N == ctx.params.N
        assert len(loaded.bsk) == ctx.params.n

    def test_loaded_keys_bootstrap_correctly(self, ctx, tmp_path):
        """The round-tripped keyset must still run real bootstraps."""
        path = tmp_path / "keys.npz"
        save_keyset(path, ctx.keyset)
        loaded = load_keyset(path)
        ct = ctx.encrypt(2, P)
        tp = identity_test_polynomial(loaded.params, P)
        out = programmable_bootstrap(ct, tp, loaded)
        phase = lwe_decrypt_phase(out, loaded.lwe_key)
        assert decode_message(np.asarray(phase), P)[()] == 2

    def test_evaluation_keys_have_no_secrets(self, ctx, tmp_path):
        path = tmp_path / "eval.npz"
        save_evaluation_keys(path, ctx.keyset)
        loaded = load_evaluation_keys(path)
        assert loaded.lwe_key is None
        assert loaded.glwe_key is None
        assert len(loaded.bsk) == ctx.params.n

    def test_evaluation_keys_still_bootstrap(self, ctx, tmp_path):
        """Server-side keys suffice for evaluation (decryption is client-side)."""
        path = tmp_path / "eval.npz"
        save_evaluation_keys(path, ctx.keyset)
        server = load_evaluation_keys(path)
        ct = ctx.encrypt(1, P)
        tp = identity_test_polynomial(server.params, P)
        out = programmable_bootstrap(ct, tp, server)
        # Client decrypts with its own secret key.
        assert ctx.decrypt(out, P) == 1

    def test_loading_eval_archive_as_keyset_fails(self, ctx, tmp_path):
        path = tmp_path / "eval.npz"
        save_evaluation_keys(path, ctx.keyset)
        with pytest.raises(ValueError):
            load_keyset(path)

    def test_saving_secretless_keyset_fails(self, ctx, tmp_path):
        from repro.tfhe.keys import KeySet

        stripped = KeySet(ctx.params, None, None, ctx.keyset.bsk, ctx.keyset.ksk)
        with pytest.raises(ValueError):
            save_keyset(tmp_path / "x.npz", stripped)


class TestCiphertextRoundtrip:
    def test_ciphertext(self, ctx, tmp_path):
        path = tmp_path / "ct.npz"
        ct = ctx.encrypt(3, P)
        save_ciphertext(path, ct)
        loaded = load_ciphertext(path)
        np.testing.assert_array_equal(loaded.a, ct.a)
        assert loaded.b == ct.b
        assert ctx.decrypt(loaded, P) == 3
