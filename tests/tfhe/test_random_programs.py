"""Property-based end-to-end tests: random encrypted programs.

Hypothesis generates random boolean circuits and random integer-op
sequences; every one must agree with its plaintext golden model.  These
are the strongest functional invariants in the suite - they exercise
arbitrary compositions of gates, LUT bootstraps, carries, and
comparisons through the full scheme.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.boolean import Circuit
from repro.tfhe.integer import (
    add_integers,
    decrypt_integer,
    encrypt_integer,
    equals_integer,
    less_than_integer,
)
from repro.tfhe.ops import GATE_LUTS

GATES = sorted(GATE_LUTS)


def build_random_circuit(seed: int, n_inputs: int, n_gates: int) -> Circuit:
    """Deterministic random DAG: each gate picks two prior wires."""
    rng = np.random.default_rng(seed)
    circuit = Circuit()
    wires = [circuit.add_input(f"x{i}") for i in range(n_inputs)]
    for _ in range(n_gates):
        op = GATES[rng.integers(0, len(GATES))]
        a = wires[rng.integers(0, len(wires))]
        b = wires[rng.integers(0, len(wires))]
        if rng.integers(0, 4) == 0:
            a = circuit.not_gate(a)
        wires.append(circuit.gate(op, a, b))
    circuit.mark_output(wires[-1], "out")
    return circuit


class TestRandomCircuits:
    @given(
        seed=st.integers(0, 2**31),
        n_gates=st.integers(1, 5),
        assignment=st.integers(0, 7),
    )
    @settings(max_examples=6, deadline=None)
    def test_encrypted_matches_plain(self, ctx, seed, n_gates, assignment):
        circuit = build_random_circuit(seed, n_inputs=3, n_gates=n_gates)
        inputs = {f"x{i}": (assignment >> i) & 1 for i in range(3)}
        plain = circuit.evaluate_plain(inputs)
        enc = circuit.evaluate_encrypted(
            ctx, {k: ctx.encrypt(v) for k, v in inputs.items()}
        )
        assert ctx.decrypt(enc["out"]) == plain["out"]

    @given(seed=st.integers(0, 2**31), n_gates=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_workload_lowering_conserves_gates(self, seed, n_gates):
        circuit = build_random_circuit(seed, n_inputs=3, n_gates=n_gates)
        wl = circuit.to_workload("rand")
        assert wl.total_bootstraps == circuit.gate_count() == n_gates
        # Levels partition the gates.
        assert sum(len(l) for l in circuit.levels()) == n_gates

    @given(seed=st.integers(0, 2**31), n_gates=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_levels_are_topologically_consistent(self, seed, n_gates):
        circuit = build_random_circuit(seed, n_inputs=3, n_gates=n_gates)
        levels = circuit.levels()
        position = {}
        for depth, level in enumerate(levels):
            for node_id in level:
                position[node_id] = depth
        for node_id, node in enumerate(circuit._nodes):
            if node.kind != "gate":
                continue
            for operand in node.operands:
                if operand in position:
                    assert position[operand] < position[node_id]


class TestRandomIntegerPrograms:
    @given(values=st.lists(st.integers(0, 63), min_size=2, max_size=3))
    @settings(max_examples=4, deadline=None)
    def test_sum_chain(self, ctx, values):
        acc = encrypt_integer(ctx, values[0], 3)
        expected = values[0]
        for v in values[1:]:
            acc = add_integers(ctx, acc, encrypt_integer(ctx, v, 3))
            expected = (expected + v) % 64
        assert decrypt_integer(ctx, acc) == expected

    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    @settings(max_examples=4, deadline=None)
    def test_comparison_trichotomy(self, ctx, a, b):
        x = encrypt_integer(ctx, a, 3)
        y = encrypt_integer(ctx, b, 3)
        lt = ctx.decrypt(less_than_integer(ctx, x, y))
        eq = ctx.decrypt(equals_integer(ctx, x, y))
        gt = ctx.decrypt(less_than_integer(ctx, y, x))
        assert (lt, eq, gt).count(1) == 1
        assert lt == int(a < b) and eq == int(a == b) and gt == int(a > b)
