"""Tests for gate-level and LUT-level homomorphic operations."""

import pytest

from repro.tfhe.ops import GATE_LUTS


TRUTH_TABLES = {
    "nand": [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
    "and": [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
    "or": [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)],
    "nor": [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)],
    "xor": [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
    "xnor": [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
}


class TestGates:
    @pytest.mark.parametrize("gate", sorted(GATE_LUTS))
    def test_truth_table(self, gate, ctx):
        for a, b, expected in TRUTH_TABLES[gate]:
            out = ctx.gate(gate, ctx.encrypt(a), ctx.encrypt(b))
            assert ctx.decrypt(out) == expected, (gate, a, b)

    def test_unknown_gate_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.gate("nope", ctx.encrypt(0), ctx.encrypt(0))

    def test_not_is_linear(self, ctx):
        assert ctx.decrypt(ctx.lwe_not(ctx.encrypt(0))) == 1
        assert ctx.decrypt(ctx.lwe_not(ctx.encrypt(1))) == 0

    def test_gate_output_composes_into_next_gate(self, ctx):
        # full adder carry: maj(a,b,c) built from gates
        a, b, c = ctx.encrypt(1), ctx.encrypt(0), ctx.encrypt(1)
        ab = ctx.gate("and", a, b)
        ac = ctx.gate("and", a, c)
        bc = ctx.gate("and", b, c)
        carry = ctx.gate("or", ctx.gate("or", ab, ac), bc)
        assert ctx.decrypt(carry) == 1


class TestLutEvaluation:
    def test_callable_lut(self, ctx):
        out = ctx.apply_lut(ctx.encrypt(3), lambda x: (x + 1) % 4)
        assert ctx.decrypt(out) == 0

    def test_sequence_lut(self, ctx):
        out = ctx.apply_lut(ctx.encrypt(2), [3, 2, 1, 0])
        assert ctx.decrypt(out) == 1

    def test_bootstrap_identity(self, ctx):
        for m in range(4):
            assert ctx.decrypt(ctx.bootstrap(ctx.encrypt(m))) == m


class TestSignedOps:
    @pytest.mark.parametrize("v", [-2, -1, 0, 1])
    def test_signed_roundtrip(self, ctx, v):
        assert ctx.decrypt_signed(ctx.encrypt_signed(v)) == v

    def test_out_of_range_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.encrypt_signed(2)  # p=8 -> range [-2, 2)
        with pytest.raises(ValueError):
            ctx.encrypt_signed(-3)

    @pytest.mark.parametrize("v,expected", [(-2, 0), (-1, 0), (0, 0), (1, 1)])
    def test_relu(self, ctx, v, expected):
        out = ctx.relu_signed(ctx.encrypt_signed(v))
        assert ctx.decrypt_signed(out) == expected

    @pytest.mark.parametrize("v,t,expected", [(-2, 0, 0), (1, 0, 1), (0, 0, 1), (1, 1, 1), (0, 1, 0)])
    def test_compare_ge(self, ctx, v, t, expected):
        bit = ctx.compare_ge(ctx.encrypt_signed(v), t)
        assert ctx.decrypt(bit, 8) == expected

    def test_comparison_bit_feeds_gates(self, ctx):
        bit1 = ctx.compare_ge(ctx.encrypt_signed(1), 0)  # 1
        bit2 = ctx.compare_ge(ctx.encrypt_signed(-1), 0)  # 0
        assert ctx.decrypt(ctx.gate("xor", bit1, bit2)) == 1


class TestMessageValidation:
    def test_message_must_respect_padding(self, ctx):
        with pytest.raises(ValueError):
            ctx.encrypt(4)  # p=8 -> messages < 4
        with pytest.raises(ValueError):
            ctx.encrypt(-1)
