"""Tests for batched LWE ciphertext operations."""

import numpy as np
import pytest

from repro.tfhe.batch import LweBatch, bootstrap_batch, decrypt_batch, encrypt_batch
from repro.tfhe.encoding import identity_test_polynomial
from repro.tfhe.torus import encode_message

P = 8
NOISE = -22.0


@pytest.fixture()
def batch_rng():
    return np.random.default_rng(77)


def make_batch(ctx, msgs, batch_rng):
    return encrypt_batch(np.asarray(msgs), P, ctx.keyset.lwe_key, batch_rng,
                         noise_log2=NOISE)


class TestRoundtrip:
    def test_encrypt_decrypt(self, ctx, batch_rng):
        msgs = [0, 1, 2, 3, 2, 1]
        batch = make_batch(ctx, msgs, batch_rng)
        np.testing.assert_array_equal(
            decrypt_batch(batch, P, ctx.keyset.lwe_key), msgs
        )

    def test_matches_single_ciphertext_api(self, ctx, batch_rng):
        batch = make_batch(ctx, [1, 2], batch_rng)
        assert ctx.decrypt(batch[0], P) == 1
        assert ctx.decrypt(batch[1], P) == 2

    def test_rejects_2d_messages(self, ctx, batch_rng):
        with pytest.raises(ValueError):
            encrypt_batch(np.zeros((2, 2)), P, ctx.keyset.lwe_key, batch_rng)


class TestContainer:
    def test_from_to_ciphertexts(self, ctx, batch_rng):
        batch = make_batch(ctx, [0, 3], batch_rng)
        rebuilt = LweBatch.from_ciphertexts(batch.to_ciphertexts())
        np.testing.assert_array_equal(rebuilt.a, batch.a)
        np.testing.assert_array_equal(rebuilt.b, batch.b)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            LweBatch.from_ciphertexts([])

    def test_mixed_dimensions_rejected(self, ctx, batch_rng):
        from repro.tfhe.lwe import lwe_trivial

        with pytest.raises(ValueError):
            LweBatch.from_ciphertexts([lwe_trivial(0, 4), lwe_trivial(0, 8)])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LweBatch(np.zeros((2, 4), np.uint32), np.zeros(3, np.uint32))

    def test_len(self, ctx, batch_rng):
        assert len(make_batch(ctx, [1, 2, 3], batch_rng)) == 3


class TestLinearOps:
    def test_add(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 2], batch_rng)
        y = make_batch(ctx, [2, 1], batch_rng)
        np.testing.assert_array_equal(
            decrypt_batch(x + y, P, ctx.keyset.lwe_key), [3, 3]
        )

    def test_sub(self, ctx, batch_rng):
        x = make_batch(ctx, [3, 2], batch_rng)
        y = make_batch(ctx, [1, 2], batch_rng)
        np.testing.assert_array_equal(
            decrypt_batch(x - y, P, ctx.keyset.lwe_key), [2, 0]
        )

    def test_neg(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 3], batch_rng)
        np.testing.assert_array_equal(
            decrypt_batch(-x, P, ctx.keyset.lwe_key), [P - 1, P - 3]
        )

    def test_scalar_mul_per_ciphertext(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 2], batch_rng)
        out = x.scalar_mul([3, 2])
        np.testing.assert_array_equal(
            decrypt_batch(out, P, ctx.keyset.lwe_key), [3, 4]
        )

    def test_scalar_mul_broadcast(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 2], batch_rng)
        np.testing.assert_array_equal(
            decrypt_batch(x.scalar_mul(2), P, ctx.keyset.lwe_key), [2, 4]
        )

    def test_add_plain(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 2], batch_rng)
        out = x.add_plain(int(encode_message(1, P)[()]))
        np.testing.assert_array_equal(
            decrypt_batch(out, P, ctx.keyset.lwe_key), [2, 3]
        )

    def test_shape_mismatch_rejected(self, ctx, batch_rng):
        x = make_batch(ctx, [1, 2], batch_rng)
        y = make_batch(ctx, [1, 2, 3], batch_rng)
        with pytest.raises(ValueError):
            x + y
        with pytest.raises(ValueError):
            x.scalar_mul([1, 2, 3])


class TestBatchBootstrap:
    def test_refreshes_every_ciphertext(self, ctx, batch_rng):
        msgs = [0, 1, 2, 3]
        batch = make_batch(ctx, msgs, batch_rng)
        tp = identity_test_polynomial(ctx.params, P)
        out = bootstrap_batch(batch, tp, ctx.keyset)
        np.testing.assert_array_equal(
            decrypt_batch(out, P, ctx.keyset.lwe_key), msgs
        )

    def test_group_size_does_not_change_results(self, ctx, batch_rng):
        msgs = [1, 2, 3]
        batch = make_batch(ctx, msgs, batch_rng)
        tp = identity_test_polynomial(ctx.params, P)
        out = bootstrap_batch(batch, tp, ctx.keyset, group_size=2)
        np.testing.assert_array_equal(
            decrypt_batch(out, P, ctx.keyset.lwe_key), msgs
        )

    def test_trace_accumulates_across_group(self, ctx, batch_rng):
        from repro.tfhe import BootstrapTrace

        batch = make_batch(ctx, [1, 2], batch_rng)
        tp = identity_test_polynomial(ctx.params, P)
        trace = BootstrapTrace()
        bootstrap_batch(batch, tp, ctx.keyset, trace=trace)
        assert trace.external_products > ctx.params.n  # two bootstraps' worth

    def test_rejects_bad_group_size(self, ctx, batch_rng):
        batch = make_batch(ctx, [1], batch_rng)
        tp = identity_test_polynomial(ctx.params, P)
        with pytest.raises(ValueError):
            bootstrap_batch(batch, tp, ctx.keyset, group_size=0)
