"""Tests for classic CGGI gate bootstrapping (the +-1/8 dialect)."""

import numpy as np
import pytest

from repro.tfhe.gatebootstrap import (
    and_gate,
    bootstrap_to_sign,
    decrypt_bool,
    encrypt_bool,
    mux_gate,
    nand_gate,
    not_gate,
    or_gate,
    xor_gate,
)

TRUTH = {
    nand_gate: lambda a, b: 1 - (a & b),
    and_gate: lambda a, b: a & b,
    or_gate: lambda a, b: a | b,
    xor_gate: lambda a, b: a ^ b,
}


@pytest.fixture(scope="module")
def gate_rng():
    return np.random.default_rng(314)


class TestEncoding:
    def test_roundtrip(self, ctx, gate_rng):
        for bit in (0, 1):
            ct = encrypt_bool(bit, ctx.keyset, gate_rng)
            assert decrypt_bool(ct, ctx.keyset) == bit

    def test_rejects_non_bits(self, ctx, gate_rng):
        with pytest.raises(ValueError):
            encrypt_bool(2, ctx.keyset, gate_rng)

    def test_not_is_free_negation(self, ctx, gate_rng):
        for bit in (0, 1):
            ct = not_gate(encrypt_bool(bit, ctx.keyset, gate_rng))
            assert decrypt_bool(ct, ctx.keyset) == 1 - bit


class TestGates:
    @pytest.mark.parametrize("gate", sorted(TRUTH, key=lambda f: f.__name__))
    def test_truth_tables(self, ctx, gate_rng, gate):
        for a in (0, 1):
            for b in (0, 1):
                out = gate(
                    encrypt_bool(a, ctx.keyset, gate_rng),
                    encrypt_bool(b, ctx.keyset, gate_rng),
                    ctx.keyset,
                )
                assert decrypt_bool(out, ctx.keyset) == TRUTH[gate](a, b), (a, b)

    @pytest.mark.parametrize("sel,w1,w0", [(0, 1, 0), (1, 1, 0), (0, 0, 1), (1, 0, 1)])
    def test_mux(self, ctx, gate_rng, sel, w1, w0):
        out = mux_gate(
            encrypt_bool(sel, ctx.keyset, gate_rng),
            encrypt_bool(w1, ctx.keyset, gate_rng),
            encrypt_bool(w0, ctx.keyset, gate_rng),
            ctx.keyset,
        )
        assert decrypt_bool(out, ctx.keyset) == (w1 if sel else w0)

    def test_gates_compose_deeply(self, ctx, gate_rng):
        """A chain of NANDs: output noise stays fresh after each gate."""
        ct = encrypt_bool(1, ctx.keyset, gate_rng)
        one = encrypt_bool(1, ctx.keyset, gate_rng)
        for _ in range(4):
            ct = nand_gate(ct, one, ctx.keyset)  # NAND(x, 1) = NOT x
        assert decrypt_bool(ct, ctx.keyset) == 1  # four inversions

    def test_sign_bootstrap_refreshes(self, ctx, gate_rng):
        ct = encrypt_bool(1, ctx.keyset, gate_rng)
        refreshed = bootstrap_to_sign(ct, ctx.keyset)
        assert decrypt_bool(refreshed, ctx.keyset) == 1
