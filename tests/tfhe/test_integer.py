"""Tests for radix-encoded multi-ciphertext integers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.integer import (
    RadixInteger,
    add_integers,
    bootstrap_cost,
    decrypt_integer,
    encrypt_integer,
    equals_integer,
    less_than_integer,
    scalar_mul_integer,
)

DIGITS = 3  # base-4, 3 digits -> values in [0, 64)


class TestEncoding:
    @pytest.mark.parametrize("value", [0, 1, 17, 42, 63])
    def test_roundtrip(self, ctx, value):
        x = encrypt_integer(ctx, value, DIGITS)
        assert decrypt_integer(ctx, x) == value

    def test_binary_digits(self, ctx):
        x = encrypt_integer(ctx, 5, 4, digit_bits=1)
        assert x.base == 2
        assert decrypt_integer(ctx, x) == 5

    def test_out_of_range_rejected(self, ctx):
        with pytest.raises(ValueError):
            encrypt_integer(ctx, 64, DIGITS)
        with pytest.raises(ValueError):
            encrypt_integer(ctx, -1, DIGITS)

    def test_layout_properties(self, ctx):
        x = encrypt_integer(ctx, 7, DIGITS)
        assert x.num_digits == DIGITS
        assert x.bit_width == 6
        assert x.max_value == 63

    def test_invalid_layout_rejected(self, ctx):
        with pytest.raises(ValueError):
            RadixInteger([], 2)
        with pytest.raises(ValueError):
            RadixInteger([ctx.encrypt(0, 16)], 3)


class TestAddition:
    @pytest.mark.parametrize("a,b", [(0, 0), (11, 26), (31, 32), (63, 1), (42, 42)])
    def test_add_wraps_mod_64(self, ctx, a, b):
        x = encrypt_integer(ctx, a, DIGITS)
        y = encrypt_integer(ctx, b, DIGITS)
        assert decrypt_integer(ctx, add_integers(ctx, x, y)) == (a + b) % 64

    def test_layout_mismatch_rejected(self, ctx):
        x = encrypt_integer(ctx, 1, 2)
        y = encrypt_integer(ctx, 1, 3)
        with pytest.raises(ValueError):
            add_integers(ctx, x, y)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=8, deadline=None)
    def test_property_addition(self, ctx, a, b):
        x = encrypt_integer(ctx, a, DIGITS)
        y = encrypt_integer(ctx, b, DIGITS)
        assert decrypt_integer(ctx, add_integers(ctx, x, y)) == (a + b) % 64


class TestScalarMultiplication:
    @pytest.mark.parametrize("scalar", [0, 1, 2, 3, 5])
    def test_scalar_mul(self, ctx, scalar):
        x = encrypt_integer(ctx, 11, DIGITS)
        got = decrypt_integer(ctx, scalar_mul_integer(ctx, scalar, x))
        assert got == (scalar * 11) % 64

    def test_negative_scalar_rejected(self, ctx):
        x = encrypt_integer(ctx, 1, DIGITS)
        with pytest.raises(ValueError):
            scalar_mul_integer(ctx, -1, x)


class TestComparisons:
    @pytest.mark.parametrize("a,b", [(5, 5), (5, 6), (0, 63), (63, 63), (12, 11)])
    def test_equality(self, ctx, a, b):
        x = encrypt_integer(ctx, a, DIGITS)
        y = encrypt_integer(ctx, b, DIGITS)
        assert ctx.decrypt(equals_integer(ctx, x, y)) == int(a == b)

    @pytest.mark.parametrize("a,b", [(5, 6), (6, 5), (5, 5), (0, 63), (63, 0), (21, 22)])
    def test_less_than(self, ctx, a, b):
        x = encrypt_integer(ctx, a, DIGITS)
        y = encrypt_integer(ctx, b, DIGITS)
        assert ctx.decrypt(less_than_integer(ctx, x, y)) == int(a < b)

    def test_comparison_bits_feed_gates(self, ctx):
        x = encrypt_integer(ctx, 5, DIGITS)
        y = encrypt_integer(ctx, 6, DIGITS)
        lt = less_than_integer(ctx, x, y)   # 1
        eq = equals_integer(ctx, x, y)      # 0
        assert ctx.decrypt(ctx.gate("xor", lt, eq)) == 1


class TestBootstrapCost:
    def test_add_cost(self):
        assert bootstrap_cost("add", 8) == 16

    def test_scalar_mul_cost_zero(self):
        assert bootstrap_cost("scalar_mul", 8, scalar=0) == 0

    def test_scalar_mul_cost_grows_with_scalar(self):
        assert bootstrap_cost("scalar_mul", 4, scalar=5) > bootstrap_cost(
            "scalar_mul", 4, scalar=2
        )

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_cost("divide", 4)
