"""Functional tests on the k=2 parameter set.

The paper's contribution scales with ``k`` (more reuse at k=2,3); these
tests prove the *functional* stack - scheme, reuse datapath, and the
architectural machine - stays correct when the GLWE dimension grows
beyond the k=1 the prior accelerators were optimized for.
"""

import numpy as np
import pytest

from repro import TEST_PARAMS_K2, TfheContext
from repro.core.accelerator import MorphlingConfig
from repro.core.machine import MorphlingMachine
from repro.tfhe import identity_test_polynomial, make_test_polynomial, programmable_bootstrap

P = 8


@pytest.fixture(scope="module")
def ctx_k2():
    return TfheContext.create(TEST_PARAMS_K2, seed=2222)


class TestK2Scheme:
    def test_params_shape(self):
        assert TEST_PARAMS_K2.k == 2
        assert TEST_PARAMS_K2.polymults_per_external_product == 18

    @pytest.mark.parametrize("m", range(4))
    def test_identity_bootstrap(self, ctx_k2, m):
        tp = identity_test_polynomial(ctx_k2.params, P)
        out = programmable_bootstrap(ctx_k2.encrypt(m, P), tp, ctx_k2.keyset)
        assert ctx_k2.decrypt(out, P) == m

    def test_lut_bootstrap(self, ctx_k2):
        lut = np.array([0, 2, 1, 3], dtype=np.int64)
        tp = make_test_polynomial(lut, ctx_k2.params, P)
        out = programmable_bootstrap(ctx_k2.encrypt(1, P), tp, ctx_k2.keyset)
        assert ctx_k2.decrypt(out, P) == 2

    def test_gates_work_at_k2(self, ctx_k2):
        out = ctx_k2.gate("xor", ctx_k2.encrypt(1), ctx_k2.encrypt(1))
        assert ctx_k2.decrypt(out) == 0

    @pytest.mark.parametrize("engine", ["transform", "fft", "exact"])
    def test_engines_agree_at_k2(self, ctx_k2, engine):
        tp = identity_test_polynomial(ctx_k2.params, P)
        out = programmable_bootstrap(ctx_k2.encrypt(3, P), tp, ctx_k2.keyset,
                                     engine=engine)
        assert ctx_k2.decrypt(out, P) == 3


class TestK2Machine:
    def test_machine_batch_bootstrap(self, ctx_k2):
        """The VPE array's three output columns (k+1 = 3) compute correctly."""
        machine = MorphlingMachine(MorphlingConfig(), ctx_k2.keyset)
        tp = identity_test_polynomial(ctx_k2.params, P)
        msgs = [0, 1, 2, 3]
        outs = machine.bootstrap_batch([ctx_k2.encrypt(m, P) for m in msgs], tp)
        assert [ctx_k2.decrypt(o, P) for o in outs] == msgs

    def test_sample_extract_dimension(self, ctx_k2):
        """The extracted LWE dimension is k*N = 256."""
        from repro.tfhe.glwe import sample_extract, glwe_trivial

        ct = glwe_trivial(np.zeros(128, np.uint32), 2)
        assert sample_extract(ct, 0).n == 256
