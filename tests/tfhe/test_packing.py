"""Tests for the LWE-to-GLWE packing key switch."""

import numpy as np
import pytest

from repro.tfhe.glwe import glwe_decrypt_phase
from repro.tfhe.packing import PackingKeySwitchingKey, make_packing_ksk, pack_lwes
from repro.tfhe.torus import decode_message

P = 8
PK_BETA_BITS, PK_LEVELS = 6, 4


@pytest.fixture(scope="module")
def pksk(ctx):
    rng = np.random.default_rng(404)
    return make_packing_ksk(
        ctx.keyset.lwe_key, ctx.keyset.glwe_key,
        PK_BETA_BITS, PK_LEVELS, rng, noise_log2=-30.0,
    )


def decode_packed(ctx, packed, count):
    phase = glwe_decrypt_phase(packed, ctx.keyset.glwe_key)
    return decode_message(phase[:count], P).tolist()


class TestPacking:
    def test_packs_messages_in_order(self, ctx, pksk):
        msgs = [1, 3, 0, 2, 1, 2]
        cts = [ctx.encrypt(m, P) for m in msgs]
        packed = pack_lwes(cts, pksk, ctx.params.k)
        assert decode_packed(ctx, packed, len(msgs)) == msgs

    def test_single_ciphertext(self, ctx, pksk):
        packed = pack_lwes([ctx.encrypt(2, P)], pksk, ctx.params.k)
        assert decode_packed(ctx, packed, 1) == [2]

    def test_unfilled_slots_are_zero(self, ctx, pksk):
        packed = pack_lwes([ctx.encrypt(3, P)], pksk, ctx.params.k)
        rest = decode_packed(ctx, packed, 8)[1:]
        assert rest == [0] * 7

    def test_packed_output_feeds_sample_extract(self, ctx, pksk):
        """Packing and extraction are inverses (up to noise)."""
        from repro.tfhe.glwe import sample_extract
        from repro.tfhe.lwe import LweSecretKey, lwe_decrypt_phase

        msgs = [2, 1, 3]
        packed = pack_lwes([ctx.encrypt(m, P) for m in msgs], pksk, ctx.params.k)
        big_key = LweSecretKey(ctx.keyset.glwe_key.extracted_lwe_bits())
        for h, m in enumerate(msgs):
            extracted = sample_extract(packed, h)
            phase = lwe_decrypt_phase(extracted, big_key)
            assert int(decode_message(np.asarray(phase), P)[()]) == m

    def test_rejects_empty(self, ctx, pksk):
        with pytest.raises(ValueError):
            pack_lwes([], pksk, ctx.params.k)

    def test_rejects_too_many(self, ctx, pksk):
        cts = [ctx.encrypt(0, P)] * (ctx.params.N + 1)
        with pytest.raises(ValueError):
            pack_lwes(cts, pksk, ctx.params.k)

    def test_rejects_wrong_dimension(self, ctx, pksk):
        from repro.tfhe.lwe import lwe_trivial

        with pytest.raises(ValueError):
            pack_lwes([lwe_trivial(0, 3)], pksk, ctx.params.k)

    def test_key_shape_validation(self):
        with pytest.raises(ValueError):
            PackingKeySwitchingKey(np.zeros((2, 3, 4), dtype=np.uint32), 4)

    def test_overwide_decomposition_rejected(self, ctx):
        with pytest.raises(ValueError):
            make_packing_ksk(
                ctx.keyset.lwe_key, ctx.keyset.glwe_key,
                beta_bits=8, levels=5, rng=np.random.default_rng(0),
            )
