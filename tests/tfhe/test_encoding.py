"""Direct tests for test-polynomial construction and message encoding."""

import numpy as np
import pytest

from repro import TEST_PARAMS
from repro.tfhe.encoding import (
    extend_lut_antiperiodic,
    identity_test_polynomial,
    make_test_polynomial,
    message_to_signed,
    signed_to_message,
)
from repro.tfhe.torus import decode_message

P = 8


class TestAntiperiodicExtension:
    def test_second_half_is_negated(self):
        full = extend_lut_antiperiodic(np.array([0, 1, 2, 3]), P)
        np.testing.assert_array_equal(full[:4], [0, 1, 2, 3])
        np.testing.assert_array_equal(full[4:], [0, -1, -2, -3])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            extend_lut_antiperiodic(np.array([0, 1]), P)


class TestTestPolynomial:
    def test_windows_are_constant(self):
        """Coefficients inside one message window hold one function value."""
        tp = identity_test_polynomial(TEST_PARAMS, P)
        window = 2 * TEST_PARAMS.N // P
        # The first window (centred on message 0, positive side) is f(0).
        inner = tp[: window // 4]
        assert len(set(inner.tolist())) == 1

    def test_window_centers_decode_to_lut_values(self):
        lut = np.array([3, 1, 0, 2], dtype=np.int64)
        tp = make_test_polynomial(lut, TEST_PARAMS, P)
        window = 2 * TEST_PARAMS.N // P
        for m in range(P // 2):
            center = m * window // 2  # index m*2N/p maps to TP index m*N*2/p/2
            idx = (m * 2 * TEST_PARAMS.N // P)
            if idx < TEST_PARAMS.N:
                got = int(decode_message(tp[idx : idx + 1], P)[0])
                assert got == lut[m] % P

    def test_oversized_modulus_rejected(self):
        with pytest.raises(ValueError):
            make_test_polynomial(
                np.zeros(2 * TEST_PARAMS.N, dtype=np.int64),
                TEST_PARAMS,
                4 * TEST_PARAMS.N,
            )

    def test_identity_matches_explicit_lut(self):
        explicit = make_test_polynomial(
            np.arange(P // 2, dtype=np.int64), TEST_PARAMS, P
        )
        np.testing.assert_array_equal(identity_test_polynomial(TEST_PARAMS, P), explicit)


class TestSignedMapping:
    @pytest.mark.parametrize("v", [-2, -1, 0, 1])
    def test_roundtrip(self, v):
        assert message_to_signed(signed_to_message(v, P), P) == v

    def test_offset_is_quarter(self):
        assert signed_to_message(0, P) == P // 4

    def test_range_checks(self):
        with pytest.raises(ValueError):
            signed_to_message(2, P)
        with pytest.raises(ValueError):
            signed_to_message(-3, P)
        with pytest.raises(ValueError):
            message_to_signed(P // 2, P)
        with pytest.raises(ValueError):
            message_to_signed(-1, P)
