"""Tests for boolean circuits: plain/encrypted agreement + workload lowering."""

import itertools

import pytest

from repro.tfhe.boolean import (
    Circuit,
    equality_comparator,
    less_than_comparator,
    multiplexer,
    ripple_carry_adder,
)


def bits_of(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestCircuitConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_input("a")

    def test_duplicate_output_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(a, "o")
        with pytest.raises(ValueError):
            c.mark_output(a, "o")

    def test_unknown_gate_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.gate("nandify", a, a)

    def test_foreign_wire_rejected(self):
        c = Circuit()
        from repro.tfhe.boolean import Wire

        with pytest.raises(ValueError):
            c.gate("and", Wire(99), Wire(100))

    def test_bad_const_rejected(self):
        with pytest.raises(ValueError):
            Circuit().add_const(2)

    def test_gate_count_excludes_not(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.gate("and", a, c.not_gate(b))
        assert c.gate_count() == 1


class TestPlainEvaluation:
    def test_missing_input_raises(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(a, "o")
        with pytest.raises(KeyError):
            c.evaluate_plain({})

    def test_const_wires(self):
        c = Circuit()
        one = c.add_const(1)
        a = c.add_input("a")
        c.mark_output(c.gate("xor", a, one), "o")
        assert c.evaluate_plain({"a": 1})["o"] == 0

    def test_not_chains(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(c.not_gate(c.not_gate(a)), "o")
        assert c.evaluate_plain({"a": 1})["o"] == 1


class TestBuilders:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 7), (6, 3)])
    def test_adder_plain(self, a, b):
        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(3)]
        bw = [c.add_input(f"b{i}") for i in range(3)]
        sums, carry = ripple_carry_adder(c, aw, bw)
        for i, s in enumerate(sums):
            c.mark_output(s, f"s{i}")
        c.mark_output(carry, "c")
        inputs = {f"a{i}": v for i, v in enumerate(bits_of(a, 3))}
        inputs.update({f"b{i}": v for i, v in enumerate(bits_of(b, 3))})
        out = c.evaluate_plain(inputs)
        got = sum(out[f"s{i}"] << i for i in range(3)) + (out["c"] << 3)
        assert got == a + b

    @pytest.mark.parametrize("a,b", itertools.product(range(4), repeat=2))
    def test_equality_plain(self, a, b):
        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(2)]
        bw = [c.add_input(f"b{i}") for i in range(2)]
        c.mark_output(equality_comparator(c, aw, bw), "eq")
        inputs = {f"a{i}": v for i, v in enumerate(bits_of(a, 2))}
        inputs.update({f"b{i}": v for i, v in enumerate(bits_of(b, 2))})
        assert c.evaluate_plain(inputs)["eq"] == int(a == b)

    @pytest.mark.parametrize("a,b", itertools.product(range(4), repeat=2))
    def test_less_than_plain(self, a, b):
        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(2)]
        bw = [c.add_input(f"b{i}") for i in range(2)]
        c.mark_output(less_than_comparator(c, aw, bw), "lt")
        inputs = {f"a{i}": v for i, v in enumerate(bits_of(a, 2))}
        inputs.update({f"b{i}": v for i, v in enumerate(bits_of(b, 2))})
        assert c.evaluate_plain(inputs)["lt"] == int(a < b)

    @pytest.mark.parametrize("sel,w0,w1", itertools.product([0, 1], repeat=3))
    def test_multiplexer_plain(self, sel, w0, w1):
        c = Circuit()
        s, a, b = (c.add_input(n) for n in ("s", "a", "b"))
        c.mark_output(multiplexer(c, s, a, b), "o")
        out = c.evaluate_plain({"s": sel, "a": w0, "b": w1})
        assert out["o"] == (w1 if sel else w0)

    def test_width_mismatch_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            ripple_carry_adder(c, [c.add_input("a")], [])


class TestEncryptedEvaluation:
    def test_adder_encrypted_matches_plain(self, ctx):
        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(2)]
        bw = [c.add_input(f"b{i}") for i in range(2)]
        sums, carry = ripple_carry_adder(c, aw, bw)
        for i, s in enumerate(sums):
            c.mark_output(s, f"s{i}")
        c.mark_output(carry, "c")
        inputs = {"a0": 1, "a1": 1, "b0": 1, "b1": 0}  # 3 + 1 = 4
        plain = c.evaluate_plain(inputs)
        enc = c.evaluate_encrypted(ctx, {k: ctx.encrypt(v) for k, v in inputs.items()})
        assert {k: ctx.decrypt(v) for k, v in enc.items()} == plain

    def test_constants_become_trivial_ciphertexts(self, ctx):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(c.gate("and", a, c.add_const(1)), "o")
        enc = c.evaluate_encrypted(ctx, {"a": ctx.encrypt(1)})
        assert ctx.decrypt(enc["o"]) == 1

    def test_missing_encrypted_input(self, ctx):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(a, "o")
        with pytest.raises(KeyError):
            c.evaluate_encrypted(ctx, {})


class TestWorkloadLowering:
    def test_levels_respect_dependencies(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        g1 = c.gate("and", a, b)
        g2 = c.gate("or", g1, b)
        levels = c.levels()
        assert len(levels) == 2
        assert levels[0] == [g1.node_id]
        assert levels[1] == [g2.node_id]

    def test_independent_gates_share_a_level(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.gate("and", a, b)
        c.gate("or", a, b)
        assert len(c.levels()) == 1
        assert len(c.levels()[0]) == 2

    def test_not_does_not_add_depth(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.gate("and", c.not_gate(a), b)
        assert len(c.levels()) == 1

    def test_workload_bootstraps_match_gate_count(self):
        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(4)]
        bw = [c.add_input(f"b{i}") for i in range(4)]
        ripple_carry_adder(c, aw, bw)
        wl = c.to_workload("adder4")
        assert wl.total_bootstraps == c.gate_count()
        assert wl.depth == len(c.levels())

    def test_gateless_circuit_workload(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output(c.not_gate(a), "o")
        wl = c.to_workload("nots")
        assert wl.total_bootstraps == 0

    def test_workload_runs_on_simulator(self):
        from repro.core import MorphlingConfig, run_workload
        from repro.params import get_params

        c = Circuit()
        aw = [c.add_input(f"a{i}") for i in range(8)]
        bw = [c.add_input(f"b{i}") for i in range(8)]
        ripple_carry_adder(c, aw, bw)
        wl = c.to_workload("adder8")
        result = run_workload(MorphlingConfig(), get_params("I"), list(wl.layers))
        assert result.total_seconds > 0
