"""Tests for the signed gadget decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.decomposition import (
    decompose,
    decomposition_error_bound,
    recompose,
)


def centered_error(a, b):
    diff = (a.astype(np.int64) - b.astype(np.int64) + (1 << 31)) % (1 << 32) - (1 << 31)
    return np.abs(diff)


class TestShapes:
    def test_level_axis_inserted_before_last(self, rng):
        v = rng.integers(0, 1 << 32, size=(3, 16), dtype=np.uint64).astype(np.uint32)
        d = decompose(v, beta_bits=8, levels=3)
        assert d.shape == (3, 3, 16)

    def test_rejects_overwide_decomposition(self):
        with pytest.raises(ValueError):
            decompose(np.zeros(4, dtype=np.uint32), beta_bits=8, levels=5)
        with pytest.raises(ValueError):
            recompose(np.zeros((5, 4), dtype=np.int64), beta_bits=8)


class TestDigitRange:
    @pytest.mark.parametrize("beta_bits,levels", [(4, 3), (8, 3), (7, 4), (23, 1)])
    def test_digits_balanced(self, beta_bits, levels, rng):
        v = rng.integers(0, 1 << 32, size=1024, dtype=np.uint64).astype(np.uint32)
        d = decompose(v, beta_bits, levels)
        half = 1 << (beta_bits - 1)
        assert d.min() >= -half
        assert d.max() <= half  # top digit may carry to +beta/2


class TestRecomposition:
    @pytest.mark.parametrize("beta_bits,levels", [(4, 3), (8, 3), (8, 4), (16, 2), (23, 1)])
    def test_error_within_bound(self, beta_bits, levels, rng):
        v = rng.integers(0, 1 << 32, size=4096, dtype=np.uint64).astype(np.uint32)
        back = recompose(decompose(v, beta_bits, levels), beta_bits)
        bound = decomposition_error_bound(beta_bits, levels)
        assert centered_error(v, back).max() <= bound

    def test_exact_when_full_width(self, rng):
        v = rng.integers(0, 1 << 32, size=256, dtype=np.uint64).astype(np.uint32)
        back = recompose(decompose(v, 8, 4), 8)
        assert centered_error(v, back).max() == 0

    def test_zero_decomposes_to_zero(self):
        d = decompose(np.zeros(8, dtype=np.uint32), 8, 3)
        assert not d.any()

    @given(st.integers(0, (1 << 32) - 1),
           st.sampled_from([(4, 3), (6, 4), (8, 2), (10, 3)]))
    @settings(max_examples=200, deadline=None)
    def test_property_error_bound(self, value, config):
        beta_bits, levels = config
        v = np.array([value], dtype=np.uint32)
        back = recompose(decompose(v, beta_bits, levels), beta_bits)
        assert centered_error(v, back)[0] <= decomposition_error_bound(beta_bits, levels)


class TestErrorBound:
    def test_bound_zero_for_full_width(self):
        assert decomposition_error_bound(8, 4) == 0

    def test_bound_halves_per_extra_bit(self):
        assert decomposition_error_bound(8, 3) == 2 * decomposition_error_bound(8, 3) // 2
        assert decomposition_error_bound(4, 3) == 1 << (32 - 12 - 1)
