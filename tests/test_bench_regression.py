"""Unit tests for the bench baseline checker (benchmarks/check_bench_regression.py).

The checker lives next to the benches rather than in ``repro`` (it runs
standalone in CI before any package install), so load it by path.
"""

import importlib.util
import json
import pathlib

import pytest

_CHECKER = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _CHECKER)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _doc(entries):
    return {"schema_version": 1, "entries": entries}


def compare(base_entries, cur_entries, **kw):
    return checker.compare_documents(_doc(base_entries), _doc(cur_entries), **kw)


class TestStructure:
    def test_identical_documents_pass(self):
        entries = {"e@x": {"throughput_bs": 10.0, "backend": "numpy"}}
        violations, notes = compare(entries, entries)
        assert violations == []
        assert notes == []

    def test_schema_mismatch_is_fatal(self):
        violations, notes = checker.compare_documents(
            {"schema_version": 1, "entries": {}},
            {"schema_version": 2, "entries": {}},
        )
        assert len(violations) == 1
        assert "schema_version" in violations[0]

    def test_entry_missing_from_current(self):
        violations, _ = compare({"e@x": {}}, {})
        assert violations == ["e@x: missing from current run"]

    def test_entry_not_in_baseline(self):
        violations, _ = compare({}, {"e@x": {}})
        assert violations == ["e@x: not in baseline (refresh it deliberately)"]

    def test_malformed_entry_is_violation(self):
        violations, _ = compare({"e@x": "oops"}, {"e@x": "oops"})
        assert any("malformed" in v for v in violations)


class TestMissingMetrics:
    def test_metric_missing_from_current_names_the_side(self):
        violations, _ = compare(
            {"e@x": {"backend": "numpy"}}, {"e@x": {}}
        )
        assert len(violations) == 1
        assert "e@x.backend" in violations[0]
        assert "missing from the current run" in violations[0]

    def test_metric_missing_from_baseline_names_the_side(self):
        violations, _ = compare(
            {"e@x": {}}, {"e@x": {"backend": "numpy"}}
        )
        assert len(violations) == 1
        assert "e@x.backend" in violations[0]
        assert "missing from the baseline" in violations[0]

    def test_newly_added_informational_metric_is_a_note(self):
        violations, notes = compare(
            {"e@x": {}}, {"e@x": {"workers4_bootstraps_per_s": 123.0}}
        )
        assert violations == []
        assert len(notes) == 1
        assert "newly-added informational" in notes[0]

    def test_no_keyerror_on_any_asymmetry(self):
        # The original checker crashed with KeyError on one-sided
        # metrics; any asymmetric mix must produce messages, not raise.
        violations, notes = compare(
            {"e@x": {"a_only": 1, "throughput_bs": 2.0}},
            {"e@x": {"b_only": 3, "throughput_bs": 2.0}},
        )
        assert len(violations) == 2


class TestFloorsAndTolerance:
    def test_floor_metric_passes_at_or_above(self):
        violations, _ = compare(
            {"e@x": {"speedup_batch16": 5.0}}, {"e@x": {"speedup_batch16": 5.0}}
        )
        assert violations == []

    def test_floor_metric_fails_below(self):
        violations, _ = compare(
            {"e@x": {"speedup_batch16": 5.0}}, {"e@x": {"speedup_batch16": 4.0}}
        )
        assert violations == ["e@x.speedup_batch16: 4.0 below the 5.0 floor"]

    def test_floor_metric_non_numeric_is_clear(self):
        violations, _ = compare(
            {"e@x": {"speedup_batch16": "fast"}},
            {"e@x": {"speedup_batch16": 5.0}},
        )
        assert any("not numeric" in v for v in violations)

    def test_tolerant_metric_within_tolerance(self):
        violations, _ = compare(
            {"e@x": {"throughput_bs": 100.0}}, {"e@x": {"throughput_bs": 100.5}}
        )
        assert violations == []

    def test_tolerant_metric_beyond_tolerance(self):
        violations, _ = compare(
            {"e@x": {"throughput_bs": 100.0}}, {"e@x": {"throughput_bs": 110.0}}
        )
        assert len(violations) == 1
        assert "tolerance" in violations[0]

    def test_informational_metrics_never_compared(self):
        violations, notes = compare(
            {"e@x": {"x_per_s": 1.0, "y_wall_ms": 9.0}},
            {"e@x": {"x_per_s": 99.0, "y_wall_ms": 1e9}},
        )
        assert violations == []
        assert notes == []

    def test_structural_metric_must_match(self):
        violations, _ = compare(
            {"e@x": {"backend": "numpy"}}, {"e@x": {"backend": "scipy"}}
        )
        assert violations == ["e@x.backend: 'numpy' != 'scipy'"]


class TestConditionalScalingFloors:
    def test_enforced_when_measured(self):
        violations, _ = compare(
            {"e@x": {"scaling_workers4": 2.5}}, {"e@x": {"scaling_workers4": 2.1}}
        )
        assert violations == ["e@x.scaling_workers4: 2.1 below the 2.5 floor"]

    def test_passes_when_met(self):
        violations, notes = compare(
            {"e@x": {"scaling_workers4": 2.5}}, {"e@x": {"scaling_workers4": 3.0}}
        )
        assert violations == []
        assert notes == []

    def test_null_current_is_a_note_not_a_violation(self):
        violations, notes = compare(
            {"e@x": {"scaling_workers4": 2.5}}, {"e@x": {"scaling_workers4": None}}
        )
        assert violations == []
        assert len(notes) == 1
        assert "not enforceable" in notes[0]

    def test_null_baseline_is_a_note(self):
        violations, notes = compare(
            {"e@x": {"scaling_workers4": None}}, {"e@x": {"scaling_workers4": 2.8}}
        )
        assert violations == []
        assert len(notes) == 1
        assert "no floor" in notes[0]


class TestMain:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_with_notes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc(
            {"e@x": {"scaling_workers4": 2.5}}
        ))
        cur = self._write(tmp_path, "cur.json", _doc(
            {"e@x": {"scaling_workers4": None, "new_per_s": 5.0}}
        ))
        assert checker.main(["--baseline", base, "--current", cur]) == 0
        out = capsys.readouterr().out
        assert out.count("note:") == 2

    def test_exit_one_on_violation(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc(
            {"e@x": {"speedup_batch16": 5.0}}
        ))
        cur = self._write(tmp_path, "cur.json", _doc(
            {"e@x": {"speedup_batch16": 1.0}}
        ))
        assert checker.main(["--baseline", base, "--current", cur]) == 1
        assert "below the" in capsys.readouterr().out

    def test_committed_pool_baseline_is_well_formed(self):
        baseline = json.loads(
            (_CHECKER.parent / "baselines" / "BENCH_tfhe.json").read_text()
        )
        entry = baseline["entries"]["tfhe_pool@test"]
        assert entry["backend"] == "numpy"
        assert entry["scaling_workers2"] == pytest.approx(1.5)
        assert entry["scaling_workers4"] == pytest.approx(2.5)
        for n in (1, 2, 4):
            assert entry[f"workers{n}_bootstraps_per_s"] > 0
