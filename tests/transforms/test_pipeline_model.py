"""Tests for the pipelined-FFT hardware timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import PipelinedFFTModel


class TestConstruction:
    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError):
            PipelinedFFTModel(poly_size=100)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            PipelinedFFTModel(poly_size=1024, lanes=3)


class TestMorphlingConfiguration:
    """The paper's unit: N-poly via N/2-point FFT, 8 lanes, merge-split."""

    def test_n1024_pass_is_64_cycles(self):
        unit = PipelinedFFTModel(poly_size=1024)
        assert unit.points == 512
        assert unit.cycles_per_pass == 64

    def test_n2048_pass_is_128_cycles(self):
        assert PipelinedFFTModel(poly_size=2048).cycles_per_pass == 128

    def test_merge_split_halves_per_poly_cost(self):
        with_ms = PipelinedFFTModel(poly_size=1024, merge_split=True)
        without = PipelinedFFTModel(poly_size=1024, merge_split=False)
        assert with_ms.cycles_per_polynomial == without.cycles_per_polynomial / 2

    def test_stage_count_n1024(self):
        # 512-point FFT -> 9 butterfly stages.
        assert PipelinedFFTModel(poly_size=1024).stages == 9


class TestPassAccounting:
    def test_passes_round_up(self):
        unit = PipelinedFFTModel(poly_size=256, merge_split=True)
        assert unit.passes_for(0) == 0
        assert unit.passes_for(1) == 1
        assert unit.passes_for(2) == 1
        assert unit.passes_for(3) == 2

    def test_no_merge_split_one_pass_each(self):
        unit = PipelinedFFTModel(poly_size=256, merge_split=False)
        assert unit.passes_for(3) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PipelinedFFTModel(poly_size=256).passes_for(-1)

    def test_cycles_for_matches_pass_count(self):
        unit = PipelinedFFTModel(poly_size=512)
        assert unit.cycles_for(4) == unit.passes_for(4) * unit.cycles_per_pass


class TestProperties:
    @given(st.sampled_from([64, 256, 1024, 4096]), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_throughput_consistency(self, size, count):
        unit = PipelinedFFTModel(poly_size=size)
        cycles = unit.cycles_for(count)
        # Amortized throughput can never beat the steady-state rate.
        if count:
            assert count / cycles <= unit.throughput_polys_per_cycle() + 1e-12

    @given(st.sampled_from([64, 256, 1024, 4096]))
    @settings(max_examples=10, deadline=None)
    def test_fill_latency_grows_with_size(self, size):
        small = PipelinedFFTModel(poly_size=size)
        big = PipelinedFFTModel(poly_size=size * 2)
        assert big.fill_latency > small.fill_latency

    def test_fill_latency_positive(self):
        assert PipelinedFFTModel(poly_size=64).fill_latency > 0
