"""Tests for the exact NTT engine over the Goldilocks prime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.polynomial import poly_mul
from repro.transforms.negacyclic import negacyclic_convolve_exact
from repro.transforms.ntt import (
    GOLDILOCKS_PRIME,
    intt,
    negacyclic_ntt_multiply,
    ntt,
    primitive_root_of_unity,
)


class TestRoots:
    @pytest.mark.parametrize("order", [2, 4, 256, 4096, 1 << 20])
    def test_root_has_exact_order(self, order):
        w = primitive_root_of_unity(order)
        assert pow(w, order, GOLDILOCKS_PRIME) == 1
        assert pow(w, order // 2, GOLDILOCKS_PRIME) == GOLDILOCKS_PRIME - 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            primitive_root_of_unity(12)

    def test_prime_structure(self):
        # P - 1 must be divisible by 2^32 (that is what makes it NTT-friendly).
        assert (GOLDILOCKS_PRIME - 1) % (1 << 32) == 0


class TestNttRoundtrip:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_intt_inverts_ntt(self, n, rng):
        values = [int(v) for v in rng.integers(0, GOLDILOCKS_PRIME, size=n, dtype=np.uint64)]
        assert intt(ntt(values)) == [v % GOLDILOCKS_PRIME for v in values]

    def test_ntt_of_impulse_is_constant(self):
        values = [1] + [0] * 15
        assert ntt(values) == [1] * 16

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ntt([1, 2, 3])

    def test_linearity(self, rng):
        n = 32
        a = [int(v) for v in rng.integers(0, 1 << 40, size=n)]
        b = [int(v) for v in rng.integers(0, 1 << 40, size=n)]
        lhs = ntt([(x + y) % GOLDILOCKS_PRIME for x, y in zip(a, b)])
        rhs = [(x + y) % GOLDILOCKS_PRIME for x, y in zip(ntt(a), ntt(b))]
        assert lhs == rhs


class TestNegacyclicNtt:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_matches_exact_integer_convolution(self, n, rng):
        a = rng.integers(-128, 128, size=n)
        b = rng.integers(-(2**31), 2**31, size=n)
        expected = np.array(negacyclic_convolve_exact(a, b), dtype=np.int64)
        np.testing.assert_array_equal(negacyclic_ntt_multiply(a, b), expected)

    def test_x_times_x_n_minus_1(self):
        n = 8
        a = np.zeros(n, dtype=np.int64)
        b = np.zeros(n, dtype=np.int64)
        a[1] = 1
        b[n - 1] = 1
        out = negacyclic_ntt_multiply(a, b)  # X * X^(n-1) = X^n = -1
        expected = np.zeros(n, dtype=np.int64)
        expected[0] = -1
        np.testing.assert_array_equal(out, expected)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            negacyclic_ntt_multiply(np.zeros(8), np.zeros(16))

    @given(st.integers(0, 2**31), st.sampled_from([8, 32]))
    @settings(max_examples=20, deadline=None)
    def test_property_agrees_with_exact(self, seed, n):
        r = np.random.default_rng(seed)
        a = r.integers(-64, 64, size=n)
        b = r.integers(-(2**31), 2**31, size=n)
        expected = np.array(negacyclic_convolve_exact(a, b), dtype=np.int64)
        np.testing.assert_array_equal(negacyclic_ntt_multiply(a, b), expected)


class TestNttEngineInPolyMul:
    def test_all_three_engines_agree(self, rng):
        n = 64
        small = rng.integers(-64, 64, size=n)
        big = rng.integers(0, 1 << 32, size=n, dtype=np.uint64).astype(np.uint32)
        fft = poly_mul(small, big, engine="fft")
        exact = poly_mul(small, big, engine="exact")
        ntt_out = poly_mul(small, big, engine="ntt")
        np.testing.assert_array_equal(ntt_out, exact)
        np.testing.assert_array_equal(fft, exact)

    def test_batched_ntt_engine(self, rng):
        small = rng.integers(-16, 16, size=(3, 32))
        big = rng.integers(0, 1 << 32, size=(3, 32), dtype=np.uint64).astype(np.uint32)
        out = poly_mul(small, big, engine="ntt")
        for i in range(3):
            np.testing.assert_array_equal(
                out[i], poly_mul(small[i], big[i], engine="exact")
            )
