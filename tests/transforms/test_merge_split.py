"""Tests for the merge-split (two real FFTs in one pass) technique."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    fft,
    merge_spectra,
    merged_fft,
    merged_ifft,
    negacyclic_fft,
    negacyclic_fft_pair,
    negacyclic_ifft_pair,
    split_spectra,
)


class TestMergeSplit:
    @pytest.mark.parametrize("n", [4, 16, 64, 512])
    def test_split_recovers_individual_spectra(self, n, rng):
        p = rng.normal(size=n)
        r = rng.normal(size=n)
        p_spec, r_spec = split_spectra(merged_fft(p, r))
        np.testing.assert_allclose(p_spec, fft(p.astype(complex)), atol=1e-8)
        np.testing.assert_allclose(r_spec, fft(r.astype(complex)), atol=1e-8)

    def test_merge_is_inverse_of_split(self, rng):
        z = fft(rng.normal(size=32) + 1j * rng.normal(size=32))
        p_spec, r_spec = split_spectra(z)
        np.testing.assert_allclose(merge_spectra(p_spec, r_spec), z, atol=1e-9)

    def test_merged_ifft_roundtrip(self, rng):
        p = rng.normal(size=64)
        r = rng.normal(size=64)
        p_spec, r_spec = split_spectra(merged_fft(p, r))
        p_back, r_back = merged_ifft(p_spec, r_spec)
        np.testing.assert_allclose(p_back, p, atol=1e-8)
        np.testing.assert_allclose(r_back, r, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merged_fft(np.zeros(8), np.zeros(16))

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_doubling_property(self, seed):
        """One merged pass must equal exactly two independent transforms."""
        rng = np.random.default_rng(seed)
        p = rng.integers(-1000, 1000, size=32).astype(float)
        r = rng.integers(-1000, 1000, size=32).astype(float)
        p_spec, r_spec = split_spectra(merged_fft(p, r))
        np.testing.assert_allclose(p_spec, fft(p.astype(complex)), atol=1e-7)
        np.testing.assert_allclose(r_spec, fft(r.astype(complex)), atol=1e-7)


class TestNegacyclicPair:
    def test_pair_matches_single_transforms(self, rng):
        p = rng.integers(-100, 100, size=64).astype(float)
        r = rng.integers(-100, 100, size=64).astype(float)
        p_spec, r_spec = negacyclic_fft_pair(p, r)
        np.testing.assert_allclose(p_spec, negacyclic_fft(p), atol=1e-9)
        np.testing.assert_allclose(r_spec, negacyclic_fft(r), atol=1e-9)

    def test_pair_roundtrip(self, rng):
        p = rng.integers(-100, 100, size=64).astype(float)
        r = rng.integers(-100, 100, size=64).astype(float)
        p_spec, r_spec = negacyclic_fft_pair(p, r)
        p_back, r_back = negacyclic_ifft_pair(p_spec, r_spec, 64)
        np.testing.assert_allclose(p_back, p, atol=1e-6)
        np.testing.assert_allclose(r_back, r, atol=1e-6)
