"""Unit and property tests for the from-scratch radix-2 FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    bit_reverse_permutation,
    fft,
    fft_complex_multiplies,
    fft_real_multiplies,
    fft_stage_count,
    ifft,
)

SIZES = [2, 4, 8, 16, 64, 256, 1024]


class TestBitReverse:
    @pytest.mark.parametrize("n", SIZES)
    def test_is_a_permutation(self, n):
        perm = bit_reverse_permutation(n)
        assert sorted(perm.tolist()) == list(range(n))

    @pytest.mark.parametrize("n", SIZES)
    def test_is_an_involution(self, n):
        perm = bit_reverse_permutation(n)
        assert np.array_equal(perm[perm], np.arange(n))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(0)

    def test_known_order_n8(self):
        assert bit_reverse_permutation(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]


class TestFFTCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_numpy_reference(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", SIZES)
    def test_ifft_matches_numpy(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("n", SIZES)
    def test_roundtrip(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-9)

    def test_batched_agrees_with_loop(self, rng):
        x = rng.normal(size=(3, 5, 64)) + 1j * rng.normal(size=(3, 5, 64))
        batched = fft(x)
        for i in range(3):
            for j in range(5):
                np.testing.assert_allclose(batched[i, j], fft(x[i, j]), atol=1e-9)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        np.testing.assert_allclose(fft(x), np.ones(16), atol=1e-12)

    def test_constant_gives_impulse(self):
        x = np.ones(16, dtype=complex)
        spec = fft(x)
        assert spec[0] == pytest.approx(16)
        np.testing.assert_allclose(spec[1:], 0, atol=1e-12)

    def test_length_one_identity(self):
        np.testing.assert_allclose(fft(np.array([3.0 + 1j])), [3.0 + 1j])

    def test_does_not_mutate_input(self, rng):
        x = rng.normal(size=32) + 0j
        saved = x.copy()
        fft(x)
        np.testing.assert_array_equal(x, saved)


class TestFFTProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, log_n, seed):
        n = 1 << log_n
        r = np.random.default_rng(seed)
        x = r.normal(size=n) + 1j * r.normal(size=n)
        y = r.normal(size=n) + 1j * r.normal(size=n)
        a, b = r.normal(), r.normal()
        np.testing.assert_allclose(
            fft(a * x + b * y), a * fft(x) + b * fft(y), atol=1e-8
        )

    @given(st.integers(min_value=1, max_value=7), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, log_n, seed):
        n = 1 << log_n
        r = np.random.default_rng(seed)
        x = r.normal(size=n) + 1j * r.normal(size=n)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / n
        assert energy_time == pytest.approx(energy_freq, rel=1e-9)

    @given(st.integers(min_value=1, max_value=7), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_real_input_conjugate_symmetry(self, log_n, seed):
        n = 1 << log_n
        r = np.random.default_rng(seed)
        x = r.normal(size=n).astype(complex)
        spec = fft(x)
        mirrored = np.conj(np.roll(spec[::-1], 1))
        np.testing.assert_allclose(spec, mirrored, atol=1e-8)


class TestOperationCounts:
    def test_stage_count(self):
        assert fft_stage_count(1024) == 10

    def test_complex_multiplies(self):
        assert fft_complex_multiplies(512) == 256 * 9

    def test_real_multiplies_are_4x_complex(self):
        assert fft_real_multiplies(256) == 4 * fft_complex_multiplies(256)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_stage_count(100)
