"""Compute-backend registry: selection, errors, and cross-backend parity."""

import numpy as np
import pytest

import sys

import repro.transforms.fft  # noqa: F401  (registers the submodule)
from repro.tfhe.bootstrap import programmable_bootstrap_batch

# The transforms package re-exports fft() the function, shadowing the
# submodule attribute - go through sys.modules for the module itself.
fft_mod = sys.modules["repro.transforms.fft"]
from repro.transforms.backends import (
    BACKEND_ENV_VAR,
    NumpyBackend,
    active_backend,
    active_backend_name,
    available_backends,
    get_backend,
    registered_backends,
    reset_backend,
    set_backend,
    use_backend,
)

scipy = pytest.importorskip("scipy", reason="scipy parity tests need scipy")


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


class TestRegistry:
    def test_numpy_always_registered_and_available(self):
        assert "numpy" in registered_backends()
        assert "numpy" in available_backends()

    def test_scipy_detected(self):
        assert "scipy" in available_backends()

    def test_pyfftw_registered_even_when_missing(self):
        assert "pyfftw" in registered_backends()

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError) as info:
            get_backend("fftpack9000")
        message = str(info.value)
        assert "fftpack9000" in message
        assert "available backends" in message
        assert "numpy" in message

    def test_unavailable_backend_error_names_it(self):
        if "pyfftw" in available_backends():
            pytest.skip("pyfftw importable here; nothing to probe")
        with pytest.raises(ValueError, match="pyfftw"):
            get_backend("pyfftw")

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        reset_backend()
        assert active_backend_name() == "numpy"
        assert isinstance(active_backend(), NumpyBackend)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scipy")
        reset_backend()
        assert active_backend_name() == "scipy"

    def test_env_var_unknown_backend_fails(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "nope")
        reset_backend()
        with pytest.raises(ValueError, match="nope"):
            active_backend()

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scipy")
        set_backend("numpy")
        assert active_backend_name() == "numpy"

    def test_use_backend_restores_previous(self):
        set_backend("numpy")
        with use_backend("scipy"):
            assert active_backend_name() == "scipy"
        assert active_backend_name() == "numpy"

    def test_use_backend_none_keeps_current(self):
        set_backend("scipy")
        with use_backend(None):
            assert active_backend_name() == "scipy"

    def test_describe_names_the_backend(self):
        assert "numpy" in get_backend("numpy").describe()
        assert "scipy" in get_backend("scipy").describe()


class TestParity:
    """numpy and scipy must agree: bit-for-bit at complex128 (both are
    exact enough that the negacyclic fold/round digests identically),
    within float tolerance at complex64."""

    @pytest.fixture()
    def spectra(self, rng):
        x = (rng.integers(-(2**31), 2**31, size=(4, 64)).astype(np.complex128)
             + 1j * rng.integers(-(2**31), 2**31, size=(4, 64)))
        return x

    def test_fft_round_trip_complex128(self, spectra):
        with use_backend("numpy"):
            ref = fft_mod.ifft(fft_mod.fft(spectra))
        with use_backend("scipy"):
            got = fft_mod.ifft(fft_mod.fft(spectra))
        # Round-tripped integer payloads are recovered identically.
        np.testing.assert_array_equal(np.rint(ref.real), np.rint(got.real))
        np.testing.assert_array_equal(np.rint(ref.imag), np.rint(got.imag))
        np.testing.assert_allclose(ref, got, rtol=1e-12, atol=1e-6)

    def test_fft_round_trip_complex64(self, spectra):
        x = spectra.astype(np.complex64) / 2**16
        with use_backend("numpy"):
            ref = fft_mod.ifft(fft_mod.fft(x))
        with use_backend("scipy"):
            got = fft_mod.ifft(fft_mod.fft(x))
        np.testing.assert_allclose(ref, got, rtol=1e-4, atol=1e-2)

    def test_forward_transforms_agree(self, spectra):
        with use_backend("numpy"):
            ref = fft_mod.fft(spectra)
        with use_backend("scipy"):
            got = fft_mod.fft(spectra)
        np.testing.assert_allclose(ref, got, rtol=1e-10, atol=1e-3)

    def test_einsum_reduction_is_backend_invariant(self, rng):
        digit = rng.standard_normal((3, 4, 2, 8)) + 0j
        rows = rng.standard_normal((4, 2, 2, 8)) + 0j
        with use_backend("numpy"):
            ref = active_backend().einsum("aijf,ijcf->acf", digit, rows)
        with use_backend("scipy"):
            got = active_backend().einsum("aijf,ijcf->acf", digit, rows)
        np.testing.assert_array_equal(ref, got)

    def test_full_bootstrap_bit_identical(self, ctx):
        msgs = [0, 1, 2, 3]
        cts = [ctx.encrypt(m, 8) for m in msgs]
        tp = ctx._lut_test_poly(lambda x: x, 8)
        with use_backend("numpy"):
            ref = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        with use_backend("scipy"):
            got = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.a, g.a)
            assert r.b == g.b

    def test_backend_name_stamped_in_request_events(self, ctx, tmp_path):
        from repro import observability as obs

        cts = [ctx.encrypt(1, 8)]
        tp = ctx._lut_test_poly(lambda x: x, 8)
        with use_backend("scipy"), obs.telemetry():
            events = []
            obs.BUS.subscribe(events.append)
            try:
                programmable_bootstrap_batch(cts, tp, ctx.keyset)
            finally:
                obs.BUS.unsubscribe(events.append)
        requests = [e for e in events if e.kind == "request"]
        assert requests
        assert all(e.fields.get("backend") == "scipy" for e in requests)


class TestCounters:
    def test_fft_counted_identically_across_backends(self, rng):
        from repro import observability as obs

        x = rng.standard_normal((4, 32)) + 0j
        counts = {}
        for name in ("numpy", "scipy"):
            with use_backend(name), obs.telemetry() as (registry, _tracer):
                fft_mod.ifft(fft_mod.fft(x))
                counter = registry.get("transforms_fft_total")
                counts[name] = (
                    counter.value(direction="forward"),
                    counter.value(direction="inverse"),
                )
        assert counts["numpy"] == counts["scipy"]
        assert counts["numpy"][0] > 0
