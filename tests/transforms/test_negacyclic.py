"""Tests for the negacyclic (twisted half-size) transform and convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    negacyclic_convolve_exact,
    negacyclic_convolve_fft,
    negacyclic_fft,
    negacyclic_ifft,
    transform_length,
)


def naive_negacyclic(a, b):
    """O(N^2) reference: multiply in Z[X]/(X^N + 1)."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            idx = i + j
            if idx < n:
                out[idx] += int(a[i]) * int(b[j])
            else:
                out[idx - n] -= int(a[i]) * int(b[j])
    return np.array(out)


class TestTransformLength:
    def test_halves_the_size(self):
        assert transform_length(1024) == 512

    @pytest.mark.parametrize("bad", [0, 1, 3, 12, 100])
    def test_rejects_bad_sizes(self, bad):
        with pytest.raises(ValueError):
            transform_length(bad)


class TestNegacyclicTransform:
    @pytest.mark.parametrize("n", [4, 16, 64, 256, 1024])
    def test_roundtrip(self, n, rng):
        p = rng.integers(-1000, 1000, size=n).astype(float)
        back = negacyclic_ifft(negacyclic_fft(p), n)
        np.testing.assert_allclose(back, p, atol=1e-6)

    def test_spectrum_length_is_half(self):
        p = np.zeros(64)
        assert negacyclic_fft(p).shape == (32,)

    def test_batched_matches_loop(self, rng):
        p = rng.integers(-50, 50, size=(4, 32)).astype(float)
        batched = negacyclic_fft(p)
        for i in range(4):
            np.testing.assert_allclose(batched[i], negacyclic_fft(p[i]), atol=1e-9)

    def test_ifft_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            negacyclic_ifft(np.zeros(16, dtype=complex), 64)

    def test_monomial_evaluation(self):
        # X^1 evaluates to the odd 2N-th roots of unity.
        n = 16
        p = np.zeros(n)
        p[1] = 1.0
        spec = negacyclic_fft(p)
        # The twisted transform evaluates at w^(2*bitrev-ordered odd powers);
        # magnitudes must all be exactly 1.
        np.testing.assert_allclose(np.abs(spec), 1.0, atol=1e-9)


class TestConvolution:
    @pytest.mark.parametrize("n", [4, 8, 32, 128])
    def test_fft_matches_naive(self, n, rng):
        a = rng.integers(-64, 64, size=n)
        b = rng.integers(-(2**20), 2**20, size=n)
        expected = naive_negacyclic(a, b)
        got = np.round(negacyclic_convolve_fft(a, b)).astype(np.int64)
        np.testing.assert_array_equal(got, expected)

    def test_exact_matches_naive(self, rng):
        n = 32
        a = rng.integers(-64, 64, size=n)
        b = rng.integers(-(2**30), 2**30, size=n)
        got = np.array(negacyclic_convolve_exact(a, b), dtype=np.int64)
        np.testing.assert_array_equal(got, naive_negacyclic(a, b))

    def test_x_to_n_is_minus_one(self):
        # (X^(N/2))^2 = X^N = -1.
        n = 16
        a = np.zeros(n)
        a[n // 2] = 1
        got = np.round(negacyclic_convolve_fft(a, a)).astype(int)
        expected = np.zeros(n, dtype=int)
        expected[0] = -1
        np.testing.assert_array_equal(got, expected)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            negacyclic_convolve_fft(np.zeros(8), np.zeros(16))
        with pytest.raises(ValueError):
            negacyclic_convolve_exact(np.zeros(8), np.zeros(16))

    @given(st.integers(0, 2**31), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_fft_equals_exact_engine(self, seed, log_n):
        n = 1 << log_n
        r = np.random.default_rng(seed)
        a = r.integers(-128, 128, size=n)
        b = r.integers(-(2**31), 2**31, size=n)
        exact = np.array(negacyclic_convolve_exact(a, b), dtype=np.int64)
        via_fft = np.round(negacyclic_convolve_fft(a, b)).astype(np.int64)
        np.testing.assert_array_equal(via_fft, exact)

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, seed):
        r = np.random.default_rng(seed)
        a = r.integers(-100, 100, size=32)
        b = r.integers(-100, 100, size=32)
        np.testing.assert_allclose(
            negacyclic_convolve_fft(a, b), negacyclic_convolve_fft(b, a), atol=1e-5
        )

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_distributivity(self, seed):
        r = np.random.default_rng(seed)
        a = r.integers(-100, 100, size=16)
        b = r.integers(-100, 100, size=16)
        c = r.integers(-100, 100, size=16)
        lhs = negacyclic_convolve_fft(a, b + c)
        rhs = negacyclic_convolve_fft(a, b) + negacyclic_convolve_fft(a, c)
        np.testing.assert_allclose(lhs, rhs, atol=1e-5)
