"""Cross-cutting property-based invariants over the whole stack.

Hypothesis-driven laws that tie modules together: homomorphism laws of
the ciphertext algebra, monotonicity laws of the performance models, and
conservation laws of the scheduler - the invariants DESIGN.md commits to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import MorphlingConfig
from repro.core.reuse import ReuseType, transforms_per_external_product
from repro.core.scheduler import LayerDemand, run_workload
from repro.core.simulator import simulate_bootstrap
from repro.core.xpu import XpuModel
from repro.params import get_params
from repro.tfhe.lwe import lwe_add, lwe_decrypt_phase, lwe_scalar_mul, lwe_sub
from repro.tfhe.torus import decode_message

P = 16
SETS = ["I", "II", "III", "IV", "A", "B", "C"]


class TestCiphertextAlgebra:
    """LWE is a Z-module homomorphism into the noisy torus."""

    @given(st.integers(0, P - 1), st.integers(0, P - 1), st.integers(0, P - 1))
    @settings(max_examples=15, deadline=None)
    def test_linearity(self, ctx, a, b, c):
        ca, cb, cc = (ctx.encrypt(x % (P // 2), P) for x in (a, b, c))
        lhs = lwe_add(lwe_sub(ca, cb), cc)
        phase = lwe_decrypt_phase(lhs, ctx.keyset.lwe_key)
        got = int(decode_message(np.asarray(phase), P)[()])
        assert got == (a % (P // 2) - b % (P // 2) + c % (P // 2)) % P

    @given(st.integers(-7, 7), st.integers(0, P // 2 - 1))
    @settings(max_examples=15, deadline=None)
    def test_scalar_distributes(self, ctx, s, m):
        ct = ctx.encrypt(m, P)
        direct = lwe_scalar_mul(s, ct)
        phase = lwe_decrypt_phase(direct, ctx.keyset.lwe_key)
        got = int(decode_message(np.asarray(phase), P)[()])
        assert got == (s * m) % P


class TestReuseAlgebra:
    @given(st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_input_reuse_saves_exactly_the_row_factor(self, k, l_b):
        """Input reuse divides forward transforms by exactly (k+1)."""
        no = transforms_per_external_product(k, l_b, ReuseType.NO_REUSE)
        inp = transforms_per_external_product(k, l_b, ReuseType.INPUT_REUSE)
        assert no.forward == (k + 1) * inp.forward

    @given(st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_output_reuse_saves_exactly_the_depth_factor(self, k, l_b):
        """Output reuse divides inverse transforms by exactly (k+1)*l_b."""
        inp = transforms_per_external_product(k, l_b, ReuseType.INPUT_REUSE)
        both = transforms_per_external_product(k, l_b, ReuseType.INPUT_OUTPUT_REUSE)
        assert inp.inverse == (k + 1) * l_b * both.inverse


class TestPerformanceMonotonicity:
    """More resources must never make the model slower."""

    @pytest.mark.parametrize("pset", SETS)
    def test_more_fft_units(self, pset):
        p = get_params(pset)
        base = XpuModel(MorphlingConfig(), p).iteration_cycles()
        more = XpuModel(MorphlingConfig(fft_units_per_xpu=4), p).iteration_cycles()
        assert more <= base

    @pytest.mark.parametrize("pset", SETS)
    def test_more_bandwidth(self, pset):
        p = get_params(pset)
        base = simulate_bootstrap(MorphlingConfig(), p).throughput_bs
        fat = simulate_bootstrap(
            MorphlingConfig(hbm_bandwidth_gbs=620.0), p
        ).throughput_bs
        assert fat >= base - 1e-9

    @pytest.mark.parametrize("pset", SETS)
    def test_bigger_a1(self, pset):
        p = get_params(pset)
        small = simulate_bootstrap(
            MorphlingConfig(private_a1_bytes=1 << 20), p
        ).throughput_bs
        big = simulate_bootstrap(
            MorphlingConfig(private_a1_bytes=1 << 24), p
        ).throughput_bs
        assert big >= small - 1e-9

    @pytest.mark.parametrize("pset", SETS)
    def test_reuse_never_hurts_compute(self, pset):
        p = get_params(pset)
        ladder = [
            XpuModel(MorphlingConfig.no_reuse(), p).iteration_cycles(),
            XpuModel(MorphlingConfig.input_reuse(), p).iteration_cycles(),
            XpuModel(MorphlingConfig(merge_split=False, name="io"), p).iteration_cycles(),
        ]
        assert ladder == sorted(ladder, reverse=True)

    @given(st.sampled_from(SETS), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_latency_scales_with_n(self, pset, scale):
        p = get_params(pset)
        stretched = p.with_overrides(name="stretched", n=p.n * scale)
        base = simulate_bootstrap(MorphlingConfig(), p).bootstrap_latency_s
        longer = simulate_bootstrap(MorphlingConfig(), stretched).bootstrap_latency_s
        assert longer >= base


class TestSchedulerConservation:
    @given(st.integers(1, 400))
    @settings(max_examples=15, deadline=None)
    def test_every_bootstrap_scheduled_exactly_once(self, n_pbs):
        from repro.core.isa import XpuOp
        from repro.core.scheduler import SwScheduler

        sched = SwScheduler(MorphlingConfig(), get_params("I"))
        stream = sched.schedule([LayerDemand("l", n_pbs)])
        total = sum(i.count for i in stream if i.op is XpuOp.BLIND_ROTATE)
        assert total == n_pbs

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_makespan_at_least_serial_xpu_time(self, layer_sizes):
        cfg, p = MorphlingConfig(), get_params("I")
        layers = [LayerDemand(f"l{i}", s) for i, s in enumerate(layer_sizes)]
        result = run_workload(cfg, p, layers)
        xpu = XpuModel(cfg, p)
        waves = sum(-(-s // cfg.bootstrap_cores) for s in layer_sizes)
        assert result.total_seconds >= waves * xpu.blind_rotation_seconds() - 1e-9

    @given(st.integers(1, 300))
    @settings(max_examples=10, deadline=None)
    def test_throughput_never_exceeds_analytic_bound(self, n_pbs):
        cfg, p = MorphlingConfig(), get_params("I")
        result = run_workload(cfg, p, [LayerDemand("l", n_pbs)])
        analytic = simulate_bootstrap(cfg, p).throughput_bs
        assert n_pbs / result.total_seconds <= analytic * 1.05
