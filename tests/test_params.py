"""Tests for TFHE parameter sets (Tables I and III)."""

import pytest

from repro.params import (
    FIG1_PARAMS,
    PARAM_SETS,
    SCHEME_PROFILES,
    TEST_PARAMS,
    TFHEParams,
    get_params,
)


class TestTableIII:
    """The paper's seven sets, verbatim on the performance-driving fields."""

    PAPER = {
        "I": (1024, 500, 1, 2, 80),
        "II": (1024, 630, 1, 3, 110),
        "III": (2048, 592, 1, 3, 128),
        "IV": (2048, 742, 1, 1, 128),
        "A": (4096, 769, 1, 1, 128),
        "B": (1024, 497, 2, 2, 128),
        "C": (512, 487, 3, 3, 128),
    }

    @pytest.mark.parametrize("name", sorted(PAPER))
    def test_matches_paper(self, name):
        N, n, k, l_b, lam = self.PAPER[name]
        p = PARAM_SETS[name]
        assert (p.N, p.n, p.k, p.l_b, p.lam) == (N, n, k, l_b, lam)

    def test_fig1_set(self):
        assert (FIG1_PARAMS.N, FIG1_PARAMS.n, FIG1_PARAMS.k,
                FIG1_PARAMS.l_b, FIG1_PARAMS.l_k) == (1024, 481, 2, 4, 9)


class TestDerivedQuantities:
    def test_polymults_per_external_product(self):
        p = get_params("C")
        assert p.polymults_per_external_product == 48

    def test_polymults_per_bootstrap_exceeds_10k(self):
        """The paper's motivation: >10,000 polynomial multiplications."""
        assert FIG1_PARAMS.polymults_per_bootstrap > 10_000

    def test_bsk_size_fig1(self):
        # n * (k+1)^2 * l_b * N * 4 bytes = 70.9 MB for the Fig. 1 set.
        assert FIG1_PARAMS.bsk_bytes == 481 * 36 * 1024 * 4

    def test_ksk_size_fig1_near_paper(self):
        # paper reports 33.8 MB
        assert FIG1_PARAMS.ksk_bytes / 1e6 == pytest.approx(35.5, rel=0.02)

    def test_transform_bsk_same_size_as_packed(self):
        p = get_params("I")
        assert p.bsk_transform_bytes == p.bsk_bytes

    def test_glwe_lwe_dimension(self):
        assert get_params("B").glwe_lwe_dimension == 2 * 1024


class TestValidation:
    def test_rejects_non_power_of_two_n(self):
        with pytest.raises(ValueError):
            TFHEParams("bad", N=1000, n=10, k=1, l_b=1, lam=0)

    def test_rejects_overwide_decomposition(self):
        with pytest.raises(ValueError):
            TFHEParams("bad", N=1024, n=10, k=1, l_b=5, lam=0, beta_bits=8)

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            TFHEParams("bad", N=1024, n=0, k=1, l_b=1, lam=0)

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            TEST_PARAMS.with_overrides(n=-1)

    def test_get_params_unknown(self):
        with pytest.raises(KeyError):
            get_params("Z")

    def test_get_params_aliases(self):
        assert get_params("fig1") is FIG1_PARAMS
        assert get_params("test") is TEST_PARAMS


class TestTableI:
    def test_tfhe_is_small_parameter(self):
        assert SCHEME_PROFILES["TFHE"].is_small_parameter

    def test_large_parameter_schemes(self):
        for scheme in ("CKKS", "BGV", "BFV"):
            profile = SCHEME_PROFILES[scheme]
            assert not profile.is_small_parameter
            assert profile.needs_rns

    def test_only_tfhe_has_programmable_bootstrap(self):
        pbs = [s for s, p in SCHEME_PROFILES.items() if p.programmable_bootstrap]
        assert pbs == ["TFHE"]
