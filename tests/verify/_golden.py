"""Shared deterministic scenario behind the verify-JSON golden test.

The golden file pins the ``repro verify --json`` document shape: field
names, nesting, and the per-report ``occupancy``/``noise_budget``
attachment sections.  Any change to that shape is a schema change and
must come with a ``VERIFY_SCHEMA_VERSION`` bump and a regenerated
golden (run ``python tests/verify/_golden.py``).  The scenario is a
pure function of the committed source - a fixed workload compiled under
the default architecture, a deliberately malformed stream, and a fixed
lint snippet - so reruns reproduce the document exactly (floats up to
libm rounding, which the test compares with tolerance).
"""

import json
import os

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_DOC = os.path.join(GOLDEN_DIR, "verify_report.json")

#: Torus-discipline violations under a numpy alias: RPR001 (raw mod-q)
#: and the alias-aware RPR004 (xp.fft) both fire in a tfhe-scoped path.
LINT_SNIPPET = "\n".join([
    "import numpy as xp",
    "acc = (a * b) % 2**32",
    "spec = xp.fft.fft(acc)",
    "",
])


class _BadInstruction:
    """Instruction-shaped and deliberately ill-formed (pins diagnostics)."""

    inst_id = 0
    op = "bogus_op"
    group = 0
    count = 0
    data_bytes = 0
    macs = 0
    depends_on = (0,)


def build_document():
    """The full schema-versioned verify document for the golden scenario."""
    from repro.core.accelerator import MorphlingConfig
    from repro.core.scheduler import LayerDemand, SwScheduler
    from repro.params import get_params
    from repro.verify import lint_source, verify_stream
    from repro.verify.cli import report_document
    from repro.verify.noisepass import static_noise_report
    from repro.verify.occupancy import OccupancyModel

    config = MorphlingConfig.morphling()
    params = get_params("III")
    stream = SwScheduler(config, params).schedule(
        [LayerDemand("golden-l0", bootstraps=3, linear_macs=128)]
    )
    program = verify_stream(stream, config=config, params=params,
                            subject="golden-program")
    program.attachments["occupancy"] = OccupancyModel(config, params).analyze(
        list(stream), subject="golden-program"
    )
    program.attachments["noise_budget"] = static_noise_report(
        list(stream), params
    )
    bad = verify_stream([_BadInstruction()], subject="golden-bad")
    lint = lint_source(LINT_SNIPPET, path="golden/tfhe/sample.py")
    return report_document([program, bad, lint])


def regenerate():
    """Rewrite the golden file (run after an intentional schema bump)."""
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(GOLDEN_DOC, "w") as fh:
        json.dump(build_document(), fh, indent=2, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"))
    regenerate()
    print(f"regenerated {GOLDEN_DOC}")
