"""The ``repro verify`` command: exit codes, filtering, JSON, lint mode."""

import json

from repro.cli import main


def test_list_rules_prints_both_catalogs(capsys):
    assert main(["verify", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "VER001" in out and "VER006" in out
    assert "RPR001" in out and "RPR006" in out


def test_single_target_verifies_clean(capsys):
    assert main(["verify", "--strict", "--target", "xgboost@III"]) == 0
    out = capsys.readouterr().out
    assert "xgboost@III: clean" in out


def test_unknown_target_is_usage_error(capsys):
    assert main(["verify", "--target", "definitely-not-shipped"]) == 2


def test_json_output_parses(capsys):
    assert main(["verify", "--json", "--target", "xgboost@III"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["reports"][0]["subject"] == "xgboost@III"


def test_lint_clean_file(tmp_path, capsys):
    clean = tmp_path / "tfhe" / "clean.py"
    clean.parent.mkdir()
    clean.write_text("from .torus import to_torus\n\nx = to_torus(1)\n")
    assert main(["verify", "--strict", "--lint", str(tmp_path)]) == 0


def test_lint_violation_fails_only_in_strict(tmp_path, capsys):
    bad = tmp_path / "tfhe" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("x = acc & 0xFFFFFFFF\n")
    assert main(["verify", "--lint", str(tmp_path)]) == 0  # report only
    assert main(["verify", "--strict", "--lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out


def test_lint_suppressed_violation_passes_strict(tmp_path):
    excused = tmp_path / "tfhe" / "excused.py"
    excused.parent.mkdir()
    excused.write_text(
        "x = acc & 0xFFFFFFFF  # repro: allow[RPR001] exactness shown in docs\n"
    )
    assert main(["verify", "--strict", "--lint", str(tmp_path)]) == 0


def _write_encoded_stream(path):
    from repro.core.accelerator import MorphlingConfig
    from repro.core.isa_encoding import encode_stream
    from repro.core.scheduler import LayerDemand, SwScheduler
    from repro.params import get_params

    scheduler = SwScheduler(MorphlingConfig(), get_params("III"))
    stream = scheduler.schedule([LayerDemand("l0", bootstraps=3)])
    path.write_bytes(encode_stream(stream))
    return stream


def test_binary_blob_verifies_clean(tmp_path, capsys):
    blob = tmp_path / "program.bin"
    stream = _write_encoded_stream(blob)
    assert len(stream) > 0
    assert main(["verify", "--strict", "--binary", str(blob)]) == 0
    out = capsys.readouterr().out
    assert str(blob) in out and "clean" in out


def test_binary_json_report_names_the_file(tmp_path, capsys):
    blob = tmp_path / "program.bin"
    _write_encoded_stream(blob)
    assert main(["verify", "--json", "--binary", str(blob)]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["reports"][0]["subject"] == str(blob)


def test_binary_missing_file_is_usage_error(tmp_path, capsys):
    assert main(["verify", "--binary", str(tmp_path / "nope.bin")]) == 2
    assert "cannot verify" in capsys.readouterr().out


def test_binary_garbage_is_usage_error(tmp_path, capsys):
    blob = tmp_path / "garbage.bin"
    blob.write_bytes(b"\x00\x01not an instruction stream")
    assert main(["verify", "--binary", str(blob)]) == 2
    assert "cannot verify" in capsys.readouterr().out


def test_repo_sources_lint_clean():
    """The shipped tree must stay lint-clean (same gate CI runs)."""
    import os

    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    assert main(["verify", "--strict", "--lint", package_dir]) == 0
