"""Program-verifier passes: each VERxxx rule catches its violation and
stays silent on a well-formed stream.

Malformed streams are hand-built from duck-typed fake instructions -
``Instruction.__post_init__`` (rightly) refuses to construct some of the
violations the verifier must still catch in decoded binaries.
"""

from dataclasses import dataclass, field
from typing import Tuple

import pytest

from repro.core.buffers import acc_stream_capacity
from repro.core.isa import DmaOp, Instruction, VpuOp, XpuOp
from repro.core.accelerator import MorphlingConfig
from repro.params import get_params
from repro.verify import (
    Severity,
    VerificationError,
    program_rule_catalog,
    verify_or_raise,
    verify_stream,
)


@dataclass(frozen=True)
class Fake:
    """Instruction-shaped object free of the ISA constructor's checks."""

    inst_id: int
    op: object
    group: int = 0
    count: int = 0
    data_bytes: int = 0
    macs: int = 0
    depends_on: Tuple[int, ...] = field(default_factory=tuple)


@pytest.fixture(scope="module")
def config():
    return MorphlingConfig.morphling()


@pytest.fixture(scope="module")
def params():
    return get_params("III")


def _chain(params, group=0, count=4, base=0):
    """A well-formed single-group bootstrap chain (loads + MS..STORE)."""
    lwe = count * params.lwe_bytes
    return [
        Instruction(base + 0, DmaOp.LOAD_LWE, group, count=count, data_bytes=lwe),
        Instruction(base + 1, DmaOp.LOAD_BSK, group,
                    data_bytes=params.bsk_transform_bytes),
        Instruction(base + 2, DmaOp.LOAD_KSK, group, data_bytes=params.ksk_bytes),
        Instruction(base + 3, VpuOp.MODULUS_SWITCH, group, count=count,
                    depends_on=(base + 0,)),
        Instruction(base + 4, XpuOp.BLIND_ROTATE, group, count=count,
                    depends_on=(base + 3, base + 1)),
        Instruction(base + 5, VpuOp.SAMPLE_EXTRACT, group, count=count,
                    depends_on=(base + 4,)),
        Instruction(base + 6, VpuOp.KEY_SWITCH, group, count=count,
                    depends_on=(base + 5, base + 2)),
        Instruction(base + 7, DmaOp.STORE_LWE, group, count=count,
                    data_bytes=lwe, depends_on=(base + 6,)),
    ]


def test_catalog_has_all_passes():
    codes = [info.code for info in program_rule_catalog()]
    assert codes == ["VER001", "VER002", "VER003", "VER004", "VER005",
                     "VER006", "VER007", "VER008"]


def test_clean_chain_passes_every_rule(config, params):
    report = verify_stream(_chain(params), config=config, params=params)
    assert report.ok
    assert report.diagnostics == []


class TestVer001DefBeforeUse:
    def test_forward_reference_caught(self):
        stream = [
            Fake(0, VpuOp.MODULUS_SWITCH, count=1, depends_on=(1,)),
            Fake(1, DmaOp.LOAD_LWE, data_bytes=4, count=1),
        ]
        report = verify_stream(stream, passes=["VER001"])
        assert not report.ok
        assert report.codes() == {"VER001"}
        assert "forward reference" in report.errors[0].message
        assert report.errors[0].instruction_index == 0

    def test_unknown_dependency_caught(self):
        stream = [Fake(0, XpuOp.BLIND_ROTATE, count=1, depends_on=(99,))]
        report = verify_stream(stream, passes=["VER001"])
        assert not report.ok
        assert "unknown instruction" in report.errors[0].message

    def test_backward_reference_clean(self):
        stream = [
            Fake(0, DmaOp.LOAD_LWE, data_bytes=4, count=1),
            Fake(1, VpuOp.MODULUS_SWITCH, count=1, depends_on=(0,)),
        ]
        assert verify_stream(stream, passes=["VER001"]).ok


class TestVer002IdentitySanity:
    def test_duplicate_id_caught(self):
        stream = [
            Fake(7, DmaOp.LOAD_LWE, data_bytes=4, count=1),
            Fake(7, DmaOp.LOAD_BSK, data_bytes=4),
        ]
        report = verify_stream(stream, passes=["VER002"])
        assert not report.ok
        assert "duplicate instruction id" in report.errors[0].message

    def test_self_dependency_caught(self):
        stream = [Fake(0, XpuOp.BLIND_ROTATE, count=1, depends_on=(0,))]
        report = verify_stream(stream, passes=["VER002"])
        assert not report.ok
        assert "depends on itself" in report.errors[0].message

    def test_duplicate_dependency_is_warning_only(self):
        stream = [
            Fake(0, DmaOp.LOAD_LWE, data_bytes=4, count=1),
            Fake(1, XpuOp.BLIND_ROTATE, count=1, depends_on=(0, 0)),
        ]
        report = verify_stream(stream, passes=["VER002"])
        assert report.ok  # warnings never fail verification
        assert len(report.warnings) == 1
        assert report.warnings[0].severity is Severity.WARNING

    def test_unique_ids_clean(self):
        stream = [Fake(i, DmaOp.LOAD_LWE, data_bytes=4, count=1)
                  for i in range(3)]
        assert verify_stream(stream, passes=["VER002"]).diagnostics == []


class TestVer003OpcodeEngine:
    def test_unknown_opcode_caught(self):
        report = verify_stream([Fake(0, "bogus_op")], passes=["VER003"])
        assert not report.ok
        assert "unknown opcode" in report.errors[0].message

    def test_dma_with_macs_caught(self):
        report = verify_stream([Fake(0, DmaOp.LOAD_BSK, data_bytes=4, macs=10)],
                               passes=["VER003"])
        assert not report.ok

    def test_compute_with_payload_caught(self):
        report = verify_stream(
            [Fake(0, XpuOp.BLIND_ROTATE, count=4, data_bytes=64)],
            passes=["VER003"])
        assert not report.ok
        assert "DMA payloads" in report.errors[0].message

    def test_compute_with_zero_count_caught(self):
        report = verify_stream([Fake(0, VpuOp.SAMPLE_EXTRACT, count=0)],
                               passes=["VER003"])
        assert not report.ok
        assert "zero ciphertexts" in report.errors[0].message

    def test_palu_without_macs_caught(self):
        report = verify_stream([Fake(0, VpuOp.P_ALU, macs=0)],
                               passes=["VER003"])
        assert not report.ok

    def test_well_typed_instructions_clean(self):
        stream = [
            Fake(0, DmaOp.LOAD_LWE, data_bytes=4, count=1),
            Fake(1, VpuOp.P_ALU, macs=128),
            Fake(2, XpuOp.BLIND_ROTATE, count=64),
        ]
        assert verify_stream(stream, passes=["VER003"]).ok


class TestVer004BufferCapacity:
    def test_overflowing_batch_caught(self, config, params):
        streams = max(1, acc_stream_capacity(config, params))
        capacity = streams * config.bootstrap_cores
        stream = [Fake(0, XpuOp.BLIND_ROTATE, count=capacity + 1)]
        report = verify_stream(stream, config=config, params=params,
                               passes=["VER004"])
        assert not report.ok
        assert "exceeds the scheduler group capacity" in report.errors[0].message

    def test_batch_at_capacity_clean(self, config, params):
        streams = max(1, acc_stream_capacity(config, params))
        capacity = streams * config.bootstrap_cores
        stream = [Fake(0, XpuOp.BLIND_ROTATE, count=capacity)]
        assert verify_stream(stream, config=config, params=params,
                             passes=["VER004"]).ok

    def test_skipped_without_architectural_context(self):
        stream = [Fake(0, XpuOp.BLIND_ROTATE, count=10**9)]
        assert verify_stream(stream, passes=["VER004"]).ok


class TestVer005StageOrder:
    def test_out_of_order_emission_caught(self):
        stream = [
            Fake(0, VpuOp.KEY_SWITCH, group=1, count=1),
            Fake(1, VpuOp.MODULUS_SWITCH, group=1, count=1),
        ]
        report = verify_stream(stream, passes=["VER005"])
        assert not report.ok
        assert any("after a later stage" in d.message for d in report.errors)

    def test_missing_raw_dependency_caught(self):
        # SE emitted in order but without a dep on its group's BR result.
        stream = [
            Fake(0, VpuOp.MODULUS_SWITCH, group=0, count=1),
            Fake(1, XpuOp.BLIND_ROTATE, group=0, count=1, depends_on=(0,)),
            Fake(2, VpuOp.SAMPLE_EXTRACT, group=0, count=1),
        ]
        report = verify_stream(stream, passes=["VER005"])
        assert not report.ok
        assert "RAW hazard" in report.errors[0].message

    def test_cross_group_dependency_not_accepted(self):
        # BR depends on the *other* group's MS: still a RAW violation.
        stream = [
            Fake(0, VpuOp.MODULUS_SWITCH, group=0, count=1),
            Fake(1, XpuOp.BLIND_ROTATE, group=1, count=1, depends_on=(0,)),
        ]
        report = verify_stream(stream, passes=["VER005"])
        assert not report.ok

    def test_ordered_chain_clean(self, params):
        assert verify_stream(_chain(params), passes=["VER005"]).ok

    def test_independent_groups_interleave_clean(self, params):
        stream = _chain(params, group=0, base=0) + _chain(params, group=1, base=8)
        assert verify_stream(stream, passes=["VER005"]).ok


class TestVer006TransferSanity:
    def test_zero_byte_transfer_caught(self):
        report = verify_stream([Fake(0, DmaOp.LOAD_BSK, data_bytes=0)],
                               passes=["VER006"])
        assert not report.ok
        assert "zero bytes" in report.errors[0].message

    def test_misaligned_transfer_caught(self, params):
        report = verify_stream([Fake(0, DmaOp.LOAD_BSK, data_bytes=7)],
                               params=params, passes=["VER006"])
        assert not report.ok
        assert "coefficient word" in report.errors[0].message

    def test_lwe_size_mismatch_caught(self, params):
        wrong = 2 * params.lwe_bytes  # says 1 ciphertext, carries 2
        stream = [Fake(0, DmaOp.LOAD_LWE, count=1, data_bytes=wrong)]
        report = verify_stream(stream, params=params, passes=["VER006"])
        assert not report.ok
        assert "does not match" in report.errors[0].message

    def test_odd_bsk_footprint_is_warning(self, params):
        stream = [Fake(0, DmaOp.LOAD_BSK,
                       data_bytes=params.bsk_transform_bytes + params.coeff_bytes)]
        report = verify_stream(stream, params=params, passes=["VER006"])
        assert report.ok
        assert len(report.warnings) == 1

    def test_consistent_transfers_clean(self, params):
        assert verify_stream(_chain(params), params=params,
                             passes=["VER006"]).diagnostics == []


class TestDriver:
    def test_verify_or_raise_raises_with_report(self):
        stream = [Fake(0, "bogus_op")]
        with pytest.raises(VerificationError) as exc:
            verify_or_raise(stream)
        assert exc.value.report.codes() == {"VER003"}
        assert "VER003" in str(exc.value)

    def test_verify_or_raise_returns_clean_report(self, config, params):
        report = verify_or_raise(_chain(params), config=config, params=params)
        assert report.ok

    def test_pass_subset_restricts_checks(self):
        # Stream violates VER003; restricting to VER001 must not see it.
        stream = [Fake(0, "bogus_op")]
        assert verify_stream(stream, passes=["VER001"]).ok
