"""Domain lint rules: each RPRxxx rule catches its violation in scope,
stays silent on compliant code, and respects its scope boundaries."""

import textwrap

from repro.verify import Severity, lint_rule_catalog, lint_source

TFHE_PATH = "src/repro/tfhe/lwe.py"
TORUS_PATH = "src/repro/tfhe/torus.py"
TRANSFORMS_PATH = "src/repro/transforms/negacyclic.py"
CORE_PATH = "src/repro/core/xpu.py"


def lint(source, path=TFHE_PATH, rules=None):
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def test_catalog_has_all_rules():
    codes = [info.code for info in lint_rule_catalog()]
    assert codes == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006"]


def test_syntax_error_reported_as_rpr000():
    report = lint("def broken(:\n")
    assert not report.ok
    assert report.codes() == {"RPR000"}


class TestRpr001RawReduction:
    def test_modulo_q_caught(self):
        for spelling in ("2**32", "(1 << 32)", "0x100000000"):
            report = lint(f"x = (a + b) % {spelling}\n", rules=["RPR001"])
            assert not report.ok, spelling
            assert report.errors[0].code == "RPR001"

    def test_mask_caught_either_side(self):
        assert not lint("x = acc & 0xFFFFFFFF\n", rules=["RPR001"]).ok
        assert not lint("x = 0xFFFFFFFF & acc\n", rules=["RPR001"]).ok

    def test_mask_wrapped_in_numpy_cast_caught(self):
        report = lint("x = acc & np.uint64(0xFFFFFFFF)\n", rules=["RPR001"])
        assert not report.ok

    def test_helper_call_clean(self):
        report = lint(
            """\
            from .torus import to_torus

            x = to_torus(a + b)
            y = a % 7  # unrelated modulus
            """,
            rules=["RPR001"],
        )
        assert report.diagnostics == []

    def test_torus_module_itself_exempt(self):
        report = lint("x = a % 2**32\n", path=TORUS_PATH, rules=["RPR001"])
        assert report.diagnostics == []

    def test_out_of_scope_module_exempt(self):
        report = lint("x = a % 2**32\n", path=CORE_PATH, rules=["RPR001"])
        assert report.diagnostics == []


class TestRpr002FloatEscape:
    def test_astype_float_caught(self):
        for dtype in ("float", "np.float64", "np.float32"):
            report = lint(f"x = arr.astype({dtype})\n", rules=["RPR002"])
            assert not report.ok, dtype

    def test_integer_astype_clean(self):
        report = lint("x = arr.astype(np.int64)\n", rules=["RPR002"])
        assert report.diagnostics == []

    def test_torus_module_itself_exempt(self):
        report = lint("x = arr.astype(np.float64)\n", path=TORUS_PATH,
                      rules=["RPR002"])
        assert report.diagnostics == []


class TestRpr003NarrowDtype:
    def test_narrow_literal_caught(self):
        for dtype in ("float32", "int8", "uint16"):
            report = lint(f"x = np.zeros(4, dtype=np.{dtype})\n",
                          rules=["RPR003"])
            assert not report.ok, dtype

    def test_applies_to_torus_module_too(self):
        report = lint("x = np.float16(0)\n", path=TORUS_PATH, rules=["RPR003"])
        assert not report.ok

    def test_wide_dtypes_clean(self):
        report = lint(
            """\
            a = np.zeros(4, dtype=np.uint32)
            b = a.astype(np.int64)
            c = np.uint64(1)
            """,
            rules=["RPR003"],
        )
        assert report.diagnostics == []

    def test_out_of_scope_module_exempt(self):
        report = lint("x = np.float32(0)\n", path=CORE_PATH, rules=["RPR003"])
        assert report.diagnostics == []


class TestRpr004DirectFft:
    def test_np_fft_attribute_caught(self):
        report = lint("spec = np.fft.rfft(x)\n", path=CORE_PATH,
                      rules=["RPR004"])
        assert not report.ok
        assert "repro.transforms" in report.errors[0].message

    def test_import_from_numpy_fft_caught(self):
        assert not lint("from numpy.fft import rfft\n", path=CORE_PATH,
                        rules=["RPR004"]).ok
        assert not lint("from numpy import fft\n", path=CORE_PATH,
                        rules=["RPR004"]).ok

    def test_transforms_package_exempt(self):
        report = lint("spec = np.fft.rfft(x)\n", path=TRANSFORMS_PATH,
                      rules=["RPR004"])
        assert report.diagnostics == []

    def test_wrapper_usage_clean(self):
        report = lint(
            """\
            from repro.transforms import negacyclic_fft

            spec = negacyclic_fft(x)
            """,
            path=CORE_PATH,
            rules=["RPR004"],
        )
        assert report.diagnostics == []

    def test_numpy_import_alias_caught(self):
        # Acceptance case: `import numpy as xp; xp.fft.fft(x)`.
        report = lint(
            """\
            import numpy as xp

            spec = xp.fft.fft(acc)
            """,
            path=CORE_PATH,
            rules=["RPR004"],
        )
        assert not report.ok
        assert "xp.fft.fft" in report.errors[0].message
        assert "(= numpy.fft.fft)" in report.errors[0].message

    def test_from_import_alias_use_caught(self):
        report = lint(
            """\
            from numpy import fft as F

            spec = F.rfft(x)
            """,
            path=CORE_PATH,
            rules=["RPR004"],
        )
        assert not report.ok
        assert any("F.rfft" in d.message for d in report.errors)

    def test_rebound_name_is_clean(self):
        # np no longer means numpy here; the dataflow pass must see it.
        report = lint(
            """\
            import torch as np

            spec = np.fft.fft(x)
            """,
            path=CORE_PATH,
            rules=["RPR004"],
        )
        assert report.diagnostics == []

    def test_fft_module_alias_without_use_clean(self):
        # Binding a name to np.fft is fine until a transform is used.
        report = lint("F = np.fft\n", path=CORE_PATH, rules=["RPR004"])
        assert report.diagnostics == []


class TestRpr005GlobalRng:
    def test_legacy_call_is_warning(self):
        report = lint("np.random.seed(0)\nx = np.random.randint(0, 10)\n",
                      path=CORE_PATH, rules=["RPR005"])
        assert report.ok  # warnings only
        assert len(report.warnings) == 2
        assert all(d.severity is Severity.WARNING for d in report.warnings)

    def test_generator_api_clean(self):
        report = lint(
            """\
            rng = np.random.default_rng(7)
            x = rng.integers(0, 10)
            """,
            path=CORE_PATH,
            rules=["RPR005"],
        )
        assert report.diagnostics == []

    def test_aliased_legacy_call_caught(self):
        report = lint(
            """\
            import numpy as xp

            xp.random.seed(0)
            """,
            path=CORE_PATH,
            rules=["RPR005"],
        )
        assert report.ok  # warnings only
        assert len(report.warnings) == 1
        assert "xp.random.seed" in report.warnings[0].message

    def test_from_imported_legacy_function_caught(self):
        report = lint(
            """\
            from numpy.random import seed

            seed(0)
            """,
            path=CORE_PATH,
            rules=["RPR005"],
        )
        assert len(report.warnings) == 1

    def test_aliased_generator_api_clean(self):
        report = lint(
            """\
            import numpy as xp

            rng = xp.random.default_rng(7)
            """,
            path=CORE_PATH,
            rules=["RPR005"],
        )
        assert report.diagnostics == []


class TestRpr006IntTruncation:
    def test_bare_division_inside_int_caught(self):
        report = lint("m = int(phase / step)\n", rules=["RPR006"])
        assert not report.ok
        assert report.errors[0].code == "RPR006"

    def test_division_deeper_in_the_expression_caught(self):
        report = lint("m = int((b - a) / (2 * step) + 1)\n", rules=["RPR006"])
        assert not report.ok

    def test_rounded_division_clean(self):
        for spelling in (
            "int(round(phase / step))",
            "int(np.rint(phase / step))",
            "int(math.floor(phase / step))",
        ):
            report = lint(f"m = {spelling}\n", rules=["RPR006"])
            assert report.diagnostics == [], spelling

    def test_torus_helpers_clean(self):
        report = lint(
            """\
            m = int(modswitch(ct.a, 2 * N)[0])
            v = int(decode_message(ct_b, p))
            w = int(round_to_multiple(x, step))
            """,
            rules=["RPR006"],
        )
        assert report.diagnostics == []

    def test_floor_division_is_exact_and_clean(self):
        report = lint("m = int((t + s // 2) // s)\n", rules=["RPR006"])
        assert report.diagnostics == []

    def test_int_without_division_clean(self):
        report = lint("m = int(test_poly[j])\n", rules=["RPR006"])
        assert report.diagnostics == []

    def test_division_outside_int_call_clean(self):
        report = lint("delta = delta_num / float(1 << 32)\n", rules=["RPR006"])
        assert report.diagnostics == []

    def test_torus_module_itself_exempt(self):
        report = lint("m = int(phase / step)\n", path=TORUS_PATH,
                      rules=["RPR006"])
        assert report.diagnostics == []

    def test_out_of_scope_module_exempt(self):
        report = lint("m = int(cycles / frequency)\n", path=CORE_PATH,
                      rules=["RPR006"])
        assert report.diagnostics == []


class TestReportShape:
    def test_diagnostics_carry_path_and_line(self):
        report = lint("a = 1\nx = acc & 0xFFFFFFFF\n", rules=["RPR001"])
        diag = report.errors[0]
        assert diag.path == TFHE_PATH
        assert diag.line == 2
        assert f"{TFHE_PATH}:2" in diag.render()

    def test_rule_filter_limits_findings(self):
        source = "x = arr.astype(np.float64)\ny = acc & 0xFFFFFFFF\n"
        assert lint(source, rules=["RPR001"]).codes() == {"RPR001"}
        assert lint(source, rules=["RPR002"]).codes() == {"RPR002"}
        assert lint(source).codes() == {"RPR001", "RPR002"}
