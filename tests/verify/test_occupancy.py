"""VER007 / OccupancyModel: aggregate liveness proofs over the timeline.

The headline case is a stream VER004 waves through - every instruction's
batch fits the group capacity - that still overflows the Shared buffer
because three blind-rotation results are live at once (their
sample-extracts all gated on the last rotation).  Only the interval
analysis sees that.
"""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.isa import DmaOp, Instruction, VpuOp, XpuOp
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler
from repro.params import get_params
from repro.verify import OccupancyModel, verify_stream


@pytest.fixture(scope="module")
def config():
    return MorphlingConfig.morphling()


@pytest.fixture(scope="module")
def params():
    return get_params("III")


@pytest.fixture(scope="module")
def model(config, params):
    return OccupancyModel(config, params)


def _hoarding_stream(params, groups=3, count=32):
    """``groups`` bootstrap chains whose SEs all wait on the *last* BR.

    Each extra dependency is legal (VER005 only requires the SE to carry
    its own group's RAW edge), but it keeps every rotation result parked
    in Shared until the final rotation lands.
    """
    stream = []

    def emit(op, group, **kw):
        inst = Instruction(len(stream), op, group, **kw)
        stream.append(inst)
        return inst.inst_id

    br, ksk = {}, {}
    lwe = count * params.lwe_bytes
    for g in range(groups):
        load = emit(DmaOp.LOAD_LWE, g, count=count, data_bytes=lwe)
        bsk = emit(DmaOp.LOAD_BSK, g, data_bytes=params.bsk_transform_bytes)
        ksk[g] = emit(DmaOp.LOAD_KSK, g, data_bytes=params.ksk_bytes)
        ms = emit(VpuOp.MODULUS_SWITCH, g, count=count, depends_on=(load,))
        br[g] = emit(XpuOp.BLIND_ROTATE, g, count=count, depends_on=(ms, bsk))
    last = br[groups - 1]
    for g in range(groups):
        deps = (br[g],) if br[g] == last else (br[g], last)
        se = emit(VpuOp.SAMPLE_EXTRACT, g, count=count, depends_on=deps)
        ks = emit(VpuOp.KEY_SWITCH, g, count=count, depends_on=(se, ksk[g]))
        emit(DmaOp.STORE_LWE, g, count=count, data_bytes=lwe, depends_on=(ks,))
    return stream


class TestVer007CatchesWhatVer004Misses:
    def test_hoarding_stream_passes_ver004(self, config, params):
        stream = _hoarding_stream(params)
        assert verify_stream(stream, config=config, params=params,
                             passes=["VER004"]).ok

    def test_hoarding_stream_passes_everything_but_ver007(self, config, params):
        stream = _hoarding_stream(params)
        report = verify_stream(stream, config=config, params=params)
        assert not report.ok
        assert {d.code for d in report.errors} == {"VER007"}

    def test_overflow_names_the_buffer_and_step(self, config, params):
        stream = _hoarding_stream(params)
        report = verify_stream(stream, config=config, params=params,
                               passes=["VER007"])
        assert not report.ok
        assert "shared" in report.errors[0].message
        assert "aggregate" in report.errors[0].message
        assert report.errors[0].instruction_index is not None

    def test_two_live_groups_still_fit(self, config, params):
        # The double-buffered Shared capacity provisions exactly two
        # resident results; the third is what breaks it.
        stream = _hoarding_stream(params, groups=2)
        assert verify_stream(stream, config=config, params=params,
                             passes=["VER007"]).ok


class TestScheduledTargetsStayClean:
    def test_compiled_workload_proof_fits(self, config, params, model):
        stream = SwScheduler(config, params).schedule(
            [LayerDemand(f"l{i}", bootstraps=96, linear_macs=256)
             for i in range(3)]
        )
        proof = model.analyze(list(stream), subject="layers")
        assert proof.ok
        # SEs keep pace with BRs: only one result resident at the peak.
        shared = proof.high_water("shared")
        assert shared.high_water_bytes <= 2 * 32 * params.glwe_bytes

    def test_full_pipeline_passes_with_ver007(self, config, params):
        stream = SwScheduler(config, params).schedule(
            [LayerDemand("l0", bootstraps=64, linear_macs=128)]
        )
        assert verify_stream(stream, config=config, params=params).ok

    def test_hw_scheduler_exposes_the_proof(self, config, params):
        stream = SwScheduler(config, params).schedule(
            [LayerDemand("l0", bootstraps=64, linear_macs=128)]
        )
        proof = HwScheduler(config, params).occupancy_proof(stream)
        assert proof.ok
        assert {b.buffer for b in proof.buffers} == {
            "shared", "private_a1", "private_a2"}


class TestProofContents:
    def test_unconsumed_rotation_leaks_to_program_end(self, params, model):
        # Two rotations, only the second drained: the first result has
        # no consumer and must stay live, so both peaks stack.
        stream = [
            Instruction(0, XpuOp.BLIND_ROTATE, 0, count=8),
            Instruction(1, XpuOp.BLIND_ROTATE, 1, count=8),
            Instruction(2, VpuOp.SAMPLE_EXTRACT, 1, count=8, depends_on=(1,)),
        ]
        proof = model.analyze(stream, subject="leak")
        assert proof.high_water("shared").high_water_bytes == \
            2 * 8 * params.glwe_bytes

    def test_high_water_points_at_producer(self, params, model):
        stream = _hoarding_stream(params)
        proof = model.analyze(stream, subject="hoard")
        shared = proof.high_water("shared")
        assert not shared.ok
        assert stream[shared.at_instruction].op is XpuOp.BLIND_ROTATE
        assert shared.high_water_bytes == 3 * 32 * params.glwe_bytes
        assert shared.utilization == pytest.approx(1.5)

    def test_jsonable_and_text_render(self, params, model):
        proof = model.analyze(_hoarding_stream(params), subject="hoard")
        doc = proof.to_jsonable()
        assert doc["subject"] == "hoard"
        assert doc["ok"] is False
        assert [b["buffer"] for b in doc["buffers"]] == [
            "shared", "private_a1", "private_a2"]
        assert "OVERFLOW" in proof.render_text()

    def test_empty_stream_is_trivially_ok(self, model):
        proof = model.analyze([], subject="empty")
        assert proof.ok
        assert proof.steps == 0
        assert all(b.high_water_bytes == 0 for b in proof.buffers)

    def test_skipped_without_architectural_context(self, params):
        stream = _hoarding_stream(params)
        assert verify_stream(stream, passes=["VER007"]).ok


class TestAdmissionControl:
    def test_admissible_batch_matches_capacity_formulas(self, config, params,
                                                        model):
        # Shared double-buffers two live results; A1 pins the stream
        # residency overhead.  morphling/III bottoms out at one group of
        # 32 (2 streams x 16 cores - the same number VER004 enforces).
        assert model.admissible_batch() == 32

    def test_fits_batch_agrees_with_the_bound(self, model):
        bound = model.admissible_batch()
        assert model.fits_batch(bound)
        assert not model.fits_batch(bound + 1)
        assert not model.fits_batch(0)

    def test_admitted_batch_compiles_to_a_clean_proof(self, config, params,
                                                      model):
        stream = SwScheduler(config, params).schedule(
            [LayerDemand("serve", bootstraps=model.admissible_batch(),
                         linear_macs=64)]
        )
        assert model.analyze(list(stream), subject="serve").ok
