"""VER008 / static_noise_report: the compile-time noise-budget bound.

The acceptance case ties the static bound to the runtime telemetry: the
same 2-bit adder the ``repro noise`` CLI runs, compiled to an
instruction stream on one side and executed with the noise tracker on
the other, must agree on ``log2(p_fail)`` within one order of magnitude
(the union-bound slack).
"""

import math

import pytest

from repro.core.isa import DmaOp, Instruction, VpuOp, XpuOp
from repro.params import get_params
from repro.verify import verify_stream
from repro.verify.noisepass import (
    STATIC_NOISE_SCHEMA_VERSION,
    gate_decision_margin,
    static_noise_report,
)


def _chain(params, group=0, count=4, base=0):
    """A well-formed single-group bootstrap chain (loads + MS..STORE)."""
    lwe = count * params.lwe_bytes
    return [
        Instruction(base + 0, DmaOp.LOAD_LWE, group, count=count, data_bytes=lwe),
        Instruction(base + 1, DmaOp.LOAD_BSK, group,
                    data_bytes=params.bsk_transform_bytes),
        Instruction(base + 2, DmaOp.LOAD_KSK, group, data_bytes=params.ksk_bytes),
        Instruction(base + 3, VpuOp.MODULUS_SWITCH, group, count=count,
                    depends_on=(base + 0,)),
        Instruction(base + 4, XpuOp.BLIND_ROTATE, group, count=count,
                    depends_on=(base + 3, base + 1)),
        Instruction(base + 5, VpuOp.SAMPLE_EXTRACT, group, count=count,
                    depends_on=(base + 4,)),
        Instruction(base + 6, VpuOp.KEY_SWITCH, group, count=count,
                    depends_on=(base + 5, base + 2)),
        Instruction(base + 7, DmaOp.STORE_LWE, group, count=count,
                    data_bytes=lwe, depends_on=(base + 6,)),
    ]


class TestVer008Pass:
    def test_single_level_regime_warns(self):
        # Set IV's single-level decomposition breaches 2^-20 even for a
        # small batch; the program is still well-formed (warning only).
        params = get_params("IV")
        report = verify_stream(_chain(params), params=params,
                               passes=["VER008"])
        assert report.ok  # warnings never fail verification
        assert len(report.warnings) == 1
        diag = report.warnings[0]
        assert diag.code == "VER008"
        assert "parameter" in diag.message
        assert diag.op == XpuOp.BLIND_ROTATE.value

    def test_production_regime_clean(self):
        params = get_params("III")
        report = verify_stream(_chain(params), params=params,
                               passes=["VER008"])
        assert report.diagnostics == []

    def test_skipped_without_params(self):
        assert verify_stream(_chain(get_params("IV")),
                             passes=["VER008"]).diagnostics == []

    def test_skipped_without_bootstraps(self):
        params = get_params("IV")
        stream = [Instruction(0, DmaOp.LOAD_LWE, 0, count=1,
                              data_bytes=params.lwe_bytes)]
        assert verify_stream(stream, params=params,
                             passes=["VER008"]).diagnostics == []


class TestStaticReport:
    def test_counts_every_bootstrapped_ciphertext(self):
        params = get_params("III")
        stream = _chain(params, group=0, count=5) + _chain(
            params, group=1, count=7, base=8)
        report = static_noise_report(stream, params)
        assert report.bootstraps == 12
        assert report.params_name == "III"
        assert report.schema_version == STATIC_NOISE_SCHEMA_VERSION

    def test_union_bound_scales_with_count(self):
        params = get_params("III")
        one = static_noise_report(_chain(params, count=1), params)
        four = static_noise_report(_chain(params, count=4), params)
        assert four.per_bootstrap_log2_prob == one.per_bootstrap_log2_prob
        assert four.total_log2_prob == pytest.approx(
            one.total_log2_prob + 2.0)

    def test_bare_rotation_falls_back_to_closed_form(self):
        # No key-switch in the stream: the terminal variance must still
        # be the closed-form bootstrap output, not zero.
        params = get_params("III")
        stream = [Instruction(0, XpuOp.BLIND_ROTATE, 0, count=4)]
        bare = static_noise_report(stream, params)
        full = static_noise_report(_chain(params, count=4), params)
        assert bare.bootstrap_output_variance == \
            full.bootstrap_output_variance > 0.0

    def test_margin_defaults_to_lut_geometry(self):
        params = get_params("III")
        report = static_noise_report(_chain(params), params)
        assert report.margin == gate_decision_margin(params)
        assert gate_decision_margin(params) == \
            1.0 / 16.0 - 1.0 / (4.0 * params.N)

    def test_jsonable_carries_the_verdict(self):
        params = get_params("IV")
        doc = static_noise_report(_chain(params), params).to_jsonable()
        assert doc["within_budget"] is False
        assert doc["params"] == "IV"
        assert doc["total_log2_prob"] > doc["log2_budget"]

    def test_render_text_names_the_budget(self):
        params = get_params("III")
        text = static_noise_report(_chain(params), params).render_text()
        assert "static noise budget" in text
        assert "within 2^-20 budget: yes" in text


class TestStaticMatchesRuntime:
    def test_adder_bound_agrees_with_noise_telemetry(self):
        """Acceptance: static VER008 bound vs `repro noise --fail-prob`.

        Compile the reference 2-bit adder to an instruction stream and
        bound it statically; run the same circuit through the functional
        TFHE path with the noise tracker and estimate the failure
        probability from the recorded decision points.  The two
        ``log2(p_fail)`` values must agree within one order of magnitude
        (log2(10)): per-point tails are identical by construction, so
        the only slack is union bound vs log-sum-exp.
        """
        from repro.analysis.failprob import estimate_failure_probability
        from repro.core.accelerator import MorphlingConfig
        from repro.core.compiler import compile_program
        from repro.observability import noise_tracking
        from repro.tfhe.boolean import Circuit, ripple_carry_adder
        from repro.tfhe.ops import TfheContext

        params = get_params("test")

        circuit = Circuit()
        a_bits = [circuit.add_input("a0"), circuit.add_input("a1")]
        b_bits = [circuit.add_input("b0"), circuit.add_input("b1")]
        sums, carry = ripple_carry_adder(circuit, a_bits, b_bits)
        for i, s in enumerate(sums):
            circuit.mark_output(s, f"s{i}")
        circuit.mark_output(carry, "carry")

        _, stream, _ = compile_program(
            circuit, MorphlingConfig.morphling(), params)
        static = static_noise_report(list(stream), params)

        ctx = TfheContext.create(params, seed=7)
        inputs = {"a0": 1, "a1": 1, "b0": 1, "b1": 0}
        with noise_tracking() as tracker:
            enc = {k: ctx.encrypt(v) for k, v in inputs.items()}
            circuit.evaluate_encrypted(ctx, enc)
        runtime = estimate_failure_probability(tracker)

        assert static.bootstraps == len(runtime.points) == 7
        assert abs(static.total_log2_prob - runtime.total_log2_prob) <= \
            math.log2(10.0)
        # The static number must bound the runtime one (union >= lse).
        assert static.total_log2_prob >= runtime.total_log2_prob
