"""Inline suppression comments: parsing, scoping, and lint integration."""

import textwrap

from repro.verify import lint_source
from repro.verify.suppressions import collect_suppressions, is_suppressed


def test_trailing_comment_suppresses_own_line():
    src = "x = acc & 0xFFFFFFFF  # repro: allow[RPR001] carry chain is exact\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 1, "RPR001")
    assert not is_suppressed(supp, 1, "RPR002")
    assert not is_suppressed(supp, 2, "RPR001")


def test_comment_only_line_suppresses_next_code_line():
    src = textwrap.dedent(
        """\
        # repro: allow[RPR002] FFT boundary
        spectrum = fft(digits.astype(np.float64))
        tail = digits.astype(np.float64)
        """
    )
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 2, "RPR002")
    assert not is_suppressed(supp, 3, "RPR002")  # one line only


def test_blank_line_does_not_consume_pending_suppression():
    src = "# repro: allow[RPR001] staged\n\nx = acc & 0xFFFFFFFF\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 3, "RPR001")


def test_multiple_codes_in_one_marker():
    src = "x = thing()  # repro: allow[RPR001, RPR004] both justified\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 1, "RPR001")
    assert is_suppressed(supp, 1, "RPR004")


def test_lint_respects_suppression():
    path = "src/repro/tfhe/lwe.py"
    bare = "x = acc & 0xFFFFFFFF\n"
    assert not lint_source(bare, path=path, rules=["RPR001"]).ok
    excused = "x = acc & 0xFFFFFFFF  # repro: allow[RPR001] proven exact\n"
    assert lint_source(excused, path=path, rules=["RPR001"]).diagnostics == []


def test_suppression_is_code_specific():
    path = "src/repro/tfhe/lwe.py"
    # RPR001 suppressed, but the RPR002 finding on the same line survives.
    src = ("y = (acc & 0xFFFFFFFF).astype(np.float64)"
           "  # repro: allow[RPR001] mask is exact here\n")
    report = lint_source(src, path=path)
    assert report.codes() == {"RPR002"}


def test_marker_on_closing_line_covers_the_whole_statement():
    # The finding anchors at the expression's first line; the marker sits
    # on the closing paren two lines down.  Statement-range scoping must
    # connect them.
    path = "src/repro/tfhe/lwe.py"
    src = textwrap.dedent(
        """\
        spec = np.fft.rfft(
            acc,
        )  # repro: allow[RPR004] boundary transform, audited
        """
    )
    assert not lint_source(src.replace("  # repro: allow[RPR004] "
                                       "boundary transform, audited", ""),
                           path=path, rules=["RPR004"]).ok
    assert lint_source(src, path=path, rules=["RPR004"]).diagnostics == []


def test_marker_on_first_line_covers_later_lines_too():
    path = "src/repro/tfhe/lwe.py"
    src = textwrap.dedent(
        """\
        total = (  # repro: allow[RPR001] carry chain is exact
            a * b
        ) % 2**32
        """
    )
    assert lint_source(src, path=path, rules=["RPR001"]).diagnostics == []


def test_compound_statement_header_is_not_a_block_escape_hatch():
    # A marker on an `if` header must NOT excuse findings in its body;
    # only simple statements expand over their line range.
    path = "src/repro/tfhe/lwe.py"
    src = textwrap.dedent(
        """\
        if fast:  # repro: allow[RPR001] justified?
            x = acc & 0xFFFFFFFF
        """
    )
    report = lint_source(src, path=path, rules=["RPR001"])
    assert not report.ok
    assert report.codes() == {"RPR001"}


def test_codes_union_across_a_wrapped_statement():
    # Different markers on different lines of one statement all apply to
    # every line of it.
    src = textwrap.dedent(
        """\
        y = (np.fft.rfft(  # repro: allow[RPR004] audited
            acc & 0xFFFFFFFF
        ))  # repro: allow[RPR001] mask is exact
        """
    )
    report = lint_source(src, path="src/repro/tfhe/lwe.py",
                         rules=["RPR001", "RPR004"])
    assert report.diagnostics == []
