"""Inline suppression comments: parsing, scoping, and lint integration."""

import textwrap

from repro.verify import lint_source
from repro.verify.suppressions import collect_suppressions, is_suppressed


def test_trailing_comment_suppresses_own_line():
    src = "x = acc & 0xFFFFFFFF  # repro: allow[RPR001] carry chain is exact\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 1, "RPR001")
    assert not is_suppressed(supp, 1, "RPR002")
    assert not is_suppressed(supp, 2, "RPR001")


def test_comment_only_line_suppresses_next_code_line():
    src = textwrap.dedent(
        """\
        # repro: allow[RPR002] FFT boundary
        spectrum = fft(digits.astype(np.float64))
        tail = digits.astype(np.float64)
        """
    )
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 2, "RPR002")
    assert not is_suppressed(supp, 3, "RPR002")  # one line only


def test_blank_line_does_not_consume_pending_suppression():
    src = "# repro: allow[RPR001] staged\n\nx = acc & 0xFFFFFFFF\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 3, "RPR001")


def test_multiple_codes_in_one_marker():
    src = "x = thing()  # repro: allow[RPR001, RPR004] both justified\n"
    supp = collect_suppressions(src)
    assert is_suppressed(supp, 1, "RPR001")
    assert is_suppressed(supp, 1, "RPR004")


def test_lint_respects_suppression():
    path = "src/repro/tfhe/lwe.py"
    bare = "x = acc & 0xFFFFFFFF\n"
    assert not lint_source(bare, path=path, rules=["RPR001"]).ok
    excused = "x = acc & 0xFFFFFFFF  # repro: allow[RPR001] proven exact\n"
    assert lint_source(excused, path=path, rules=["RPR001"]).diagnostics == []


def test_suppression_is_code_specific():
    path = "src/repro/tfhe/lwe.py"
    # RPR001 suppressed, but the RPR002 finding on the same line survives.
    src = ("y = (acc & 0xFFFFFFFF).astype(np.float64)"
           "  # repro: allow[RPR001] mask is exact here\n")
    report = lint_source(src, path=path)
    assert report.codes() == {"RPR002"}
