"""The ``repro verify --json`` document is a versioned, golden-pinned
schema downstream tooling can depend on.

Structure (keys, nesting, types) must match the golden byte-for-byte in
shape; float *values* are compared with tolerance (libm ``erfc``/``log2``
may differ in the last ulp across platforms).  An intentional schema
change bumps ``VERIFY_SCHEMA_VERSION`` and regenerates the golden via
``python tests/verify/_golden.py``.
"""

import json
import math

import pytest

from repro.verify import VERIFY_SCHEMA_VERSION
from repro.verify.cli import report_document

from ._golden import GOLDEN_DOC, build_document


def _assert_close(actual, golden, where="$"):
    assert type(actual) is type(golden), (
        f"{where}: type {type(actual).__name__} != {type(golden).__name__}"
    )
    if isinstance(actual, dict):
        assert sorted(actual) == sorted(golden), (
            f"{where}: keys {sorted(actual)} != {sorted(golden)}"
        )
        for key in actual:
            _assert_close(actual[key], golden[key], f"{where}.{key}")
    elif isinstance(actual, list):
        assert len(actual) == len(golden), f"{where}: length mismatch"
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_close(a, g, f"{where}[{i}]")
    elif isinstance(actual, float):
        assert math.isclose(actual, golden, rel_tol=1e-9, abs_tol=1e-12), (
            f"{where}: {actual} != {golden}"
        )
    else:
        assert actual == golden, f"{where}: {actual!r} != {golden!r}"


def test_document_matches_golden():
    with open(GOLDEN_DOC) as fh:
        golden = json.load(fh)
    _assert_close(build_document(), golden)


def test_document_carries_schema_version():
    doc = build_document()
    assert doc["schema_version"] == VERIFY_SCHEMA_VERSION
    with open(GOLDEN_DOC) as fh:
        golden = json.load(fh)
    assert golden["schema_version"] == VERIFY_SCHEMA_VERSION, (
        "schema version changed without regenerating the golden file "
        "(python tests/verify/_golden.py)"
    )


def test_document_round_trips_through_json():
    doc = build_document()
    assert json.loads(json.dumps(doc, sort_keys=True)) == doc


def test_empty_report_list_is_ok():
    doc = report_document([])
    assert doc == {"schema_version": VERIFY_SCHEMA_VERSION, "ok": True,
                   "reports": []}


@pytest.mark.parametrize("section", ["occupancy", "noise_budget"])
def test_attachment_sections_are_nested_per_report(section):
    doc = build_document()
    program_report = doc["reports"][0]
    assert section in program_report
    assert "schema_version" in program_report[section] or section == "occupancy"
    # Reports without attachments must not carry the sections at all.
    assert section not in doc["reports"][1]
    assert section not in doc["reports"][2]
