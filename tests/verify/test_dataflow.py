"""Reaching-definitions resolver behind the alias-aware lint rules."""

import ast
import textwrap

from repro.verify.dataflow import resolve_qualified_uses


def uses(source, **kwargs):
    tree = ast.parse(textwrap.dedent(source))
    return resolve_qualified_uses(tree, **kwargs)


def paths(source, **kwargs):
    return [u.path for u in uses(source, **kwargs)]


class TestImportBindings:
    def test_import_alias_resolves(self):
        found = uses("import numpy as xp\nspec = xp.fft.fft(x)\n")
        assert [(u.path, u.spelled, u.is_call) for u in found] == [
            ("numpy.fft.fft", "xp.fft.fft", True)]

    def test_from_import_alias_resolves(self):
        found = uses("from numpy import fft as F\ny = F.rfft(x)\n")
        assert [(u.path, u.spelled) for u in found] == [
            ("numpy.fft.rfft", "F.rfft")]

    def test_untracked_module_stays_silent(self):
        assert paths("import torch\ny = torch.fft.fft(x)\n") == []

    def test_relative_import_never_tracked(self):
        assert paths("from . import numpy\ny = numpy.fft.fft(x)\n") == []


class TestAssumedBindings:
    def test_bare_np_assumed_numpy(self):
        # Snippets without imports keep linting the way they always have.
        assert paths("y = np.fft.fft(x)\n") == ["numpy.fft.fft"]

    def test_explicit_rebinding_kills_the_assumption(self):
        assert paths("import torch as np\ny = np.fft.fft(x)\n") == []

    def test_custom_assume_map(self):
        found = paths("y = xp.linalg.det(m)\n", assume={"xp": "numpy"})
        assert found == ["numpy.linalg.det"]


class TestAssignmentPropagation:
    def test_alias_chain_propagates(self):
        found = uses("import numpy as xp\nF = xp.fft\ny = F.rfft(x)\n")
        assert [(u.path, u.spelled) for u in found] == [
            ("numpy.fft", "xp.fft"),  # the aliasing read itself
            ("numpy.fft.rfft", "F.rfft"),
        ]

    def test_rebinding_to_unknown_kills(self):
        src = "import numpy as xp\nxp = load_backend()\ny = xp.fft.fft(x)\n"
        assert paths(src) == []

    def test_del_kills(self):
        assert paths("import numpy as xp\ndel xp\ny = xp.fft.fft(x)\n") == []


class TestBranchMerging:
    def test_union_over_branches_flags_the_maybe(self):
        src = """\
            if fast:
                import numpy as backend
            else:
                import torch as backend
            y = backend.fft.fft(x)
        """
        assert paths(src) == ["numpy.fft.fft"]

    def test_rebinding_on_every_path_is_clean(self):
        src = """\
            import numpy as backend
            if fast:
                backend = torch_like()
            else:
                backend = other()
            y = backend.fft.fft(x)
        """
        assert paths(src) == []

    def test_loop_body_binding_reaches_after_the_loop(self):
        src = """\
            for name in names:
                import numpy as xp
            y = xp.fft.fft(x)
        """
        assert paths(src) == ["numpy.fft.fft"]


class TestScopes:
    def test_function_parameter_shadows_binding(self):
        src = """\
            import numpy as xp
            def f(xp):
                return xp.fft.fft(1)
        """
        assert paths(src) == []

    def test_function_rebinding_does_not_leak_out(self):
        src = """\
            import numpy as xp
            def f():
                xp = stub()
            y = xp.fft.fft(x)
        """
        assert paths(src) == ["numpy.fft.fft"]

    def test_uses_inside_functions_still_collected(self):
        src = """\
            import numpy as xp
            def f(x):
                return xp.fft.fft(x)
        """
        assert paths(src) == ["numpy.fft.fft"]

    def test_comprehension_target_shadows(self):
        src = """\
            import numpy as xp
            ys = [xp for xp in backends]
            y = xp.fft.fft(x)
        """
        # The comprehension target only shadows inside the comprehension.
        assert paths(src) == ["numpy.fft.fft"]

    def test_lambda_parameter_shadows(self):
        src = "import numpy as xp\nf = lambda xp: xp.fft.fft(1)\n"
        assert paths(src) == []


class TestUseShapes:
    def test_attribute_read_is_not_a_call(self):
        found = uses("import numpy as xp\nwindow = xp.hanning\n")
        assert [(u.path, u.is_call) for u in found] == [
            ("numpy.hanning", False)]

    def test_broken_chain_still_reports_the_base(self):
        # make() isn't a pure Name/Attribute chain, but xp inside is.
        found = paths("import numpy as xp\ny = make(xp).fft\n")
        assert found == ["numpy"]

    def test_lineno_points_at_the_use(self):
        found = uses("import numpy as xp\n\n\nspec = xp.fft.fft(x)\n")
        assert found[0].lineno == 4
