"""Every shipped configuration compiles verifier-clean, and the
verify-on-compile / verify-on-run integration points behave."""

import pytest

from repro.core.compiler import compile_program
from repro.core.accelerator import MorphlingConfig
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler, run_workload
from repro.core.simulator import MorphlingSimulator
from repro.params import get_params
from repro.verify import VerificationError
from repro.verify.cli import shipped_targets, verify_target


@pytest.mark.parametrize("target", shipped_targets(), ids=lambda t: t.name)
def test_shipped_target_is_verifier_clean(target):
    report = verify_target(target)
    assert report.ok, report.render()


def test_shipped_targets_cover_paper_surfaces():
    names = {t.name for t in shipped_targets()}
    # All five applications, both ablation variants, all Table III sets.
    assert {"xgboost@III", "vgg9@III", "database-1k@III",
            "genomics@III", "deepcnn-20@III"} <= names
    assert {"xgboost@no-reuse", "xgboost@input-reuse"} <= names
    assert {"xgboost@I", "xgboost@II", "xgboost@IV"} <= names


class TestVerifyOnCompile:
    def test_compile_program_verifies_by_default(self):
        config = MorphlingConfig.morphling()
        params = get_params("III")
        layers = [LayerDemand("l0", 64), LayerDemand("l1", 32, linear_macs=4096)]
        name, stream, binary = compile_program(layers, config, params)
        assert len(stream) > 0 and len(binary) > 0

    def test_scheduler_output_is_clean_for_every_param_set(self):
        config = MorphlingConfig.morphling()
        for param_set in ("I", "II", "III", "IV", "A", "B", "C"):
            params = get_params(param_set)
            compile_program([LayerDemand("l", 8)], config, params)

    def test_hw_scheduler_verify_flag(self):
        config = MorphlingConfig.morphling()
        params = get_params("III")
        stream = SwScheduler(config, params).schedule([LayerDemand("l", 16)])
        result = HwScheduler(config, params).execute(stream, verify=True)
        assert result.total_seconds > 0

    def test_run_workload_verifies_by_default(self):
        config = MorphlingConfig.morphling()
        params = get_params("III")
        result = run_workload(config, params, [LayerDemand("l", 16)])
        assert result.total_seconds > 0

    def test_hand_rolled_bad_stream_raises(self):
        """A stream bypassing SwScheduler's invariants is rejected."""
        from repro.core.isa import InstructionStream, VpuOp, XpuOp

        config = MorphlingConfig.morphling()
        params = get_params("III")
        stream = InstructionStream()
        # BR with no MS feeding it: VER005 RAW hazard.
        stream.emit(XpuOp.BLIND_ROTATE, group=0, count=1)
        stream.emit(VpuOp.SAMPLE_EXTRACT, group=0, count=1)
        with pytest.raises(VerificationError):
            HwScheduler(config, params).execute(stream, verify=True)


class TestSimulatorVerify:
    def test_canonical_group_program_is_clean(self):
        sim = MorphlingSimulator(MorphlingConfig.morphling(), get_params("III"))
        report = sim.verify()
        assert report.ok, report.render()
        assert report.subject == "morphling@III"

    def test_run_with_verify_matches_plain_run(self):
        sim = MorphlingSimulator(MorphlingConfig.morphling(), get_params("I"))
        verified = sim.run(verify=True)
        plain = sim.run()
        assert verified.throughput_bs == plain.throughput_bs

    def test_ablation_variants_verify(self):
        for make in (MorphlingConfig.no_reuse, MorphlingConfig.input_reuse):
            sim = MorphlingSimulator(make(), get_params("III"))
            assert sim.verify().ok
