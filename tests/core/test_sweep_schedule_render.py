"""Tests for the sweep utility and schedule rendering."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler, render_schedule
from repro.core.sweep import pareto_frontier, sweep
from repro.params import get_params


class TestSweep:
    def test_single_axis(self):
        points = sweep({"num_xpus": [1, 2, 4]}, get_params("I"))
        assert len(points) == 3
        thr = [p.throughput_bs for p in points]
        assert thr == sorted(thr)

    def test_cartesian_product(self):
        points = sweep(
            {"num_xpus": [2, 4], "merge_split": [True, False]}, get_params("I")
        )
        assert len(points) == 4

    def test_invalid_combinations_skipped(self):
        points = sweep({"num_xpus": [4, 0]}, get_params("I"))
        assert len(points) == 1  # num_xpus=0 fails validation

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, get_params("I"))

    def test_labels_readable(self):
        points = sweep({"num_xpus": [2]}, get_params("I"))
        assert points[0].label == "num_xpus=2"

    def test_area_tracks_config(self):
        points = sweep({"num_xpus": [2, 8]}, get_params("I"))
        assert points[1].area_mm2 > points[0].area_mm2


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        points = sweep({"num_xpus": [1, 2, 4, 5, 6]}, get_params("III"))
        frontier = pareto_frontier(points)
        # 5 XPUs is dominated: more area than 4 with less throughput.
        labels = {p.label for p in frontier}
        assert "num_xpus=5" not in labels
        assert "num_xpus=4" in labels

    def test_frontier_sorted_by_area(self):
        frontier = pareto_frontier(sweep({"num_xpus": [1, 2, 4]}, get_params("I")))
        areas = [p.area_mm2 for p in frontier]
        assert areas == sorted(areas)

    def test_frontier_is_subset(self):
        points = sweep({"num_xpus": [1, 4]}, get_params("I"))
        assert set(pareto_frontier(points)) <= set(points)


class TestScheduleRendering:
    def test_render_requires_spans(self):
        cfg, p = MorphlingConfig(), get_params("I")
        stream = SwScheduler(cfg, p).schedule([LayerDemand("a", 64)])
        plain = HwScheduler(cfg, p).execute(stream)
        with pytest.raises(ValueError):
            render_schedule(plain)

    def test_render_shows_all_engines(self):
        cfg, p = MorphlingConfig(), get_params("I")
        stream = SwScheduler(cfg, p).schedule([LayerDemand("a", 128)])
        result = HwScheduler(cfg, p).execute(stream, record_spans=True)
        art = render_schedule(result)
        assert "xpu" in art
        assert "dma_xpu" in art
        assert "ms" in art  # the time ruler

    def test_spans_respect_dependencies(self):
        cfg, p = MorphlingConfig(), get_params("I")
        stream = SwScheduler(cfg, p).schedule([LayerDemand("a", 64)])
        result = HwScheduler(cfg, p).execute(stream, record_spans=True)
        by_op = {}
        for engine, op, group, start, end in result.spans:
            by_op.setdefault(op, []).append((start, end))
        # The blind rotation cannot start before the BSK load finishes.
        br_start = by_op["blind_rotate"][0][0]
        bsk_end = by_op["load_bsk"][0][1]
        assert br_start >= bsk_end - 1e-12
        # Key switching follows sample extraction.
        assert by_op["key_switch"][0][0] >= by_op["sample_extract"][0][1] - 1e-12
