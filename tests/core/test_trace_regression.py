"""Regression coverage for :mod:`repro.core.trace`.

The traced steady-state interval must agree with the analytic
:meth:`XpuModel.iteration_cycles` across parameter sets and reuse
configurations, the ASCII timeline must stay pixel-stable (golden test),
and the empty/short-trace edge cases must degrade cleanly.
"""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.trace import PipelineTrace, STAGES, render_timeline, trace_blind_rotation
from repro.core.xpu import XpuModel
from repro.params import get_params

#: (config, parameter set) pairs spanning reuse classes and ring sizes.
CONFIGS = [
    (MorphlingConfig(), "I"),
    (MorphlingConfig(), "II"),
    (MorphlingConfig(), "III"),
    (MorphlingConfig.no_reuse(), "C"),
    (MorphlingConfig(merge_split=False), "B"),
]


class TestSteadyStateRegression:
    @pytest.mark.parametrize("config,param_set", CONFIGS)
    def test_traced_interval_matches_analytic(self, config, param_set):
        params = get_params(param_set)
        trace = trace_blind_rotation(config, params, iterations=8)
        analytic = XpuModel(config, params).iteration_cycles()
        assert trace.steady_state_interval() == pytest.approx(analytic)

    @pytest.mark.parametrize("config,param_set", CONFIGS)
    def test_occupancy_fractions_are_sane(self, config, param_set):
        trace = trace_blind_rotation(config, get_params(param_set), iterations=8)
        occ = trace.occupancy()
        assert set(occ) == set(STAGES)
        assert all(0 < v <= 1 for v in occ.values())


GOLDEN_TIMELINE = (
    "rotation       |00111222333                             |\n"
    "decomposition  |  00000011111122222233333               |\n"
    "forward_fft    |        00000011111 22222333333         |\n"
    "vpe_stream     |              00000111111222222333333   |\n"
    "inverse_fft    |                   000   111   222   333|\n"
    "cycles         |0                                   1808|"
)


class TestRenderTimelineGolden:
    def test_default_config_set_i_is_stable(self):
        trace = trace_blind_rotation(MorphlingConfig(), get_params("I"),
                                     iterations=4)
        assert render_timeline(trace, width=40) == GOLDEN_TIMELINE

    def test_empty_trace_renders_placeholder(self):
        empty = PipelineTrace([], 0, MorphlingConfig(), get_params("I"))
        assert render_timeline(empty) == "(empty trace)"


class TestEmptyAndShortTraces:
    def test_empty_window_occupancy_is_zero_not_nan(self):
        empty = PipelineTrace([], 0, MorphlingConfig(), get_params("I"))
        occ = empty.occupancy()
        assert occ == dict.fromkeys(STAGES, 0.0)

    def test_steady_state_error_names_iteration_count(self):
        short = trace_blind_rotation(MorphlingConfig(), get_params("I"),
                                     iterations=2)
        with pytest.raises(ValueError, match=r"trace has 2"):
            short.steady_state_interval()
        with pytest.raises(ValueError, match=r"iterations=2"):
            short.steady_state_interval()
