"""Tests for the detailed HBM channel model."""

import pytest

from repro.core.hbm_channel import (
    BSK_PATTERN,
    KSK_PATTERN,
    AccessPattern,
    HbmChannelSpec,
    effective_bandwidth_gbs,
    stack_bandwidth_gbs,
)


class TestSpec:
    def test_peak_channel_bandwidth(self):
        # 128 bits x 3.6 Gbps = 57.6 GB/s; 8 channels = 460.8 GB/s peak.
        assert HbmChannelSpec().peak_gbs == pytest.approx(57.6)

    def test_burst_time(self):
        spec = HbmChannelSpec()
        assert spec.burst_time_ns == pytest.approx(32 / 57.6)


class TestEffectiveBandwidth:
    def test_below_peak(self):
        spec = HbmChannelSpec()
        for pattern in (BSK_PATTERN, KSK_PATTERN):
            assert effective_bandwidth_gbs(spec, pattern) < spec.peak_gbs

    def test_streaming_beats_strided(self):
        spec = HbmChannelSpec()
        assert effective_bandwidth_gbs(spec, BSK_PATTERN) > effective_bandwidth_gbs(
            spec, KSK_PATTERN
        )

    def test_perfect_hits_approach_peak(self):
        spec = HbmChannelSpec(refresh_overhead=0.0)
        ideal = AccessPattern("ideal", page_hit_rate=1.0, avg_request_bytes=32 * 64)
        assert effective_bandwidth_gbs(spec, ideal) == pytest.approx(spec.peak_gbs)

    def test_tiny_requests_waste_bursts(self):
        spec = HbmChannelSpec()
        tiny = AccessPattern("tiny", page_hit_rate=1.0, avg_request_bytes=8)
        full = AccessPattern("full", page_hit_rate=1.0, avg_request_bytes=32)
        assert effective_bandwidth_gbs(spec, tiny) < effective_bandwidth_gbs(spec, full) / 2

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            AccessPattern("bad", page_hit_rate=1.5, avg_request_bytes=64)
        with pytest.raises(ValueError):
            AccessPattern("bad", page_hit_rate=0.5, avg_request_bytes=0)


class TestStackBandwidth:
    def test_derives_the_papers_310(self):
        """The paper's 'moderate average 310 GB/s' falls out of the model."""
        assert stack_bandwidth_gbs() == pytest.approx(310.0, rel=0.05)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            stack_bandwidth_gbs(bsk_channels=9)

    def test_more_bsk_channels_raise_average(self):
        # BSK streaming is the more efficient pattern.
        assert stack_bandwidth_gbs(bsk_channels=4) > stack_bandwidth_gbs(bsk_channels=2)
