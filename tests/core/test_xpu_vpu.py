"""Tests for the XPU and VPU timing models."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.vpu import VpuModel
from repro.core.xpu import XpuModel
from repro.params import get_params


class TestXpuIterationCycles:
    """The analytical skeleton from DESIGN.md: known per-set cycle counts."""

    @pytest.mark.parametrize(
        "pset,expected_stage",
        [("I", 256), ("II", 384), ("III", 768), ("IV", 256)],
    )
    def test_steady_state_stage_cycles(self, pset, expected_stage):
        model = XpuModel(MorphlingConfig(), get_params(pset))
        bd = model.iteration_breakdown()
        assert bd.critical == pytest.approx(expected_stage + bd.overhead)

    def test_blind_rotation_time_set_i(self):
        model = XpuModel(MorphlingConfig(), get_params("I"))
        # 500 iterations x 260 cycles at 1.2 GHz ~ 0.108 ms
        assert model.blind_rotation_seconds() == pytest.approx(108e-6, rel=0.05)

    def test_fill_latency_included(self):
        model = XpuModel(MorphlingConfig(), get_params("I"))
        n = get_params("I").n
        assert model.blind_rotation_cycles() > n * model.iteration_cycles() - 1


class TestXpuReuseImpact:
    @pytest.mark.parametrize("pset", ["A", "B", "C"])
    def test_reuse_ladder_monotone(self, pset):
        p = get_params(pset)
        cycles = []
        for cfg in [
            MorphlingConfig.no_reuse(),
            MorphlingConfig.input_reuse(),
            MorphlingConfig(merge_split=False, name="io"),
            MorphlingConfig(),
        ]:
            cycles.append(XpuModel(cfg, p).iteration_cycles())
        assert cycles == sorted(cycles, reverse=True)

    def test_set_b_io_speedup_near_3x(self):
        """The paper's 2.9x for set B (ours: 3.0x, see EXPERIMENTS.md)."""
        p = get_params("B")
        no = XpuModel(MorphlingConfig.no_reuse(), p).iteration_cycles()
        io = XpuModel(MorphlingConfig(merge_split=False), p).iteration_cycles()
        assert no / io == pytest.approx(3.0, rel=0.05)

    def test_set_c_io_speedup_near_4x(self):
        """The paper's 3.9x for set C (ours: 4.0x)."""
        p = get_params("C")
        no = XpuModel(MorphlingConfig.no_reuse(), p).iteration_cycles()
        io = XpuModel(MorphlingConfig(merge_split=False), p).iteration_cycles()
        assert no / io == pytest.approx(4.0, rel=0.05)

    def test_merge_split_speeds_up(self):
        p = get_params("I")
        with_ms = XpuModel(MorphlingConfig(), p).iteration_cycles()
        without = XpuModel(MorphlingConfig(merge_split=False), p).iteration_cycles()
        assert without > with_ms

    def test_shifter_rotator_slower(self):
        p = get_params("I")
        dp = XpuModel(MorphlingConfig(), p).iteration_cycles()
        sh = XpuModel(MorphlingConfig(rotator="shifter"), p).iteration_cycles()
        assert sh > dp


class TestXpuBottleneck:
    def test_bottleneck_is_a_stage_name(self):
        bd = XpuModel(MorphlingConfig(), get_params("I")).iteration_breakdown()
        assert bd.bottleneck() in {
            "rotation", "decomposition", "forward_fft",
            "vpe_stream", "inverse_fft", "bsk_stream",
        }

    def test_no_reuse_is_transform_bound(self):
        bd = XpuModel(MorphlingConfig.no_reuse(), get_params("C")).iteration_breakdown()
        assert bd.bottleneck() in {"forward_fft", "inverse_fft"}

    def test_more_fft_units_never_slower(self):
        p = get_params("II")
        base = XpuModel(MorphlingConfig(), p).iteration_cycles()
        more = XpuModel(MorphlingConfig(fft_units_per_xpu=4), p).iteration_cycles()
        assert more <= base


class TestVpuModel:
    def test_key_switch_dominates_vpu(self):
        stages = VpuModel(MorphlingConfig(), get_params("I")).stage_cycles()
        assert stages.key_switch > stages.modulus_switch
        assert stages.key_switch > stages.sample_extract

    def test_stage_costs_scale_with_params(self):
        small = VpuModel(MorphlingConfig(), get_params("I")).stage_cycles()
        big = VpuModel(MorphlingConfig(), get_params("III")).stage_cycles()
        assert big.key_switch > small.key_switch

    def test_linear_op_cycles(self):
        vpu = VpuModel(MorphlingConfig(), get_params("I"))
        assert vpu.linear_op_cycles(2048 * 10) == pytest.approx(10.0)

    def test_linear_op_rejects_negative(self):
        with pytest.raises(ValueError):
            VpuModel(MorphlingConfig(), get_params("I")).linear_op_cycles(-1)

    def test_tail_cycles_scale_with_batch(self):
        vpu = VpuModel(MorphlingConfig(), get_params("I"))
        assert vpu.bootstrap_tail_cycles(32) == pytest.approx(2 * vpu.bootstrap_tail_cycles(16))
