"""Functional-machine cross-check against the static stage-order model.

The perf counters give the functional :class:`MorphlingMachine` an
observable stage trace (``machine/stages`` events).  These tests assert
the *dynamic* execution order agrees with the *static* models of the
same pipeline: the verifier's VER005 stage-order table and the
SW-scheduler's lowered instruction sequence for one group - a
three-way architecture/compiler/golden-model consistency check.
"""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.isa import DmaOp, VpuOp, XpuOp
from repro.core.machine import MorphlingMachine
from repro.core.scheduler import LayerDemand, SwScheduler
from repro.observability import COUNTERS, counting
from repro.tfhe import identity_test_polynomial
from repro.verify.program import _STAGE_ORDER

P = 8

#: The VER005 model keyed by the ISA op *value* - the same strings the
#: machine emits as event names.
_ORDER_BY_NAME = {op.value: rank for op, rank in _STAGE_ORDER.items()}


@pytest.fixture()
def machine(ctx):
    return MorphlingMachine(MorphlingConfig(), ctx.keyset)


def _traced_stages(ctx, machine, messages):
    tp = identity_test_polynomial(ctx.params, P)
    cts = [ctx.encrypt(m, P) for m in messages]
    with counting() as bank:
        outs = machine.bootstrap_batch(cts, tp)
        events = bank.events_on("machine/stages")
        snapshot = bank.snapshot()
    assert [ctx.decrypt(o, P) for o in outs] == messages
    return events, snapshot


def test_machine_stage_events_follow_ver005_order(ctx, machine):
    events, _ = _traced_stages(ctx, machine, [0, 1, 2, 3])
    assert events == [
        VpuOp.MODULUS_SWITCH.value,
        XpuOp.BLIND_ROTATE.value,
        VpuOp.SAMPLE_EXTRACT.value,
        VpuOp.KEY_SWITCH.value,
    ]
    ranks = [_ORDER_BY_NAME[name] for name in events]
    assert ranks == sorted(ranks), "observed stage order violates VER005"
    # Every observed stage exists in the static model at all.
    assert set(events) <= set(_ORDER_BY_NAME)


def test_machine_stage_events_match_scheduler_lowering(ctx, machine):
    """The machine executes stages in the order the compiler emits them."""
    events, _ = _traced_stages(ctx, machine, [3, 1])
    config = MorphlingConfig()
    stream = SwScheduler(config, ctx.params).schedule(
        [LayerDemand("xcheck", config.vpe_rows)]
    )
    lowered = [
        inst.op.value
        for inst in stream
        if not isinstance(inst.op, DmaOp) and inst.op is not VpuOp.P_ALU
    ]
    assert lowered == events


def test_machine_op_counts_match_batch(ctx, machine):
    _, snapshot = _traced_stages(ctx, machine, [1, 2])
    ops = snapshot["ops"]
    assert ops["machine/modulus_switches"] == 2.0
    assert ops["machine/blind_rotations"] == 2.0
    assert ops["machine/sample_extracts"] == 2.0
    assert ops["machine/key_switches"] == 2.0
    # The blind rotation really went through the double-pointer rotator.
    assert ops["rotator/streams"] > 0
    assert ops["rotator/vector_reads"] > 0


def test_machine_emits_nothing_when_disabled(ctx, machine):
    COUNTERS.reset()
    tp = identity_test_polynomial(ctx.params, P)
    machine.bootstrap(ctx.encrypt(1, P), tp)
    assert COUNTERS.events_on("machine/stages") == []
    assert len(COUNTERS) == 0
