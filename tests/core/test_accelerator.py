"""Tests for the Morphling configuration object."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.reuse import ReuseType


class TestDefaults:
    def test_paper_configuration(self):
        cfg = MorphlingConfig()
        assert cfg.num_xpus == 4
        assert cfg.vpe_rows == cfg.vpe_cols == 4
        assert cfg.bootstrap_cores == 16
        assert cfg.total_transform_units == 24  # the paper's "24 I/FFTs"
        assert cfg.vpu_lanes == 128
        assert cfg.clock_ghz == pytest.approx(1.2)

    def test_channel_split(self):
        cfg = MorphlingConfig()
        assert cfg.xpu_bandwidth_gbs == pytest.approx(310 * 2 / 8)
        assert cfg.vpu_bandwidth_gbs == pytest.approx(310 * 6 / 8)

    def test_named_variants(self):
        assert MorphlingConfig.no_reuse().reuse is ReuseType.NO_REUSE
        assert MorphlingConfig.input_reuse().reuse is ReuseType.INPUT_REUSE
        assert MorphlingConfig.morphling().reuse is ReuseType.INPUT_OUTPUT_REUSE
        assert not MorphlingConfig.no_reuse().merge_split


class TestValidation:
    def test_rejects_zero_xpus(self):
        with pytest.raises(ValueError):
            MorphlingConfig(num_xpus=0)

    def test_rejects_bad_rotator(self):
        with pytest.raises(ValueError):
            MorphlingConfig(rotator="barrel")

    def test_rejects_channel_oversubscription(self):
        with pytest.raises(ValueError):
            MorphlingConfig(xpu_hbm_channels=5, vpu_hbm_channels=5)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            MorphlingConfig(clock_ghz=0)

    def test_rejects_empty_array(self):
        with pytest.raises(ValueError):
            MorphlingConfig(vpe_rows=0)


class TestOverrides:
    def test_with_overrides_copies(self):
        cfg = MorphlingConfig()
        bigger = cfg.with_overrides(num_xpus=8)
        assert bigger.num_xpus == 8
        assert cfg.num_xpus == 4
        assert bigger.vpe_rows == cfg.vpe_rows

    def test_overrides_are_validated(self):
        with pytest.raises(ValueError):
            MorphlingConfig().with_overrides(num_xpus=-1)
