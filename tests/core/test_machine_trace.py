"""Tests for the functional machine and the pipeline trace."""

import numpy as np
import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.machine import MorphlingMachine
from repro.core.trace import render_timeline, trace_blind_rotation
from repro.core.xpu import XpuModel
from repro.params import get_params
from repro.tfhe import identity_test_polynomial, make_test_polynomial, programmable_bootstrap

P = 8


class TestMorphlingMachine:
    """Architecture-equals-algorithm verification."""

    @pytest.fixture(scope="class")
    def machine(self, ctx):
        return MorphlingMachine(MorphlingConfig(), ctx.keyset)

    def test_single_bootstrap_decrypts_correctly(self, ctx, machine):
        tp = identity_test_polynomial(ctx.params, P)
        out = machine.bootstrap(ctx.encrypt(2, P), tp)
        assert ctx.decrypt(out, P) == 2

    def test_batch_bootstrap_all_rows(self, ctx, machine):
        """All four VPE rows bootstrap together, sharing each BSK_i."""
        tp = identity_test_polynomial(ctx.params, P)
        msgs = [0, 1, 2, 3]
        outs = machine.bootstrap_batch([ctx.encrypt(m, P) for m in msgs], tp)
        assert [ctx.decrypt(o, P) for o in outs] == msgs

    def test_matches_reference_bootstrap(self, ctx, machine):
        """The machine and the scheme's golden model agree on LUT results."""
        lut = np.array([3, 2, 1, 0], dtype=np.int64)
        tp = make_test_polynomial(lut, ctx.params, P)
        ct = ctx.encrypt(1, P)
        via_machine = machine.bootstrap(ct, tp)
        via_reference = programmable_bootstrap(ct, tp, ctx.keyset)
        assert ctx.decrypt(via_machine, P) == ctx.decrypt(via_reference, P) == 2

    def test_rejects_oversized_batch(self, ctx, machine):
        tp = identity_test_polynomial(ctx.params, P)
        cts = [ctx.encrypt(0, P)] * 5
        with pytest.raises(ValueError):
            machine.bootstrap_batch(cts, tp)

    def test_rejects_wide_k_on_narrow_array(self, ctx):
        with pytest.raises(ValueError):
            MorphlingMachine(MorphlingConfig(vpe_cols=1), ctx.keyset)


class TestPipelineTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return trace_blind_rotation(MorphlingConfig(), get_params("I"), iterations=8)

    def test_steady_state_matches_analytic_model(self, trace):
        analytic = XpuModel(MorphlingConfig(), get_params("I")).iteration_cycles()
        assert trace.steady_state_interval() == pytest.approx(analytic)

    def test_stages_never_overlap_on_one_unit(self, trace):
        from repro.core.trace import STAGES

        for stage in STAGES:
            spans = sorted(trace.stage_spans(stage), key=lambda s: s.start)
            for prev, cur in zip(spans, spans[1:]):
                assert cur.start >= prev.end

    def test_dataflow_order_within_iteration(self, trace):
        """Rotation -> decomposition -> FFT -> VPE -> IFFT per iteration."""
        from repro.core.trace import STAGES

        for i in range(trace.iterations):
            spans = {s.stage: s for s in trace.spans if s.iteration == i}
            for up, down in zip(STAGES, STAGES[1:]):
                assert spans[down].start >= spans[up].end

    def test_occupancy_identifies_bottleneck(self, trace):
        occ = trace.occupancy()
        assert trace.bottleneck() == max(occ, key=occ.get)
        assert all(0 < v <= 1 for v in occ.values())

    def test_unknown_stage_rejected(self, trace):
        with pytest.raises(KeyError):
            trace.stage_spans("alu")

    def test_needs_enough_iterations(self):
        short = trace_blind_rotation(MorphlingConfig(), get_params("I"), iterations=2)
        with pytest.raises(ValueError):
            short.steady_state_interval()

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            trace_blind_rotation(MorphlingConfig(), get_params("I"), iterations=0)

    def test_render_timeline(self, trace):
        art = render_timeline(trace)
        assert "rotation" in art
        assert "inverse_fft" in art
        assert "|" in art

    def test_no_reuse_trace_is_transform_bound(self):
        trace = trace_blind_rotation(
            MorphlingConfig.no_reuse(), get_params("C"), iterations=6
        )
        assert trace.bottleneck() in ("forward_fft", "inverse_fft")
