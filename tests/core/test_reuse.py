"""Tests for the transform-domain reuse analysis (Fig. 3 combinatorics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reuse import (
    ReuseType,
    acc_input_reuse_factor,
    acc_output_reuse_factor,
    bsk_reuse_factor,
    reduction_vs_no_reuse,
    transforms_per_bootstrap,
    transforms_per_external_product,
)
from repro.params import get_params

ks = st.integers(min_value=1, max_value=4)
lbs = st.integers(min_value=1, max_value=6)


class TestPerExternalProduct:
    def test_no_reuse_counts(self):
        c = transforms_per_external_product(3, 3, ReuseType.NO_REUSE)
        assert c.forward == c.inverse == 48
        assert c.total == 96

    def test_input_reuse_counts(self):
        c = transforms_per_external_product(3, 3, ReuseType.INPUT_REUSE)
        assert c.forward == 12
        assert c.inverse == 48

    def test_input_output_reuse_counts(self):
        c = transforms_per_external_product(3, 3, ReuseType.INPUT_OUTPUT_REUSE)
        assert c.forward == 12
        assert c.inverse == 4
        assert c.total == 16

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            transforms_per_external_product(0, 1, ReuseType.NO_REUSE)
        with pytest.raises(ValueError):
            transforms_per_external_product(1, 0, ReuseType.NO_REUSE)

    @given(ks, lbs)
    @settings(max_examples=60, deadline=None)
    def test_reuse_strictly_ordered(self, k, l_b):
        no = transforms_per_external_product(k, l_b, ReuseType.NO_REUSE).total
        inp = transforms_per_external_product(k, l_b, ReuseType.INPUT_REUSE).total
        both = transforms_per_external_product(k, l_b, ReuseType.INPUT_OUTPUT_REUSE).total
        assert no > inp > both or (k == 0)

    @given(ks, lbs)
    @settings(max_examples=60, deadline=None)
    def test_formulas(self, k, l_b):
        no = transforms_per_external_product(k, l_b, ReuseType.NO_REUSE)
        assert no.total == 2 * (k + 1) ** 2 * l_b
        both = transforms_per_external_product(k, l_b, ReuseType.INPUT_OUTPUT_REUSE)
        assert both.total == (k + 1) * l_b + (k + 1)


class TestFig3Numbers:
    """The paper's headline numbers are exact consequences."""

    def test_46752_total_for_set_c(self):
        p = get_params("C")
        assert transforms_per_bootstrap(p, ReuseType.NO_REUSE).total == 46752

    def test_25_percent_reduction_at_1_1(self):
        assert reduction_vs_no_reuse(1, 1, ReuseType.INPUT_REUSE) == pytest.approx(0.25)

    def test_37_5_percent_reduction_at_3_3(self):
        assert reduction_vs_no_reuse(3, 3, ReuseType.INPUT_REUSE) == pytest.approx(0.375)

    def test_83_3_percent_reduction_at_3_3(self):
        assert reduction_vs_no_reuse(3, 3, ReuseType.INPUT_OUTPUT_REUSE) == pytest.approx(
            5 / 6, abs=1e-9
        )

    def test_50_percent_reduction_at_1_1_io(self):
        assert reduction_vs_no_reuse(1, 1, ReuseType.INPUT_OUTPUT_REUSE) == pytest.approx(0.5)

    @given(ks, lbs)
    @settings(max_examples=60, deadline=None)
    def test_reduction_grows_with_parameters(self, k, l_b):
        """Fig. 3's observation: more (k, l_b) -> more reduction."""
        r1 = reduction_vs_no_reuse(k, l_b, ReuseType.INPUT_OUTPUT_REUSE)
        r2 = reduction_vs_no_reuse(k + 1, l_b, ReuseType.INPUT_OUTPUT_REUSE)
        assert r2 >= r1 - 1e-12


class TestReuseFactors:
    def test_acc_input_factor(self):
        assert acc_input_reuse_factor(2) == 3

    def test_acc_output_factor(self):
        assert acc_output_reuse_factor(2, 4) == 12

    def test_bsk_reuse_default_is_64(self):
        assert bsk_reuse_factor(4, 4, 4) == 64

    def test_bsk_reuse_validates(self):
        with pytest.raises(ValueError):
            bsk_reuse_factor(0, 4, 4)
