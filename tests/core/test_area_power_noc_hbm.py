"""Tests for the area/power, NoC, and HBM models."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.area_power import TABLE_IV_PAPER, AreaPowerModel, ComponentCost
from repro.core.hbm import HbmModel
from repro.core.noc import NocModel
from repro.core.xpu import XpuModel
from repro.params import get_params


class TestComponentCost:
    def test_arithmetic(self):
        c = ComponentCost(1.0, 2.0)
        assert (2 * c).area_mm2 == 2.0
        assert (c + c).power_w == 4.0


class TestTableIVRegression:
    @pytest.fixture()
    def model(self):
        return AreaPowerModel(MorphlingConfig())

    def test_total_area_matches_paper(self, model):
        assert model.total().area_mm2 == pytest.approx(
            TABLE_IV_PAPER["total"].area_mm2, rel=0.01
        )

    def test_total_power_matches_paper(self, model):
        assert model.total().power_w == pytest.approx(
            TABLE_IV_PAPER["total"].power_w, rel=0.01
        )

    def test_xpu_block_matches_paper(self, model):
        assert model.xpu_cost().area_mm2 == pytest.approx(
            TABLE_IV_PAPER["xpu"].area_mm2, rel=0.01
        )

    @pytest.mark.parametrize(
        "row,paper_area",
        [("VPU", 0.22), ("NoC", 0.21), ("HBM2e PHY", 14.90),
         ("Private-A1 Buffer (4 MB)", 8.31), ("Shared Buffer (1 MB)", 2.02)],
    )
    def test_breakdown_rows(self, model, row, paper_area):
        assert model.breakdown()[row].area_mm2 == pytest.approx(paper_area, rel=0.01)

    def test_area_scales_with_xpus(self):
        small = AreaPowerModel(MorphlingConfig(num_xpus=2)).total().area_mm2
        big = AreaPowerModel(MorphlingConfig(num_xpus=8)).total().area_mm2
        assert big > small

    def test_area_scales_with_buffers(self):
        mib = 1024 * 1024
        small = AreaPowerModel(MorphlingConfig(private_a1_bytes=2 * mib)).total()
        big = AreaPowerModel(MorphlingConfig(private_a1_bytes=8 * mib)).total()
        assert big.area_mm2 > small.area_mm2
        assert big.power_w > small.power_w


class TestNoc:
    def test_expected_links(self):
        noc = NocModel(MorphlingConfig())
        names = {l.name for l in noc.links}
        assert "private_a2_to_xpu" in names
        assert noc.link("private_a2_to_xpu").topology == "multicast"
        assert not noc.link("private_a2_to_xpu").bidirectional

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            NocModel(MorphlingConfig()).link("nope")

    def test_flows_fit_noc_budget(self):
        """The paper: the NoC supports 4.8 TB/s chip-wide."""
        cfg = MorphlingConfig()
        for pset in ["I", "II", "III", "IV"]:
            p = get_params(pset)
            iteration = XpuModel(cfg, p).iteration_cycles()
            util = NocModel(cfg).total_utilization(p, iteration)
            assert 0 < util < 1.0, pset

    def test_invalid_iteration_rejected(self):
        with pytest.raises(ValueError):
            NocModel(MorphlingConfig()).steady_state_flows_gbs(get_params("I"), 0)


class TestHbm:
    def test_reuse_divides_bsk_traffic(self):
        hbm = HbmModel(MorphlingConfig())
        p = get_params("I")
        t1 = hbm.per_bootstrap_traffic(p, bsk_reuse=1, ksk_reuse=64)
        t64 = hbm.per_bootstrap_traffic(p, bsk_reuse=64, ksk_reuse=64)
        assert t1.bsk_bytes == pytest.approx(64 * t64.bsk_bytes)

    def test_rejects_bad_reuse(self):
        hbm = HbmModel(MorphlingConfig())
        with pytest.raises(ValueError):
            hbm.per_bootstrap_traffic(get_params("I"), 0, 1)

    def test_channel_split_respected(self):
        hbm = HbmModel(MorphlingConfig())
        gb = 1e9
        assert hbm.xpu_transfer_seconds(77.5 * gb) == pytest.approx(1.0)
        assert hbm.vpu_transfer_seconds(232.5 * gb) == pytest.approx(1.0)

    def test_sustainable_rate_monotone_in_reuse(self):
        hbm = HbmModel(MorphlingConfig())
        p = get_params("I")
        r16 = hbm.sustainable_bootstrap_rate(p, 16, 64)
        r64 = hbm.sustainable_bootstrap_rate(p, 64, 64)
        assert r64 > r16

    def test_default_memory_feeds_compute(self):
        """With full reuse the memory system outruns the XPUs (set I)."""
        cfg = MorphlingConfig()
        hbm = HbmModel(cfg)
        rate = hbm.sustainable_bootstrap_rate(get_params("I"), 64, 64)
        assert rate > 147_000
