"""Tests for buffer capacity arithmetic and the double-pointer rotator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import MorphlingConfig
from repro.core.buffers import (
    DoublePointerRotator,
    acc_stream_capacity,
    buffer_budget,
    shifter_stall_cycles,
)
from repro.params import get_params
from repro.tfhe.polynomial import monomial_mul

MIB = 1024 * 1024


class TestStreamCapacity:
    def test_default_set_i_gives_four_streams(self):
        assert acc_stream_capacity(MorphlingConfig(), get_params("I")) == 4

    def test_set_iii_gives_two_streams(self):
        assert acc_stream_capacity(MorphlingConfig(), get_params("III")) == 2

    def test_capped_at_max(self):
        cfg = MorphlingConfig(private_a1_bytes=64 * MIB)
        assert acc_stream_capacity(cfg, get_params("I")) == cfg.max_acc_streams

    def test_small_buffer_gives_zero(self):
        cfg = MorphlingConfig(private_a1_bytes=64 * 1024)
        assert acc_stream_capacity(cfg, get_params("III")) == 0

    def test_monotone_in_buffer_size(self):
        p = get_params("I")
        caps = [
            acc_stream_capacity(MorphlingConfig(private_a1_bytes=s * MIB), p)
            for s in (1, 2, 4, 8)
        ]
        assert caps == sorted(caps)

    def test_more_xpus_need_more_buffer(self):
        p = get_params("I")
        four = acc_stream_capacity(MorphlingConfig(num_xpus=4), p)
        eight = acc_stream_capacity(MorphlingConfig(num_xpus=8), p)
        assert eight <= four


class TestBufferBudget:
    def test_default_workloads_fit(self):
        cfg = MorphlingConfig()
        for name in ["I", "II", "III", "IV", "B", "C"]:
            budget = buffer_budget(cfg, get_params(name))
            assert budget.fits(cfg), name

    def test_budget_scales_with_streams(self):
        cfg = MorphlingConfig()
        p = get_params("I")
        one = buffer_budget(cfg, p, streams=1)
        two = buffer_budget(cfg, p, streams=2)
        assert two.private_a1 > one.private_a1
        assert two.private_a2 == one.private_a2  # A2 holds BSK_i, not streams


class TestDoublePointerRotator:
    @pytest.fixture()
    def poly(self, rng):
        return rng.integers(0, 1 << 32, size=64, dtype=np.uint64).astype(np.uint32)

    def test_pointer_a_returns_original(self, poly):
        rot = DoublePointerRotator(poly)
        a, _ = rot.stream(rotation=17)
        np.testing.assert_array_equal(a, poly)

    @pytest.mark.parametrize("t", [0, 1, 7, 63, 64, 100, 127])
    def test_pointer_b_matches_monomial_mul(self, poly, t):
        rot = DoublePointerRotator(poly)
        _, b = rot.stream(rotation=t)
        np.testing.assert_array_equal(b, monomial_mul(poly, t))

    @given(st.integers(-300, 300), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_property_all_rotations(self, t, seed):
        r = np.random.default_rng(seed)
        poly = r.integers(0, 1 << 32, size=32, dtype=np.uint64).astype(np.uint32)
        rot = DoublePointerRotator(poly, vector_width=8)
        _, b = rot.stream(rotation=t)
        np.testing.assert_array_equal(b, monomial_mul(poly, t))

    def test_storage_not_mutated_by_reads(self, poly):
        rot = DoublePointerRotator(poly)
        rot.stream(rotation=33)
        _, b = rot.stream(rotation=33)
        np.testing.assert_array_equal(b, monomial_mul(poly, 33))

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            DoublePointerRotator(np.zeros(10, dtype=np.uint32))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            DoublePointerRotator(np.zeros((2, 8), dtype=np.uint32))

    def test_chunk_out_of_range(self, poly):
        rot = DoublePointerRotator(poly)
        with pytest.raises(IndexError):
            rot.read_vector(8, 1)


class TestShifterStalls:
    def test_double_pointer_has_no_stalls(self):
        cfg = MorphlingConfig(rotator="double_pointer")
        assert shifter_stall_cycles(get_params("I"), cfg) == 0.0

    def test_shifter_stalls_positive(self):
        cfg = MorphlingConfig(rotator="shifter")
        assert shifter_stall_cycles(get_params("I"), cfg) > 0

    def test_shifter_stalls_grow_with_n(self):
        cfg = MorphlingConfig(rotator="shifter")
        assert shifter_stall_cycles(get_params("III"), cfg) > shifter_stall_cycles(
            get_params("I"), cfg
        )
