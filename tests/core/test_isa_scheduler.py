"""Tests for the ISA and the SW/HW co-scheduler."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.isa import DmaOp, Engine, Instruction, InstructionStream, VpuOp, XpuOp
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler, run_workload
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params


class TestInstruction:
    def test_engine_dispatch(self):
        assert Instruction(0, XpuOp.BLIND_ROTATE, 0).engine is Engine.XPU
        assert Instruction(0, VpuOp.KEY_SWITCH, 0).engine is Engine.VPU
        assert Instruction(0, DmaOp.LOAD_BSK, 0).engine is Engine.DMA

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            Instruction(0, VpuOp.P_ALU, 0, macs=-1)

    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction(0, "not-an-op", 0)


class TestInstructionStream:
    def test_emit_assigns_sequential_ids(self):
        s = InstructionStream()
        a = s.emit(DmaOp.LOAD_LWE, 0)
        b = s.emit(VpuOp.MODULUS_SWITCH, 0, depends_on=(a.inst_id,))
        assert b.inst_id == a.inst_id + 1

    def test_forward_dependency_rejected(self):
        s = InstructionStream()
        with pytest.raises(ValueError):
            s.emit(VpuOp.MODULUS_SWITCH, 0, depends_on=(99,))

    def test_by_engine_filters(self):
        s = InstructionStream()
        s.emit(DmaOp.LOAD_LWE, 0)
        s.emit(XpuOp.BLIND_ROTATE, 0)
        assert len(s.by_engine(Engine.DMA)) == 1
        assert len(s.by_engine(Engine.XPU)) == 1


class TestSwScheduler:
    @pytest.fixture()
    def sched(self):
        return SwScheduler(MorphlingConfig(), get_params("I"))

    def test_group_size_is_64_for_set_i(self, sched):
        """16 bootstrap cores x 4 resident streams (Fig. 6's grouping)."""
        assert sched.group_size == 64

    def test_dependency_chain_per_group(self, sched):
        stream = sched.schedule([LayerDemand("l", 64)])
        ops = [i.op for i in stream]
        # One group: 3 loads, MS, BR, SE, KS, store.
        assert ops.count(XpuOp.BLIND_ROTATE) == 1
        br = next(i for i in stream if i.op is XpuOp.BLIND_ROTATE)
        ms = next(i for i in stream if i.op is VpuOp.MODULUS_SWITCH)
        ks = next(i for i in stream if i.op is VpuOp.KEY_SWITCH)
        assert ms.inst_id in br.depends_on
        se = next(i for i in stream if i.op is VpuOp.SAMPLE_EXTRACT)
        assert br.inst_id in se.depends_on
        assert se.inst_id in ks.depends_on

    def test_large_layer_splits_into_groups(self, sched):
        stream = sched.schedule([LayerDemand("l", 200)])
        brs = [i for i in stream if i.op is XpuOp.BLIND_ROTATE]
        assert len(brs) == 4  # ceil(200/64)
        assert sum(i.count for i in brs) == 200

    def test_layer_barrier_enforced(self, sched):
        stream = sched.schedule([LayerDemand("a", 10), LayerDemand("b", 10)])
        stores = [i for i in stream if i.op is DmaOp.STORE_LWE]
        second_layer_loads = [
            i for i in stream
            if i.op is DmaOp.LOAD_LWE and i.group == 1
        ]
        assert second_layer_loads
        assert stores[0].inst_id in second_layer_loads[0].depends_on

    def test_linear_macs_emit_palu(self, sched):
        stream = sched.schedule([LayerDemand("l", 10, linear_macs=1000)])
        palu = [i for i in stream if i.op is VpuOp.P_ALU]
        assert len(palu) == 1
        assert palu[0].macs == 1000

    def test_stream_validates(self, sched):
        stream = sched.schedule([LayerDemand("l", 100), LayerDemand("m", 50)])
        stream.validate_dependencies()  # must not raise


class TestHwScheduler:
    def test_empty_stream_zero_time(self):
        hw = HwScheduler(MorphlingConfig(), get_params("I"))
        res = hw.execute(InstructionStream())
        assert res.total_seconds == 0.0

    def test_steady_state_approaches_simulator_throughput(self):
        """A long independent workload must match the analytic model."""
        cfg, p = MorphlingConfig(), get_params("I")
        n_pbs = 64 * 40
        res = run_workload(cfg, p, [LayerDemand("big", n_pbs)])
        scheduled_thr = n_pbs / res.total_seconds
        analytic = simulate_bootstrap(cfg, p).throughput_bs
        assert scheduled_thr == pytest.approx(analytic, rel=0.10)

    def test_sequential_layers_slower_than_one_big_layer(self):
        cfg, p = MorphlingConfig(), get_params("I")
        one = run_workload(cfg, p, [LayerDemand("big", 256)])
        many = run_workload(cfg, p, [LayerDemand(f"l{i}", 64) for i in range(4)])
        assert many.total_seconds >= one.total_seconds

    def test_padding_waste_reported(self):
        cfg, p = MorphlingConfig(), get_params("I")
        res = run_workload(cfg, p, [LayerDemand("tiny", 3)])
        assert res.padding_waste > 0.5  # 3 of 16 slots in one wave

    def test_busy_times_below_total(self):
        cfg, p = MorphlingConfig(), get_params("I")
        res = run_workload(cfg, p, [LayerDemand("l", 128)])
        for busy in res.engine_busy_seconds.values():
            assert busy <= res.total_seconds + 1e-12

    def test_utilization_dict_keys(self):
        cfg, p = MorphlingConfig(), get_params("I")
        res = run_workload(cfg, p, [LayerDemand("l", 64)])
        assert set(res.utilization) == {"xpu", "vpu", "dma_xpu", "dma_vpu"}


class TestLayerDemand:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LayerDemand("bad", -1)
        with pytest.raises(ValueError):
            LayerDemand("bad", 1, linear_macs=-5)
