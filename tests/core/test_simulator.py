"""Tests for the full-accelerator performance simulator.

The headline regression: Table V latencies and throughputs for sets I-IV
must come out within a few percent of the paper.
"""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import MorphlingSimulator, simulate_bootstrap
from repro.params import get_params

PAPER_TABLE_V = {
    "I": (0.11, 147615),
    "II": (0.20, 78692),
    "III": (0.38, 41850),
    "IV": (0.16, 98933),
}


class TestTableVRegression:
    @pytest.mark.parametrize("pset", sorted(PAPER_TABLE_V))
    def test_latency_matches_paper(self, pset):
        paper_latency_ms, _ = PAPER_TABLE_V[pset]
        r = simulate_bootstrap(MorphlingConfig(), get_params(pset))
        assert r.bootstrap_latency_ms == pytest.approx(paper_latency_ms, rel=0.08)

    @pytest.mark.parametrize("pset", sorted(PAPER_TABLE_V))
    def test_throughput_matches_paper(self, pset):
        _, paper_thr = PAPER_TABLE_V[pset]
        r = simulate_bootstrap(MorphlingConfig(), get_params(pset))
        assert r.throughput_bs == pytest.approx(paper_thr, rel=0.08)

    @pytest.mark.parametrize("pset", sorted(PAPER_TABLE_V))
    def test_default_build_is_compute_bound(self, pset):
        r = simulate_bootstrap(MorphlingConfig(), get_params(pset))
        assert r.bottleneck == "xpu_compute"


class TestLatencyFractions:
    @pytest.mark.parametrize("pset", ["I", "II", "III"])
    def test_xpu_dominates(self, pset):
        """Fig. 7-a: XPU accounts for 88-93% (ours 87-92%)."""
        r = simulate_bootstrap(MorphlingConfig(), get_params(pset))
        assert r.latency_fractions()["xpu_blind_rotation"] > 0.85

    def test_fractions_sum_to_one(self):
        fr = simulate_bootstrap(MorphlingConfig(), get_params("I")).latency_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_key_switch_is_biggest_vpu_stage(self):
        fr = simulate_bootstrap(MorphlingConfig(), get_params("I")).latency_fractions()
        assert fr["vpu_key_switch"] > fr["vpu_modulus_switch"]
        assert fr["vpu_key_switch"] > fr["vpu_sample_extract"]

    @pytest.mark.parametrize("clock_ghz", [0.6, 1.0, 2.4])
    def test_fractions_clock_invariant(self, clock_ghz):
        """Regression: the VPU terms used to be divided by a hard-coded
        1 GHz clock while the XPU term carried real seconds at
        ``clock_ghz``, skewing the shares at any non-1 GHz clock.  Both
        sides are pure cycle ratios, so the fractions must not move with
        the clock at all."""
        p = get_params("I")
        base = simulate_bootstrap(MorphlingConfig(clock_ghz=1.0), p)
        scaled = simulate_bootstrap(MorphlingConfig(clock_ghz=clock_ghz), p)
        for key, value in base.latency_fractions().items():
            assert scaled.latency_fractions()[key] == pytest.approx(value)

    def test_fractions_match_cycle_arithmetic_at_default_clock(self):
        """Cross-check against first principles at the 1.2 GHz default."""
        r = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        clock_hz = r.clock_ghz * 1e9
        xpu_cycles = r.xpu_busy_s * clock_hz
        vpu = r.vpu_stages
        total = xpu_cycles + r.group_size * vpu.total
        fr = r.latency_fractions()
        assert fr["xpu_blind_rotation"] == pytest.approx(xpu_cycles / total)
        assert fr["vpu_key_switch"] == pytest.approx(
            r.group_size * vpu.key_switch / total
        )


class TestResourceSensitivity:
    def test_halved_a1_becomes_bandwidth_bound(self):
        """Fig. 8-a: below the 4 MB knee, set III goes BSK-bandwidth-bound."""
        cfg = MorphlingConfig(private_a1_bytes=2 * 1024 * 1024)
        r = simulate_bootstrap(cfg, get_params("III"))
        assert r.bottleneck == "bsk_bandwidth"
        full = simulate_bootstrap(MorphlingConfig(), get_params("III"))
        assert r.throughput_bs < full.throughput_bs

    def test_tiny_a1_still_degrades(self):
        cfg = MorphlingConfig(private_a1_bytes=512 * 1024)
        r = simulate_bootstrap(cfg, get_params("III"))
        full = simulate_bootstrap(MorphlingConfig(), get_params("III"))
        assert r.throughput_bs < full.throughput_bs

    def test_throughput_monotone_in_a1(self):
        thr = [
            simulate_bootstrap(
                MorphlingConfig(private_a1_bytes=mb * 1024 * 1024), get_params("III")
            ).throughput_bs
            for mb in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(thr, thr[1:]))

    def test_xpu_scaling_linear_to_four(self):
        p = get_params("III")
        thr = {
            n: simulate_bootstrap(MorphlingConfig(num_xpus=n), p).throughput_bs
            for n in (1, 2, 4)
        }
        assert thr[2] == pytest.approx(2 * thr[1], rel=0.05)
        assert thr[4] == pytest.approx(4 * thr[1], rel=0.05)

    def test_xpu_scaling_degrades_past_four(self):
        """Fig. 8-b: with fixed A1/bandwidth, the fifth XPU *hurts* (set III):
        residency drops to one stream and BSK bandwidth becomes the limit."""
        p = get_params("III")
        four = simulate_bootstrap(MorphlingConfig(num_xpus=4), p)
        five = simulate_bootstrap(MorphlingConfig(num_xpus=5), p)
        assert five.throughput_bs < four.throughput_bs
        assert five.bottleneck == "bsk_bandwidth"

    def test_more_bandwidth_unlocks_more_xpus(self):
        p = get_params("I")
        base = MorphlingConfig(num_xpus=8, private_a1_bytes=8 * 1024 * 1024)
        fat = base.with_overrides(hbm_bandwidth_gbs=620.0)
        assert (
            simulate_bootstrap(fat, p).throughput_bs
            >= simulate_bootstrap(base, p).throughput_bs
        )

    def test_zero_capacity_stall_degrades_not_crashes(self):
        cfg = MorphlingConfig(private_a1_bytes=64 * 1024)
        r = simulate_bootstrap(cfg, get_params("III"))
        assert r.acc_streams == 1
        assert r.throughput_bs > 0


class TestReportContents:
    def test_reuse_factors_default(self):
        r = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        assert r.bsk_reuse == 64
        assert r.ksk_reuse == r.group_size == 64

    def test_traffic_positive(self):
        r = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        assert r.traffic.bsk_bytes > 0
        assert r.traffic.total_bytes > r.traffic.bsk_bytes

    def test_simulator_class_matches_wrapper(self):
        cfg, p = MorphlingConfig(), get_params("II")
        a = MorphlingSimulator(cfg, p).run()
        b = simulate_bootstrap(cfg, p)
        assert a.throughput_bs == b.throughput_bs
