"""Tests for multi-client scheduling and the derived efficiency metrics."""

import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.area_power import AreaPowerModel
from repro.core.isa import DmaOp, XpuOp
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params


@pytest.fixture()
def sched():
    return SwScheduler(MorphlingConfig(), get_params("I"))


@pytest.fixture()
def hw():
    return HwScheduler(MorphlingConfig(), get_params("I"))


class TestMultiClientScheduling:
    def test_clients_never_share_groups(self, sched):
        stream = sched.schedule_clients({
            "alice": [LayerDemand("a", 32)],
            "bob": [LayerDemand("b", 32)],
        })
        groups_by_br = {}
        for inst in stream:
            if inst.op is XpuOp.BLIND_ROTATE:
                groups_by_br.setdefault(inst.group, inst.count)
        # Two separate half-filled groups, not one merged full group.
        assert len(groups_by_br) == 2
        assert all(count == 32 for count in groups_by_br.values())

    def test_single_client_matches_plain_schedule(self, sched, hw):
        plain = sched.schedule([LayerDemand("a", 128)])
        multi = sched.schedule_clients({"only": [LayerDemand("a", 128)]})
        assert hw.execute(multi).total_seconds == pytest.approx(
            hw.execute(plain).total_seconds
        )

    def test_multi_tenancy_costs_key_traffic(self, sched):
        """Two clients double the evaluation-key loads for the same PBS count."""
        one = sched.schedule([LayerDemand("a", 64)])
        two = sched.schedule_clients({
            "alice": [LayerDemand("a", 32)],
            "bob": [LayerDemand("b", 32)],
        })
        bsk_loads = lambda s: sum(1 for i in s if i.op is DmaOp.LOAD_BSK)
        assert bsk_loads(two) == 2 * bsk_loads(one)

    def test_multi_tenancy_padding_slows_execution(self, sched, hw):
        # 40 + 40 ciphertexts need 3 + 3 = 6 bootstrap waves split across
        # clients, vs 5 waves when one client owns all 80.
        one = hw.execute(sched.schedule([LayerDemand("a", 80)]))
        two = hw.execute(sched.schedule_clients({
            "alice": [LayerDemand("a", 40)],
            "bob": [LayerDemand("b", 40)],
        }))
        assert two.total_seconds > one.total_seconds
        assert two.padding_waste > one.padding_waste

    def test_dependencies_stay_within_client(self, sched):
        stream = sched.schedule_clients({
            "alice": [LayerDemand("a1", 16), LayerDemand("a2", 16)],
            "bob": [LayerDemand("b1", 16)],
        })
        stream.validate_dependencies()

    def test_empty_clients_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.schedule_clients({})


class TestEfficiencyMetrics:
    def test_energy_per_bootstrap(self):
        model = AreaPowerModel(MorphlingConfig())
        sim = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        mj = model.energy_per_bootstrap_mj(sim.throughput_bs)
        # 53 W at ~147.5k BS/s -> ~0.36 mJ; beats Strix's 1.03 mJ.
        assert mj == pytest.approx(0.36, abs=0.03)
        assert mj < 1.03

    def test_throughput_density_beats_strix(self):
        model = AreaPowerModel(MorphlingConfig())
        sim = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        density = model.throughput_per_mm2(sim.throughput_bs)
        assert density > 74696 / 141.37  # Strix's published density

    def test_validation(self):
        model = AreaPowerModel(MorphlingConfig())
        with pytest.raises(ValueError):
            model.energy_per_bootstrap_mj(0)
        with pytest.raises(ValueError):
            model.throughput_per_mm2(-1)
