"""Tests for the end-to-end compilation facade."""

import pytest

from repro.apps import Workload, xgboost_workload
from repro.core.accelerator import MorphlingConfig
from repro.core.compiler import compile_and_run, compile_program
from repro.core.scheduler import LayerDemand
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params
from repro.tfhe.boolean import Circuit, ripple_carry_adder


def adder_circuit(width=4):
    c = Circuit()
    a = [c.add_input(f"a{i}") for i in range(width)]
    b = [c.add_input(f"b{i}") for i in range(width)]
    ripple_carry_adder(c, a, b)
    return c


class TestCompileProgram:
    def test_workload_lowered(self):
        name, stream, binary = compile_program(
            xgboost_workload(), MorphlingConfig(), get_params("III")
        )
        assert name == "XG-Boost"
        assert len(stream) > 0
        assert len(binary) > 0

    def test_circuit_lowered(self):
        name, stream, _ = compile_program(
            adder_circuit(), MorphlingConfig(), get_params("I")
        )
        assert name == "circuit"
        from repro.core.isa import XpuOp

        total = sum(i.count for i in stream if i.op is XpuOp.BLIND_ROTATE)
        assert total == adder_circuit().gate_count()

    def test_layer_list_lowered(self):
        name, stream, _ = compile_program(
            [LayerDemand("x", 10)], MorphlingConfig(), get_params("I")
        )
        assert name == "layers"

    def test_binary_decodes_back(self):
        from repro.core.isa_encoding import decode_stream

        _, stream, binary = compile_program(
            xgboost_workload(), MorphlingConfig(), get_params("III")
        )
        assert decode_stream(binary) == list(stream)

    def test_bad_program_rejected(self):
        with pytest.raises(TypeError):
            compile_program("not a program", MorphlingConfig(), get_params("I"))
        with pytest.raises(TypeError):
            compile_program([], MorphlingConfig(), get_params("I"))


class TestCompileAndRun:
    def test_report_fields(self):
        report = compile_and_run(xgboost_workload(), params=get_params("III"))
        assert report.total_bootstraps == xgboost_workload().total_bootstraps
        assert report.total_seconds > 0
        assert 0 < report.xpu_utilization <= 1
        assert "XG-Boost" in report.summary()

    def test_rate_bounded_by_simulator(self):
        params = get_params("I")
        big = Workload("big", tuple([LayerDemand("l", 64 * 20)]))
        report = compile_and_run(big, params=params)
        analytic = simulate_bootstrap(MorphlingConfig(), params).throughput_bs
        assert report.bootstraps_per_second <= analytic * 1.05

    def test_defaults_applied(self):
        report = compile_and_run([LayerDemand("x", 16)])
        assert report.total_seconds > 0

    def test_binary_smaller_than_data(self):
        report = compile_and_run(xgboost_workload(), params=get_params("III"))
        # instruction bytes are negligible next to the BSK alone
        assert report.binary_bytes < get_params("III").bsk_bytes / 100
