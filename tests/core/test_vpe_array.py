"""Tests for the systolic VPE-array mapping and functional model."""

import numpy as np
import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.vpe_array import VpeArray, map_external_product
from repro.params import get_params
from repro.tfhe.ggsw import external_product_transform, ggsw_encrypt
from repro.tfhe.glwe import glwe_encrypt, glwe_keygen
from repro.tfhe.torus import encode_message

K, N = 1, 64


@pytest.fixture(scope="module")
def gkey():
    return glwe_keygen(K, N, np.random.default_rng(21))


class TestMapping:
    def test_k1_uses_level_split(self):
        mapping = map_external_product(MorphlingConfig(), get_params("I"))
        # k+1 = 2 < 4 columns, but (k+1)*l_b = 4 >= 4: spare columns split levels.
        assert mapping.cols_used == 4
        assert mapping.column_passes == 1

    def test_k3_fills_columns(self):
        mapping = map_external_product(MorphlingConfig(), get_params("C"))
        assert mapping.cols_used == 4
        assert mapping.column_passes == 1

    def test_wide_k_needs_multiple_passes(self):
        cfg = MorphlingConfig(vpe_cols=2)
        mapping = map_external_product(cfg, get_params("C"))  # k+1 = 4 > 2
        assert mapping.column_passes == 2

    def test_utilization_bounded(self):
        for pset in ["I", "B", "C"]:
            m = map_external_product(MorphlingConfig(), get_params(pset))
            assert 0 < m.utilization <= 1.0


class TestFunctionalArray:
    def test_matches_reference_external_product(self, gkey, rng):
        array = VpeArray(rows=4, cols=4)
        g = ggsw_encrypt(1, gkey, 7, 3, rng, noise_log2=-30.0)
        batch = [
            glwe_encrypt(encode_message(rng.integers(0, 8, size=N), 16), gkey, rng,
                         noise_log2=-30.0)
            for _ in range(3)
        ]
        outputs = array.external_product_batch(g, batch)
        for ct, out in zip(batch, outputs):
            expected = external_product_transform(g, ct)
            np.testing.assert_array_equal(out.data, expected.data)

    def test_rejects_oversized_batch(self, gkey, rng):
        array = VpeArray(rows=2, cols=4)
        g = ggsw_encrypt(1, gkey, 7, 2, rng)
        batch = [glwe_encrypt(np.zeros(N, np.uint32), gkey, rng) for _ in range(3)]
        with pytest.raises(ValueError):
            array.external_product_batch(g, batch)

    def test_rejects_too_many_columns(self, rng):
        wide_key = glwe_keygen(4, N, rng)  # k+1 = 5 > 4 columns
        g = ggsw_encrypt(1, wide_key, 7, 1, rng)
        array = VpeArray(rows=4, cols=4)
        ct = glwe_encrypt(np.zeros(N, np.uint32), wide_key, rng)
        with pytest.raises(ValueError):
            array.external_product_batch(g, [ct])

    def test_rejects_mismatched_operand(self, gkey, rng):
        array = VpeArray()
        g = ggsw_encrypt(1, gkey, 7, 2, rng)
        other_key = glwe_keygen(K, 2 * N, rng)
        ct = glwe_encrypt(np.zeros(2 * N, np.uint32), other_key, rng)
        with pytest.raises(ValueError):
            array.external_product_batch(g, [ct])

    def test_rejects_degenerate_array(self):
        with pytest.raises(ValueError):
            VpeArray(rows=0, cols=4)
