"""Tests for the binary ISA encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import MorphlingConfig
from repro.core.isa import DmaOp, Instruction, InstructionStream, VpuOp, XpuOp
from repro.core.isa_encoding import (
    decode_instruction,
    decode_stream,
    encode_instruction,
    encode_stream,
    stream_size_bytes,
)
from repro.core.scheduler import LayerDemand, SwScheduler
from repro.params import get_params


def roundtrip(inst):
    decoded, _ = decode_instruction(encode_instruction(inst))
    return decoded


class TestSingleInstruction:
    def test_xpu_roundtrip(self):
        inst = Instruction(7, XpuOp.BLIND_ROTATE, group=3, count=64, depends_on=(1, 2))
        assert roundtrip(inst) == inst

    def test_dma_payload_roundtrip(self):
        inst = Instruction(9, DmaOp.LOAD_BSK, group=0, data_bytes=16_400_000)
        assert roundtrip(inst) == inst

    def test_palu_macs_roundtrip(self):
        inst = Instruction(4, VpuOp.P_ALU, group=1, macs=123_456_789)
        assert roundtrip(inst) == inst

    def test_truncated_record_rejected(self):
        data = encode_instruction(Instruction(0, VpuOp.KEY_SWITCH, 0, count=4))
        with pytest.raises(ValueError):
            decode_instruction(data[:-5])

    def test_corrupt_opcode_rejected(self):
        data = bytearray(encode_instruction(Instruction(0, XpuOp.BLIND_ROTATE, 0)))
        data[1] = 200  # impossible opcode index
        with pytest.raises(ValueError):
            decode_instruction(bytes(data))

    def test_corrupt_reserved_field_rejected(self):
        data = bytearray(encode_instruction(Instruction(0, XpuOp.BLIND_ROTATE, 0)))
        data[18] = 1  # reserved halfword
        with pytest.raises(ValueError):
            decode_instruction(bytes(data))

    @given(
        op=st.sampled_from(list(XpuOp) + list(VpuOp) + list(DmaOp)),
        group=st.integers(0, 2**16 - 1),
        count=st.integers(0, 2**20),
        inst_id=st.integers(0, 2**20),
        deps=st.lists(st.integers(0, 2**20), max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, op, group, count, inst_id, deps):
        from repro.core.isa import Engine, _OP_ENGINES

        sizes = {}
        if _OP_ENGINES[op] is Engine.DMA:
            sizes["data_bytes"] = count * 64
        elif op is VpuOp.P_ALU:
            sizes["macs"] = count * 7
        inst = Instruction(inst_id, op, group, count=count,
                           depends_on=tuple(deps), **sizes)
        assert roundtrip(inst) == inst


class TestStream:
    @pytest.fixture()
    def program(self):
        sched = SwScheduler(MorphlingConfig(), get_params("I"))
        return sched.schedule([LayerDemand("a", 100), LayerDemand("b", 30, 5000)])

    def test_whole_program_roundtrip(self, program):
        decoded = decode_stream(encode_stream(program))
        assert decoded == list(program)

    def test_size_accounting(self, program):
        blob = encode_stream(program)
        assert len(blob) == stream_size_bytes(program)

    def test_empty_stream(self):
        assert decode_stream(b"") == []
        assert encode_stream(InstructionStream()) == b""

    def test_decoded_program_still_schedulable(self, program):
        """A shipped-and-decoded program must execute identically."""
        from repro.core.scheduler import HwScheduler

        hw = HwScheduler(MorphlingConfig(), get_params("I"))
        direct = hw.execute(program)
        rebuilt = InstructionStream()
        rebuilt._instructions = decode_stream(encode_stream(program))
        replayed = hw.execute(rebuilt)
        assert replayed.total_seconds == pytest.approx(direct.total_seconds)
