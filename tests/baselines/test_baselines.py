"""Tests for the CPU cost model, reference records, and accelerator variants."""

import pytest

from repro.baselines import (
    CpuCostModel,
    TABLE_V_MORPHLING_PAPER,
    TABLE_V_REFERENCES,
    equal_resource_variants,
    matcha_like,
    references_for,
    speedup_range,
    strix_like,
)
from repro.core.reuse import ReuseType
from repro.core.simulator import simulate_bootstrap
from repro.params import FIG1_PARAMS, get_params


class TestCpuModel:
    """Calibration regression: Concrete's Table V rows within 8 %."""

    PAPER = {"I": 15.65, "II": 27.26, "III": 82.19}

    @pytest.fixture(scope="class")
    def cpu(self):
        return CpuCostModel()

    @pytest.mark.parametrize("pset", sorted(PAPER))
    def test_bootstrap_latency(self, cpu, pset):
        got_ms = cpu.bootstrap_seconds(get_params(pset)) * 1e3
        assert got_ms == pytest.approx(self.PAPER[pset], rel=0.08)

    def test_throughput_is_reciprocal(self, cpu):
        p = get_params("I")
        assert cpu.throughput_bs(p) == pytest.approx(1 / cpu.bootstrap_seconds(p))

    def test_fig1_stage_breakdown(self, cpu):
        """Paper Fig. 1: BR 37.7 ms, KS 6.4 ms on the CPU."""
        t = cpu.bootstrap_time(FIG1_PARAMS)
        assert t.blind_rotation_s * 1e3 == pytest.approx(37.7, rel=0.12)
        assert t.key_switch_s * 1e3 == pytest.approx(6.4, rel=0.10)
        assert t.other_s < 0.1 * t.blind_rotation_s

    def test_workload_uses_all_cores(self, cpu):
        p = get_params("I")
        single = cpu.bootstrap_seconds(p) * 1000
        parallel = cpu.workload_seconds(p, 1000)
        assert parallel == pytest.approx(single / cpu.effective_parallel_cores())

    def test_workload_rejects_negative(self, cpu):
        with pytest.raises(ValueError):
            cpu.workload_seconds(get_params("I"), -1)

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            CpuCostModel(fft_ns_per_unit=0)
        with pytest.raises(ValueError):
            CpuCostModel(parallel_efficiency=0)


class TestReferences:
    def test_all_expected_systems_present(self):
        systems = {r.system for r in TABLE_V_REFERENCES}
        assert systems == {"Concrete", "NuFHE", "cuda TFHE", "XHEC", "MATCHA", "Strix"}

    def test_references_for_unknown(self):
        with pytest.raises(KeyError):
            references_for("GPU9000")

    def test_strix_rows(self):
        rows = references_for("Strix")
        assert {r.param_set for r in rows} == {"I", "II", "III"}
        assert all(r.reuse_class == "input-reuse" for r in rows)

    def test_paper_morphling_rows_complete(self):
        assert set(TABLE_V_MORPHLING_PAPER) == {"I", "II", "III", "IV"}


class TestSpeedups:
    """The paper's headline factors, from our simulated throughput."""

    @pytest.fixture(scope="class")
    def morphling(self):
        from repro.core.accelerator import MorphlingConfig

        return {
            s: simulate_bootstrap(MorphlingConfig(), get_params(s)).throughput_bs
            for s in ["I", "II", "III", "IV"]
        }

    def test_cpu_speedup_range(self, morphling):
        lo, hi = speedup_range(morphling, "Concrete")
        assert lo == pytest.approx(2145, rel=0.10)
        assert hi == pytest.approx(3439, rel=0.10)

    def test_gpu_speedup_range(self, morphling):
        lo, hi = speedup_range(morphling, "NuFHE")
        assert lo == pytest.approx(60, rel=0.10)
        assert hi == pytest.approx(144, rel=0.10)

    def test_sota_accelerator_speedup(self, morphling):
        _, hi = speedup_range(morphling, "MATCHA")
        assert hi == pytest.approx(14.76, rel=0.10)
        lo, _ = speedup_range(morphling, "Strix")
        assert lo == pytest.approx(1.98, rel=0.10)

    def test_fpga_speedup_range(self, morphling):
        lo, hi = speedup_range(morphling, "XHEC")
        assert lo == pytest.approx(28, rel=0.12)
        assert hi == pytest.approx(37, rel=0.12)

    def test_no_overlap_rejected(self, morphling):
        with pytest.raises(ValueError):
            speedup_range({"IX": 1.0}, "Strix")


class TestAcceleratorVariants:
    def test_reuse_classes(self):
        assert matcha_like().reuse is ReuseType.NO_REUSE
        assert strix_like().reuse is ReuseType.INPUT_REUSE

    def test_equal_resource_ladder_ordered(self):
        variants = equal_resource_variants()
        assert list(variants) == [
            "no-reuse", "input-reuse", "input+output-reuse",
            "input+output-reuse+ms-fft",
        ]

    @pytest.mark.parametrize("pset", ["A", "B", "C"])
    def test_ladder_throughput_monotone(self, pset):
        """Each added technique must not slow the compute pipeline down."""
        p = get_params(pset)
        prev = 0.0
        for cfg in equal_resource_variants().values():
            r = simulate_bootstrap(cfg, p)
            thr = r.group_size / r.xpu_busy_s
            assert thr >= prev
            prev = thr
