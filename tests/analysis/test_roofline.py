"""Tests for the roofline analysis."""

import pytest

from repro.analysis.roofline import attainable_rate, machine_balance, workload_points
from repro.core.accelerator import MorphlingConfig
from repro.params import get_params


class TestBalance:
    def test_xpu_balance_above_vpu(self):
        """The XPUs pack far more compute per byte of channel bandwidth."""
        balance = machine_balance(MorphlingConfig())
        assert balance["xpu"] > balance["vpu"]

    def test_balance_scales_with_bandwidth(self):
        thin = machine_balance(MorphlingConfig(hbm_bandwidth_gbs=155.0))
        fat = machine_balance(MorphlingConfig(hbm_bandwidth_gbs=620.0))
        assert thin["xpu"] == pytest.approx(4 * fat["xpu"])


class TestWorkloadPoints:
    def test_raw_key_switch_is_memory_bound(self):
        """Section III: KS without reuse is bandwidth work."""
        points = {p.name: p for p in workload_points(MorphlingConfig(), get_params("I"))}
        assert not points["key_switch"].compute_bound

    def test_reuse_moves_both_stages_compute_bound(self):
        """Section IV-C: the 64x reuse factors cross the balance points."""
        points = {
            p.name: p
            for p in workload_points(
                MorphlingConfig(), get_params("I"), bsk_reuse=64, ksk_reuse=64
            )
        }
        assert points["blind_rotation"].compute_bound
        assert points["key_switch"].compute_bound

    def test_intensity_scales_with_reuse(self):
        lo = workload_points(MorphlingConfig(), get_params("I"), bsk_reuse=1)[0]
        hi = workload_points(MorphlingConfig(), get_params("I"), bsk_reuse=64)[0]
        assert hi.ops_per_byte == pytest.approx(64 * lo.ops_per_byte)


class TestAttainableRate:
    def test_bandwidth_region_linear(self):
        cfg = MorphlingConfig()
        r1 = attainable_rate(cfg, 1.0)
        r2 = attainable_rate(cfg, 2.0)
        assert r2 == pytest.approx(2 * r1)

    def test_saturates_at_peak(self):
        cfg = MorphlingConfig()
        assert attainable_rate(cfg, 1e9) == attainable_rate(cfg, 1e12)

    def test_vpu_has_more_bandwidth_in_memory_region(self):
        # 6 of 8 channels go to the VPU, so at low intensity it attains more.
        cfg = MorphlingConfig()
        assert attainable_rate(cfg, 1.0, unit="vpu") > attainable_rate(cfg, 1.0, unit="xpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            attainable_rate(MorphlingConfig(), -1.0)
        with pytest.raises(ValueError):
            attainable_rate(MorphlingConfig(), 1.0, unit="gpu")
