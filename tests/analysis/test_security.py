"""Tests for the first-order LWE security estimator."""

import pytest

from repro.analysis.security import (
    classify_parameter_set,
    estimate_security,
)
from repro.params import PARAM_SETS, TEST_PARAMS, get_params


class TestEstimator:
    def test_calibration_point(self):
        """Set IV's LWE half anchors the model at ~128 bits."""
        assert estimate_security(742, 32, -15.0) == pytest.approx(128, rel=0.02)

    def test_security_grows_with_dimension(self):
        lo = estimate_security(500, 32, -15.0)
        hi = estimate_security(1000, 32, -15.0)
        assert hi == pytest.approx(2 * lo)

    def test_security_falls_with_smaller_noise(self):
        noisy = estimate_security(600, 32, -10.0)
        quiet = estimate_security(600, 32, -20.0)
        assert noisy > quiet

    def test_noise_clamped_at_quantization_floor(self):
        at_floor = estimate_security(600, 32, -32.0)
        below = estimate_security(600, 32, -40.0)
        assert at_floor == below

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimate_security(0, 32, -15.0)
        with pytest.raises(ValueError):
            estimate_security(100, 32, 1.0)


class TestParameterSets:
    @pytest.mark.parametrize("name", ["I", "II", "IV", "A"])
    def test_large_n_sets_meet_claims(self, name):
        """Sets whose security comes from dimension survive the 32-bit port."""
        est = classify_parameter_set(get_params(name))
        assert est.meets_claim, (name, est.effective_bits)

    @pytest.mark.parametrize("name", ["III", "B", "C"])
    def test_small_n_128bit_sets_fall_short_at_32bit(self, name):
        """Documented substitution: the TFHE-rs 128-bit small-n sets rely on
        a 64-bit modulus; our q=2^32 re-derivation estimates below claim,
        and the estimator exposes that honestly."""
        est = classify_parameter_set(get_params(name))
        assert est.effective_bits < est.claimed_bits

    def test_weaker_half_governs(self):
        est = classify_parameter_set(get_params("I"))
        assert est.effective_bits == min(est.lwe_bits, est.glwe_bits)

    def test_test_params_claim_nothing(self):
        est = classify_parameter_set(TEST_PARAMS)
        assert est.claimed_bits == 0
        assert est.meets_claim  # claiming zero is always met

    def test_every_set_classifies(self):
        for name in PARAM_SETS:
            est = classify_parameter_set(PARAM_SETS[name])
            assert est.lwe_bits > 0 and est.glwe_bits > 0
