"""Tests for the decryption-failure probability estimator."""

import math

import pytest

from repro.analysis.failprob import (
    LOG2_PROB_FLOOR,
    WorkloadFailureReport,
    estimate_failure_probability,
    gaussian_tail_log2,
)
from repro.observability.noise import NoiseTracker


class TestGaussianTail:
    def test_zero_or_negative_margin_is_certain_failure(self):
        assert gaussian_tail_log2(0.0, 1e-12) == 0.0
        assert gaussian_tail_log2(-0.1, 1e-12) == 0.0

    def test_zero_variance_is_numerically_never(self):
        assert gaussian_tail_log2(0.1, 0.0) == LOG2_PROB_FLOOR

    def test_moderate_tail_matches_erfc(self):
        # 2 sigma: P(|N| > 2 std) = erfc(2 / sqrt 2)
        p = gaussian_tail_log2(2e-3, 1e-6)
        assert p == pytest.approx(math.log2(math.erfc(2 / math.sqrt(2))))

    def test_one_sigma_is_about_a_third(self):
        assert 2.0 ** gaussian_tail_log2(1e-3, 1e-6) == pytest.approx(
            0.3173, abs=1e-3)

    def test_asymptotic_branch_continues_erfc_smoothly(self):
        """The erfc->expansion handoff at z = 36 must not jump."""
        std = 1.0
        below = gaussian_tail_log2(35.9 * std, std * std)
        above = gaussian_tail_log2(36.1 * std, std * std)
        assert below > above  # still decreasing across the switch
        assert abs((above - below) - (-2 * 36 * math.log2(math.e) * 0.1)) < 1.0

    def test_deep_tail_does_not_underflow(self):
        # 75 sigma - far beyond double-precision erfc, above the floor.
        p = gaussian_tail_log2(75e-5, 1e-10)
        assert p == pytest.approx(-0.5 * 75**2 * math.log2(math.e), rel=0.01)
        assert LOG2_PROB_FLOOR < p < -4000

    def test_monotone_in_margin(self):
        probs = [gaussian_tail_log2(m, 1e-6) for m in (1e-4, 1e-3, 1e-2, 1e-1)]
        assert probs == sorted(probs, reverse=True)

    def test_floor_clamps_absurd_tails(self):
        assert gaussian_tail_log2(1.0, 1e-12) == LOG2_PROB_FLOOR


def tracker_with_points(points):
    tr = NoiseTracker(enabled=True)
    for kind, margin, variance in points:
        tr.record_failure_point(kind, margin, variance)
    return tr


class TestWorkloadReport:
    def test_empty_tracker_reports_floor(self):
        report = estimate_failure_probability(NoiseTracker(enabled=True))
        assert report.points == ()
        assert report.total_log2_prob == LOG2_PROB_FLOOR
        assert report.worst is None
        assert report.meets(-20.0)

    def test_single_point_totals_its_own_tail(self):
        report = estimate_failure_probability(
            tracker_with_points([("decode", 2e-3, 1e-6)]))
        (point,) = report.points
        assert point.sigmas == pytest.approx(2.0)
        assert report.total_log2_prob == pytest.approx(point.log2_prob)
        assert report.worst is point

    def test_union_bound_brackets_the_total(self):
        """worst <= total <= worst + log2(n) for n equal points."""
        n = 8
        report = estimate_failure_probability(
            tracker_with_points([("decode", 5e-3, 1e-6)] * n))
        worst = report.worst.log2_prob
        assert report.total_log2_prob >= worst
        assert report.total_log2_prob == pytest.approx(worst + math.log2(n))

    def test_dominant_point_dominates(self):
        report = estimate_failure_probability(tracker_with_points(
            [("decode", 3e-3, 1e-6), ("bootstrap_decision", 30e-3, 1e-6)]))
        assert report.total_log2_prob == pytest.approx(
            report.worst.log2_prob, abs=1e-6)
        assert report.worst.kind == "decode"

    def test_total_probability_caps_at_one(self):
        report = estimate_failure_probability(
            tracker_with_points([("decode", 0.0, 1e-6)] * 4))
        assert report.total_log2_prob == 0.0
        assert not report.meets(-20.0)

    def test_jsonable_and_text_renderings(self):
        report = estimate_failure_probability(
            tracker_with_points([("sign_decode", 4e-3, 1e-6)]))
        doc = report.to_jsonable()
        assert doc["num_points"] == 1
        assert doc["worst"]["kind"] == "sign_decode"
        assert math.isfinite(doc["total_log2_prob"])
        text = report.render_text()
        assert "log2(p_fail)" in text
        assert "sign_decode" in text

    def test_meets_is_a_hard_threshold(self):
        report = WorkloadFailureReport(
            schema_version=1, points=(), total_log2_prob=-20.0)
        assert report.meets(-20.0)
        assert not report.meets(-20.1)
