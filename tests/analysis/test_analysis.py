"""Tests for the Fig. 1 analysis layer: op counts, memory, intensity."""

import pytest

from repro.analysis import (
    bootstrap_intensity,
    bootstrap_memory,
    count_bootstrap_operations,
    transform_real_mults,
)
from repro.params import FIG1_PARAMS, get_params


class TestTransformCost:
    def test_n1024(self):
        # 512-pt FFT: 256*9 complex butterfly mults + 512 twist, x4 real.
        assert transform_real_mults(1024) == 4 * (256 * 9 + 512)

    def test_scales_superlinearly(self):
        assert transform_real_mults(2048) > 2 * transform_real_mults(1024)


class TestFig1OperationShares:
    """Paper: I/FFT ~88 %, KS ~1.9 %, other ~1 %."""

    @pytest.fixture(scope="class")
    def shares(self):
        return count_bootstrap_operations(FIG1_PARAMS).shares()

    def test_fft_share_near_88_percent(self, shares):
        assert shares["ifft_fft"] == pytest.approx(0.88, abs=0.03)

    def test_key_switch_share_near_2_percent(self, shares):
        assert shares["key_switch"] == pytest.approx(0.019, abs=0.01)

    def test_other_below_1_percent(self, shares):
        assert shares["other"] < 0.01

    def test_shares_sum_to_one(self, shares):
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_blind_rotation_dominates(self):
        ops = count_bootstrap_operations(FIG1_PARAMS)
        assert ops.blind_rotation_ops / ops.total > 0.95


class TestFig1Memory:
    def test_bsk_dominates(self):
        mem = bootstrap_memory(FIG1_PARAMS)
        assert mem.bsk_bytes > mem.ksk_bytes > mem.acc_bytes

    def test_ksk_near_paper(self):
        # paper: 33.8 MB
        mem = bootstrap_memory(FIG1_PARAMS)
        assert mem.ksk_bytes / 1e6 == pytest.approx(33.8, rel=0.08)

    def test_bsk_packed_size(self):
        # paper reports 101.4 MB for an expanded layout; our packed
        # 32+32-bit transform image is 70.9 MB (documented substitution).
        mem = bootstrap_memory(FIG1_PARAMS)
        assert mem.bsk_bytes / 1e6 == pytest.approx(70.9, rel=0.02)

    def test_total_includes_everything(self):
        mem = bootstrap_memory(FIG1_PARAMS)
        assert mem.total_bytes > mem.bsk_bytes + mem.ksk_bytes


class TestIntensity:
    def test_blind_rotation_is_compute_bound(self):
        """Section III: BR has the highest ops/byte; KS is memory-bound."""
        intensity = bootstrap_intensity(FIG1_PARAMS)
        assert intensity.compute_bound_stage() == "blind_rotation"
        assert intensity.blind_rotation > 10 * intensity.key_switch

    @pytest.mark.parametrize("pset", ["I", "II", "III", "IV", "B", "C"])
    def test_holds_across_parameter_sets(self, pset):
        intensity = bootstrap_intensity(get_params(pset))
        assert intensity.compute_bound_stage() == "blind_rotation"
