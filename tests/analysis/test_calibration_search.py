"""Tests for empirical noise calibration and the parameter optimizer."""

import pytest

from repro import TEST_PARAMS, get_params
from repro.analysis.calibration import (
    calibrate_bootstrap_noise,
    calibrate_fresh_noise,
)
from repro.analysis.param_search import (
    cheapest_for_modulus,
    search_decomposition,
)


class TestNoiseCalibration:
    def test_fresh_noise_matches_model(self, ctx):
        m = calibrate_fresh_noise(ctx, samples=48)
        assert m.consistent(slack=2.0)
        assert m.samples == 48

    def test_bootstrap_noise_within_model_bound(self, ctx):
        """The analytic bound must hold empirically (it may be loose)."""
        m = calibrate_bootstrap_noise(ctx, samples=8)
        assert m.consistent(slack=4.0)
        assert m.worst_abs_error < 1 / 16  # still decodes p=8

    def test_bootstrap_noisier_than_fresh(self, ctx):
        fresh = calibrate_fresh_noise(ctx, samples=24)
        boot = calibrate_bootstrap_noise(ctx, samples=6)
        assert boot.empirical_std > fresh.empirical_std

    def test_sample_validation(self, ctx):
        with pytest.raises(ValueError):
            calibrate_fresh_noise(ctx, samples=1)
        with pytest.raises(ValueError):
            calibrate_bootstrap_noise(ctx, samples=0)


class TestParameterSearch:
    def test_recovers_the_papers_set_i_levels(self):
        """The optimizer picks l_b=2 for set I's skeleton at p=8 - the
        paper's own Table III choice."""
        best = cheapest_for_modulus(get_params("I"), p=8)
        assert best.params.l_b == 2
        assert best.margin >= 1.0

    def test_feasible_choices_sorted_by_cost(self):
        feasible = search_decomposition(get_params("I"), p=8)
        costs = [c.cost for c in feasible]
        assert costs == sorted(costs)
        assert all(c.margin >= 1.0 for c in feasible)

    def test_bigger_modulus_needs_more_levels(self):
        cheap_small = cheapest_for_modulus(get_params("I"), p=4)
        cheap_big = cheapest_for_modulus(get_params("I"), p=32)
        assert cheap_big.params.l_b >= cheap_small.params.l_b

    def test_impossible_modulus_rejected(self):
        with pytest.raises(ValueError):
            cheapest_for_modulus(TEST_PARAMS.with_overrides(n=4096), p=1 << 14)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError):
            search_decomposition(get_params("I"), p=3)

    def test_test_params_are_feasible(self):
        """Our fast test set itself must be in the feasible region."""
        feasible = search_decomposition(TEST_PARAMS, p=8)
        combos = {(c.params.l_b,) for c in feasible}
        assert (TEST_PARAMS.l_b,) in combos
