"""Tests for the bottleneck-attribution profiler (repro.analysis.profile)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.profile import (
    PROFILE_SCHEMA_VERSION,
    collect_profile,
    what_if_catalog,
)
from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import simulate_bootstrap
from repro.observability import COUNTERS, to_jsonable
from repro.params import get_params


@pytest.fixture(scope="module")
def profile():
    return collect_profile(MorphlingConfig(), get_params("I"))


class TestProfileShape:
    def test_schema_version_and_identity(self, profile):
        assert profile.schema_version == PROFILE_SCHEMA_VERSION
        assert profile.config_name == "morphling"
        assert profile.params_name == "I"
        assert profile.clock_ghz == pytest.approx(1.2)

    def test_bottleneck_utilization_is_one(self, profile):
        assert profile.utilization[profile.bottleneck] == pytest.approx(1.0)
        for resource, util in profile.utilization.items():
            assert 0.0 < util <= 1.0 + 1e-9, resource

    def test_counter_sections_populated(self, profile):
        assert set(profile.xpu_stage_cycles) >= {
            "rotation", "decomposition", "forward_fft",
            "vpe_stream", "inverse_fft", "bsk_stream",
        }
        assert set(profile.vpu_stage_cycles) == {
            "modulus_switch", "sample_extract", "key_switch",
        }
        cfg = MorphlingConfig()
        assert len(profile.hbm_channel_bytes) == (
            cfg.xpu_hbm_channels + cfg.vpu_hbm_channels
        )
        assert len(profile.hbm_channel_utilization) == len(profile.hbm_channel_bytes)
        assert set(profile.buffer_watermarks) == {
            "private_a1", "private_a2", "private_b", "shared",
        }
        assert profile.noc_hops["private_a1_to_xpu"] > 0
        assert profile.rotator_ops["rotator/rotations"] > 0
        assert len(profile.counters_digest) == 64

    def test_latency_fractions_sum_to_one(self, profile):
        assert sum(profile.latency_fractions.values()) == pytest.approx(1.0)

    def test_roofline_sections(self, profile):
        assert set(profile.roofline_balance) == {"xpu", "vpu"}
        names = {p["name"] for p in profile.roofline_points}
        assert names == {"blind_rotation", "key_switch"}

    def test_jsonable_and_renderable(self, profile):
        payload = to_jsonable(profile)
        text = json.dumps(payload, sort_keys=True)
        assert '"schema_version": 1' in text
        rendered = profile.render_text()
        assert "bottleneck" in rendered
        assert "what-if" in rendered

    def test_collect_does_not_leave_counters_enabled(self, profile):
        assert not COUNTERS.enabled


class TestWhatIfs:
    def test_catalog_covers_key_resources(self):
        names = {name for name, _, _ in what_if_catalog(MorphlingConfig())}
        assert {"xpu_hbm_2x", "vpu_hbm_2x", "fft_units_2x",
                "vpu_macs_2x", "clock_1p5x", "a1_2x"} <= names

    def test_hbm_what_ifs_isolate_one_channel_group(self):
        cfg = MorphlingConfig()
        for name, _desc, ov in what_if_catalog(cfg):
            perturbed = cfg.with_overrides(**ov)
            if name == "xpu_hbm_2x":
                assert perturbed.xpu_bandwidth_gbs == pytest.approx(
                    2 * cfg.xpu_bandwidth_gbs
                )
                assert perturbed.vpu_bandwidth_gbs == pytest.approx(
                    cfg.vpu_bandwidth_gbs
                )
            if name == "vpu_hbm_2x":
                assert perturbed.vpu_bandwidth_gbs == pytest.approx(
                    2 * cfg.vpu_bandwidth_gbs
                )
                assert perturbed.xpu_bandwidth_gbs == pytest.approx(
                    cfg.xpu_bandwidth_gbs
                )

    @settings(max_examples=8, deadline=None)
    @given(
        config_name=st.sampled_from(["morphling", "no-reuse", "input-reuse"]),
        param_set=st.sampled_from(["I", "II", "III", "IV"]),
    )
    def test_what_if_speedups_match_actual_reruns(self, config_name, param_set):
        """The acceptance property: every reported what-if speedup equals
        actually re-running the simulator with the perturbed config."""
        factories = {
            "morphling": MorphlingConfig.morphling,
            "no-reuse": MorphlingConfig.no_reuse,
            "input-reuse": MorphlingConfig.input_reuse,
        }
        config = factories[config_name]()
        params = get_params(param_set)
        prof = collect_profile(config, params)
        baseline = simulate_bootstrap(config, params)
        assert prof.throughput_bs == pytest.approx(baseline.throughput_bs)
        for wi in prof.what_ifs:
            rerun = simulate_bootstrap(
                config.with_overrides(**wi.overrides), params
            )
            assert wi.throughput_bs == pytest.approx(rerun.throughput_bs)
            assert wi.speedup == pytest.approx(
                rerun.throughput_bs / baseline.throughput_bs
            )
            assert wi.bottleneck_after == rerun.bottleneck

    def test_no_what_if_flag(self):
        prof = collect_profile(
            MorphlingConfig(), get_params("I"), what_ifs=False
        )
        assert prof.what_ifs == []

    def test_what_ifs_do_not_contaminate_digest(self):
        with_wi = collect_profile(MorphlingConfig(), get_params("I"))
        without = collect_profile(
            MorphlingConfig(), get_params("I"), what_ifs=False
        )
        assert with_wi.counters_digest == without.counters_digest
