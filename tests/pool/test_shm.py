"""Shared-memory BSK spectrum table: publish/attach/install lifecycle."""

import pickle

import numpy as np
import pytest

from repro.pool.shm import (
    SEGMENT_PREFIX,
    SharedSpectrumTable,
    SpectrumHandle,
    leaked_segments,
)


class TestPublishAttach:
    def test_round_trip_equality(self, keyset):
        table = keyset.bsk_spectrum_table("double")
        with SharedSpectrumTable.publish(keyset, "double") as shared:
            attached = SharedSpectrumTable.attach(shared.handle)
            np.testing.assert_array_equal(attached.array, table)
            attached.close()
        assert leaked_segments() == []

    def test_attached_view_is_read_only(self, keyset):
        with SharedSpectrumTable.publish(keyset, "double") as shared:
            attached = SharedSpectrumTable.attach(shared.handle)
            with pytest.raises((ValueError, RuntimeError)):
                attached.array[0, 0, 0, 0] = 0
            attached.close()

    def test_handle_is_picklable(self, keyset):
        with SharedSpectrumTable.publish(keyset, "double") as shared:
            handle = pickle.loads(pickle.dumps(shared.handle))
            assert handle == shared.handle
            assert handle.nbytes == keyset.bsk_spectrum_table("double").nbytes

    def test_segment_name_carries_prefix(self, keyset):
        with SharedSpectrumTable.publish(keyset, "double") as shared:
            assert shared.handle.name.startswith(SEGMENT_PREFIX)
            assert leaked_segments() == [shared.handle.name]
        assert leaked_segments() == []

    def test_install_adopts_into_cache(self, keyset):
        with SharedSpectrumTable.publish(keyset, "double") as shared:
            attached = SharedSpectrumTable.attach(shared.handle)
            adopted = attached.install(keyset)
            try:
                assert keyset.bsk_spectrum_table("double") is adopted
                assert adopted is attached.array
            finally:
                attached.close(keyset)  # evicts the mapping from the cache
        assert "double" not in keyset._bsk_tables
        keyset.bsk_spectrum_table("double")  # recomputes cleanly

    def test_unlink_idempotent_and_attach_fails_after(self, keyset):
        shared = SharedSpectrumTable.publish(keyset, "double")
        handle = shared.handle
        shared.unlink()
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            SharedSpectrumTable.attach(handle)
        shared.close()
        assert leaked_segments() == []


class TestAdoptValidation:
    def test_wrong_shape_rejected(self, keyset):
        with pytest.raises(ValueError, match="shape"):
            keyset.adopt_spectrum_table(np.zeros((2, 2), dtype=np.complex128))

    def test_wrong_dtype_rejected(self, keyset):
        p = keyset.params
        shape = (p.n, (p.k + 1) * p.l_b, p.k + 1, p.N // 2)
        with pytest.raises(ValueError, match="dtype"):
            keyset.adopt_spectrum_table(np.zeros(shape, dtype=np.complex64))

    def test_unknown_precision_rejected(self, keyset):
        with pytest.raises(ValueError, match="precision"):
            keyset.adopt_spectrum_table(
                np.zeros((1,), dtype=np.complex128), precision="half"
            )


class TestSpectrumHandle:
    def test_nbytes(self):
        handle = SpectrumHandle(
            name="x", shape=(2, 3, 4), dtype="<c16", precision="double"
        )
        assert handle.nbytes == 2 * 3 * 4 * 16
