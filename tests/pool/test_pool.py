"""BootstrapPool: sharded execution, shared spectrum, crash hygiene.

The pool must change *where* samples run, never *what* they compute:
every test here pins pool output against the single-process batched
pipeline, and the telemetry tests prove the zero-setup property (no
worker ever re-runs the BSK pre-transform) from the workers' own
``transforms_fft_total`` counters.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.observability.distrib import aggregate_shards, discover_shards
from repro.pool import BootstrapPool, PoolWorkerLost, leaked_segments
from repro.tfhe.bootstrap import programmable_bootstrap_batch

BATCH = 8
P = 8


@pytest.fixture(scope="module")
def workload(ctx):
    rng = np.random.default_rng(42)
    msgs = [int(m) for m in rng.integers(0, P // 2, size=BATCH)]
    cts = [ctx.encrypt(m, P) for m in msgs]
    tp = ctx._lut_test_poly(lambda x: x, P)
    return msgs, cts, tp


def _assert_same(expected, actual):
    assert len(expected) == len(actual)
    for e, a in zip(expected, actual):
        np.testing.assert_array_equal(e.a, a.a)
        assert e.b == a.b


class TestBitIdentity:
    def test_two_workers_match_single_process(self, ctx, workload):
        _, cts, tp = workload
        ref = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        with BootstrapPool(ctx.keyset, workers=2) as pool:
            out = pool.bootstrap_batch(cts, tp)
        _assert_same(ref, out)
        assert leaked_segments() == []

    def test_three_workers_uneven_shards(self, ctx, workload):
        _, cts, tp = workload
        ref = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        with BootstrapPool(ctx.keyset, workers=3) as pool:
            out = pool.bootstrap_batch(cts, tp)
        _assert_same(ref, out)

    def test_per_sample_luts(self, ctx, workload):
        _, cts, _ = workload
        tps = np.stack([
            ctx._lut_test_poly(lambda x, r=r: (x + r) % (P // 2), P)
            for r in range(len(cts))
        ])
        ref = programmable_bootstrap_batch(cts, tps, ctx.keyset)
        with BootstrapPool(ctx.keyset, workers=2) as pool:
            out = pool.bootstrap_batch(cts, tps)
        _assert_same(ref, out)

    def test_more_workers_than_samples(self, ctx, workload):
        _, cts, tp = workload
        ref = programmable_bootstrap_batch(cts[:2], tp, ctx.keyset)
        with BootstrapPool(ctx.keyset, workers=4) as pool:
            out = pool.bootstrap_batch(cts[:2], tp)
        _assert_same(ref, out)

    def test_empty_batch(self, ctx, workload):
        _, _, tp = workload
        with BootstrapPool(ctx.keyset, workers=2) as pool:
            assert pool.bootstrap_batch([], tp) == []

    def test_decrypts_correctly(self, ctx, workload):
        msgs, cts, tp = workload
        with BootstrapPool(ctx.keyset, workers=2) as pool:
            out = pool.bootstrap_batch(cts, tp)
        assert [ctx.decrypt(c, P) for c in out] == msgs


class TestSharedSpectrum:
    def test_workers_never_rerun_the_pretransform(self, ctx, workload, tmp_path):
        """Each worker's own fft counters match its shard's steady-state
        cost exactly - the table pre-transform (a much larger count)
        never ran in any worker."""
        _, cts, tp = workload
        shards = np.array_split(np.arange(len(cts)), 2)

        # Cold reference: shard 0 with an empty spectrum cache pays the
        # BSK pre-transform inside the run.
        ctx.keyset.drop_spectrum_cache()
        with obs.telemetry() as (registry, _tracer):
            programmable_bootstrap_batch(
                [cts[r] for r in shards[0]], tp, ctx.keyset
            )
            cold_forward = registry.get("transforms_fft_total").value(
                direction="forward"
            )

        # Warm reference per shard: the table is cached, only the
        # steady-state per-sample transforms run.
        expected = []
        for rows in shards:
            with obs.telemetry() as (registry, _tracer):
                programmable_bootstrap_batch(
                    [cts[r] for r in rows], tp, ctx.keyset
                )
                fft_total = registry.get("transforms_fft_total")
                expected.append((
                    fft_total.value(direction="forward"),
                    fft_total.value(direction="inverse"),
                ))
        assert cold_forward > expected[0][0]

        with BootstrapPool(
            ctx.keyset, workers=2, telemetry_dir=str(tmp_path)
        ) as pool:
            pool.bootstrap_batch(cts, tp)
            stats = pool.worker_stats()

        for i, (fwd, inv) in enumerate(expected):
            worker = stats[f"w{i}"]
            # Exactly the warm per-shard cost, strictly below the cold
            # cost: the workers mapped the driver's table instead of
            # re-running the pre-transform.
            assert worker["fft_forward"] == fwd
            assert worker["fft_inverse"] == inv
            assert worker["fft_forward"] < cold_forward
            assert worker["bootstraps"] == len(shards[i])

    def test_unknown_backend_fails_with_available_list(self, ctx):
        with pytest.raises(ValueError, match="available backends"):
            BootstrapPool(ctx.keyset, workers=2, backend="not-a-backend")

    def test_pool_runs_scipy_backend(self, ctx, workload):
        pytest.importorskip("scipy")
        _, cts, tp = workload
        ref = programmable_bootstrap_batch(cts, tp, ctx.keyset)
        with BootstrapPool(ctx.keyset, workers=2, backend="scipy") as pool:
            assert pool.backend == "scipy"
            out = pool.bootstrap_batch(cts, tp)
        _assert_same(ref, out)


class TestFleetTelemetry:
    def test_shards_aggregate_into_one_trace(self, ctx, workload, tmp_path):
        _, cts, tp = workload
        jobs = 2
        with BootstrapPool(
            ctx.keyset, workers=2, telemetry_dir=str(tmp_path)
        ) as pool:
            for _ in range(jobs):
                pool.bootstrap_batch(cts, tp)

        report = aggregate_shards(discover_shards(str(tmp_path)))
        assert sorted(report.workers) == ["driver", "w0", "w1"]
        assert report.lost_workers == []

        # One causally-linked trace: every span in every shard shares the
        # driver's root trace id, and the root is the pool submit span.
        spans = [e for e in report.events
                 if e.kind == "span" and e.trace_id is not None]
        assert spans
        assert len({s.trace_id for s in spans}) == 1
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["pool/submit"]

        # Exact fleet percentiles: the merged sketch holds every
        # request observation (each batched call is count-weighted by
        # its shard size), so the count is exactly jobs * batch.
        assert report.sketch.count == jobs * len(cts)
        for q, value in report.quantiles().items():
            assert value is not None and value > 0.0

    def test_workload_announce_names_backend(self, ctx, workload, tmp_path):
        _, cts, tp = workload
        with BootstrapPool(
            ctx.keyset, workers=1, telemetry_dir=str(tmp_path)
        ) as pool:
            pool.bootstrap_batch(cts, tp)
        report = aggregate_shards(discover_shards(str(tmp_path)))
        announces = [e for e in report.events
                     if e.kind == "workload" and e.name == "pool/run"]
        assert len(announces) == 1
        assert announces[0].fields["backend"] == "numpy"
        requests = [e for e in report.events
                    if e.kind == "request" and e.worker == "w0"]
        assert requests
        assert all(e.fields.get("backend") == "numpy" for e in requests)


class TestLifecycleHygiene:
    def test_no_segment_leak_on_clean_shutdown(self, ctx, workload):
        _, cts, tp = workload
        before = leaked_segments()
        with BootstrapPool(ctx.keyset, workers=2) as pool:
            pool.bootstrap_batch(cts, tp)
            assert len(leaked_segments()) == len(before) + 1
        assert leaked_segments() == before

    def test_sigkill_drill_unlinks_segment(self, ctx, workload):
        """A lane SIGKILLed mid-run (the fleet_demo drill pattern) is
        detected and the shared segment is still unlinked."""
        _, cts, tp = workload
        before = leaked_segments()
        pool = BootstrapPool(ctx.keyset, workers=2, kill_after_jobs={1: 1})
        pool.start()
        pool.bootstrap_batch(cts, tp)  # lane 1 completes, flushes, dies
        with pytest.raises(PoolWorkerLost) as info:
            pool.bootstrap_batch(cts, tp)
        assert info.value.worker_id == "w1"
        assert leaked_segments() == before
        pool.close()  # idempotent after the crash path already closed

    def test_start_after_close_rejected(self, ctx):
        pool = BootstrapPool(ctx.keyset, workers=1)
        pool.start()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.start()

    def test_invalid_configuration_rejected(self, ctx):
        with pytest.raises(ValueError, match="workers"):
            BootstrapPool(ctx.keyset, workers=0)
        with pytest.raises(ValueError, match="precision"):
            BootstrapPool(ctx.keyset, precision="half")
