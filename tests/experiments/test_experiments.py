"""Tests for the experiment drivers and the result container."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    morphling_throughputs,
    run_all,
    run_fig3,
    run_fig8a,
    run_fig8b,
    run_table5,
    run_table6,
)


class TestResultContainer:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            "x", "demo", ["a", "b"], [[1, 2.5], [3, 40000.0]], notes=["n"]
        )

    def test_column_extraction(self, result):
        assert result.column("a") == [1, 3]

    def test_unknown_column(self, result):
        with pytest.raises(KeyError):
            result.column("zzz")

    def test_to_text_contains_everything(self, result):
        text = result.to_text()
        assert "demo" in text
        assert "note: n" in text
        assert "40,000" in text


class TestDrivers:
    """Each driver must return a well-formed, paper-shaped table."""

    def test_registry_is_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "fig1", "fig2", "fig3", "table3", "table4", "table5", "fig6",
            "fig7a", "fig7b", "fig8a", "fig8b", "table6",
            "ablation-dataflow", "ablation-rotator",
            "ablation-reuse-factors", "security-table", "efficiency-table",
        }

    @pytest.mark.parametrize("exp_id", sorted(set(ALL_EXPERIMENTS) - {"table6"}))
    def test_driver_runs(self, exp_id):
        result = ALL_EXPERIMENTS[exp_id]()
        assert result.experiment_id == exp_id
        assert result.rows
        assert all(len(row) == len(result.headers) for row in result.rows)

    def test_table5_has_morphling_and_references(self):
        result = run_table5()
        systems = set(result.column("system"))
        assert "Morphling (ours)" in systems
        assert {"Concrete", "MATCHA", "Strix"} <= systems

    def test_fig3_headline_row(self):
        result = run_fig3()
        by_name = dict(zip(result.column("parameters"), result.column("no-reuse")))
        assert by_name["(k,lb)=(3,3) [set C]"] == 46752

    def test_fig8a_knee(self):
        result = run_fig8a()
        thr = dict(zip(result.column("A1 (KB)"), result.column("throughput (BS/s)")))
        assert thr[2048] < thr[4096] == thr[8192]

    def test_fig8b_degradation(self):
        result = run_fig8b()
        thr = dict(zip(result.column("XPUs"), result.column("throughput (BS/s)")))
        assert thr[5] < thr[4]

    def test_morphling_throughputs_keys(self):
        thr = morphling_throughputs()
        assert set(thr) == {"I", "II", "III", "IV"}
        assert all(v > 10_000 for v in thr.values())


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table6()

    def test_all_applications_present(self, result):
        apps = result.column("application")
        assert apps == ["XG-Boost", "DeepCNN-20", "DeepCNN-50", "DeepCNN-100", "VGG-9"]

    def test_speedups_in_paper_band(self, result):
        cpu = result.column("CPU (s)")
        morph = result.column("Morphling (s)")
        for c, m in zip(cpu, morph):
            assert 80 < c / m < 160


class TestRunner:
    def test_run_all_produces_every_result(self):
        results = run_all()
        assert [r.experiment_id for r in results] == list(ALL_EXPERIMENTS)
