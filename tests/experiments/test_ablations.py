"""Tests for the ablation experiment drivers."""

import pytest

from repro.experiments import (
    run_ablation_dataflow,
    run_ablation_reuse_factors,
    run_ablation_rotator,
    run_security_table,
)


class TestDataflowAblation:
    def test_output_stationary_cheapest(self):
        result = run_ablation_dataflow()
        costs = dict(zip(result.column("dataflow"), result.column("A1 KB/ciphertext")))
        assert costs["acc-output-stationary"] == min(costs.values())

    def test_bsk_stationary_streams_most(self):
        result = run_ablation_dataflow()
        ext = dict(zip(result.column("dataflow"),
                       result.column("external KB/iteration")))
        assert ext["bsk-stationary"] == max(ext.values())


class TestRotatorAblation:
    def test_double_pointer_always_wins(self):
        result = run_ablation_rotator()
        for advantage in result.column("advantage"):
            assert float(advantage.rstrip("x")) > 1.0

    def test_covers_comparison_sets(self):
        assert run_ablation_rotator().column("set") == ["I", "II", "III", "IV"]


class TestReuseFactorAblation:
    def test_64x_is_the_crossover(self):
        result = run_ablation_reuse_factors()
        regimes = dict(zip(result.column("BSK reuse"), result.column("regime")))
        assert regimes[16] == "memory-bound"
        assert regimes[64] == "compute-bound"

    def test_rate_scales_with_reuse(self):
        result = run_ablation_reuse_factors()
        rates = result.column("memory rate (BS/s)")
        assert rates == sorted(rates)


class TestSecurityTable:
    @pytest.fixture(scope="class")
    def result(self):
        return run_security_table()

    def test_all_sets_present(self, result):
        assert sorted(result.column("set")) == ["A", "B", "C", "I", "II", "III", "IV"]

    def test_large_n_sets_meet_claims(self, result):
        verdicts = dict(zip(result.column("set"), result.column("meets claim")))
        for name in ("I", "II", "IV", "A"):
            assert verdicts[name] == "yes", name

    def test_32bit_port_flagged(self, result):
        verdicts = dict(zip(result.column("set"), result.column("meets claim")))
        for name in ("III", "B", "C"):
            assert "no" in verdicts[name], name
