"""Tests for the experiment result output formats."""

import pytest

from repro.experiments import ExperimentResult, run_table3


@pytest.fixture()
def result():
    return ExperimentResult(
        "x", "demo", ["name", "value"], [["a", 1.5], ["b", 25000]],
        notes=["a note"],
    )


class TestMarkdown:
    def test_structure(self, result):
        md = result.to_markdown()
        lines = md.split("\n")
        assert lines[0] == "| name | value |"
        assert lines[1] == "|---|---|"
        assert "| a | 1.50 |" in lines

    def test_notes_italicized(self, result):
        assert "*a note*" in result.to_markdown()

    def test_real_driver_renders(self):
        md = run_table3().to_markdown()
        assert md.startswith("| set |")
        assert "| I |" in md


class TestCsv:
    def test_structure(self, result):
        lines = result.to_csv().split("\n")
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.50"

    def test_thousands_separators_stripped(self, result):
        # 25,000 would corrupt the CSV; separators must be removed.
        assert "25000" in result.to_csv()
        assert "25,000" not in result.to_csv()

    def test_row_count(self):
        csv = run_table3().to_csv()
        assert len(csv.split("\n")) == 1 + 7  # header + seven sets
