"""Shared fixtures: key material is expensive, so contexts are session-scoped."""

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def ctx():
    """A TFHE context on the fast test parameter set (fixed seed)."""
    return TfheContext.create(TEST_PARAMS, seed=7)


@pytest.fixture(scope="session")
def keyset(ctx):
    return ctx.keyset
