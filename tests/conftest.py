"""Shared fixtures: key material is expensive, so contexts are session-scoped."""

import numpy as np
import pytest

from repro import TEST_PARAMS, TfheContext


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def ctx():
    """A TFHE context on the fast test parameter set (fixed seed)."""
    return TfheContext.create(TEST_PARAMS, seed=7)


@pytest.fixture(scope="session")
def keyset(ctx):
    return ctx.keyset


def pytest_runtest_makereport(item, call):
    """On a test failure, dump the flight recorder's ring for triage.

    Gated on ``REPRO_FLIGHT_DUMP_DIR`` (CI sets it and uploads the
    directory as an artifact): whatever telemetry the failing test left
    in the global ring is frozen into one bundle per failure, named
    after the test.  No-op locally unless the variable is exported.
    """
    import os

    dump_dir = os.environ.get("REPRO_FLIGHT_DUMP_DIR")
    if not dump_dir or call.when != "call" or call.excinfo is None:
        return
    from repro.observability import FLIGHT

    os.makedirs(dump_dir, exist_ok=True)
    safe = item.nodeid.replace("/", "_").replace("::", "-")
    path = os.path.join(dump_dir, f"{safe}.json")
    try:
        FLIGHT.dump(path, "test_failure", test=item.nodeid,
                    error=repr(call.excinfo.value))
    except Exception:
        pass  # triage aid only - never mask the real failure
