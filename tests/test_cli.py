"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.param_set == "I"
        assert args.xpus == 4

    def test_unknown_set_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--set", "Z"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--set", "I"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "147," in out  # the Table V set I number

    def test_simulate_reuse_override(self, capsys):
        assert main(["simulate", "--set", "B", "--reuse", "none",
                     "--no-merge-split"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Total" in out
        assert "74.6" in out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "fig8b" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--id", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "46,752" in out or "46752" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--id", "fig99"]) == 2

    def test_workload(self, capsys):
        assert main(["workload", "xgboost"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_demo(self, capsys):
        assert main(["demo", "--message", "1"]) == 0
        out = capsys.readouterr().out
        assert "decrypted 1" in out

    def test_demo_bad_message(self, capsys):
        assert main(["demo", "--message", "7"]) == 2


class TestTraceCommand:
    def test_trace_renders(self, capsys):
        assert main(["trace", "--set", "II", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "rotation" in out
        assert "steady state" in out

    def test_trace_reuse_override(self, capsys):
        assert main(["trace", "--reuse", "none", "--no-merge-split"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_trace_chrome_export(self, capsys, tmp_path):
        path = tmp_path / "pipeline.json"
        assert main(["trace", "--iterations", "4", "--chrome", str(path)]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4 * 5  # iterations x pipeline stages
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e)
                   for e in complete)


class TestJsonReports:
    def test_simulate_json_uses_shared_serializer(self, capsys):
        assert main(["simulate", "--set", "I", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["group_size"] == 64
        assert report["bottleneck"] == "xpu_compute"
        assert report["traffic"]["bsk_bytes"] > 0

    def test_metrics_json_snapshot(self, capsys):
        assert main(["metrics", "--set", "I", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        metrics = doc["metrics"]
        values = {
            name: {tuple(sorted(v["labels"].items())): v["value"]
                   for v in metric["values"]}
            for name, metric in metrics.items()
            if metric["type"] == "counter"
        }
        assert values["sim_bootstraps_total"][()] == 64
        assert values["hbm_bytes_total"][(("channel", "xpu"),)] > 0
        assert values["sim_transforms_total"][(("direction", "forward"),)] > 0


class TestProfileCommand:
    def test_text_report(self, capsys):
        assert main(["profile", "--set", "I"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "xpu_compute" in out
        assert "what-if" in out
        assert "counters digest" in out

    def test_named_config_variants(self, capsys):
        assert main(["profile", "--config", "no-reuse", "--set", "III",
                     "--no-what-if"]) == 0
        out = capsys.readouterr().out
        assert "no-reuse @ set III" in out
        assert "what-if" not in out

    def test_json_schema_versioned(self, capsys):
        assert main(["profile", "--set", "I", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["bottleneck"] == "xpu_compute"
        assert doc["utilization"]["xpu_compute"] == pytest.approx(1.0)
        assert len(doc["counters_digest"]) == 64
        names = {wi["name"] for wi in doc["what_ifs"]}
        assert "xpu_hbm_2x" in names
        for wi in doc["what_ifs"]:
            assert wi["speedup"] == pytest.approx(
                wi["throughput_bs"] / wi["baseline_throughput_bs"]
            )

    def test_chrome_counter_tracks(self, capsys, tmp_path):
        path = tmp_path / "counters.json"
        assert main(["profile", "--set", "I", "--no-what-if",
                     "--chrome", str(path)]) == 0
        assert "wrote counter tracks" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert "buffer/shared" in tracks
        assert any(t.startswith("xpu/occupancy/") for t in tracks)

    def test_counters_left_disabled_after_run(self):
        from repro import observability as obs

        assert main(["profile", "--set", "I", "--no-what-if"]) == 0
        assert not obs.COUNTERS.enabled


class TestMetricsCommand:
    def test_prometheus_text_default(self, capsys):
        assert main(["metrics", "--set", "I"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sim_bootstraps_total counter" in out
        assert "sim_bootstraps_total 64" in out
        assert 'hbm_bytes_total{channel="xpu"}' in out

    def test_functional_fires_tfhe_counters(self, capsys):
        assert main(["metrics", "--set", "I", "--functional"]) == 0
        out = capsys.readouterr().out
        assert "tfhe_bootstraps_total 1" in out
        assert 'transforms_fft_total{direction="forward"}' in out

    def test_chrome_span_export(self, capsys, tmp_path):
        path = tmp_path / "spans.json"
        assert main(["metrics", "--chrome", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "xpu_compute" in names

    def test_telemetry_left_disabled_after_run(self):
        from repro import observability as obs

        assert main(["metrics", "--set", "I"]) == 0
        assert not obs.is_enabled()


class TestNoiseCommand:
    def test_gates_workload_predicted_only(self, capsys):
        assert main(["noise", "--workload", "gates"]) == 0
        out = capsys.readouterr().out
        assert "noise telemetry" in out
        assert "programmable_bootstrap" in out
        assert "unmeasured" in out  # no debug key without --measure
        assert "within 2^-20 budget: yes" in out

    def test_adder_workload_measured(self, capsys):
        assert main(["noise", "--workload", "adder", "--measure"]) == 0
        out = capsys.readouterr().out
        assert "'carry': 1" in out  # 3 + 1 = 4 -> carry set
        assert "ok" in out and "DRIFT" not in out
        assert "log2(p_fail)" in out

    def test_fail_prob_only_skips_the_drift_table(self, capsys):
        assert main(["noise", "--workload", "gates", "--fail-prob"]) == 0
        out = capsys.readouterr().out
        assert "op class" not in out
        assert "decision points" in out

    def test_json_snapshot(self, capsys):
        assert main(["noise", "--workload", "gates", "--measure",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["functional_ok"] is True
        assert doc["noise"]["measured"] is True
        assert doc["noise"]["records"]
        assert all(d["within_envelope"] for d in doc["drift"])
        assert doc["failure"]["total_log2_prob"] <= -20.0

    def test_chrome_waterfall_export(self, capsys, tmp_path):
        path = tmp_path / "noise.json"
        assert main(["noise", "--workload", "gates", "--chrome",
                     str(path)]) == 0
        assert "noise waterfall" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert any(e.get("cat") == "noise" and e["ph"] == "X" for e in events)
        assert any(e["ph"] in ("s", "f") for e in events)  # provenance flows

    def test_tracker_left_disabled_after_run(self):
        from repro import observability as obs

        assert main(["noise", "--workload", "gates"]) == 0
        assert not obs.NOISE.enabled
        assert not obs.NOISE.measuring


class TestWorkloadNoise:
    def test_noise_appends_failure_report(self, capsys):
        assert main(["workload", "xgboost", "--noise"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "log2(p_fail)" in out
        assert "within 2^-20 budget: yes" in out

    def test_json_with_noise_carries_failure_block(self, capsys):
        assert main(["workload", "xgboost", "--noise", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "XG-Boost"
        assert doc["failure"]["within_budget"] is True
        assert doc["failure"]["bootstraps"] == doc["bootstraps"]
        assert doc["failure"]["total_log2_prob"] <= -20.0

    def test_json_without_noise_unchanged(self, capsys):
        assert main(["workload", "xgboost", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "failure" not in doc
        assert doc["speedup"] > 1


class TestProfileNoise:
    def test_noise_appends_failure_report(self, capsys):
        assert main(["profile", "--set", "I", "--no-what-if",
                     "--noise"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "log2(p_fail)" in out

    def test_json_shape_with_noise(self, capsys):
        assert main(["profile", "--set", "I", "--no-what-if", "--noise",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"profile", "failure"}
        assert doc["profile"]["schema_version"] >= 1
        assert doc["failure"]["params"] == "I"

    def test_json_shape_without_noise_unchanged(self, capsys):
        assert main(["profile", "--set", "I", "--no-what-if", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "profile" not in doc  # profile fields stay at top level
        assert "schema_version" in doc


class TestTraceMerge:
    def test_merged_chrome_trace_has_process_groups(self, capsys, tmp_path):
        path = tmp_path / "merged.json"
        assert main(["trace", "--iterations", "3", "--chrome", str(path),
                     "--merge"]) == 0
        assert "merged Chrome trace" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["otherData"]["merged"] is True
        events = doc["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        assert names == {"counters", "pipeline"}
        pids = {e["pid"] for e in events}
        assert len(pids) == 2  # one process group per section


class TestTopCommand:
    def test_json_snapshot(self, capsys):
        assert main(["top", "--workload", "xgboost", "--iterations", "2",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "XG-Boost"
        assert doc["bootstraps"] > 0
        assert doc["batch_occupancy"] is not None
        assert doc["stage_cycle_fractions"]
        assert doc["drift_ok"] is True

    def test_panel_redraws_per_iteration(self, capsys):
        assert main(["top", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top") == 2
        assert "batch occupancy" in out

    def test_telemetry_left_disabled_after_run(self):
        from repro import observability as obs

        assert main(["top", "--iterations", "1", "--json"]) == 0
        assert not obs.is_enabled()


class TestRecordReplay:
    def test_record_writes_manual_bundle_and_jsonl(self, capsys, tmp_path):
        bundle_path = tmp_path / "flight.json"
        jsonl_path = tmp_path / "events.jsonl"
        assert main(["record", "--workload", "xgboost",
                     "-o", str(bundle_path), "--jsonl", str(jsonl_path)]) == 0
        out = capsys.readouterr().out
        assert "trigger: manual" in out
        from repro.observability import load_bundle, read_jsonl_events

        bundle = load_bundle(str(bundle_path))
        kinds = set(bundle["counts"])
        assert {"span", "counter", "workload", "snapshot"} <= kinds
        events = read_jsonl_events(str(jsonl_path))
        assert len(events) == len(bundle["events"])

    def test_record_latency_budget_triggers_spike_bundle(self, capsys, tmp_path):
        bundle_path = tmp_path / "flight.json"
        assert main(["record", "--workload", "xgboost",
                     "-o", str(bundle_path),
                     "--latency-budget", "1e-12"]) == 0
        assert "trigger: latency_spike" in capsys.readouterr().out
        from repro.observability import load_bundle

        bundle = load_bundle(str(bundle_path))
        assert bundle["trigger"]["reason"] == "latency_spike"
        assert any(e["kind"] == "anomaly" for e in bundle["events"])

    def test_replay_summarizes_bundle(self, capsys, tmp_path):
        bundle_path = tmp_path / "flight.json"
        assert main(["record", "-o", str(bundle_path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "trigger : manual" in out
        assert "span" in out and "counter" in out

    def test_replay_json_and_chrome_merged_timeline(self, capsys, tmp_path):
        bundle_path = tmp_path / "flight.json"
        chrome_path = tmp_path / "timeline.json"
        assert main(["record", "-o", str(bundle_path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(bundle_path), "--json",
                     "--chrome", str(chrome_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trigger"]["reason"] == "manual"
        assert doc["events"] == sum(doc["counts"].values())
        timeline = json.loads(chrome_path.read_text())
        events = timeline["traceEvents"]
        sections = {e["args"]["name"] for e in events
                    if e.get("name") == "process_name"}
        assert {"spans", "counters"} <= sections
        assert {"X", "C"} <= {e["ph"] for e in events}

    def test_replay_rejects_non_bundle(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "nope"}')
        assert main(["replay", str(bad)]) == 2
        assert "not a flight-recorder bundle" in capsys.readouterr().err

    def test_replay_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "absent.json")]) == 2
        assert "cannot replay" in capsys.readouterr().err


def _write_cli_shard(tmp_path, worker_id, epoch, publishes):
    """A deterministic shard for the fleet/top CLI tests."""
    from repro.observability.bus import JsonlEventLog

    from .observability import _golden

    bus = _golden.make_bus(epoch_unix=epoch)
    path = str(tmp_path / f"events-{worker_id}.jsonl")
    with JsonlEventLog(path, bus=bus, worker=worker_id):
        for kind, name, value, fields in publishes:
            bus.publish(kind, name, value=value, **fields)
    return path


def _write_v1_cli_shard(tmp_path):
    path = str(tmp_path / "events-old.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"v": 1, "kind": "jsonl_header",
                             "producer": "repro.observability.bus"}) + "\n")
        fh.write(json.dumps({"v": 1, "seq": 0, "t_s": 0.5, "kind": "stage",
                             "name": "x", "value": None, "fields": {}}) + "\n")
    return path


class TestFleetCommand:
    def _fleet_dir(self, tmp_path):
        from .observability import _golden

        _golden.build_fleet_shards(str(tmp_path))
        return str(tmp_path)

    def test_text_report_with_per_worker_rows(self, capsys, tmp_path):
        assert main(["fleet", self._fleet_dir(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "w0" in out and "w1" in out
        assert "latency (fleet" in out

    def test_json_report_is_schema_versioned(self, capsys, tmp_path):
        from repro.observability.distrib import FLEET_SCHEMA_VERSION

        assert main(["fleet", self._fleet_dir(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["v"] == FLEET_SCHEMA_VERSION
        assert doc["kind"] == "fleet_report"
        assert [w["worker"] for w in doc["workers"]] == ["w0", "w1"]
        assert doc["lost_workers"] == []

    def test_chrome_export_writes_merged_timeline(self, capsys, tmp_path):
        chrome = tmp_path / "fleet-trace.json"
        assert main(["fleet", self._fleet_dir(tmp_path),
                     "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["workers"] == ["w0", "w1"]

    def test_empty_directory_exits_2(self, capsys, tmp_path):
        assert main(["fleet", str(tmp_path)]) == 2
        assert "no events-*.jsonl shards" in capsys.readouterr().err

    def test_mixed_schema_versions_exit_2(self, capsys, tmp_path):
        from .observability import _golden

        old = _write_v1_cli_shard(tmp_path)
        new = _write_cli_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                               [("stage", "x", None, {})])
        assert main(["fleet", old, new]) == 2
        err = capsys.readouterr().err
        assert "cannot aggregate shards" in err
        assert "mixed event schema versions" in err

    def test_lost_worker_exits_1_and_dumps_evidence(self, capsys, tmp_path):
        from .observability import _golden

        _write_cli_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
                         [("heartbeat", "worker/w1", 0.0,
                           {"interval_s": 0.25, "final": False})])
        _write_cli_shard(tmp_path, "driver", _golden.FAKE_EPOCH_UNIX,
                         [("stage", f"tick{i}", None, {}) for i in range(10)])
        dump = tmp_path / "dumps"
        assert main(["fleet", str(tmp_path), "--dump", str(dump)]) == 1
        out = capsys.readouterr().out
        assert "!! worker_lost: w1" in out
        assert (dump / "fleet-worker-lost-w1.json").exists()

    def test_generous_miss_factor_keeps_exit_0(self, capsys, tmp_path):
        from .observability import _golden

        _write_cli_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
                         [("heartbeat", "worker/w1", 0.0,
                           {"interval_s": 0.25, "final": False})])
        _write_cli_shard(tmp_path, "driver", _golden.FAKE_EPOCH_UNIX,
                         [("stage", f"tick{i}", None, {}) for i in range(10)])
        assert main(["fleet", str(tmp_path), "--miss-factor", "100"]) == 0


class TestTopFromFleet:
    def test_repeated_from_flags_merge_shards(self, capsys, tmp_path):
        from .observability import _golden

        a = _write_cli_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                             [("request", "sched/request", 0.002,
                               {"count": 4})])
        b = _write_cli_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX + 1.0,
                             [("request", "sched/request", 0.004,
                               {"count": 4})])
        assert main(["top", "--from", a, "--from", b, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["workers"]) == {"w0", "w1"}
        assert doc["workers"]["w0"]["requests"] == 4

    def test_mixed_schema_versions_exit_2(self, capsys, tmp_path):
        from .observability import _golden

        old = _write_v1_cli_shard(tmp_path)
        new = _write_cli_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                               [("stage", "x", None, {})])
        assert main(["top", "--from", old, "--from", new]) == 2
        assert "mixed event schema versions" in capsys.readouterr().err


class TestReplayMultiBundle:
    def _golden_bundle_copy(self, tmp_path, name, version=None):
        import shutil

        from .observability import _golden

        path = tmp_path / name
        shutil.copy(_golden.GOLDEN_BUNDLE, path)
        if version is not None:
            doc = json.loads(path.read_text())
            doc["event_schema_version"] = version
            path.write_text(json.dumps(doc))
        return str(path)

    def test_several_bundles_merge_onto_one_timeline(self, capsys, tmp_path):
        a = self._golden_bundle_copy(tmp_path, "a.json")
        b = self._golden_bundle_copy(tmp_path, "b.json")
        chrome = tmp_path / "merged.json"
        assert main(["replay", a, b, "--json", "--chrome", str(chrome)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trigger"]["reason"] == "merged_replay"
        assert doc["trigger"]["fields"]["bundles"] == 2
        assert doc["events"] == sum(doc["counts"].values())
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_mixed_schema_versions_exit_2(self, capsys, tmp_path):
        a = self._golden_bundle_copy(tmp_path, "a.json")
        b = self._golden_bundle_copy(tmp_path, "b.json", version=1)
        assert main(["replay", a, b]) == 2
        assert "mixed event schema versions" in capsys.readouterr().err


class TestPoolCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["pool"])
        assert args.param_set == "test"
        assert args.workers == "1,2,4"
        assert args.batch == 16
        assert args.backend is None

    def test_pool_scaling_table(self, capsys):
        assert main(["pool", "--workers", "1,2", "--batch", "4",
                     "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "bootstraps/s" in out
        assert "single-process" in out

    def test_pool_json(self, capsys):
        assert main(["pool", "--workers", "1", "--batch", "4",
                     "--rounds", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["param_set"] == "test"
        assert doc["backend"] == "numpy"
        assert doc["batch"] == 4
        assert [e["workers"] for e in doc["entries"]] == [1]
        assert doc["entries"][0]["bootstraps_per_s"] > 0

    def test_pool_scipy_backend_stamped(self, capsys):
        pytest.importorskip("scipy")
        assert main(["pool", "--workers", "1", "--batch", "4",
                     "--rounds", "1", "--backend", "scipy", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["backend"] == "scipy"

    def test_pool_unknown_backend_exit_2(self, capsys):
        assert main(["pool", "--workers", "1", "--batch", "4",
                     "--backend", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "warp-drive" in err
        assert "numpy" in err

    def test_pool_invalid_workers_exit_2(self, capsys):
        assert main(["pool", "--workers", "zero,none"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_pool_telemetry_feeds_fleet(self, capsys, tmp_path):
        tdir = tmp_path / "pool-telemetry"
        assert main(["pool", "--workers", "2", "--batch", "4",
                     "--rounds", "1", "--telemetry", str(tdir)]) == 0
        capsys.readouterr()
        assert main(["fleet", str(tdir / "workers2"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        workers = {w["worker"] for w in doc["workers"]}
        assert {"driver", "w0", "w1"} <= workers
