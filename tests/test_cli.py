"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.param_set == "I"
        assert args.xpus == 4

    def test_unknown_set_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--set", "Z"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--set", "I"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "147," in out  # the Table V set I number

    def test_simulate_reuse_override(self, capsys):
        assert main(["simulate", "--set", "B", "--reuse", "none",
                     "--no-merge-split"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Total" in out
        assert "74.6" in out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "fig8b" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--id", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "46,752" in out or "46752" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--id", "fig99"]) == 2

    def test_workload(self, capsys):
        assert main(["workload", "xgboost"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_demo(self, capsys):
        assert main(["demo", "--message", "1"]) == 0
        out = capsys.readouterr().out
        assert "decrypted 1" in out

    def test_demo_bad_message(self, capsys):
        assert main(["demo", "--message", "7"]) == 2


class TestTraceCommand:
    def test_trace_renders(self, capsys):
        assert main(["trace", "--set", "II", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "rotation" in out
        assert "steady state" in out

    def test_trace_reuse_override(self, capsys):
        assert main(["trace", "--reuse", "none", "--no-merge-split"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
