"""Tests for the encrypted database application."""

import pytest

from repro.apps.database import EncryptedTable, database_query_workload


@pytest.fixture(scope="module")
def table(ctx):
    t = EncryptedTable(ctx)
    for key, value in [(5, 10), (12, 3), (20, 7), (5, 2)]:
        t.insert(key, value)
    return t


class TestPredicates:
    def test_count_eq(self, table):
        assert table.decrypt_count(table.count_where("eq", 5)) == 2

    def test_count_lt(self, table):
        assert table.decrypt_count(table.count_where("lt", 12)) == 2

    def test_count_ge(self, table):
        assert table.decrypt_count(table.count_where("ge", 12)) == 2

    def test_count_no_matches(self, table):
        assert table.decrypt_count(table.count_where("eq", 42)) == 0

    def test_unknown_predicate_rejected(self, table):
        with pytest.raises(ValueError):
            table.count_where("like", 5)


class TestAggregation:
    def test_sum_eq(self, table):
        assert table.decrypt_sum(table.sum_where("eq", 5)) == 12

    def test_sum_ge(self, table):
        assert table.decrypt_sum(table.sum_where("ge", 12)) == 10

    def test_sum_lt(self, table):
        assert table.decrypt_sum(table.sum_where("lt", 6)) == 12

    def test_sum_no_matches(self, table):
        assert table.decrypt_sum(table.sum_where("eq", 63)) == 0


class TestEmptyTable:
    def test_queries_rejected(self, ctx):
        empty = EncryptedTable(ctx)
        with pytest.raises(ValueError):
            empty.count_where("eq", 1)
        with pytest.raises(ValueError):
            empty.sum_where("eq", 1)

    def test_len(self, table):
        assert len(table) == 4


class TestWorkload:
    def test_layer_structure(self):
        wl = database_query_workload(100, num_digits=8)
        names = [l.name for l in wl.layers]
        assert names[0] == "predicates"
        assert names[1] == "mask-values"
        assert names[2].startswith("reduce-")

    def test_reduction_tree_depth(self):
        wl = database_query_workload(64, num_digits=4)
        reduce_layers = [l for l in wl.layers if l.name.startswith("reduce")]
        assert len(reduce_layers) == 6  # log2(64)

    def test_count_only_skips_aggregation(self):
        filter_only = database_query_workload(100, aggregate=False)
        assert len(filter_only.layers) == 1

    def test_rejects_empty_query(self):
        with pytest.raises(ValueError):
            database_query_workload(0)

    def test_costs_on_simulator(self):
        from repro.core import MorphlingConfig, run_workload
        from repro.params import get_params

        wl = database_query_workload(1000)
        result = run_workload(MorphlingConfig(), get_params("I"), list(wl.layers))
        # 54k bootstraps at ~147k BS/s -> sub-second encrypted analytics.
        assert result.total_seconds < 1.0
