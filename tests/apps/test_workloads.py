"""Tests for application workload descriptors (Table VI)."""

import pytest

from repro.apps import (
    ConvSpec,
    FcSpec,
    PBS_PER_ACTIVATION,
    Workload,
    conv_layer_demand,
    deepcnn_specs,
    deepcnn_workload,
    fc_layer_demand,
    vgg9_specs,
    vgg9_workload,
    xgboost_workload,
)
from repro.core.scheduler import LayerDemand


class TestSpecs:
    def test_conv_output_size(self):
        spec = ConvSpec("c", in_hw=8, in_ch=1, out_ch=2, kernel=3)
        assert spec.out_hw == 6
        assert spec.activations == 72

    def test_strided_conv(self):
        spec = ConvSpec("c", in_hw=6, in_ch=2, out_ch=92, kernel=3, stride=2)
        assert spec.out_hw == 2
        assert spec.activations == 368  # the paper's "368 ReLU operations"

    def test_conv_macs(self):
        spec = ConvSpec("c", in_hw=4, in_ch=2, out_ch=3, kernel=2)
        assert spec.macs == spec.activations * 2 * 2 * 2

    def test_fc(self):
        spec = FcSpec("f", in_features=16, out_features=10)
        assert spec.activations == 10
        assert spec.macs == 160

    def test_demand_conversion(self):
        spec = ConvSpec("c", in_hw=4, in_ch=1, out_ch=1, kernel=2)
        demand = conv_layer_demand(spec)
        assert demand.bootstraps == spec.activations * PBS_PER_ACTIVATION
        inert = ConvSpec("c", in_hw=4, in_ch=1, out_ch=1, kernel=2, activated=False)
        assert conv_layer_demand(inert).bootstraps == 0

    def test_fc_demand(self):
        demand = fc_layer_demand(FcSpec("f", 8, 4, activated=False))
        assert demand.bootstraps == 0
        assert demand.linear_macs == 32


class TestWorkloadContainer:
    def test_totals(self):
        wl = Workload("w", (LayerDemand("a", 10, 100), LayerDemand("b", 5)))
        assert wl.total_bootstraps == 15
        assert wl.total_linear_macs == 100
        assert wl.depth == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Workload("w", ())

    def test_rejects_non_layers(self):
        with pytest.raises(TypeError):
            Workload("w", ("not-a-layer",))

    def test_summary_mentions_name(self):
        wl = xgboost_workload()
        assert "XG-Boost" in wl.summary()


class TestDeepCnn:
    def test_layer_count(self):
        # 2 head convs + X trunk + final conv + FC
        assert len(deepcnn_specs(20)) == 24

    def test_trunk_relu_count(self):
        """Each 1x1 trunk layer produces the paper's 368 activations."""
        trunk = deepcnn_specs(20)[2]
        assert trunk.activations == 368

    def test_workload_scales_linearly_in_depth(self):
        w20 = deepcnn_workload(20).total_bootstraps
        w50 = deepcnn_workload(50).total_bootstraps
        w100 = deepcnn_workload(100).total_bootstraps
        per_layer = (w50 - w20) / 30
        assert per_layer == pytest.approx(368 * PBS_PER_ACTIVATION)
        assert (w100 - w50) / 50 == pytest.approx(per_layer)

    def test_final_fc_has_no_activation(self):
        assert deepcnn_workload(20).layers[-1].bootstraps == 0

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            deepcnn_specs(0)


class TestVgg9:
    def test_nine_weight_layers(self):
        assert len(vgg9_specs()) == 9

    def test_filter_progression(self):
        convs = [s for s in vgg9_specs() if isinstance(s, ConvSpec)]
        assert [c.out_ch for c in convs] == [64, 64, 128, 128, 256, 256]

    def test_workload_smaller_than_raw_activations(self):
        """The documented activation-reduction substitution."""
        raw = sum(s.activations for s in vgg9_specs() if s.activated)
        wl = vgg9_workload()
        assert wl.total_bootstraps < raw * PBS_PER_ACTIVATION / 4

    def test_macs_dominated_by_convs(self):
        wl = vgg9_workload()
        conv_macs = sum(l.linear_macs for l in wl.layers[:6])
        assert conv_macs > 0.8 * wl.total_linear_macs


class TestXgboost:
    def test_default_sizes(self):
        wl = xgboost_workload()
        assert wl.depth == 3
        assert wl.layers[0].bootstraps == 100 * 24

    def test_comparisons_scale_with_trees(self):
        big = xgboost_workload(n_estimators=200)
        assert big.layers[0].bootstraps == 200 * 24

    def test_rejects_empty_ensemble(self):
        with pytest.raises(ValueError):
            xgboost_workload(n_estimators=0)
