"""End-to-end functional tests: encrypted trees and NN layers on the real scheme."""

import pytest

from repro.apps import EncryptedTreeEnsemble, TreeNode, encrypted_dense_relu, encrypted_dot
from repro.tfhe.lwe import lwe_decrypt_phase
from repro.tfhe.torus import decode_message

import numpy as np


class TestEncryptedDot:
    def test_matches_plain_dot(self, ctx):
        p = ctx.default_p
        values = [1, 0, 1]
        weights = [1, 1, -1]
        cts = [ctx.encrypt(v, p) for v in values]
        acc = encrypted_dot(cts, weights, ctx.params.n)
        phase = lwe_decrypt_phase(acc, ctx.keyset.lwe_key)
        got = int(decode_message(np.asarray(phase), p)[()])
        assert got == (sum(v * w for v, w in zip(values, weights)) % p)

    def test_rejects_mismatched_lengths(self, ctx):
        with pytest.raises(ValueError):
            encrypted_dot([ctx.encrypt(0)], [1, 2], ctx.params.n)


class TestEncryptedDenseRelu:
    @pytest.mark.parametrize(
        "inputs,weights,expected",
        [
            ([1, -1], [[1, 1]], [0]),        # 1 - 1 = 0 -> relu 0
            ([1, 0], [[1, 1]], [1]),         # 1 -> relu 1
            ([-1, -1], [[1, 1]], [0]),       # -2 -> relu 0 (clamped input range)
            ([1, 1], [[1, -1], [0, 1]], [0, 1]),
        ],
    )
    def test_small_dense_layers(self, ctx, inputs, weights, expected):
        cts = [ctx.encrypt_signed(v) for v in inputs]
        outs = encrypted_dense_relu(ctx, cts, weights)
        got = [ctx.decrypt_signed(o) for o in outs]
        assert got == expected

    def test_two_layer_network(self, ctx):
        """Compose two encrypted layers: the NN lowering used by DeepCNN."""
        x = [ctx.encrypt_signed(1), ctx.encrypt_signed(-1)]
        hidden = encrypted_dense_relu(ctx, x, [[1, 0], [0, -1]])  # relu(1), relu(1)
        out = encrypted_dense_relu(ctx, hidden, [[1, -1]])  # relu(0)
        assert ctx.decrypt_signed(out[0]) == 0


class TestEncryptedTreeEnsemble:
    def test_plain_stump(self):
        node = TreeNode(feature=0, threshold=0, left_value=0, right_value=1)
        assert node.evaluate_plain([1]) == 1
        assert node.evaluate_plain([-1]) == 0

    @pytest.mark.parametrize("features", [[1, -1], [-1, 1], [1, 1], [-1, -1]])
    def test_ensemble_matches_plain(self, ctx, features):
        stumps = [
            TreeNode(feature=0, threshold=0, left_value=0, right_value=1),
            TreeNode(feature=1, threshold=1, left_value=1, right_value=0),
        ]
        ensemble = EncryptedTreeEnsemble(ctx, stumps)
        enc_features = [ctx.encrypt_signed(f) for f in features]
        score_ct = ensemble.predict_encrypted(enc_features)
        assert ensemble.decode_score(score_ct) == ensemble.predict_plain(features)

    def test_rejects_empty_ensemble(self, ctx):
        with pytest.raises(ValueError):
            EncryptedTreeEnsemble(ctx, [])
