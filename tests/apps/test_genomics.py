"""Tests for the secure genome-matching application."""


import pytest

from repro.apps.genomics import GenotypeMatcher, genome_match_workload


class TestFunctionalMatcher:
    @pytest.fixture(scope="class")
    def matcher(self, ctx):
        return GenotypeMatcher(ctx, num_sites=3)

    @pytest.mark.parametrize("a,b", [
        ([0, 0, 0], [0, 0, 0]),
        ([1, 0, 1], [1, 1, 0]),
        ([1, 1, 1], [0, 0, 0]),
    ])
    def test_hamming_distance(self, ctx, matcher, a, b):
        expected = sum(x != y for x, y in zip(a, b))
        d = matcher.hamming_distance(
            matcher.encrypt_genotype(a), matcher.encrypt_genotype(b)
        )
        assert matcher.decrypt_distance(d) == expected

    def test_threshold_verdicts(self, ctx, matcher):
        a = matcher.encrypt_genotype([1, 0, 1])
        b = matcher.encrypt_genotype([1, 1, 0])  # distance 2
        assert ctx.decrypt(matcher.matches_within(a, b, threshold=2), 8) == 1
        a = matcher.encrypt_genotype([1, 0, 1])
        b = matcher.encrypt_genotype([1, 1, 0])
        assert ctx.decrypt(matcher.matches_within(a, b, threshold=1), 8) == 0

    def test_length_validation(self, ctx, matcher):
        with pytest.raises(ValueError):
            matcher.encrypt_genotype([1, 0])
        good = matcher.encrypt_genotype([1, 0, 1])
        with pytest.raises(ValueError):
            matcher.hamming_distance(good, good[:2])

    def test_site_limit(self, ctx):
        with pytest.raises(ValueError):
            GenotypeMatcher(ctx, num_sites=4)
        with pytest.raises(ValueError):
            GenotypeMatcher(ctx, num_sites=0)


class TestWorkload:
    def test_structure(self):
        wl = genome_match_workload(1024, panel_size=8)
        assert wl.layers[0].name == "site-xor"
        assert wl.layers[0].bootstraps == 1024 * 8
        assert wl.layers[-1].name == "thresholds"

    def test_popcount_depth_logarithmic(self):
        wl = genome_match_workload(1024, panel_size=1)
        popcounts = [l for l in wl.layers if l.name.startswith("popcount")]
        assert len(popcounts) == 10  # log2(1024)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            genome_match_workload(0)

    def test_costs_on_simulator(self):
        from repro.core import MorphlingConfig, run_workload
        from repro.params import get_params

        wl = genome_match_workload(1000, panel_size=4)
        result = run_workload(MorphlingConfig(), get_params("I"), list(wl.layers))
        assert 0 < result.total_seconds < 2.0
