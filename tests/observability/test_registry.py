"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import threading

import pytest

from repro.observability.registry import MetricsRegistry


@pytest.fixture()
def reg():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("events_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_make_separate_series(self, reg):
        c = reg.counter("ops_total")
        c.inc(direction="forward")
        c.inc(3, direction="inverse")
        assert c.value(direction="forward") == 1
        assert c.value(direction="inverse") == 3
        assert c.value(direction="sideways") is None

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("mono_total").inc(-1)

    def test_disabled_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("off_total")
        c.inc(100)
        assert c.value() is None

    def test_reenabling_resumes(self):
        reg = MetricsRegistry()
        c = reg.counter("toggle_total")
        c.inc()
        reg.enable()
        c.inc()
        assert c.value() == 1


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_labelled(self, reg):
        g = reg.gauge("occupancy")
        g.set(0.5, stage="fft")
        assert g.value(stage="fft") == 0.5


class TestHistogram:
    def test_observe_and_snapshot(self, reg):
        h = reg.histogram("sizes", buckets=(10, 100, 1000))
        h.observe(5)
        h.observe(50, count=3)
        h.observe(5000)
        snap = h.snapshot()
        (series,) = snap["values"]
        assert series["count"] == 5
        assert series["sum"] == 5 + 150 + 5000
        # cumulative buckets; the 5000 observation overflows every bound
        assert series["buckets"] == {10.0: 1, 100.0: 4, 1000.0: 4}

    def test_batch_observation_weights_count(self, reg):
        h = reg.histogram("batched", buckets=(8,))
        h.observe(4, count=10)
        (series,) = h.snapshot()["values"]
        assert series["count"] == 10
        assert series["sum"] == 40

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("broken", buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self, reg):
        a = reg.counter("same_total")
        b = reg.counter("same_total")
        assert a is b

    def test_type_conflict_rejected(self, reg):
        reg.counter("name_clash")
        with pytest.raises(ValueError):
            reg.gauge("name_clash")

    def test_snapshot_shape(self, reg):
        reg.counter("a_total", "first").inc(2, kind="x")
        reg.gauge("b").set(7)
        snap = reg.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["help"] == "first"
        assert snap["a_total"]["values"] == [
            {"labels": {"kind": "x"}, "value": 2.0}
        ]
        assert snap["b"]["values"] == [{"labels": {}, "value": 7.0}]

    def test_reset_zeroes_but_keeps_registrations(self, reg):
        c = reg.counter("kept_total")
        c.inc(9)
        reg.reset()
        assert c.value() is None
        assert "kept_total" in reg.names()

    def test_concurrent_increments_are_not_lost(self, reg):
        c = reg.counter("race_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000
