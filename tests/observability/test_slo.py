"""Tests for the SLO engine: sketch properties, burn rates, report golden.

The quantile sketch is held to its DDSketch contract with hypothesis
(relative-error bound on adversarial streams, exact shard-merge
agreement, merge associativity/commutativity); the monitor is driven on
a deterministic fake-clock bus; the ``repro slo --json`` report shape is
golden-pinned (regenerate with ``python -m tests.observability.test_slo``
after an intentional ``SLO_REPORT_SCHEMA_VERSION`` bump).
"""

import json
import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.registry import TIME_BUCKETS, MetricsRegistry
from repro.observability.sketch import DEFAULT_QUANTILES, QuantileSketch
from repro.observability.slo import (
    SLO_REPORT_SCHEMA_VERSION,
    FailureBudgetObjective,
    LatencyObjective,
    SLOMonitor,
    SLORegistry,
    ThroughputObjective,
    price_slos,
)

from . import _golden

GOLDEN_SLO = os.path.join(_golden.GOLDEN_DIR, "slo_report.json")

# Latency-like values spanning nanoseconds to hours; the log-bucketed
# sketch must hold its bound over the whole dynamic range at once.
latencies = st.floats(min_value=1e-9, max_value=1e4,
                      allow_nan=False, allow_infinity=False)
streams = st.lists(latencies, min_size=1, max_size=200)


def _true_quantile(values, q):
    """The rank convention the sketch documents: lower interpolation."""
    ordered = sorted(values)
    return ordered[int(math.floor(q * (len(ordered) - 1)))]


# ---------------------------------------------------------------------------
# Sketch properties
# ---------------------------------------------------------------------------
class TestSketchProperties:
    @settings(max_examples=200, deadline=None)
    @given(values=streams, q=st.sampled_from([0.0, 0.5, 0.9, 0.95, 0.99, 1.0]))
    def test_relative_error_bound(self, values, q):
        sketch = QuantileSketch(relative_accuracy=0.01)
        for v in values:
            sketch.add(v)
        truth = _true_quantile(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - truth) <= sketch.alpha * truth * (1 + 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(a=streams, b=streams)
    def test_merge_is_commutative_and_exact(self, a, b):
        sa, sb = QuantileSketch(), QuantileSketch()
        for v in a:
            sa.add(v)
        for v in b:
            sb.add(v)
        ab = sa.copy().merge(sb)
        ba = sb.copy().merge(sa)
        assert ab.state() == ba.state()
        assert ab.count == ba.count == len(a) + len(b)
        # A merged sketch is bucket-identical to a single-stream one.
        combined = QuantileSketch()
        for v in a + b:
            combined.add(v)
        assert ab.state() == combined.state()

    @settings(max_examples=100, deadline=None)
    @given(a=streams, b=streams, c=streams)
    def test_merge_is_associative(self, a, b, c):
        def sketch_of(values):
            s = QuantileSketch()
            for v in values:
                s.add(v)
            return s

        sa, sb, sc = sketch_of(a), sketch_of(b), sketch_of(c)
        left = sa.copy().merge(sb).merge(sc)
        right = sa.copy().merge(sb.copy().merge(sc))
        assert left.state() == right.state()

    @settings(max_examples=100, deadline=None)
    @given(values=streams, data=st.data())
    def test_sharded_ingest_agrees_with_single_stream(self, values, data):
        """However a stream is split across shards, merging the shard
        sketches reproduces the single-stream sketch exactly."""
        shards = [QuantileSketch() for _ in range(3)]
        for v in values:
            shards[data.draw(st.integers(0, 2))].add(v)
        merged = shards[0].copy().merge(shards[1]).merge(shards[2])
        single = QuantileSketch()
        for v in values:
            single.add(v)
        assert merged.state() == single.state()
        assert merged.min == single.min and merged.max == single.max

    @settings(max_examples=50, deadline=None)
    @given(value=latencies, count=st.integers(1, 1000))
    def test_weighted_add_equals_repeated_adds(self, value, count):
        weighted, repeated = QuantileSketch(), QuantileSketch()
        weighted.add(value, count)
        for _ in range(count):
            repeated.add(value)
        assert weighted.state() == repeated.state()


class TestSketchEdges:
    def test_empty_sketch_has_no_quantiles(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) is None
        assert sketch.mean is None
        assert len(sketch) == 0

    def test_subnormal_values_collapse_into_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.add(0.0, 5)
        sketch.add(1e-15)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.bucket_count == 1

    def test_rejects_bad_values_and_counts(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.add(float("inf"))
        with pytest.raises(ValueError):
            sketch.add(1.0, count=0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_rejects_mismatched_merges(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))
        with pytest.raises(TypeError):
            QuantileSketch().merge({"not": "a sketch"})

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.0)
        with pytest.raises(ValueError):
            QuantileSketch(1.0)


# ---------------------------------------------------------------------------
# Quantile metric kind + TIME_BUCKETS
# ---------------------------------------------------------------------------
class TestQuantileMetric:
    def test_observe_snapshot_and_merged(self):
        reg = MetricsRegistry(enabled=True)
        q = reg.quantile("req_latency_seconds", "per-request latency")
        q.observe(0.010, count=3, shard="a")
        q.observe(0.020, shard="b")
        snap = reg.snapshot()["req_latency_seconds"]
        assert snap["type"] == "quantile"
        by_shard = {v["labels"]["shard"]: v for v in snap["values"]}
        assert by_shard["a"]["count"] == 3
        assert by_shard["b"]["max"] == 0.020
        merged = q.merged()
        assert merged.count == 4
        assert q.sketch(shard="a").count == 3

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        q = reg.quantile("off_seconds")
        q.observe(1.0)
        assert q.merged() is None

    def test_prometheus_renders_quantile_as_summary(self):
        from repro.observability.export import render_prometheus

        reg = MetricsRegistry(enabled=True)
        reg.quantile("lat_seconds", "latency").observe(0.5, count=10)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.5"}' in text
        assert "lat_seconds_count 10" in text

    def test_time_buckets_ladder_spans_microseconds_to_kiloseconds(self):
        assert TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert TIME_BUCKETS[-1] == pytest.approx(1e3)
        ratios = [b / a for a, b in zip(TIME_BUCKETS, TIME_BUCKETS[1:])]
        # Log-spaced: every step is the same half-decade multiplier
        # (bounds are rounded to 12 decimals, so compare loosely).
        assert all(r == pytest.approx(math.sqrt(10.0), rel=1e-3) for r in ratios)

    def test_tracer_spans_feed_time_bucket_histogram(self):
        from repro import observability as obs

        obs.REGISTRY.enable()
        obs.TRACER.enable()
        try:
            with obs.TRACER.span("slo_test_span", category="test"):
                pass
            snap = obs.REGISTRY.snapshot()["tracer_span_seconds"]
            series = [v for v in snap["values"]
                      if v["labels"].get("category") == "test"]
            assert series and series[0]["count"] >= 1
            assert tuple(series[0]["buckets"]) == TIME_BUCKETS
        finally:
            obs.disable()
            obs.REGISTRY.reset()
            obs.TRACER.reset()


# ---------------------------------------------------------------------------
# Objectives + registry + pricing
# ---------------------------------------------------------------------------
class TestSLORegistry:
    def test_ordered_and_typed(self):
        slos = SLORegistry()
        slos.latency("p99", 0.99, 0.02)
        slos.throughput("floor", 100.0)
        slos.failure_budget("fail", -20.0)
        kinds = [o.kind for o in slos]
        assert kinds == ["latency", "throughput", "failure"]
        assert len(slos) == 3
        assert slos.get("p99").budget_fraction == pytest.approx(0.01)
        assert [o.name for o in slos.latency_objectives] == ["p99"]

    def test_duplicate_name_rejected(self):
        slos = SLORegistry()
        slos.latency("p99", 0.99, 0.02)
        with pytest.raises(ValueError, match="already registered"):
            slos.throughput("p99", 100.0)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            LatencyObjective("bad", quantile=1.0, threshold_s=0.1)
        with pytest.raises(ValueError):
            LatencyObjective("bad", quantile=0.5, threshold_s=0.0)
        with pytest.raises(ValueError):
            ThroughputObjective("bad", floor_per_s=0.0)
        assert FailureBudgetObjective("f").log2_budget == -20.0


class TestPricing:
    def test_priced_contract_shape(self):
        from repro.core.accelerator import MorphlingConfig
        from repro.params import get_params

        slos = price_slos(MorphlingConfig.morphling(), get_params("III"),
                          total_bootstraps=10_000, slack=2.0)
        names = [o.name for o in slos]
        assert names == ["request_p50", "request_p95", "request_p99",
                         "throughput_floor", "decrypt_failure"]
        p50, p95, p99 = slos.latency_objectives
        # Completion-time thresholds grow with the quantile.
        assert p50.threshold_s < p95.threshold_s < p99.threshold_s
        floor = slos.get("throughput_floor")
        # Doubling the slack halves the floor and doubles the thresholds.
        loose = price_slos(MorphlingConfig.morphling(), get_params("III"),
                           total_bootstraps=10_000, slack=4.0)
        assert loose.get("throughput_floor").floor_per_s == pytest.approx(
            floor.floor_per_s / 2.0)
        assert loose.get("request_p99").threshold_s == pytest.approx(
            2.0 * p99.threshold_s)

    def test_slack_below_one_rejected(self):
        from repro.core.accelerator import MorphlingConfig
        from repro.params import get_params

        with pytest.raises(ValueError, match="slack"):
            price_slos(MorphlingConfig.morphling(), get_params("III"), slack=0.5)


# ---------------------------------------------------------------------------
# Monitor: folding, burn rates, cooldown, evaluation
# ---------------------------------------------------------------------------
def _monitor(slos, **kw):
    bus = _golden.make_bus()  # deterministic 0.5 s per clock tick
    kw.setdefault("windows", ((1.0, 2.0, 2.0),))
    kw.setdefault("cooldown_s", 100.0)
    return SLOMonitor(slos, bus=bus, **kw), bus


class _Failure:
    def __init__(self, total_log2_prob):
        self.total_log2_prob = total_log2_prob


class TestMonitor:
    def test_folds_only_request_events(self):
        slos = SLORegistry()
        slos.latency("p50", 0.5, 1.0)
        monitor, bus = _monitor(slos)
        with monitor:
            bus.publish("request", "sched/request", value=0.004, count=64)
            bus.publish("metric", "noise", value=9.0)  # ignored
            bus.publish("request", "sched/request", value=0.008, count=36)
        assert monitor.requests == 100
        assert monitor.sketch.max == 0.008

    def test_detach_stops_folding(self):
        slos = SLORegistry()
        slos.latency("p50", 0.5, 1.0)
        monitor, bus = _monitor(slos)
        monitor.attach()
        monitor.detach()
        bus.publish("request", "r", value=0.1)
        assert monitor.requests == 0

    def test_burn_alert_needs_both_windows_over_factor(self):
        slos = SLORegistry()
        slos.latency("p50", 0.5, 0.010)  # budget 0.5, factor 2 => all-bad
        monitor, bus = _monitor(slos)
        with monitor:
            for _ in range(6):  # t = 0.5 .. 3.0, every sample bad
                bus.publish("request", "r", value=0.050, count=8)
        assert len(monitor.breaches) == 1  # cooldown swallows repeats
        alert = monitor.breaches[0]
        assert alert["objective"] == "p50"
        assert alert["burn_short"] == pytest.approx(2.0)
        assert alert["burn_long"] == pytest.approx(2.0)

    def test_good_traffic_never_alerts(self):
        slos = SLORegistry()
        slos.latency("p99", 0.99, 0.010)
        monitor, bus = _monitor(slos)
        with monitor:
            for _ in range(50):
                bus.publish("request", "r", value=0.002, count=8)
        assert monitor.breaches == []
        report = monitor.evaluate()
        assert report.ok

    def test_cooldown_zero_refires(self):
        slos = SLORegistry()
        slos.latency("p50", 0.5, 0.010)
        monitor, bus = _monitor(slos, cooldown_s=0.0)
        with monitor:
            for _ in range(6):
                bus.publish("request", "r", value=0.050, count=8)
        assert len(monitor.breaches) > 1

    def test_evaluate_breached_latency_objective(self):
        slos = SLORegistry()
        slos.latency("p50", 0.5, 0.010)
        monitor, bus = _monitor(slos)
        with monitor:
            for _ in range(6):
                bus.publish("request", "r", value=0.050, count=8)
        report = monitor.evaluate()
        status = report.objectives[0]
        assert not status.ok and not report.ok
        assert status.budget_remaining < 0.0  # budget overspent
        assert report.breaches  # burn alerts ride along in the report

    def test_throughput_derived_from_completion_times(self):
        slos = SLORegistry()
        slos.throughput("floor", 100.0)
        monitor, bus = _monitor(slos)
        with monitor:
            # Completion times since start: max sample is the makespan.
            bus.publish("request", "r", value=0.5, count=400)
            bus.publish("request", "r", value=1.0, count=400)
        report = monitor.evaluate()
        assert report.makespan_s == pytest.approx(1.0)
        status = report.objectives[0]
        assert status.observed == pytest.approx(800.0)
        assert status.ok
        # An explicit override wins over the derived value.
        assert monitor.evaluate(throughput_per_s=50.0).objectives[0].ok is False

    def test_failure_budget_evaluation(self):
        slos = SLORegistry()
        slos.failure_budget("fail", -20.0)
        monitor, _ = _monitor(slos)
        unevaluated = monitor.evaluate().objectives[0]
        assert unevaluated.ok and unevaluated.observed is None
        good = monitor.evaluate(failure=_Failure(-30.0)).objectives[0]
        assert good.ok
        assert good.budget_remaining == pytest.approx(1.0 - 2.0 ** -10)
        bad = monitor.evaluate(failure=_Failure(-10.0)).objectives[0]
        assert not bad.ok and bad.budget_remaining < 0.0


# ---------------------------------------------------------------------------
# Report shape: schema golden
# ---------------------------------------------------------------------------
def build_golden_report():
    """Deterministic contract evaluation behind the schema golden."""
    slos = SLORegistry()
    slos.latency("request_p50", 0.5, 0.010)
    slos.latency("request_p99", 0.99, 0.020)
    slos.throughput("throughput_floor", 1000.0)
    slos.failure_budget("decrypt_failure", -20.0)
    monitor, bus = _monitor(slos, windows=((1.0, 2.0, 4.0),))
    with monitor:
        for latency, count in ((0.004, 64), (0.008, 64), (0.012, 32),
                               (0.025, 1)):
            bus.publish("request", "sched/request", value=latency, count=count)
    return monitor.evaluate(failure=_Failure(-30.0))


class TestReportGolden:
    def test_report_matches_golden_byte_for_byte(self):
        """Any diff here is a schema change: bump
        SLO_REPORT_SCHEMA_VERSION and regenerate (this file's __main__)."""
        report = build_golden_report()
        assert report.schema_version == SLO_REPORT_SCHEMA_VERSION
        rendered = json.dumps(report.to_jsonable(), indent=1) + "\n"
        with open(GOLDEN_SLO) as fh:
            assert rendered == fh.read()

    def test_report_render_text_names_every_objective(self):
        report = build_golden_report()
        text = report.render_text()
        for name in ("request_p50", "request_p99", "throughput_floor",
                     "decrypt_failure"):
            assert name in text
        assert "all objectives met" in text

    def test_default_quantiles_quoted_in_latency_block(self):
        report = build_golden_report()
        assert sorted(report.latency) == sorted(
            f"p{q * 100:g}" for q in DEFAULT_QUANTILES)


def regenerate():
    report = build_golden_report()
    with open(GOLDEN_SLO, "w") as fh:
        json.dump(report.to_jsonable(), fh, indent=1)
        fh.write("\n")


if __name__ == "__main__":
    regenerate()
    print(f"regenerated {GOLDEN_SLO}")
