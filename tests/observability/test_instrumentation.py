"""End-to-end instrumentation tests: hot paths feed the global telemetry."""

import numpy as np
import pytest

from repro import observability as obs
from repro.core.accelerator import MorphlingConfig
from repro.core.scheduler import HwScheduler, LayerDemand, SwScheduler
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params
from repro.tfhe import identity_test_polynomial, programmable_bootstrap
from repro.transforms.fft import fft, ifft
from repro.transforms.negacyclic import negacyclic_convolve_fft


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test observes only its own activity; leave telemetry off after."""
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _counter(name, **labels):
    metric = obs.REGISTRY.get(name)
    value = metric.value(**labels) if metric is not None else None
    return 0.0 if value is None else value


class TestTransformCounters:
    def test_fft_directions_and_batches(self):
        with obs.telemetry():
            fft(np.zeros((3, 8), dtype=np.complex128))
            ifft(np.zeros(8, dtype=np.complex128))
        assert _counter("transforms_fft_total", direction="forward") == 3
        assert _counter("transforms_fft_total", direction="inverse") == 1

    def test_negacyclic_convolve_counts_both_directions(self):
        with obs.telemetry():
            negacyclic_convolve_fft(np.ones(16), np.ones(16))
        assert _counter("transforms_negacyclic_total", direction="forward") == 2
        assert _counter("transforms_negacyclic_total", direction="inverse") == 1

    def test_disabled_records_nothing(self):
        fft(np.zeros(8, dtype=np.complex128))
        assert _counter("transforms_fft_total", direction="forward") == 0


class TestFunctionalBootstrapTelemetry:
    def test_bootstrap_fires_counters_and_span(self, ctx):
        p = ctx.params
        tp = identity_test_polynomial(p, 8)
        ct = ctx.encrypt(2, 8)
        with obs.telemetry():
            programmable_bootstrap(ct, tp, ctx.keyset)
        assert _counter("tfhe_bootstraps_total") == 1
        assert 0 < _counter("tfhe_blind_rotation_steps_total") <= p.n
        assert _counter("tfhe_key_switches_total") == 1
        assert _counter("tfhe_external_products_total", engine="transform") > 0
        # real FFT work happened underneath
        assert _counter("transforms_fft_total", direction="forward") > 0
        names = [s.name for s in obs.TRACER.spans()]
        assert "programmable_bootstrap" in names


class TestSimulatorTelemetry:
    def test_one_group_reports_nonzero_core_counters(self):
        with obs.telemetry():
            report = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        assert _counter("sim_bootstraps_total") == report.group_size
        assert _counter("sim_groups_total") == 1
        assert _counter("sim_transforms_total", direction="forward") > 0
        assert _counter("hbm_bytes_total", channel="xpu") > 0
        assert _counter("hbm_bytes_total", channel="vpu") > 0
        assert _counter("sim_bottleneck_total", resource=report.bottleneck) == 1
        tracks = {s.track for s in obs.TRACER.spans()}
        assert "sim/xpu_compute" in tracks

    def test_telemetry_off_means_no_series(self):
        simulate_bootstrap(MorphlingConfig(), get_params("I"))
        assert _counter("sim_bootstraps_total") == 0
        assert len(obs.TRACER.spans()) == 0


class TestSchedulerTelemetry:
    def test_workload_spans_and_instruction_counts(self):
        config, params = MorphlingConfig(), get_params("I")
        layers = [LayerDemand("l0", bootstraps=70, linear_macs=1000)]
        with obs.telemetry():
            stream = SwScheduler(config, params).schedule(layers)
            result = HwScheduler(config, params).execute(stream)
        assert _counter("sched_groups_formed_total") == 2  # 70 -> 64 + 6
        assert _counter("sched_instructions_total", op="blind_rotate") == 2
        assert _counter("sched_padded_slots_total") > 0
        spans = obs.TRACER.spans()
        assert len(spans) == len(stream)
        assert max(s.end_us for s in spans) == pytest.approx(
            result.total_seconds * 1e6
        )
