"""Tests for the `repro top` dashboard: event folding, snapshot, render."""

import io
import json

import pytest

from repro.observability.bus import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    JsonlEventLog,
    TelemetryEvent,
)
from repro.observability.dashboard import Dashboard, run_top
from repro.observability.slo import SLORegistry

from . import _golden


@pytest.fixture()
def rig():
    bus = _golden.make_bus()
    dash = Dashboard(bus=bus)
    return bus, dash


class TestFolding:
    def test_batch_events_accumulate_bootstraps_and_occupancy(self, rig):
        bus, dash = rig
        bus.publish("batch", "machine/bootstrap_batch", value=48.0, capacity=64)
        bus.publish("batch", "machine/bootstrap_batch", value=32.0, capacity=64)
        snap = dash.snapshot()
        assert snap["bootstraps"] == 80.0
        assert snap["batch_occupancy"] == pytest.approx((48 / 64 + 32 / 64) / 2)

    def test_batch_without_capacity_counts_bootstraps_only(self, rig):
        bus, dash = rig
        bus.publish("batch", "tfhe/bootstrap_batch", value=16.0)
        snap = dash.snapshot()
        assert snap["bootstraps"] == 16.0
        assert snap["batch_occupancy"] is None

    def test_cycle_counters_become_normalized_fractions(self, rig):
        bus, dash = rig
        bus.publish("counter", "xpu/stage/rotation", value=75.0, unit="cycles")
        bus.publish("counter", "xpu/stage/fft", value=25.0, unit="cycles")
        fractions = dash.snapshot()["stage_cycle_fractions"]
        assert fractions == {"xpu/stage/fft": 0.25, "xpu/stage/rotation": 0.75}

    def test_byte_counters_tracked_per_channel(self, rig):
        bus, dash = rig
        bus.publish("counter", "hbm/channel/0", value=1024.0, unit="bytes")
        bus.publish("counter", "hbm/channel/0", value=1024.0, unit="bytes")
        bus.publish("counter", "hbm/channel/1", value=512.0, unit="bytes")
        assert dash.snapshot()["hbm_bytes"] == {
            "hbm/channel/0": 2048.0, "hbm/channel/1": 512.0
        }

    def test_noise_events_track_worst_sigma_and_verdict(self, rig):
        bus, dash = rig
        bus.publish("noise", "bootstrap", value=-12.0, sigma=1.5)
        bus.publish("noise", "bootstrap", value=-12.0, sigma=4.0)
        bus.publish("noise", "bootstrap", value=-12.0, sigma=2.0)
        snap = dash.snapshot()
        assert snap["noise_ops"] == 3
        assert snap["worst_sigma"] == 4.0
        assert snap["drift_ok"] is True  # 4.0 <= default 6-sigma envelope

    def test_drift_verdict_flips_past_envelope(self, rig):
        bus, dash = rig
        dash.drift_sigmas = 3.0
        bus.publish("noise", "bootstrap", value=-12.0, sigma=3.5)
        assert dash.snapshot()["drift_ok"] is False

    def test_anomaly_history_is_bounded(self):
        bus = _golden.make_bus()
        dash = Dashboard(bus=bus, anomaly_history=2)
        for i in range(5):
            bus.publish("anomaly", f"a{i}", index=i)
        anomalies = dash.snapshot()["anomalies"]
        assert [a["reason"] for a in anomalies] == ["a3", "a4"]

    def test_workload_and_snapshot_events_recorded(self, rig):
        bus, dash = rig
        bus.publish("workload", "XG-Boost", value=2510.0, layers=3)
        bus.publish("snapshot", "sim/report", value=1.25e6,
                    bottleneck="bsk_bandwidth")
        snap = dash.snapshot()
        assert snap["workload"] == "XG-Boost"
        assert snap["reports"]["sim/report"]["bottleneck"] == "bsk_bandwidth"

    def test_elapsed_and_rate_use_bus_time(self, rig):
        bus, dash = rig
        # fake clock: 0.5s per publish
        bus.publish("batch", "b", value=10.0)
        bus.publish("batch", "b", value=10.0)
        bus.publish("batch", "b", value=10.0)
        snap = dash.snapshot()
        assert snap["elapsed_s"] == pytest.approx(1.0)
        assert snap["bootstraps_per_s"] == pytest.approx(30.0)

    def test_close_detaches(self, rig):
        bus, dash = rig
        dash.close()
        bus.publish("batch", "b", value=10.0)
        assert dash.snapshot()["bootstraps"] == 0.0


class TestEdgeCases:
    def test_empty_stream_snapshot_is_well_formed(self, rig):
        _, dash = rig
        snap = dash.snapshot()
        assert snap["bootstraps"] == 0.0
        assert snap["elapsed_s"] == 0.0
        assert snap["bootstraps_per_s"] == 0.0
        assert snap["batch_occupancy"] is None
        assert snap["latency"] == {"count": 0, "p50": None, "p95": None,
                                   "p99": None}
        assert snap["slo"] == []
        assert snap["anomalies"] == []
        assert snap["workload"] is None

    def test_unknown_event_kind_is_ignored_not_fatal(self, rig):
        # The bus rejects unknown kinds at publish time, but an offline
        # log from a newer schema may carry kinds this build never saw;
        # folding must shrug them off.
        _, dash = rig
        dash._on_event(TelemetryEvent(seq=0, t_s=1.0, kind="hologram",
                                      name="future/thing", value=7.0))
        snap = dash.snapshot()
        assert snap["bootstraps"] == 0.0
        assert snap["elapsed_s"] == 0.0  # still stamps first/last time

    def test_zero_capacity_batch_does_not_divide_by_zero(self, rig):
        bus, dash = rig
        bus.publish("batch", "machine/bootstrap_batch", value=8.0, capacity=0)
        snap = dash.snapshot()
        assert snap["bootstraps"] == 8.0
        assert snap["batch_occupancy"] is None  # no occupancy sample taken

    def test_valueless_events_count_as_zero(self, rig):
        bus, dash = rig
        bus.publish("batch", "b")  # no value at all
        bus.publish("counter", "xpu/stage/fft", unit="cycles")
        snap = dash.snapshot()
        assert snap["bootstraps"] == 0.0
        assert snap["stage_cycle_fractions"] == {"xpu/stage/fft": 0.0}


class TestRequestsAndSlo:
    def test_request_events_feed_latency_percentiles(self, rig):
        bus, dash = rig
        bus.publish("request", "sched/request", value=0.004, count=90)
        bus.publish("request", "sched/request", value=0.020, count=10)
        latency = dash.snapshot()["latency"]
        assert latency["count"] == 100
        assert latency["p50"] == pytest.approx(0.004, rel=0.02)
        assert latency["p99"] == pytest.approx(0.020, rel=0.02)

    def test_slo_rows_track_budget_remaining(self):
        slos = SLORegistry()
        slos.latency("p90", 0.9, 0.010)
        bus = _golden.make_bus()
        dash = Dashboard(bus=bus, slos=slos)
        bus.publish("request", "r", value=0.004, count=95)
        bus.publish("request", "r", value=0.050, count=5)  # 5% bad, 10% budget
        (row,) = dash.snapshot()["slo"]
        assert row["name"] == "p90"
        assert row["budget_remaining"] == pytest.approx(0.5)
        assert "slo p90" in dash.render() and "ok" in dash.render()

    def test_breached_slo_renders_breach(self):
        slos = SLORegistry()
        slos.latency("p99", 0.99, 0.010)
        bus = _golden.make_bus()
        dash = Dashboard(bus=bus, slos=slos)
        bus.publish("request", "r", value=0.050, count=10)  # all bad
        (row,) = dash.snapshot()["slo"]
        assert row["budget_remaining"] < 0.0
        assert "BREACH" in dash.render()

    def test_feed_jsonl_replays_a_recorded_run(self, rig, tmp_path):
        bus, dash = rig
        path = str(tmp_path / "run.jsonl")
        with JsonlEventLog(path, bus=bus):
            _golden.run_scenario(bus)
        offline = Dashboard(bus=_golden.make_bus())
        folded = offline.feed_jsonl(path)
        assert folded == len(EVENT_KINDS)  # the scenario: one per kind
        # The offline fold reproduces the live aggregation exactly.
        live, replayed = dash.snapshot(), offline.snapshot()
        assert replayed["bootstraps"] == live["bootstraps"]
        assert replayed["latency"] == live["latency"]
        assert replayed["workload"] == live["workload"]

    def test_feed_jsonl_rejects_foreign_schema(self, rig, tmp_path):
        _, dash = rig
        path = tmp_path / "bad.jsonl"
        record = {"v": EVENT_SCHEMA_VERSION + 1, "seq": 0, "t_s": 0.0,
                  "kind": "batch", "name": "b", "value": 1.0, "fields": {}}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            dash.feed_jsonl(str(path))


class TestRender:
    def test_render_shows_all_panels(self, rig):
        bus, dash = rig
        _golden.run_scenario(bus)
        panel = dash.render()
        assert "repro top" in panel
        assert "XG-Boost" in panel
        assert "batch occupancy" in panel and "75.0%" in panel
        assert "xpu/stage/rotation" in panel
        assert "HBM traffic" in panel
        assert "worst sigma 1.40" in panel and "ok" in panel
        assert "!! latency_spike" in panel

    def test_render_before_any_events(self, rig):
        _, dash = rig
        panel = dash.render()
        assert "(no batch events yet)" in panel
        assert "(no cycle counters yet)" in panel
        assert "(none)" in panel

    def test_render_flags_drift(self, rig):
        bus, dash = rig
        dash.drift_sigmas = 1.0
        bus.publish("noise", "bootstrap", value=-12.0, sigma=2.5)
        assert "DRIFT" in dash.render()


class TestRunTop:
    def test_drives_work_and_redraws_per_round(self):
        bus = _golden.make_bus()
        sink = io.StringIO()
        rounds = []

        def work(i):
            rounds.append(i)
            bus.publish("batch", "b", value=float(8 * (i + 1)), capacity=64)

        dash = run_top(work, iterations=3, stream=sink, bus=bus)
        assert rounds == [0, 1, 2]
        assert sink.getvalue().count("repro top") == 3
        assert dash.snapshot()["bootstraps"] == 8.0 + 16.0 + 24.0
        # detached after the run
        bus.publish("batch", "b", value=100.0)
        assert dash.snapshot()["bootstraps"] == 48.0

    def test_no_ansi_clear_on_non_tty(self):
        bus = _golden.make_bus()
        sink = io.StringIO()
        run_top(lambda i: None, iterations=1, stream=sink, bus=bus)
        assert "\x1b[2J" not in sink.getvalue()

    def test_clear_screen_forced(self):
        bus = _golden.make_bus()
        sink = io.StringIO()
        run_top(lambda i: None, iterations=2, stream=sink, bus=bus,
                clear_screen=True)
        assert sink.getvalue().count("\x1b[2J\x1b[H") == 2
