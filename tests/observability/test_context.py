"""Tests for trace-context propagation (repro.observability.context)."""

import pytest

from repro import observability as obs
from repro.observability import context


@pytest.fixture(autouse=True)
def _clean_identity():
    """Leave no ambient context or worker id behind."""
    yield
    context.set_worker_id("")
    assert context.current() is None, "test leaked an active trace context"


class TestTraceContext:
    def test_start_trace_is_a_root(self):
        root = context.start_trace()
        assert len(root.trace_id) == 32
        assert len(root.span_id) == 16
        assert root.parent_id is None

    def test_child_shares_trace_and_parents_to_creator(self):
        root = context.start_trace()
        kid = root.child()
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_ids_are_validated_hex(self):
        with pytest.raises(ValueError, match="trace_id"):
            context.TraceContext("xyz", "0123456789abcdef")
        with pytest.raises(ValueError, match="span_id"):
            context.TraceContext("0" * 32, "short")
        with pytest.raises(ValueError, match="parent_id"):
            context.TraceContext("0" * 32, "1" * 16, "nope")

    def test_child_of_passes_none_through(self):
        assert context.child_of(None) is None


class TestAmbientContext:
    def test_default_is_none(self):
        assert context.current() is None

    def test_use_context_scopes_and_restores(self):
        ctx = context.start_trace()
        with context.use_context(ctx):
            assert context.current() is ctx
            inner = ctx.child()
            with context.use_context(inner):
                assert context.current() is inner
            assert context.current() is ctx
        assert context.current() is None

    def test_activate_deactivate_round_trip(self):
        ctx = context.start_trace()
        token = context.activate(ctx)
        assert context.current() is ctx
        context.deactivate(token)
        assert context.current() is None


class TestCarrier:
    def test_inject_extract_round_trip(self):
        root = context.start_trace()
        carrier = context.inject(root)
        assert carrier == f"00-{root.trace_id}-{root.span_id}-01"
        back = context.extract(carrier)
        assert back.trace_id == root.trace_id
        assert back.span_id == root.span_id
        assert back.parent_id is None

    def test_inject_defaults_to_ambient_context(self):
        assert context.inject() is None
        ctx = context.start_trace()
        with context.use_context(ctx):
            assert context.inject() == context.inject(ctx)

    def test_extract_none_passes_through(self):
        assert context.extract(None) is None

    @pytest.mark.parametrize("bad", [
        "", "garbage", "00-short-0123456789abcdef-01",
        "00-" + "g" * 32 + "-0123456789abcdef-01",
    ])
    def test_extract_rejects_malformed_carriers(self, bad):
        with pytest.raises(ValueError, match="malformed trace carrier"):
            context.extract(bad)


class TestWorkerId:
    def test_default_is_empty(self):
        assert context.get_worker_id() == ""

    def test_set_and_clear(self):
        context.set_worker_id("w3")
        assert context.get_worker_id() == "w3"
        context.set_worker_id("")
        assert context.get_worker_id() == ""

    def test_rejects_filesystem_unsafe_ids(self):
        with pytest.raises(ValueError, match="filesystem-safe"):
            context.set_worker_id("a/b")


class TestBusStamping:
    def test_events_carry_worker_and_trace_identity(self):
        from ._golden import make_bus

        bus = make_bus()
        ctx = context.start_trace()
        context.set_worker_id("w0")
        try:
            with context.use_context(ctx):
                event = bus.publish("metric", "m", value=1.0)
        finally:
            context.set_worker_id("")
        assert event.worker == "w0"
        assert event.trace_id == ctx.trace_id
        assert event.span_id == ctx.span_id
        assert event.parent_id == ctx.parent_id

    def test_events_outside_any_trace_have_none_ids(self):
        from ._golden import make_bus

        event = make_bus().publish("metric", "m", value=1.0)
        assert event.worker == ""
        assert event.trace_id is None and event.span_id is None

    def test_disabled_bus_publishes_nothing_even_in_a_trace(self):
        from repro.observability.bus import TelemetryBus

        bus = TelemetryBus(enabled=False)
        with context.use_context(context.start_trace()):
            assert bus.publish("metric", "m", value=1.0) is None


class TestTracerIntegration:
    def test_span_parents_to_ambient_context(self):
        seen = []
        with obs.telemetry():
            obs.BUS.subscribe(seen.append)
            try:
                root = context.start_trace()
                with context.use_context(root):
                    with obs.TRACER.span("outer"):
                        with obs.TRACER.span("inner"):
                            pass
            finally:
                obs.BUS.unsubscribe(seen.append)
        spans = {e.name: e for e in seen if e.kind == "span"}
        outer, inner = spans["outer"], spans["inner"]
        assert outer.trace_id == inner.trace_id == root.trace_id
        assert outer.parent_id == root.span_id
        assert inner.parent_id == outer.span_id

    def test_span_with_explicit_ctx_crosses_process_boundary_shape(self):
        """A worker extracts the carrier and its spans parent remotely."""
        seen = []
        root = context.start_trace()
        carrier = context.inject(root)
        with obs.telemetry():
            obs.BUS.subscribe(seen.append)
            try:
                remote = context.extract(carrier)
                with context.use_context(remote):
                    with obs.TRACER.span("worker/op"):
                        pass
            finally:
                obs.BUS.unsubscribe(seen.append)
        span = next(e for e in seen if e.kind == "span")
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
