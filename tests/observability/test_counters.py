"""Unit tests for the perf-counter subsystem (repro.observability.counters)."""

import json

import pytest

from repro import observability as obs
from repro.observability import COUNTERS, PerfCounters, counting, counter_track_events
from repro.core.accelerator import MorphlingConfig
from repro.core.simulator import simulate_bootstrap
from repro.params import get_params


class TestPerfCounters:
    def test_disabled_records_nothing(self):
        bank = PerfCounters()
        bank.add_cycles("xpu", 10.0)
        bank.add_bytes("hbm/channel/0", 64.0)
        bank.add_ops("rotator/streams")
        bank.sample("buffer/shared", 0.0, 1.0)
        bank.event("machine/stages", "blind_rotate")
        assert len(bank) == 0
        assert bank.cycles("xpu") == 0.0

    def test_all_five_kinds_record_when_enabled(self):
        bank = PerfCounters(enabled=True)
        bank.add_cycles("xpu", 10.0)
        bank.add_cycles("xpu", 5.0)
        bank.add_bytes("hbm/channel/0", 64.0)
        bank.add_ops("rotator/streams", 3.0)
        bank.sample("buffer/shared", 0.0, 1.0)
        bank.sample("buffer/shared", 1.0, 4.0)
        bank.sample("buffer/shared", 2.0, 2.0)
        bank.event("machine/stages", "modulus_switch")
        bank.event("machine/stages", "blind_rotate")
        assert bank.cycles("xpu") == 15.0
        assert bank.bytes_moved("hbm/channel/0") == 64.0
        assert bank.ops("rotator/streams") == 3.0
        assert bank.samples_on("buffer/shared") == [(0.0, 1.0), (1.0, 4.0), (2.0, 2.0)]
        assert bank.watermark("buffer/shared") == 4.0
        assert bank.events_on("machine/stages") == ["modulus_switch", "blind_rotate"]
        assert bank.tracks() == ["buffer/shared"]

    def test_negative_increments_rejected(self):
        bank = PerfCounters(enabled=True)
        with pytest.raises(ValueError):
            bank.add_cycles("xpu", -1.0)
        with pytest.raises(ValueError):
            bank.add_bytes("hbm/channel/0", -1.0)
        with pytest.raises(ValueError):
            bank.add_ops("rotator/streams", -1.0)

    def test_reset_clears_values_but_not_enabled(self):
        bank = PerfCounters(enabled=True)
        bank.add_cycles("xpu", 1.0)
        bank.event("machine/stages", "key_switch")
        bank.reset()
        assert len(bank) == 0
        assert bank.enabled

    def test_snapshot_shape_and_sorted_keys(self):
        bank = PerfCounters(enabled=True)
        bank.add_cycles("b", 1.0)
        bank.add_cycles("a", 2.0)
        bank.sample("track", 0.5, 3.0)
        bank.event("t", "e")
        snap = bank.snapshot()
        assert set(snap) == {"cycles", "bytes", "ops", "samples",
                             "watermarks", "events"}
        assert list(snap["cycles"]) == ["a", "b"]
        assert snap["samples"] == {"track": [[0.5, 3.0]]}
        assert snap["watermarks"] == {"track": 3.0}
        assert snap["events"] == [["t", "e"]]
        json.dumps(snap)  # must already be plain JSON types

    def test_digest_is_stable_and_content_sensitive(self):
        a, b = PerfCounters(enabled=True), PerfCounters(enabled=True)
        for bank in (a, b):
            bank.add_cycles("xpu", 7.0)
            bank.sample("buffer/shared", 0.0, 2.0)
        assert a.digest() == b.digest()
        b.add_ops("rotator/streams")
        assert a.digest() != b.digest()


class TestCountingContext:
    def test_counting_enables_and_restores(self):
        assert not COUNTERS.enabled
        with counting() as bank:
            assert bank is COUNTERS
            assert COUNTERS.enabled
            COUNTERS.add_cycles("x", 1.0)
        assert not COUNTERS.enabled
        assert COUNTERS.cycles("x") == 1.0
        COUNTERS.reset()

    def test_counting_clears_by_default_but_can_append(self):
        with counting():
            COUNTERS.add_cycles("x", 1.0)
        with counting(clear=False):
            COUNTERS.add_cycles("x", 1.0)
        assert COUNTERS.cycles("x") == 2.0
        with counting():
            pass
        assert COUNTERS.cycles("x") == 0.0

    def test_counting_private_bank(self):
        bank = PerfCounters()
        with counting(counters=bank) as active:
            assert active is bank
            bank.add_ops("op")
        assert not bank.enabled
        assert not COUNTERS.enabled
        assert bank.ops("op") == 1.0

    def test_observability_toggles_include_counters(self):
        obs.enable()
        try:
            assert COUNTERS.enabled
            assert obs.is_enabled()
        finally:
            obs.disable()
            obs.reset()
        assert not COUNTERS.enabled


class TestSimulatorCounters:
    def test_simulator_populates_every_counter_kind(self):
        with counting() as bank:
            report = simulate_bootstrap(MorphlingConfig(), get_params("I"))
            snap = bank.snapshot()
        assert snap["cycles"]["xpu/stage/rotation"] > 0
        assert snap["cycles"]["vpu/stage/key_switch"] > 0
        cfg = MorphlingConfig()
        for ch in range(cfg.xpu_hbm_channels + cfg.vpu_hbm_channels):
            assert snap["bytes"][f"hbm/channel/{ch}"] > 0
        assert snap["ops"]["noc/hops/private_a1_to_xpu"] > 0
        assert snap["ops"]["rotator/rotations"] > 0
        assert snap["watermarks"]["buffer/shared"] > 0
        # The bottleneck stage paces the pipeline: its occupancy approaches
        # 1.0 (the per-iteration overhead cycles keep it just below).
        paced = max(
            snap["watermarks"][k]
            for k in snap["watermarks"]
            if k.startswith("xpu/occupancy/")
        )
        assert 0.9 < paced <= 1.0
        assert report.group_size >= 1

    def test_two_identical_runs_identical_snapshots(self):
        snaps = []
        for _ in range(2):
            with counting() as bank:
                simulate_bootstrap(MorphlingConfig(), get_params("III"))
                snaps.append((bank.snapshot(), bank.digest()))
        assert snaps[0] == snaps[1]

    def test_xpu_byte_counters_match_traffic_model(self):
        cfg, params = MorphlingConfig(), get_params("I")
        with counting() as bank:
            report = simulate_bootstrap(cfg, params)
            snap = bank.snapshot()
        xpu_total = sum(
            snap["bytes"][f"hbm/channel/{ch}"]
            for ch in range(cfg.xpu_hbm_channels)
        )
        expected = report.traffic.xpu_bytes * report.group_size
        assert xpu_total == pytest.approx(expected, rel=1e-9)


class TestCounterTrackEvents:
    def test_sample_and_event_shapes(self):
        bank = PerfCounters(enabled=True)
        bank.sample("buffer/shared", 1e-6, 42.0)
        bank.event("machine/stages", "blind_rotate")
        events = counter_track_events(bank)
        kinds = {e["ph"] for e in events}
        assert kinds == {"C", "i"}
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["name"] == "buffer/shared"
        assert counter["ts"] == pytest.approx(1.0)  # seconds -> microseconds
        assert counter["args"]["value"] == 42.0
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "blind_rotate"

    def test_accepts_snapshot_dict(self):
        bank = PerfCounters(enabled=True)
        bank.sample("t", 0.0, 1.0)
        assert counter_track_events(bank.snapshot()) == counter_track_events(bank)
