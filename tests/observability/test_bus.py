"""Tests for the telemetry bus: pub/sub, JSONL log, schema goldens."""

import io
import json

import pytest

from repro import observability as obs
from repro.observability.bus import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    JsonlEventLog,
    TelemetryBus,
    event_to_jsonable,
    read_jsonl_events,
)

from . import _golden


@pytest.fixture()
def bus():
    return _golden.make_bus()


class TestPublish:
    def test_disabled_returns_none_and_calls_nobody(self):
        bus = TelemetryBus(enabled=False)
        seen = []
        bus.subscribe(seen.append)
        assert bus.publish("metric", "x", value=1.0) is None
        assert seen == []

    def test_event_carries_kind_name_value_fields(self, bus):
        event = bus.publish("batch", "machine/bootstrap_batch",
                            value=48, capacity=64)
        assert event.kind == "batch"
        assert event.name == "machine/bootstrap_batch"
        assert event.value == 48.0 and isinstance(event.value, float)
        assert event.fields == {"capacity": 64}

    def test_seq_is_monotonic_from_zero(self, bus):
        seqs = [bus.publish("stage", f"s{i}").seq for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_injected_clock_gives_deterministic_timestamps(self, bus):
        # epoch consumes tick 0; each publish consumes one tick of 0.5s
        a = bus.publish("stage", "a")
        b = bus.publish("stage", "b")
        assert (a.t_s, b.t_s) == (0.5, 1.0)

    def test_unknown_kind_rejected(self, bus):
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.publish("bogus", "x")

    def test_every_documented_kind_accepted(self, bus):
        for kind in EVENT_KINDS:
            assert bus.publish(kind, "x").kind == kind

    def test_reset_restarts_seq_but_keeps_subscribers(self, bus):
        seen = []
        bus.subscribe(seen.append)
        bus.publish("stage", "before")
        bus.reset()
        event = bus.publish("stage", "after")
        assert event.seq == 0
        assert [e.name for e in seen] == ["before", "after"]


class TestSubscriptions:
    def test_all_subscribers_see_each_event(self, bus):
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        bus.publish("stage", "x")
        assert len(seen_a) == len(seen_b) == 1

    def test_unsubscribe_stops_delivery(self, bus):
        seen = []
        bus.subscribe(seen.append)
        bus.publish("stage", "one")
        bus.unsubscribe(seen.append)
        bus.publish("stage", "two")
        assert [e.name for e in seen] == ["one"]

    def test_duplicate_subscribe_is_idempotent(self, bus):
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)
        assert bus.subscriber_count == 1
        bus.publish("stage", "x")
        assert len(seen) == 1


class TestJsonable:
    def test_stable_top_level_field_order(self, bus):
        event = bus.publish("metric", "m", value=1.0, b=2, a=1)
        record = event_to_jsonable(event)
        assert list(record) == ["v", "seq", "t_s", "kind", "name", "value",
                                "worker", "trace_id", "span_id", "parent_id",
                                "fields"]
        assert record["v"] == EVENT_SCHEMA_VERSION

    def test_fields_keys_sorted(self, bus):
        event = bus.publish("metric", "m", zeta=1, alpha=2, mid=3)
        assert list(event_to_jsonable(event)["fields"]) == [
            "alpha", "mid", "zeta"
        ]


class TestJsonlEventLog:
    def test_header_then_one_line_per_event(self, bus):
        sink = io.StringIO()
        with JsonlEventLog(sink, bus=bus) as log:
            bus.publish("stage", "a")
            bus.publish("stage", "b")
            assert log.lines_written == 2
        lines = sink.getvalue().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header == {"v": EVENT_SCHEMA_VERSION, "kind": "jsonl_header",
                          "producer": "repro.observability.bus",
                          "worker": "",
                          "epoch_unix": _golden.FAKE_EPOCH_UNIX}
        assert json.loads(lines[1])["name"] == "a"

    def test_close_detaches_from_bus(self, bus):
        sink = io.StringIO()
        log = JsonlEventLog(sink, bus=bus)
        log.close()
        bus.publish("stage", "late")
        assert log.lines_written == 0

    def test_file_round_trip(self, bus, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlEventLog(path, bus=bus):
            _golden.run_scenario(bus)
        events = read_jsonl_events(path)
        assert len(events) == len(EVENT_KINDS)
        assert [e["kind"] for e in events] == list(EVENT_KINDS)
        assert all(e["v"] == EVENT_SCHEMA_VERSION for e in events)


class TestGoldenJsonl:
    def test_jsonl_matches_golden_byte_for_byte(self, tmp_path):
        """The JSONL wire format is a schema: changing field order, names,
        or serialization requires an EVENT_SCHEMA_VERSION bump and
        regenerated goldens (tests/observability/_golden.py)."""
        path = str(tmp_path / "events.jsonl")
        bus = _golden.make_bus()
        with JsonlEventLog(path, bus=bus):
            _golden.run_scenario(bus)
        with open(path) as fh, open(_golden.GOLDEN_JSONL) as golden:
            assert fh.read() == golden.read()


class TestSystemHooks:
    """The four PR1/3/4 systems publish onto the bus with no new call sites."""

    def test_registry_tracer_counters_publish(self):
        seen = []
        with obs.telemetry():
            obs.BUS.subscribe(seen.append)
            try:
                obs.REGISTRY.counter("bus_hook_total").inc(2, stage="br")
                obs.REGISTRY.gauge("bus_hook_depth").set(4.0)
                obs.REGISTRY.histogram("bus_hook_hist").observe(3.0)
                obs.TRACER.add_span("hooked", ts_us=0.0, dur_us=1.0)
                obs.COUNTERS.add_cycles("xpu/stage/rotation", 10.0)
                obs.COUNTERS.add_bytes("hbm/channel/0", 64.0)
                obs.COUNTERS.add_ops("rotator/vector_reads", 2.0)
                obs.COUNTERS.sample("buffer/shared", 0.0, 1.0)
                obs.COUNTERS.event("machine/stages", "blind_rotate")
            finally:
                obs.BUS.unsubscribe(seen.append)
        kinds = [e.kind for e in seen]
        assert kinds == ["metric", "metric", "metric", "span",
                         "counter", "counter", "counter", "sample", "stage"]
        metric = seen[0]
        assert metric.fields["metric"] == "counter"
        assert metric.fields["labels"] == {"stage": "br"}
        span = seen[3]
        assert span.fields["dur_us"] == 1.0
        cycles = seen[4]
        assert cycles.fields["unit"] == "cycles" and cycles.value == 10.0

    def test_gauge_inc_publishes_new_value_not_delta(self):
        seen = []
        with obs.telemetry():
            obs.BUS.subscribe(seen.append)
            try:
                g = obs.REGISTRY.gauge("bus_hook_level")
                g.inc(2.0)
                g.inc(3.0)
            finally:
                obs.BUS.unsubscribe(seen.append)
        assert [e.value for e in seen] == [2.0, 5.0]

    def test_disabled_registry_never_reaches_bus(self):
        """Bus on, registry off: the hook sits inside the enabled path."""
        seen = []
        obs.BUS.enable()
        obs.BUS.subscribe(seen.append)
        try:
            obs.REGISTRY.counter("bus_hook_off_total").inc()
        finally:
            obs.BUS.unsubscribe(seen.append)
            obs.BUS.disable()
            obs.BUS.reset()
        assert seen == []

    def test_noise_tracker_publishes_noise_and_failure_events(self, ctx):
        seen = []
        with obs.telemetry():
            obs.BUS.subscribe(seen.append)
            try:
                obs.NOISE.register_debug_key(ctx.keyset.lwe_key)
                ct = ctx.encrypt(1)
                ctx.bootstrap(ct)
            finally:
                obs.BUS.unsubscribe(seen.append)
        noise = [e for e in seen if e.kind == "noise"]
        fps = [e for e in seen if e.kind == "failure_point"]
        assert noise, "bootstrap under telemetry published no noise events"
        assert fps, "bootstrap published no failure_point events"
        assert noise[0].fields["sigma"] is not None
        assert fps[0].value is not None  # the decision margin
