"""Tests for the flight recorder: ring, triggers, bundles, goldens."""

import json

import pytest

from repro import observability as obs
from repro.observability.flightrec import (
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    flight_recording,
    load_bundle,
    report_anomaly,
)

from . import _golden


@pytest.fixture()
def rig():
    """A deterministic (bus, recorder) pair, both enabled."""
    bus = _golden.make_bus()
    rec = FlightRecorder(enabled=True, cooldown_s=0.0)
    rec.attach(bus)
    return bus, rec


class TestRing:
    def test_events_accumulate(self, rig):
        bus, rec = rig
        for i in range(5):
            bus.publish("stage", f"s{i}")
        assert len(rec) == 5

    def test_capacity_bounds_the_ring(self):
        bus = _golden.make_bus()
        rec = FlightRecorder(capacity=3, enabled=True)
        rec.attach(bus)
        for i in range(10):
            bus.publish("stage", f"s{i}")
        assert len(rec) == 3
        bundle = rec.capture()
        assert [e["name"] for e in bundle["events"]] == ["s7", "s8", "s9"]

    def test_disabled_recorder_buffers_nothing(self):
        bus = _golden.make_bus()
        rec = FlightRecorder(enabled=False)
        rec.attach(bus)
        bus.publish("stage", "s")
        assert len(rec) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTriggers:
    def test_trigger_returns_bundle_with_own_anomaly_inside(self, rig):
        bus, rec = rig
        bus.publish("stage", "work")
        bundle = rec.trigger("latency_spike", budget_s=0.1, actual_s=0.2)
        kinds = [e["kind"] for e in bundle["events"]]
        assert "anomaly" in kinds, "bundle must contain its own trigger"
        anomaly = [e for e in bundle["events"] if e["kind"] == "anomaly"][0]
        assert anomaly["name"] == "latency_spike"
        assert anomaly["fields"]["budget_s"] == 0.1
        assert bundle["trigger"]["reason"] == "latency_spike"
        assert rec.last_bundle is bundle

    def test_noise_drift_breach_triggers_automatically(self, rig):
        bus, rec = rig
        rec.drift_sigmas = 6.0
        bus.publish("noise", "bootstrap", value=-12.0, sigma=2.0)  # inside
        assert rec.last_bundle is None
        bus.publish("noise", "bootstrap", value=-12.0, sigma=7.5)  # breach
        bundle = rec.last_bundle
        assert bundle is not None
        assert bundle["trigger"]["reason"] == "noise_drift"
        assert bundle["trigger"]["fields"]["sigma"] == 7.5
        # the breaching noise event itself is in the window
        seqs = [e["seq"] for e in bundle["events"]]
        assert bundle["trigger"]["fields"]["event_seq"] in seqs

    def test_disabled_trigger_returns_none(self):
        rec = FlightRecorder(enabled=False)
        assert rec.trigger("manual") is None

    def test_cooldown_coalesces_consecutive_triggers(self):
        bus = _golden.make_bus()
        # fake clock ticks 0.5s per call; a 100s cooldown swallows all
        rec = FlightRecorder(enabled=True, cooldown_s=100.0)
        rec.attach(bus)
        assert rec.trigger("noise_drift") is not None
        assert rec.trigger("noise_drift") is None
        assert rec.trigger("latency_spike") is None
        assert rec.triggers_fired == 3
        assert rec.triggers_coalesced == 2

    def test_window_excludes_old_events(self):
        bus = _golden.make_bus()  # 0.5s per clock tick
        rec = FlightRecorder(enabled=True, window_s=2.0, cooldown_s=0.0)
        rec.attach(bus)
        old = bus.publish("stage", "old")
        for _ in range(10):
            bus.publish("stage", "recent")  # each tick advances 0.5s
        bundle = rec.capture()
        names = [e["name"] for e in bundle["events"]]
        assert "old" not in names and "recent" in names
        assert all(e["seq"] != old.seq for e in bundle["events"])

    def test_dump_dir_writes_bundle_file(self, tmp_path):
        bus = _golden.make_bus()
        rec = FlightRecorder(enabled=True, cooldown_s=0.0,
                             dump_dir=str(tmp_path))
        rec.attach(bus)
        bus.publish("stage", "work")
        rec.trigger("noise_drift", sigma=9.0)
        assert rec.dumps_written == 1
        loaded = load_bundle(rec.last_dump_path)
        assert loaded["trigger"]["reason"] == "noise_drift"
        assert "noise_drift" in rec.last_dump_path


class TestBundleShape:
    def test_schema_and_counts(self, rig):
        bus, rec = rig
        _golden.run_scenario(bus)
        bundle = rec.capture("manual")
        assert bundle["schema_version"] == BUNDLE_SCHEMA_VERSION
        assert bundle["kind"] == "flight_bundle"
        assert sum(bundle["counts"].values()) == len(bundle["events"])
        assert list(bundle["counts"]) == sorted(bundle["counts"])

    def test_capture_works_while_disabled(self, rig):
        bus, rec = rig
        bus.publish("stage", "work")
        rec.disable()
        bundle = rec.capture("test_failure", test="nodeid::x")
        assert bundle["trigger"]["fields"]["test"] == "nodeid::x"
        assert len(bundle["events"]) == 1

    def test_dump_round_trips_through_load_bundle(self, rig, tmp_path):
        bus, rec = rig
        _golden.run_scenario(bus)
        path = str(tmp_path / "bundle.json")
        written = rec.dump(path)
        assert load_bundle(path) == written

    def test_load_bundle_rejects_wrong_kind(self, tmp_path):
        path = str(tmp_path / "not_a_bundle.json")
        with open(path, "w") as fh:
            json.dump({"kind": "something_else"}, fh)
        with pytest.raises(ValueError, match="not a flight-recorder bundle"):
            load_bundle(path)

    def test_load_bundle_rejects_wrong_schema_version(self, tmp_path):
        path = str(tmp_path / "future.json")
        with open(path, "w") as fh:
            json.dump({"kind": "flight_bundle",
                       "schema_version": BUNDLE_SCHEMA_VERSION + 1}, fh)
        with pytest.raises(ValueError, match="bundle schema"):
            load_bundle(path)

    def test_bundle_matches_golden_byte_for_byte(self, tmp_path):
        """The bundle layout is a schema: changes require a
        BUNDLE_SCHEMA_VERSION bump and regenerated goldens."""
        bus = _golden.make_bus()
        rec = FlightRecorder(enabled=True)
        rec.attach(bus)
        _golden.run_scenario(bus)
        bundle = rec.capture("golden", note="deterministic scenario")
        rendered = json.dumps(bundle, indent=1) + "\n"
        with open(_golden.GOLDEN_BUNDLE) as fh:
            assert rendered == fh.read()


class TestReportAnomaly:
    def test_routes_to_recorder_when_enabled(self):
        with flight_recording() as rec:
            obs.BUS.publish("stage", "work")
            bundle = report_anomaly("failure_budget", total_log2_prob=-3.0)
            assert bundle is not None
            assert rec.last_bundle["trigger"]["reason"] == "failure_budget"

    def test_publishes_event_when_only_bus_enabled(self):
        seen = []
        obs.BUS.enable()
        obs.FLIGHT.disable()
        obs.BUS.subscribe(seen.append)
        try:
            assert report_anomaly("latency_spike", actual_s=1.0) is None
        finally:
            obs.BUS.unsubscribe(seen.append)
            obs.BUS.disable()
            obs.BUS.reset()
        assert [e.kind for e in seen] == ["anomaly"]

    def test_noop_when_everything_disabled(self):
        obs.disable()
        assert report_anomaly("exception", error="boom") is None


class TestFlightRecordingContext:
    def test_enables_and_restores(self):
        obs.disable()
        with flight_recording(window_s=5.0) as rec:
            assert obs.BUS.enabled and obs.FLIGHT.enabled
            assert rec is obs.FLIGHT and rec.window_s == 5.0
        assert not obs.BUS.enabled and not obs.FLIGHT.enabled
        assert obs.FLIGHT.window_s == 30.0

    def test_dump_dir_set_and_restored(self, tmp_path):
        with flight_recording(dump_dir=str(tmp_path)):
            assert obs.FLIGHT.dump_dir == str(tmp_path)
        assert obs.FLIGHT.dump_dir is None

    def test_clear_resets_prior_ring(self):
        with flight_recording():
            obs.BUS.publish("stage", "first-run")
        with flight_recording() as rec:
            assert len(rec) == 0


class TestExceptionAnomalies:
    def test_run_workload_reports_exception(self):
        from repro.core.accelerator import MorphlingConfig
        from repro.core.scheduler import run_workload
        from repro.params import get_params

        with flight_recording() as rec:
            with pytest.raises(AttributeError):
                run_workload(MorphlingConfig(), get_params("I"),
                             ["not a layer"])
            assert rec.last_bundle is not None
            trigger = rec.last_bundle["trigger"]
            assert trigger["reason"] == "exception"
            assert trigger["fields"]["where"] == "run_workload"

    def test_latency_budget_breach_reports_spike(self):
        from repro.core.accelerator import MorphlingConfig
        from repro.core.scheduler import LayerDemand, run_workload
        from repro.params import get_params

        with flight_recording() as rec:
            run_workload(MorphlingConfig(), get_params("I"),
                         [LayerDemand("l0", bootstraps=64)],
                         latency_budget_s=1e-12)
            assert rec.last_bundle["trigger"]["reason"] == "latency_spike"
            fields = rec.last_bundle["trigger"]["fields"]
            assert fields["actual_s"] > fields["budget_s"]

    def test_bootstrap_batch_exception_reported(self, ctx):
        import numpy as np

        from repro.tfhe.bootstrap import programmable_bootstrap_batch

        with flight_recording() as rec:
            cts = [ctx.encrypt(1)]
            bad_tp = np.zeros(3, dtype=np.uint32)  # wrong LUT length
            with pytest.raises(Exception):
                programmable_bootstrap_batch(cts, bad_tp, ctx.keyset)
            assert rec.last_bundle is not None
            assert (rec.last_bundle["trigger"]["fields"]["where"]
                    == "programmable_bootstrap_batch")


class TestInducedDriftBreach:
    """The PR's acceptance scenario: a drift breach during a measured
    workload run dumps a bundle whose window contains the breaching
    event, and the bundle renders as one merged Chrome timeline."""

    def test_breach_during_gate_workload_dumps_and_replays(self, ctx, tmp_path):
        from repro.cli import main

        with flight_recording(dump_dir=str(tmp_path)) as rec:
            # Tighten the envelope so real measured noise (sigma ~ 1)
            # counts as drift - an induced breach with real ciphertexts.
            rec.drift_sigmas = 1e-6
            obs.NOISE.enable()
            obs.NOISE.register_debug_key(ctx.keyset.lwe_key)
            try:
                ctx.decrypt(ctx.gate("nand", ctx.encrypt(1), ctx.encrypt(0)))
            finally:
                obs.NOISE.disable()
                obs.NOISE.clear_debug_key()
                obs.NOISE.reset()
                rec.drift_sigmas = 6.0
            bundle = rec.last_bundle
        assert bundle is not None
        assert bundle["trigger"]["reason"] == "noise_drift"
        assert rec.dumps_written >= 1
        dump_path = rec.last_dump_path
        # the triggering noise event is inside its own window
        trigger_seq = bundle["trigger"]["fields"]["event_seq"]
        assert any(e["seq"] == trigger_seq and e["kind"] == "noise"
                   for e in bundle["events"])
        # and `repro replay --chrome` renders it as one merged timeline
        out = str(tmp_path / "merged_timeline.json")
        assert main(["replay", dump_path, "--chrome", out]) == 0
        doc = json.loads(open(out).read())
        events = doc["traceEvents"]
        sections = {e["args"]["name"] for e in events
                    if e.get("name") == "process_name"}
        assert "noise" in sections
        assert {"X", "C"} <= {e["ph"] for e in events}
