"""Tests for the span tracer and the Prometheus/JSON/Chrome exporters."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.accelerator import MorphlingConfig
from repro.core.trace import trace_blind_rotation
from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    pipeline_trace_events,
    render_prometheus,
    to_jsonable,
    traced,
    write_chrome_trace,
)
from repro.params import get_params


class TestTracer:
    def test_span_records_when_enabled(self):
        tr = Tracer(enabled=True)
        with tr.span("work", category="test", detail=42):
            pass
        (span,) = tr.spans()
        assert span.name == "work"
        assert span.category == "test"
        assert span.args == {"detail": 42}
        assert span.dur_us >= 0

    def test_span_noop_when_disabled(self):
        tr = Tracer(enabled=False)
        with tr.span("work"):
            pass
        assert len(tr) == 0

    def test_add_span_simulated_time(self):
        tr = Tracer(enabled=True)
        tr.add_span("xpu", ts_us=10.0, dur_us=5.0, track="sim/xpu")
        (span,) = tr.spans()
        assert span.ts_us == 10.0
        assert span.end_us == 15.0
        assert span.track == "sim/xpu"

    def test_reset_clears(self):
        tr = Tracer(enabled=True)
        tr.add_span("x", 0, 1)
        tr.reset()
        assert len(tr) == 0

    def test_traced_decorator(self):
        tr = Tracer(enabled=True)

        @traced(name="named", category="deco", tracer=tr)
        def fn(x):
            return x + 1

        assert fn(1) == 2
        (span,) = tr.spans()
        assert span.name == "named"

    def test_traced_decorator_disabled_passthrough(self):
        tr = Tracer(enabled=False)

        @traced(tracer=tr)
        def fn():
            return "ok"

        assert fn() == "ok"
        assert len(tr) == 0


class TestToJsonable:
    def test_dataclass_numpy_enum_roundtrip(self):
        from repro.core.reuse import ReuseType

        @dataclass
        class Inner:
            arr: object
            scalar: object

        payload = {
            "inner": Inner(np.arange(3), np.float64(1.5)),
            "reuse": ReuseType.NO_REUSE,
            ("tuple", "key"): [1, (2, 3)],
        }
        out = to_jsonable(payload)
        assert json.loads(json.dumps(out)) == {
            "inner": {"arr": [0, 1, 2], "scalar": 1.5},
            "reuse": "no-reuse",
            "('tuple', 'key')": [1, [2, 3]],
        }

    def test_simulation_report_serializes(self):
        from repro.core.simulator import simulate_bootstrap

        report = simulate_bootstrap(MorphlingConfig(), get_params("I"))
        out = to_jsonable(report)
        assert out["group_size"] == 64
        json.dumps(out)  # must be valid JSON types throughout


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c_total", "counts things").inc(3, kind="a")
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1, 10)).observe(5)
        text = render_prometheus(reg.snapshot())
        assert "# HELP c_total counts things" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="a"} 3' in text
        assert "g 1.5" in text
        assert 'h_bucket{le="10"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 5" in text
        assert "h_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


class TestChromeTrace:
    def test_tracer_spans_to_events(self):
        tr = Tracer(enabled=True)
        tr.add_span("a", 0, 10, track="t1")
        tr.add_span("b", 5, 2, track="t2", args={"k": 1})
        events = chrome_trace_events(tr.spans())
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"t1", "t2"}
        assert len(complete) == 2
        assert complete[1]["args"] == {"k": 1}
        # the two spans land on different tid rows
        assert complete[0]["tid"] != complete[1]["tid"]

    def test_pipeline_trace_events(self):
        trace = trace_blind_rotation(MorphlingConfig(), get_params("I"),
                                     iterations=3)
        events = pipeline_trace_events(trace)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3 * 5  # iterations x stages
        assert all(e["dur"] > 0 for e in complete)
        # microsecond timestamps: cycles / (GHz * 1e3)
        cfg = MorphlingConfig()
        first = min(complete, key=lambda e: e["ts"])
        assert first["ts"] == pytest.approx(0.0)
        assert max(e["ts"] + e["dur"] for e in complete) == pytest.approx(
            trace.total_cycles() / (cfg.clock_ghz * 1e3)
        )

    def test_write_chrome_trace_loads_as_json(self, tmp_path):
        tr = Tracer(enabled=True)
        tr.add_span("a", 0, 10)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, chrome_trace_events(tr.spans()),
                           metadata={"run": "test"})
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"] == {"run": "test"}
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        for e in doc["traceEvents"]:
            assert {"ph", "pid", "tid"} <= set(e)
