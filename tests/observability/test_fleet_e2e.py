"""End-to-end acceptance for distributed telemetry.

Real ``multiprocessing`` workers run the batched-bootstrap pipeline
(``repro.apps.fleet_demo``), write per-process shards, and the driver
aggregates them.  The three acceptance criteria:

(a) fleet p50/p95/p99 from the shards are identical to a single sketch
    folded from the merged request stream (exact pointwise merge);
(b) the fleet forms one causally-linked trace - every child span's
    ``parent_id`` resolves across process boundaries, and the merged
    timeline renders through the chrome-trace exporter;
(c) SIGKILLing a worker mid-run yields a ``worker_lost`` verdict with a
    flight-bundle of the dead worker's trailing events.
"""

import json
import os

import pytest

from repro.observability.export import flight_trace_events
from repro.observability.sketch import QuantileSketch

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fleet demo needs fork workers"
)

WORKERS = 3
ROUNDS = 2
BATCH = 4


@pytest.fixture(scope="module")
def clean_fleet(tmp_path_factory):
    from repro.apps.fleet_demo import run_fleet

    out = str(tmp_path_factory.mktemp("fleet-clean"))
    return run_fleet(workers=WORKERS, rounds=ROUNDS, batch=BATCH, out=out)


@pytest.fixture(scope="module")
def killed_fleet(tmp_path_factory):
    from repro.apps.fleet_demo import run_fleet

    out = str(tmp_path_factory.mktemp("fleet-kill"))
    dump = str(tmp_path_factory.mktemp("fleet-kill-dumps"))
    report = run_fleet(workers=WORKERS, rounds=ROUNDS, batch=BATCH,
                       out=out, kill=1, dump_dir=dump)
    return report, dump


class TestCleanFleet:
    def test_every_worker_reports_in_and_none_are_lost(self, clean_fleet):
        ids = set(clean_fleet.workers)
        assert {f"w{i}" for i in range(WORKERS)} <= ids
        assert "driver" in ids
        assert clean_fleet.lost_workers == []
        for i in range(WORKERS):
            assert clean_fleet.workers[f"w{i}"]["final_heartbeat"] is True

    def test_fleet_percentiles_equal_merged_request_stream(self, clean_fleet):
        """Acceptance (a): re-fold every request event of the merged
        timeline into one sketch; the fleet sketch must match it
        bucket-for-bucket, hence p50/p95/p99 exactly."""
        single = QuantileSketch()
        for event in clean_fleet.events:
            if event.kind == "request" and event.value is not None:
                single.add(event.value, count=int(event.fields.get("count", 1)))
        assert single.count == WORKERS * ROUNDS * BATCH
        assert clean_fleet.sketch.count == single.count
        assert (clean_fleet.sketch.to_state()["buckets"]
                == single.to_state()["buckets"])
        qs = (0.5, 0.95, 0.99)
        fleet_q = clean_fleet.quantiles(qs)
        single_q = single.quantiles(qs)
        for q in qs:
            assert fleet_q[q] == pytest.approx(single_q[q], rel=1e-12)

    def test_single_causally_linked_trace_across_processes(self, clean_fleet):
        """Acceptance (b): one trace id fleet-wide; every child span's
        parent_id resolves to another span recorded somewhere in the
        fleet - the driver's root included."""
        spans = [e for e in clean_fleet.events
                 if e.kind == "span" and e.trace_id is not None]
        assert spans
        assert len({s.trace_id for s in spans}) == 1
        span_ids = {s.span_id for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["fleet/submit"]
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in span_ids, (
                    f"{span.name} (worker {span.worker!r}) has dangling "
                    f"parent {span.parent_id}"
                )
        # the cross-process edges exist: worker round spans parent
        # directly to the driver's submitting span
        root_id = roots[0].span_id
        round_spans = [s for s in spans if "/round" in s.name]
        assert {s.worker for s in round_spans} == {f"w{i}" for i in range(WORKERS)}
        assert all(s.parent_id == root_id for s in round_spans)

    def test_merged_timeline_renders_as_chrome_trace(self, clean_fleet):
        trace = flight_trace_events(clean_fleet.to_bundle())
        span_rows = [t for t in trace if t.get("ph") == "X"]
        assert span_rows
        traced = [t for t in span_rows if "trace_id" in t.get("args", {})]
        assert traced, "chrome trace lost the distributed-trace identity"
        assert {t["args"].get("worker") for t in traced} >= {"w0"}

    def test_timeline_is_resequenced_and_monotonic(self, clean_fleet):
        seqs = [e.seq for e in clean_fleet.events]
        assert seqs == list(range(len(clean_fleet.events)))
        ts = [e.t_s for e in clean_fleet.events]
        assert ts == sorted(ts)
        assert ts[0] >= 0.0


class TestKilledFleet:
    def test_sigkilled_worker_declared_lost(self, killed_fleet):
        report, _ = killed_fleet
        assert report.lost_workers == ["w1"]
        assert report.workers["w1"]["final_heartbeat"] is False
        assert report.workers["w1"]["heartbeats"] > 0

    def test_evidence_bundle_dumped_and_loadable(self, killed_fleet):
        """Acceptance (c): the worker_lost flight bundle lands on disk
        with the dead worker's trailing events."""
        report, dump = killed_fleet
        path = os.path.join(dump, "fleet-worker-lost-w1.json")
        with open(path) as fh:
            bundle = json.load(fh)
        assert bundle["kind"] == "flight_bundle"
        assert bundle["trigger"]["reason"] == "worker_lost"
        assert bundle["trigger"]["fields"]["worker"] == "w1"
        assert bundle["events"], "evidence bundle carried no trailing events"
        assert all(e["worker"] == "w1" for e in bundle["events"])
        assert bundle == report.lost_bundles[0]

    def test_surviving_workers_still_report_cleanly(self, killed_fleet):
        report, _ = killed_fleet
        for worker_id in ("w0", "w2", "driver"):
            assert worker_id not in report.lost_workers
            assert report.workers[worker_id]["final_heartbeat"] is True
