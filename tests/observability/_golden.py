"""Shared deterministic scenario behind the bus/flightrec golden tests.

The golden files pin the JSONL event schema and the flight-bundle shape:
any change to field order, field names, or serialization is a schema
change and must come with an ``EVENT_SCHEMA_VERSION`` /
``BUNDLE_SCHEMA_VERSION`` bump and regenerated goldens (see
``regenerate()`` below).  The scenario publishes one event of every kind
on a bus with an injected deterministic clock, so reruns are
byte-identical.
"""

import itertools
import os

from repro.observability.bus import TelemetryBus

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_JSONL = os.path.join(GOLDEN_DIR, "events.jsonl")
GOLDEN_BUNDLE = os.path.join(GOLDEN_DIR, "flight_bundle.json")


def fake_clock():
    """Deterministic clock: 0.0, 0.5, 1.0, ... seconds per call."""
    counter = itertools.count()
    return lambda: next(counter) * 0.5


def make_bus():
    return TelemetryBus(enabled=True, clock=fake_clock())


def run_scenario(bus):
    """Publish one event of every kind, with representative fields."""
    bus.publish("metric", "tfhe_bootstraps_total", value=1.0,
                metric="counter", labels={"stage": "br"})
    bus.publish("span", "programmable_bootstrap", value=12.5,
                ts_us=0.0, dur_us=12.5, category="tfhe", track="main",
                args={"batch": 2})
    bus.publish("counter", "xpu/stage/rotation", value=256.0, unit="cycles")
    bus.publish("sample", "buffer/shared", value=0.75, t_sim_s=1e-05)
    bus.publish("stage", "blind_rotate", track="machine/stages")
    bus.publish("noise", "programmable_bootstrap", value=-12.3,
                op_id=7, label="s0", predicted_std_log2=-12.3,
                measured=0.00021, sigma=1.4)
    bus.publish("failure_point", "bootstrap_decision", value=0.125,
                op_id=7, variance=1e-06, label="s0")
    bus.publish("batch", "machine/bootstrap_batch", value=48.0, capacity=64)
    bus.publish("snapshot", "sim/report", value=1250000.0,
                bottleneck="bsk_bandwidth", group_size=64)
    bus.publish("workload", "XG-Boost", value=2510.0, layers=3,
                linear_macs=21600)
    bus.publish("anomaly", "latency_spike", budget_s=0.001, actual_s=0.002)
    bus.publish("request", "sched/request", value=0.0042, count=64,
                group=0, config="morphling", params="III")


def regenerate():
    """Rewrite both golden files (run after an intentional schema bump)."""
    import json

    from repro.observability.bus import JsonlEventLog
    from repro.observability.flightrec import FlightRecorder

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    bus = make_bus()
    rec = FlightRecorder(enabled=True)
    rec.attach(bus)
    with JsonlEventLog(GOLDEN_JSONL, bus=bus):
        run_scenario(bus)
    bundle = rec.capture("golden", note="deterministic scenario")
    with open(GOLDEN_BUNDLE, "w") as fh:
        json.dump(bundle, fh, indent=1)
        fh.write("\n")


if __name__ == "__main__":
    regenerate()
    print(f"regenerated {GOLDEN_JSONL} and {GOLDEN_BUNDLE}")
