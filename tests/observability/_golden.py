"""Shared deterministic scenario behind the bus/flightrec golden tests.

The golden files pin the JSONL event schema and the flight-bundle shape:
any change to field order, field names, or serialization is a schema
change and must come with an ``EVENT_SCHEMA_VERSION`` /
``BUNDLE_SCHEMA_VERSION`` bump and regenerated goldens (see
``regenerate()`` below).  The scenario publishes one event of every kind
on a bus with an injected deterministic clock, so reruns are
byte-identical.
"""

import itertools
import os

from repro.observability.bus import TelemetryBus
from repro.observability.context import (
    TraceContext,
    get_worker_id,
    set_worker_id,
    use_context,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_JSONL = os.path.join(GOLDEN_DIR, "events.jsonl")
GOLDEN_BUNDLE = os.path.join(GOLDEN_DIR, "flight_bundle.json")
GOLDEN_FLEET = os.path.join(GOLDEN_DIR, "fleet_report.json")

#: Deterministic wall-clock epoch for shard headers (epoch_unix).
FAKE_EPOCH_UNIX = 1700000000.0

#: Fixed trace context stamped on the scenario's request event, pinning
#: the v2 identity fields in the goldens.
FIXED_TRACE = TraceContext(
    "0123456789abcdef0123456789abcdef", "02468ace13579bdf", "fdb97531eca86420"
)


def fake_clock():
    """Deterministic clock: 0.0, 0.5, 1.0, ... seconds per call."""
    counter = itertools.count()
    return lambda: next(counter) * 0.5


def make_bus(epoch_unix=FAKE_EPOCH_UNIX):
    return TelemetryBus(enabled=True, clock=fake_clock(),
                        wall_clock=lambda: epoch_unix)


def run_scenario(bus):
    """Publish one event of every kind, with representative fields."""
    bus.publish("metric", "tfhe_bootstraps_total", value=1.0,
                metric="counter", labels={"stage": "br"})
    bus.publish("span", "programmable_bootstrap", value=12.5,
                ts_us=0.0, dur_us=12.5, category="tfhe", track="main",
                args={"batch": 2})
    bus.publish("counter", "xpu/stage/rotation", value=256.0, unit="cycles")
    bus.publish("sample", "buffer/shared", value=0.75, t_sim_s=1e-05)
    bus.publish("stage", "blind_rotate", track="machine/stages")
    bus.publish("noise", "programmable_bootstrap", value=-12.3,
                op_id=7, label="s0", predicted_std_log2=-12.3,
                measured=0.00021, sigma=1.4)
    bus.publish("failure_point", "bootstrap_decision", value=0.125,
                op_id=7, variance=1e-06, label="s0")
    bus.publish("batch", "machine/bootstrap_batch", value=48.0, capacity=64)
    bus.publish("snapshot", "sim/report", value=1250000.0,
                bottleneck="bsk_bandwidth", group_size=64)
    bus.publish("workload", "XG-Boost", value=2510.0, layers=3,
                linear_macs=21600)
    bus.publish("anomaly", "latency_spike", budget_s=0.001, actual_s=0.002)
    # The v2 distributed-identity fields, pinned: the request event rides
    # a fixed trace context, the heartbeat a fixed worker id.
    prior_worker = get_worker_id()
    set_worker_id("w0")
    try:
        with use_context(FIXED_TRACE):
            bus.publish("request", "sched/request", value=0.0042, count=64,
                        group=0, config="morphling", params="III")
        bus.publish("heartbeat", "worker/w0", value=0.0,
                    interval_s=0.25, final=False)
    finally:
        set_worker_id(prior_worker)


def build_fleet_shards(shard_dir):
    """Two deterministic worker shards for the fleet-aggregation golden.

    Each worker gets its own bus (fake clock, fixed ``epoch_unix`` one
    second apart so the merge interleaves) and a ShardWriter driven by
    hand - no heartbeat thread, so reruns are byte-identical.
    """
    import repro.observability as obs
    from repro.observability.distrib import ShardWriter

    obs.reset()  # deterministic (empty) counter snapshots in close()
    for i in range(2):
        bus = make_bus(epoch_unix=FAKE_EPOCH_UNIX + float(i))
        writer = ShardWriter(shard_dir, worker_id=f"w{i}", bus=bus,
                             heartbeat_interval_s=0.25)
        writer.heartbeat()
        for k in range(4):
            bus.publish("request", "sched/request",
                        value=0.001 * (k + 1) * (i + 1), count=2)
        bus.publish("batch", "machine/bootstrap_batch", value=8.0, capacity=64)
        bus.publish("counter", "xpu/stage/rotation",
                    value=100.0 * (i + 1), unit="cycles")
        writer.close()


def build_fleet_report(shard_dir):
    """Aggregate the shards of :func:`build_fleet_shards`."""
    from repro.observability.distrib import aggregate_shards, discover_shards

    return aggregate_shards(discover_shards(shard_dir))


def regenerate():
    """Rewrite the golden files (run after an intentional schema bump)."""
    import json
    import shutil
    import tempfile

    from repro.observability.bus import JsonlEventLog
    from repro.observability.flightrec import FlightRecorder

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    bus = make_bus()
    rec = FlightRecorder(enabled=True)
    rec.attach(bus)
    with JsonlEventLog(GOLDEN_JSONL, bus=bus):
        run_scenario(bus)
    bundle = rec.capture("golden", note="deterministic scenario")
    with open(GOLDEN_BUNDLE, "w") as fh:
        json.dump(bundle, fh, indent=1)
        fh.write("\n")

    tmp = tempfile.mkdtemp()
    try:
        build_fleet_shards(tmp)
        report = build_fleet_report(tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    with open(GOLDEN_FLEET, "w") as fh:
        json.dump(report.to_jsonable(), fh, indent=1)
        fh.write("\n")


if __name__ == "__main__":
    regenerate()
    print(f"regenerated {GOLDEN_JSONL}, {GOLDEN_BUNDLE} and {GOLDEN_FLEET}")
