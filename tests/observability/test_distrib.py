"""Tests for distributed telemetry (repro.observability.distrib).

The fleet aggregator's central claim - fleet percentiles from K worker
shards are *identical* to the single-process sketch of the same request
stream - rests on the exact pointwise sketch merge proved in
``test_slo.py``; the hypothesis test here closes the loop through real
shard files for random splits.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.bus import JsonlEventLog, read_jsonl_header
from repro.observability.distrib import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    FLEET_SCHEMA_VERSION,
    FleetReport,
    ShardWriter,
    aggregate_shards,
    discover_shards,
)
from repro.observability.sketch import QuantileSketch

from . import _golden


def _shard_path(tmp_path, worker_id):
    return str(tmp_path / f"events-{worker_id}.jsonl")


class TestShardWriter:
    def test_shard_file_named_after_worker_with_header(self, tmp_path):
        bus = _golden.make_bus()
        with ShardWriter(str(tmp_path), worker_id="w7", bus=bus):
            bus.publish("stage", "x")
        header = read_jsonl_header(_shard_path(tmp_path, "w7"))
        assert header["worker"] == "w7"
        assert header["epoch_unix"] == _golden.FAKE_EPOCH_UNIX

    def test_requests_fold_into_local_sketch(self, tmp_path):
        bus = _golden.make_bus()
        with ShardWriter(str(tmp_path), worker_id="w0", bus=bus) as writer:
            bus.publish("request", "sched/request", value=0.002, count=3)
            bus.publish("request", "sched/request", value=0.004, count=1)
            assert writer.sketch().count == 4

    def test_heartbeat_event_carries_interval_and_final_flag(self, tmp_path):
        bus = _golden.make_bus()
        writer = ShardWriter(str(tmp_path), worker_id="w0", bus=bus,
                             heartbeat_interval_s=0.5)
        writer.heartbeat()
        writer.close()  # emits the final=True beacon
        events = [e for e in _read_events(_shard_path(tmp_path, "w0"))
                  if e["kind"] == "heartbeat"]
        assert len(events) == 2
        assert events[0]["fields"] == {"final": False, "interval_s": 0.5}
        assert events[-1]["fields"]["final"] is True

    def test_close_snapshots_serialized_sketch_state(self, tmp_path):
        bus = _golden.make_bus()
        with ShardWriter(str(tmp_path), worker_id="w0", bus=bus):
            bus.publish("request", "sched/request", value=0.002, count=5)
        snaps = [e for e in _read_events(_shard_path(tmp_path, "w0"))
                 if e["kind"] == "snapshot" and e["name"] == "worker/sketch/latency"]
        assert snaps, "close() must leave a final sketch snapshot"
        rebuilt = QuantileSketch.from_state(snaps[-1]["fields"]["state"])
        assert rebuilt.count == 5

    def test_close_is_idempotent(self, tmp_path):
        bus = _golden.make_bus()
        writer = ShardWriter(str(tmp_path), worker_id="w0", bus=bus)
        writer.close()
        writer.close()
        hb = [e for e in _read_events(_shard_path(tmp_path, "w0"))
              if e["kind"] == "heartbeat"]
        assert len(hb) == 1


def _read_events(path):
    from repro.observability.bus import read_jsonl_events

    return read_jsonl_events(path)


def _write_shard(tmp_path, worker_id, epoch, publishes):
    """A shard from explicit (kind, name, value, fields) publishes."""
    bus = _golden.make_bus(epoch_unix=epoch)
    path = _shard_path(tmp_path, worker_id)
    with JsonlEventLog(path, bus=bus, worker=worker_id):
        for kind, name, value, fields in publishes:
            bus.publish(kind, name, value=value, **fields)
    return path


class TestAggregateShards:
    def test_timeline_is_resequenced_on_the_global_clock(self, tmp_path):
        # w0's epoch is 1s earlier: its events must sort first even though
        # both shards have identical local t_s values.
        a = _write_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                         [("stage", "a0", None, {}), ("stage", "a1", None, {})])
        b = _write_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX + 1.0,
                         [("stage", "b0", None, {}), ("stage", "b1", None, {})])
        report = aggregate_shards([b, a])
        assert [e.name for e in report.events] == ["a0", "a1", "b0", "b1"]
        assert [e.seq for e in report.events] == [0, 1, 2, 3]
        # local t_s 0.5/1.0; w1 shifted by its +1s epoch, rebased to w0's
        assert [e.t_s for e in report.events] == [0.5, 1.0, 1.5, 2.0]
        assert [e.worker for e in report.events] == ["w0", "w0", "w1", "w1"]
        assert report.elapsed_s == 2.0

    def test_fleet_sketch_is_exact_merge_of_worker_requests(self, tmp_path):
        a = _write_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                         [("request", "r", 0.002, {"count": 3})])
        b = _write_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
                         [("request", "r", 0.008, {"count": 1})])
        report = aggregate_shards([a, b])
        single = QuantileSketch()
        single.add(0.002, count=3)
        single.add(0.008)
        assert report.sketch.count == single.count == 4
        assert report.sketch.to_state()["buckets"] == single.to_state()["buckets"]

    def test_counter_banks_union_across_workers(self, tmp_path):
        a = _write_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                         [("counter", "xpu/stage/rotation", 100.0,
                           {"unit": "cycles"}),
                          ("counter", "hbm/channel/0", 64.0, {"unit": "bytes"})])
        b = _write_shard(tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
                         [("counter", "xpu/stage/rotation", 50.0,
                           {"unit": "cycles"})])
        report = aggregate_shards([a, b])
        assert report.counters["cycles"] == {"xpu/stage/rotation": 150.0}
        assert report.counters["bytes"] == {"hbm/channel/0": 64.0}

    def test_snapshot_states_merge_exactly(self, tmp_path):
        for i, value in enumerate((0.002, 0.004)):
            bus = _golden.make_bus(epoch_unix=_golden.FAKE_EPOCH_UNIX)
            with ShardWriter(str(tmp_path), worker_id=f"w{i}", bus=bus):
                bus.publish("request", "r", value=value, count=2)
        report = aggregate_shards(discover_shards(str(tmp_path)))
        assert report.snapshot_sketch is not None
        assert report.snapshot_sketch.count == 4
        assert (report.snapshot_sketch.to_state()["buckets"]
                == report.sketch.to_state()["buckets"])

    def test_worker_rows_summarize_each_shard(self, tmp_path):
        bus = _golden.make_bus()
        with ShardWriter(str(tmp_path), worker_id="w0", bus=bus):
            bus.publish("request", "r", value=0.002, count=4)
            bus.publish("batch", "machine/bootstrap_batch", value=8.0)
        report = aggregate_shards(discover_shards(str(tmp_path)))
        row = report.workers["w0"]
        assert row["requests"] == 4
        assert row["bootstraps"] == 8.0
        assert row["heartbeats"] == 1  # close() beacon
        assert row["final_heartbeat"] is True
        assert "w0" not in report.lost_workers

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            aggregate_shards([])

    def test_file_without_header_rejected(self, tmp_path):
        path = str(tmp_path / "events-bad.jsonl")
        with open(path, "w") as fh:
            fh.write('{"v": 2, "kind": "stage", "name": "x"}\n')
        with pytest.raises(ValueError, match="no jsonl_header"):
            aggregate_shards([path])

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = str(tmp_path / "events-w9.jsonl")
        with open(path, "w") as fh:
            fh.write('{"v": 99, "kind": "jsonl_header", "worker": "w9"}\n')
        with pytest.raises(ValueError, match="schema version 99"):
            aggregate_shards([path])


def _write_v1_shard(tmp_path, name="events-old.jsonl"):
    """A pre-distributed-telemetry shard: v1 header, v1 event rows."""
    path = str(tmp_path / name)
    with open(path, "w") as fh:
        fh.write(json.dumps({"v": 1, "kind": "jsonl_header",
                             "producer": "repro.observability.bus"}) + "\n")
        fh.write(json.dumps({"v": 1, "seq": 0, "t_s": 0.5, "kind": "request",
                             "name": "sched/request", "value": 0.002,
                             "fields": {"count": 2}}) + "\n")
    return path


class TestSchemaCompat:
    def test_v1_only_shards_still_aggregate(self, tmp_path):
        report = aggregate_shards([_write_v1_shard(tmp_path)])
        assert report.event_schema_version == 1
        assert report.sketch.count == 2
        # v1 rows have no worker column: identity falls back to the file
        assert list(report.workers) == ["events-old.jsonl"]

    def test_mixed_schema_versions_rejected_with_both_named(self, tmp_path):
        old = _write_v1_shard(tmp_path)
        new = _write_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                           [("stage", "x", None, {})])
        with pytest.raises(ValueError) as err:
            aggregate_shards([old, new])
        message = str(err.value)
        assert "mixed event schema versions" in message
        assert "v1: events-old.jsonl" in message
        assert "v2: events-w0.jsonl" in message


class TestCrashTolerance:
    def test_truncated_final_line_dropped_when_tolerant(self, tmp_path):
        path = _write_shard(tmp_path, "w0", _golden.FAKE_EPOCH_UNIX,
                            [("stage", "ok", None, {})])
        with open(path, "a") as fh:
            fh.write('{"v": 2, "seq": 9, "t_')  # SIGKILL mid-write
        report = aggregate_shards([path])  # tolerant by default
        assert [e.name for e in report.events] == ["ok"]
        with pytest.raises(json.JSONDecodeError):
            aggregate_shards([path], tolerant=False)


class TestDeadWorkerDetection:
    def _lossy_fleet(self, tmp_path, dump_dir=None, miss_factor=3.0):
        # w1 beacons once (non-final) then goes silent at global t=0.5;
        # the driver keeps publishing until t=5.0, so the fleet timeline
        # extends 4.5s past w1's beacon - far over 3 * 0.25s.
        _write_shard(
            tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
            [("heartbeat", "worker/w1", 0.0,
              {"interval_s": 0.25, "final": False}),
             ("span", "w1/round0", 12.5, {"ts_us": 0.0, "dur_us": 12.5})])
        _write_shard(
            tmp_path, "driver", _golden.FAKE_EPOCH_UNIX,
            [("stage", f"tick{i}", None, {}) for i in range(10)])
        return aggregate_shards(discover_shards(str(tmp_path)),
                                miss_factor=miss_factor, dump_dir=dump_dir)

    def test_silent_worker_declared_lost_with_evidence_bundle(self, tmp_path):
        report = self._lossy_fleet(tmp_path)
        assert report.lost_workers == ["w1"]
        assert "driver" not in report.lost_workers
        bundle = report.lost_bundles[0]
        assert bundle["kind"] == "flight_bundle"
        assert bundle["trigger"]["reason"] == "worker_lost"
        assert bundle["trigger"]["fields"]["worker"] == "w1"
        assert bundle["trigger"]["fields"]["last_heartbeat_t"] == 0.5
        assert {e["name"] for e in bundle["events"]} == {"worker/w1", "w1/round0"}
        assert "!! worker_lost: w1" in report.render_text()

    def test_dump_dir_receives_loadable_evidence(self, tmp_path):
        dump = tmp_path / "dumps"
        self._lossy_fleet(tmp_path, dump_dir=str(dump))
        path = dump / "fleet-worker-lost-w1.json"
        with open(path) as fh:
            bundle = json.load(fh)
        from repro.observability.flightrec import BUNDLE_SCHEMA_VERSION

        assert bundle["schema_version"] == BUNDLE_SCHEMA_VERSION

    def test_generous_miss_factor_keeps_worker_alive(self, tmp_path):
        report = self._lossy_fleet(tmp_path, miss_factor=100.0)
        assert report.lost_workers == []

    def test_worker_with_final_heartbeat_is_never_lost(self, tmp_path):
        _write_shard(
            tmp_path, "w1", _golden.FAKE_EPOCH_UNIX,
            [("heartbeat", "worker/w1", 0.0,
              {"interval_s": 0.25, "final": True})])
        _write_shard(
            tmp_path, "driver", _golden.FAKE_EPOCH_UNIX,
            [("stage", f"tick{i}", None, {}) for i in range(10)])
        report = aggregate_shards(discover_shards(str(tmp_path)))
        assert report.lost_workers == []


class TestFleetReportViews:
    def test_to_bundle_is_flight_bundle_shaped(self, tmp_path):
        _golden.build_fleet_shards(str(tmp_path))
        report = _golden.build_fleet_report(str(tmp_path))
        bundle = report.to_bundle()
        assert bundle["kind"] == "flight_bundle"
        assert bundle["trigger"]["reason"] == "fleet_aggregate"
        assert bundle["counts"]["request"] == 8
        assert len(bundle["events"]) == len(report.events)
        # renders through the standard chrome-trace exporter
        from repro.observability.export import flight_trace_events

        assert flight_trace_events(bundle)

    def test_render_text_has_one_row_per_worker(self, tmp_path):
        _golden.build_fleet_shards(str(tmp_path))
        text = _golden.build_fleet_report(str(tmp_path)).render_text()
        assert "w0" in text and "w1" in text
        assert "latency (fleet" in text


class TestGoldenFleetReport:
    def test_report_json_matches_golden_byte_for_byte(self, tmp_path):
        """The fleet-report JSON is a schema: changing field order, names,
        or serialization requires a FLEET_SCHEMA_VERSION bump and
        regenerated goldens (tests/observability/_golden.py)."""
        _golden.build_fleet_shards(str(tmp_path))
        report = _golden.build_fleet_report(str(tmp_path))
        assert report.to_jsonable()["v"] == FLEET_SCHEMA_VERSION
        got = json.dumps(report.to_jsonable(), indent=1) + "\n"
        with open(_golden.GOLDEN_FLEET) as fh:
            assert got == fh.read()


class TestFleetPercentileProperty:
    """Acceptance: fleet percentiles from K shards equal the
    single-process sketch for random splits of the request stream.

    The merge is *exact* (pointwise bucket addition, proved in
    test_slo.py), so equality here is bucket-for-bucket - strictly
    stronger than the relative-error bound the acceptance asks for.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=50),
        data=st.data(),
    )
    def test_random_k_way_split_merges_to_single_sketch(self, values, data):
        k = data.draw(st.integers(min_value=2, max_value=4), label="k")
        assignment = data.draw(
            st.lists(st.integers(0, k - 1), min_size=len(values),
                     max_size=len(values)),
            label="assignment")
        with tempfile.TemporaryDirectory() as tmp:
            for w in range(k):
                bus = _golden.make_bus(
                    epoch_unix=_golden.FAKE_EPOCH_UNIX + float(w))
                path = os.path.join(tmp, f"events-w{w}.jsonl")
                with JsonlEventLog(path, bus=bus, worker=f"w{w}"):
                    for value, owner in zip(values, assignment):
                        if owner == w:
                            bus.publish("request", "sched/request",
                                        value=value, count=1)
            report = aggregate_shards(discover_shards(tmp))
        single = QuantileSketch()
        for value in values:
            single.add(value)
        assert report.sketch.count == single.count == len(values)
        assert report.sketch.to_state()["buckets"] == single.to_state()["buckets"]
        qs = (0.5, 0.95, 0.99)
        fleet_q = report.sketch.quantiles(qs)
        single_q = single.quantiles(qs)
        for q in qs:
            assert fleet_q[q] == pytest.approx(single_q[q], rel=1e-12)


class TestForkSafetyHelpers:
    def test_reset_in_child_clears_identity_and_subscribers(self):
        from repro import observability as obs
        from repro.observability import context
        from repro.observability.distrib import _reset_in_child

        seen = []
        obs.BUS.subscribe(seen.append)
        context.set_worker_id("parent")
        try:
            _reset_in_child()
            # parent subscribers dropped; only the re-attached flight
            # recorder remains wired
            assert obs.BUS.subscriber_count == 1
            assert context.get_worker_id() == ""
            assert not obs.BUS.enabled
        finally:
            context.set_worker_id("")

    def test_worker_telemetry_lifecycle(self, tmp_path):
        from repro import observability as obs
        from repro.observability import context
        from repro.observability.distrib import worker_telemetry

        root = context.start_trace()
        carrier = context.inject(root)
        with worker_telemetry("w0", str(tmp_path), carrier=carrier,
                              heartbeat_interval_s=60.0) as writer:
            assert context.get_worker_id() == "w0"
            assert obs.BUS.enabled
            assert context.current().trace_id == root.trace_id
            obs.BUS.publish("stage", "inside")
            assert writer.worker_id == "w0"
        assert context.get_worker_id() == ""
        assert not obs.BUS.enabled
        assert context.current() is None
        events = _read_events(str(tmp_path / "events-w0.jsonl"))
        names = [e["name"] for e in events]
        assert "inside" in names
        assert events[-1]["kind"] == "heartbeat"
        assert events[-1]["fields"]["final"] is True

    def test_empty_fleet_report_renders(self):
        report = FleetReport(event_schema_version=2)
        assert "0 workers" in report.render_text()
        assert report.to_jsonable()["events_total"] == 0
        assert report.quantiles()[0.5] is None
        assert DEFAULT_HEARTBEAT_INTERVAL_S > 0
