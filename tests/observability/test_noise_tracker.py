"""Unit tests for the noise tracker: recording, provenance, labels, drift."""

import math
from types import SimpleNamespace

import pytest

from repro import observability as obs
from repro.observability import (
    NoiseTracker,
    drift_report,
    noise_trace_events,
    noise_tracking,
)

_Q = 1 << 32


def ct():
    """A stand-in ciphertext: any attribute-capable object works."""
    return SimpleNamespace()


class TestLifecycle:
    def test_disabled_tracker_records_nothing(self):
        tr = NoiseTracker()
        assert tr.track(ct(), "lwe_encrypt", 1e-12, 5) is None
        tr.record_failure_point("decode", 0.1, 1e-12)
        assert len(tr) == 0
        assert tr.failure_points() == []

    def test_labelled_is_noop_while_disabled(self):
        tr = NoiseTracker()
        with tr.labelled("gate:nand"):
            pass
        assert tr._current_label() == ""

    def test_reset_clears_records_but_keeps_key(self):
        tr = NoiseTracker(enabled=True)
        tr.register_debug_key(SimpleNamespace(bits=None))
        tr.track(ct(), "lwe_encrypt", 1e-12, 5)
        tr.record_failure_point("decode", 0.1, 1e-12)
        tr.reset()
        assert len(tr) == 0
        assert tr.failure_points() == []
        assert tr.measuring

    def test_noise_tracking_restores_prior_state(self):
        tr = NoiseTracker()
        with noise_tracking(tracker=tr) as active:
            assert active is tr
            assert tr.enabled
        assert not tr.enabled
        assert not tr.measuring


class TestRecording:
    def test_track_attaches_record(self):
        tr = NoiseTracker(enabled=True)
        x = ct()
        record = tr.track(x, "lwe_encrypt", 4e-14, 123, note="fresh")
        assert tr.record_of(x) is record
        assert record.op_id == 0
        assert record.predicted_std == pytest.approx(2e-7)
        assert record.meta == {"note": "fresh"}
        assert record.measured is None and record.sigma is None

    def test_expected_shadow_reduces_mod_q(self):
        tr = NoiseTracker(enabled=True)
        record = tr.track(ct(), "lwe_neg", 1e-14, -5)
        assert record.expected == _Q - 5

    def test_linear_op_propagates_variance_and_shadow(self):
        tr = NoiseTracker(enabled=True)
        x, y = ct(), ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        tr.track(y, "lwe_encrypt", 3e-14, 200)
        record = tr.track_linear(ct(), "lwe_add", [(1, x), (1, y)])
        assert record.predicted_variance == pytest.approx(4e-14)
        assert record.expected == 300
        assert record.parents == (0, 1)

    def test_duplicate_operand_weights_merge_before_squaring(self):
        """x + x quadruples the variance - the correlated-operand case."""
        tr = NoiseTracker(enabled=True)
        x = ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        record = tr.track_linear(ct(), "lwe_add", [(1, x), (1, x)])
        assert record.predicted_variance == pytest.approx(4e-14)
        assert record.expected == 200

    def test_untracked_operand_leaves_output_untracked(self):
        tr = NoiseTracker(enabled=True)
        x, stranger = ct(), ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        out = ct()
        assert tr.track_linear(out, "lwe_add", [(1, x), (1, stranger)]) is None
        assert tr.record_of(out) is None

    def test_plain_offset_shifts_shadow_not_variance(self):
        tr = NoiseTracker(enabled=True)
        x = ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        record = tr.track_linear(ct(), "lwe_add_plain", [(1, x)],
                                 plain_offset=50)
        assert record.expected == 150
        assert record.predicted_variance == pytest.approx(1e-14)

    def test_labels_nest(self):
        tr = NoiseTracker(enabled=True)
        with tr.labelled("int:add"):
            with tr.labelled("gate:xor"):
                inner = tr.track(ct(), "programmable_bootstrap", 1e-14, 0)
            outer = tr.track(ct(), "lwe_add", 1e-14, 0)
        outside = tr.track(ct(), "lwe_encrypt", 1e-14, 0)
        assert inner.label == "gate:xor"
        assert outer.label == "int:add"
        assert outside.label == ""

    def test_failure_point_defaults_to_latest_record(self):
        tr = NoiseTracker(enabled=True)
        tr.track(ct(), "programmable_bootstrap", 1e-14, 0)
        tr.record_failure_point("bootstrap_decision", 0.05, 2e-14)
        (point,) = tr.failure_points()
        assert point.op_id == 0
        assert point.kind == "bootstrap_decision"
        assert point.margin == pytest.approx(0.05)

    def test_slotted_objects_stay_silently_untracked(self):
        class Slotted:
            __slots__ = ()

        tr = NoiseTracker(enabled=True)
        record = tr.track(Slotted(), "lwe_encrypt", 1e-14, 0)
        assert record is not None  # recorded in the buffer...
        assert tr.record_of(Slotted()) is None  # ...but not attachable


class TestDrift:
    def _tracker_with_measurements(self, errors, std=1e-7):
        tr = NoiseTracker(enabled=True)
        for err in errors:
            record = tr.track(ct(), "lwe_encrypt", std * std, 0)
            record.measured = err
        return tr

    def test_within_envelope(self):
        tr = self._tracker_with_measurements([1e-7, -2e-7, 0.5e-7])
        (drift,) = drift_report(tr, sigmas=6.0)
        assert drift.op == "lwe_encrypt"
        assert drift.count == 3 and drift.measured_count == 3
        assert drift.worst_sigma == pytest.approx(2.0)
        assert drift.within_envelope

    def test_outlier_flags_drift(self):
        tr = self._tracker_with_measurements([1e-7, 9e-7])
        (drift,) = drift_report(tr, sigmas=6.0)
        assert drift.worst_sigma == pytest.approx(9.0)
        assert not drift.within_envelope

    def test_unmeasured_class_reports_envelope_but_zero_count(self):
        tr = NoiseTracker(enabled=True)
        tr.track(ct(), "lwe_add", 1e-14, 0)
        (drift,) = drift_report(tr)
        assert drift.measured_count == 0
        assert drift.within_envelope
        assert drift.measured_rms == 0.0

    def test_classes_sorted_by_op_name(self):
        tr = NoiseTracker(enabled=True)
        tr.track(ct(), "lwe_encrypt", 1e-14, 0)
        tr.track(ct(), "lwe_add", 1e-14, 0)
        assert [d.op for d in drift_report(tr)] == ["lwe_add", "lwe_encrypt"]


class TestExport:
    def test_snapshot_is_plain_data(self):
        tr = NoiseTracker(enabled=True)
        x = ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        tr.track_linear(ct(), "lwe_add", [(1, x)])
        tr.record_failure_point("decode", 0.05, 1e-14)
        snap = tr.snapshot()
        assert snap["measured"] is False
        assert [r["op"] for r in snap["records"]] == ["lwe_encrypt", "lwe_add"]
        assert snap["records"][1]["parents"] == [0]
        assert snap["failure_points"][0]["kind"] == "decode"

    def test_waterfall_events_carry_flows_and_counters(self):
        tr = NoiseTracker(enabled=True)
        x = ct()
        tr.track(x, "lwe_encrypt", 1e-14, 100)
        with tr.labelled("gate:nand"):
            tr.track(ct(), "programmable_bootstrap", 4e-14, 0, parents=(x,))
        events = noise_trace_events(tr)
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "lwe_encrypt", "programmable_bootstrap"]
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert {e["id"] for e in flows} == {"n0->1"}
        counters = [e for e in events if e["ph"] == "C"]
        assert all(e["name"] == "predicted_std_log2" for e in counters)
        assert counters[0]["args"]["value"] == pytest.approx(
            math.log2(1e-7), abs=0.01)

    def test_records_mirror_into_registry_and_tracer(self):
        obs.enable()
        try:
            obs.reset()
            obs.NOISE.track(ct(), "lwe_encrypt", 1e-14, 100)
            hist = obs.REGISTRY.get("tfhe_noise_predicted_std")
            assert hist is not None
            (span,) = obs.TRACER.spans()
            assert span.name == "noise/lwe_encrypt"
            assert span.args["predicted_std_log2"] == pytest.approx(
                math.log2(1e-7), abs=0.01)
        finally:
            obs.disable()
            obs.reset()
