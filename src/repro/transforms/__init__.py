"""Transform substrate: from-scratch FFT, negacyclic folding, merge-split.

Functional transforms (:mod:`~repro.transforms.fft`,
:mod:`~repro.transforms.negacyclic`, :mod:`~repro.transforms.merge_split`)
back the TFHE scheme substrate; the pipelined hardware model
(:mod:`~repro.transforms.pipeline_model`) backs the cycle simulator.
"""

from .backends import (
    ComputeBackend,
    active_backend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    reset_backend,
    set_backend,
    use_backend,
)
from .fft import (
    bit_reverse_permutation,
    fft,
    fft_complex_multiplies,
    fft_real_multiplies,
    fft_stage_count,
    ifft,
)
from .merge_split import (
    merge_spectra,
    merged_fft,
    merged_ifft,
    negacyclic_fft_pair,
    negacyclic_ifft_pair,
    split_spectra,
)
from .negacyclic import (
    negacyclic_convolve_exact,
    negacyclic_convolve_fft,
    negacyclic_fft,
    negacyclic_ifft,
    transform_length,
)
from .ntt import (
    GOLDILOCKS_PRIME,
    intt,
    negacyclic_ntt_multiply,
    ntt,
    primitive_root_of_unity,
)
from .pipeline_model import PipelinedFFTModel

__all__ = [
    "ComputeBackend",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "reset_backend",
    "set_backend",
    "use_backend",
    "bit_reverse_permutation",
    "fft",
    "ifft",
    "fft_stage_count",
    "fft_complex_multiplies",
    "fft_real_multiplies",
    "negacyclic_fft",
    "negacyclic_ifft",
    "negacyclic_convolve_fft",
    "negacyclic_convolve_exact",
    "transform_length",
    "merged_fft",
    "merged_ifft",
    "merge_spectra",
    "split_spectra",
    "negacyclic_fft_pair",
    "negacyclic_ifft_pair",
    "PipelinedFFTModel",
    "GOLDILOCKS_PRIME",
    "ntt",
    "intt",
    "negacyclic_ntt_multiply",
    "primitive_root_of_unity",
]
