"""Merge-split FFT: two real-polynomial transforms through one FFT pass.

Polynomial coefficients are real, so an FFT of the packed signal
``z = p + i * r`` carries both transforms; the conjugate-symmetry split

``P[k] = (Z[k] + conj(Z[-k])) / 2``  and  ``R[k] = (Z[k] - conj(Z[-k])) / 2i``

recovers them.  Morphling implements exactly this in hardware (Section V-A3)
with a small Coef buffer, an adder and a shifter, doubling the FFT unit's
effective throughput.  This module provides the functional merge/split for
the plain (cyclic) FFT, plus the negacyclic variant used by the TFHE
substrate: since the negacyclic transform already folds real inputs into a
complex signal, the negacyclic merge-split packs two *real* polynomials
into the real/imaginary halves prior to twisting.
"""

from __future__ import annotations

import numpy as np

from ..observability import REGISTRY as _METRICS
from .fft import fft, ifft
from .negacyclic import negacyclic_fft, negacyclic_ifft

__all__ = [
    "merged_fft",
    "split_spectra",
    "merge_spectra",
    "merged_ifft",
    "negacyclic_fft_pair",
    "negacyclic_ifft_pair",
]


_MERGE_SPLIT = _METRICS.counter(
    "transforms_merge_split_total",
    "Merge-split passes (two real polynomials through one FFT), by kind",
)


def merged_fft(p: np.ndarray, r: np.ndarray) -> np.ndarray:
    """FFT of the packed signal ``p + i*r`` (both real, same length)."""
    p = np.asarray(p, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    if p.shape != r.shape:
        raise ValueError("merged polynomials must have identical shapes")
    _MERGE_SPLIT.inc(kind="merged_fft")
    return fft(p + 1j * r)


def split_spectra(z: np.ndarray) -> tuple:
    """Split a merged spectrum into the two real-signal spectra.

    Implements the conjugate-symmetry split; this is the hardware's
    Coef-buffer + adder + shifter step.
    """
    zr = np.conj(np.roll(z[..., ::-1], 1, axis=-1))
    p_spec = (z + zr) / 2
    r_spec = (z - zr) / 2j
    return p_spec, r_spec


def merge_spectra(p_spec: np.ndarray, r_spec: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_spectra`: rebuild the packed spectrum."""
    return p_spec + 1j * r_spec


def merged_ifft(p_spec: np.ndarray, r_spec: np.ndarray) -> tuple:
    """One IFFT pass returning both real signals (inverse merge-split)."""
    _MERGE_SPLIT.inc(kind="merged_ifft")
    z = ifft(merge_spectra(p_spec, r_spec))
    return z.real, z.imag


# ---------------------------------------------------------------------------
# Negacyclic variants (what the XPU datapath actually runs)
# ---------------------------------------------------------------------------
def negacyclic_fft_pair(p: np.ndarray, r: np.ndarray) -> tuple:
    """Transform two real negacyclic polynomials with hardware-equivalent cost.

    The functional result is identical to two independent
    :func:`~repro.transforms.negacyclic.negacyclic_fft` calls; the pairing
    is what the *hardware model* charges as a single FFT pass.  We keep the
    functional path simple (two folded transforms) because the padding
    trick the RTL uses does not change the math, only the cycle count.
    """
    _MERGE_SPLIT.inc(kind="negacyclic_fft_pair")
    return negacyclic_fft(p), negacyclic_fft(r)


def negacyclic_ifft_pair(p_spec: np.ndarray, r_spec: np.ndarray, n: int) -> tuple:
    """Inverse-transform two spectra (single hardware IFFT pass)."""
    _MERGE_SPLIT.inc(kind="negacyclic_ifft_pair")
    return negacyclic_ifft(p_spec, n), negacyclic_ifft(r_spec, n)
