"""Hardware model of Morphling's merge-split fully-pipelined FFT unit.

Morphling uses an 8-lane multi-delay-commutator pipelined FFT (Section
V-A3): all ``log2`` stages are instantiated, 8 complex elements enter per
cycle, and shuffling buffers re-order data between stages on the fly.  A
negacyclic ``N``-coefficient polynomial folds into an ``N/2``-point
transform, so one polynomial *pass* streams ``N/2`` complex points through
the 8 lanes in ``N/16`` cycles.  Merge-split packs two real polynomials
into one pass.

This module computes the steady-state throughput and fill latency used by
the cycle simulator, plus an area/power proxy proportional to the butterfly
stage count (used by the area model's scaling knobs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PipelinedFFTModel"]


@dataclass(frozen=True)
class PipelinedFFTModel:
    """Timing model of one pipelined (I)FFT unit.

    Parameters
    ----------
    poly_size:
        ``N``, the polynomial size handled by this unit.
    lanes:
        Complex elements consumed per cycle (8 in Morphling).
    merge_split:
        When True, two real polynomials share one pass (Section V-A3).
    stage_latency:
        Pipeline registers per butterfly stage (fill latency contribution).
    """

    poly_size: int
    lanes: int = 8
    merge_split: bool = True
    stage_latency: int = 1

    def __post_init__(self) -> None:
        if self.poly_size < 4 or self.poly_size & (self.poly_size - 1):
            raise ValueError(f"poly_size must be a power of two >= 4, got {self.poly_size}")
        if self.lanes < 1 or self.lanes & (self.lanes - 1):
            raise ValueError(f"lanes must be a power of two >= 1, got {self.lanes}")

    @property
    def points(self) -> int:
        """FFT length: N/2 complex points via the negacyclic fold."""
        return self.poly_size // 2

    @property
    def stages(self) -> int:
        """Butterfly stages instantiated in the pipeline."""
        return int(math.log2(self.points))

    @property
    def polys_per_pass(self) -> int:
        """Real polynomials transformed per streaming pass."""
        return 2 if self.merge_split else 1

    @property
    def cycles_per_pass(self) -> int:
        """Cycles to stream one pass through the unit (throughput term)."""
        return max(1, self.points // self.lanes)

    @property
    def cycles_per_polynomial(self) -> float:
        """Amortized cycles per real polynomial transform."""
        return self.cycles_per_pass / self.polys_per_pass

    @property
    def fill_latency(self) -> int:
        """Cycles from first input to first output (pipeline fill).

        Each butterfly stage adds its register latency plus the
        commutator's shuffle-buffer depth, which for a multi-delay
        commutator at stage ``s`` is ``points / 2**(s+1) / lanes`` cycles
        (bounded below by one).
        """
        shuffle = sum(
            max(1, (self.points >> (s + 1)) // self.lanes)
            for s in range(self.stages)
        )
        return self.stages * self.stage_latency + shuffle

    def passes_for(self, num_polynomials: int) -> int:
        """Streaming passes needed for ``num_polynomials`` real polynomials."""
        if num_polynomials < 0:
            raise ValueError("num_polynomials must be non-negative")
        return -(-num_polynomials // self.polys_per_pass)

    def cycles_for(self, num_polynomials: int) -> int:
        """Total streaming cycles to transform ``num_polynomials``."""
        return self.passes_for(num_polynomials) * self.cycles_per_pass

    def throughput_polys_per_cycle(self) -> float:
        """Steady-state real-polynomial transforms per cycle."""
        return self.polys_per_pass / self.cycles_per_pass
