"""From-scratch Number Theoretic Transform (NTT) over a prime field.

The paper's Section III: polynomial multiplication can be accelerated
"using transform-domain methods such as Fast Fourier Transform (FFT) or
Number Theoretic Transform (NTT)".  Morphling picks the FFT; we provide
the NTT as a third, *exact* multiplication engine so the substrate can
demonstrate the trade-off the paper weighs: the NTT needs modular
arithmetic but has zero rounding error.

We work modulo the NTT-friendly prime ``P = 0xFFFFFFFF00000001``
(2^64 - 2^32 + 1, the "Goldilocks" prime): ``P - 1 = 2^32 * (2^32 - 1)``
gives power-of-two roots of unity up to order 2^32, covering every
polynomial size TFHE uses, and products of 32-bit operands never
overflow Python integers (arrays are object-dtype-free: we use python
ints in vectorized numpy via uint64 with explicit Montgomery-free
reduction in int object space where needed - simplicity over speed, this
is the reference engine).

Negacyclic multiplication uses the standard root-twisting: with ``psi``
a primitive ``2N``-th root of unity, twist by ``psi^i`` before a cyclic
NTT and untwist after.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "GOLDILOCKS_PRIME",
    "primitive_root_of_unity",
    "ntt",
    "intt",
    "negacyclic_ntt_multiply",
]

GOLDILOCKS_PRIME = 0xFFFFFFFF00000001
_GENERATOR = 7  # multiplicative generator of the Goldilocks field

_ROOT_CACHE: dict = {}


def _pow_mod(base: int, exp: int, mod: int = GOLDILOCKS_PRIME) -> int:
    return pow(base, exp, mod)


def primitive_root_of_unity(order: int) -> int:
    """A primitive ``order``-th root of unity mod the Goldilocks prime."""
    if order <= 0 or order & (order - 1):
        raise ValueError(f"order must be a power of two, got {order}")
    if order == 1:
        return 1
    if (GOLDILOCKS_PRIME - 1) % order:
        raise ValueError(f"no root of order {order} in the field")
    root = _ROOT_CACHE.get(order)
    if root is None:
        root = _pow_mod(_GENERATOR, (GOLDILOCKS_PRIME - 1) // order)
        # Verify primitivity (defensive: generator choice must be right).
        if _pow_mod(root, order // 2) == 1:
            raise ArithmeticError("root is not primitive")
        _ROOT_CACHE[order] = root
    return root


def _bit_reverse(values: list) -> list:
    n = len(values)
    bits = n.bit_length() - 1
    out = [0] * n
    for i, v in enumerate(values):
        r = int(bin(i)[2:].zfill(bits)[::-1], 2) if bits else 0
        out[r] = v
    return out


def ntt(values: Sequence[int], root: Optional[int] = None) -> list:
    """Forward cyclic NTT of integer coefficients (list of python ints)."""
    values = [int(v) % GOLDILOCKS_PRIME for v in values]
    n = len(values)
    if n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    if n == 1:
        return values
    if root is None:
        root = primitive_root_of_unity(n)
    out = _bit_reverse(values)
    size = 2
    while size <= n:
        w_step = _pow_mod(root, n // size)
        half = size // 2
        for start in range(0, n, size):
            w = 1
            for j in range(half):
                lo = out[start + j]
                hi = out[start + j + half] * w % GOLDILOCKS_PRIME
                out[start + j] = (lo + hi) % GOLDILOCKS_PRIME
                out[start + j + half] = (lo - hi) % GOLDILOCKS_PRIME
                w = w * w_step % GOLDILOCKS_PRIME
        size *= 2
    return out


def intt(values: Sequence[int], root: Optional[int] = None) -> list:
    """Inverse cyclic NTT."""
    n = len(values)
    if root is None:
        root = primitive_root_of_unity(n)
    inv_root = _pow_mod(root, GOLDILOCKS_PRIME - 2)
    out = ntt(values, root=inv_root)
    inv_n = _pow_mod(n, GOLDILOCKS_PRIME - 2)
    return [v * inv_n % GOLDILOCKS_PRIME for v in out]


def _centered(value: int) -> int:
    """Map a field element to its centered representative."""
    if value > GOLDILOCKS_PRIME // 2:
        return value - GOLDILOCKS_PRIME
    return value


def negacyclic_ntt_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of two integer coefficient vectors.

    Inputs are signed integers (any values whose true negacyclic product
    magnitudes stay below P/2 ~ 2^63); output is an int64 numpy array of
    the exact product in ``Z[X]/(X^N + 1)``.
    """
    a_ints = list(np.asarray(a, dtype=np.int64))
    b_ints = list(np.asarray(b, dtype=np.int64))
    n = len(a_ints)
    if len(b_ints) != n:
        raise ValueError("operands must share the polynomial size")
    if n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    psi = primitive_root_of_unity(2 * n)
    # Twist: a_i * psi^i absorbs the negacyclic wraparound.
    psi_pows = [1] * n
    for i in range(1, n):
        psi_pows[i] = psi_pows[i - 1] * psi % GOLDILOCKS_PRIME
    a_t = [int(x) * p % GOLDILOCKS_PRIME for x, p in zip(a_ints, psi_pows)]
    b_t = [int(x) * p % GOLDILOCKS_PRIME for x, p in zip(b_ints, psi_pows)]
    spec = [
        x * y % GOLDILOCKS_PRIME for x, y in zip(ntt(a_t), ntt(b_t))
    ]
    prod = intt(spec)
    inv_psi = _pow_mod(psi, GOLDILOCKS_PRIME - 2)
    inv_pows = [1] * n
    for i in range(1, n):
        inv_pows[i] = inv_pows[i - 1] * inv_psi % GOLDILOCKS_PRIME
    untwisted = [_centered(x * p % GOLDILOCKS_PRIME) for x, p in zip(prod, inv_pows)]
    return np.array(untwisted, dtype=np.int64)
