"""From-scratch radix-2 decimation-in-time FFT.

Morphling's datapath is built around pipelined FFT hardware; this module is
the *functional* counterpart: an iterative radix-2 FFT implemented directly
(no ``numpy.fft``), vectorized with numpy so the TFHE substrate stays fast.
The iterative butterfly structure mirrors the multi-delay-commutator
pipeline modelled in :mod:`repro.transforms.pipeline_model` - ``log2(n)``
stages of butterflies with per-stage twiddle factors.

The butterfly engine is allocation-lean: one bit-reversal gather produces
the working array, every stage then updates it in place through a single
reused scratch buffer (the product ``odd * twiddle``), and the twiddle
tables are cached per ``(n, dtype)`` so ``complex64`` transforms never
upcast.  Total allocation per transform is the output plus ``n/2``
scratch elements, independent of the stage count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..observability import REGISTRY as _METRICS
from .backends import active_backend as _active_backend

__all__ = [
    "bit_reverse_permutation",
    "fft",
    "ifft",
    "fft_stage_count",
    "fft_complex_multiplies",
    "fft_real_multiplies",
]

_PERM_CACHE: Dict[int, np.ndarray] = {}
_TWIDDLE_CACHE: Dict[Tuple[int, np.dtype], List[np.ndarray]] = {}

_FFT_CALLS = _METRICS.counter(
    "transforms_fft_total", "FFT passes executed, by direction (batch-aware)"
)
_FFT_POINTS = _METRICS.histogram(
    "transforms_fft_points", "Distribution of FFT transform lengths"
)


def _count_transforms(shape: Tuple[int, ...], direction: str) -> None:
    """Account one batched FFT call: ``prod(shape[:-1])`` transforms."""
    count = 1
    for dim in shape[:-1]:
        count *= int(dim)
    _FFT_CALLS.inc(count, direction=direction)
    _FFT_POINTS.observe(shape[-1], count=count)


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Return the bit-reversal permutation for a power-of-two length ``n``."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    perm = _PERM_CACHE.get(n)
    if perm is None:
        bits = n.bit_length() - 1
        idx = np.arange(n, dtype=np.int64)
        perm = np.zeros(n, dtype=np.int64)
        for _ in range(bits):
            perm = (perm << 1) | (idx & 1)
            idx >>= 1
        _PERM_CACHE[n] = perm
    return perm


def _stage_twiddles(n: int, dtype: np.dtype) -> List[np.ndarray]:
    """Twiddle factors per butterfly stage for an ``n``-point DIT FFT.

    Cached per ``(n, dtype)`` so single-precision transforms multiply by
    ``complex64`` twiddles (no silent upcast to ``complex128``).
    """
    key = (n, np.dtype(dtype))
    tw = _TWIDDLE_CACHE.get(key)
    if tw is None:
        tw = []
        size = 2
        while size <= n:
            half = size // 2
            tw.append(np.exp(-2j * np.pi * np.arange(half) / size).astype(dtype))
            size *= 2
        _TWIDDLE_CACHE[key] = tw
    return tw


def _fft_core(x: np.ndarray) -> np.ndarray:
    """Uninstrumented butterfly engine shared by :func:`fft` and :func:`ifft`.

    The bit-reversal gather is the only full-size allocation; butterflies
    run in place with one reused ``n/2``-element scratch per batch row
    (``t = odd * tw``, then ``odd <- even - t`` and ``even <- even + t``).
    """
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    out = x[..., bit_reverse_permutation(n)]  # fancy indexing copies
    batch_shape = x.shape[:-1]
    scratch = np.empty(batch_shape + (n // 2,), dtype=out.dtype)
    for stage, tw in enumerate(_stage_twiddles(n, out.dtype)):
        size = 2 << stage
        half = size // 2
        blocks = out.reshape(batch_shape + (n // size, size))
        even = blocks[..., :half]
        odd = blocks[..., half:]
        t = scratch.reshape(batch_shape + (n // size, half))
        np.multiply(odd, tw, out=t)
        np.subtract(even, t, out=odd)  # odd slot := even - odd*tw
        even += t  # even slot := even + odd*tw
    return out


def _ifft_core(x: np.ndarray) -> np.ndarray:
    """Uninstrumented inverse engine: conjugate trick over :func:`_fft_core`."""
    n = x.shape[-1]
    out = _fft_core(np.conj(x))
    np.conj(out, out=out)
    out /= n
    return out


def _as_complex(x: np.ndarray) -> np.ndarray:
    """View/cast input as complex, preserving single precision."""
    x = np.asarray(x)
    if x.dtype in (np.complex64, np.float32):
        return np.asarray(x, dtype=np.complex64)
    return np.asarray(x, dtype=np.complex128)


def fft(x: np.ndarray) -> np.ndarray:
    """Forward FFT of a complex vector (or batch of vectors on axis -1).

    Iterative radix-2 decimation-in-time: bit-reverse the input then apply
    ``log2(n)`` butterfly stages.  Accepts any shape; the transform runs
    along the last axis, which must be a power of two.  ``float32`` /
    ``complex64`` inputs stay in single precision end to end.

    Dispatches to the active compute backend
    (:mod:`repro.transforms.backends`); the default ``numpy`` backend is
    the butterfly engine in this module.  Metric counting happens here,
    before dispatch, so every backend is accounted identically.
    """
    x = _as_complex(x)
    if _METRICS.enabled:
        _count_transforms(x.shape, "forward")
    return _active_backend().fft(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis (unitary pairing with :func:`fft`).

    Dispatches to the active compute backend, like :func:`fft`.
    """
    x = _as_complex(x)
    if _METRICS.enabled:
        _count_transforms(x.shape, "inverse")
    return _active_backend().ifft(x)


# ---------------------------------------------------------------------------
# Operation accounting (used by repro.analysis.opcount)
# ---------------------------------------------------------------------------
def fft_stage_count(n: int) -> int:
    """Number of butterfly stages in an ``n``-point radix-2 FFT."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"length must be a power of two, got {n}")
    return int(math.log2(n))


def fft_complex_multiplies(n: int) -> int:
    """Complex multiplications in an ``n``-point radix-2 FFT: (n/2)*log2(n)."""
    return (n // 2) * fft_stage_count(n)


def fft_real_multiplies(n: int) -> int:
    """Real multiplications, counting one complex multiply as four."""
    return 4 * fft_complex_multiplies(n)
