"""Negacyclic (anti-circular) convolution via a half-size twisted FFT.

TFHE polynomials live in ``Z_q[X]/(X^N + 1)``.  Multiplication in that ring
is *negacyclic* convolution.  Following Klemsa's extended-Fourier method
(the paper's reference [39]) a length-``N`` negacyclic transform folds into
a single ``N/2``-point complex FFT:

1. Fold: pair the real coefficients as ``z[j] = p[j] + i * p[j + N/2]``.
2. Twist: multiply by ``omega^j`` with ``omega = exp(i*pi/N)`` (a primitive
   4N-th root raised to odd powers absorbs the ``X^N = -1`` wraparound).
3. Run an ``N/2``-point FFT.

The inverse untwists and unfolds.  This is exactly the trick Morphling's
hardware exploits: an ``N``-coefficient polynomial costs one ``N/2``-point
FFT pass, which is why the simulator charges ``(N/2)/lanes`` cycles per
polynomial transform.

Also provided is an exact int64 negacyclic convolution used as the
reference ("golden") multiplier in tests and for small functional runs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.typing import DTypeLike

from ..observability import REGISTRY as _METRICS
from .fft import fft, ifft

__all__ = [
    "negacyclic_fft",
    "negacyclic_ifft",
    "negacyclic_convolve_fft",
    "negacyclic_convolve_exact",
    "transform_length",
]

_TWIST_CACHE: dict = {}

#: Mapping real input dtype -> complex working dtype for the folded FFT.
_COMPLEX_FOR_REAL = {np.dtype(np.float32): np.complex64}

_NEGACYCLIC = _METRICS.counter(
    "transforms_negacyclic_total",
    "Negacyclic polynomial transforms, by direction (batch-aware)",
)


def _count_polys(shape: Tuple[int, ...]) -> int:
    count = 1
    for dim in shape[:-1]:
        count *= int(dim)
    return count


def transform_length(n: int) -> int:
    """FFT length used for an ``n``-coefficient negacyclic transform."""
    if n < 2 or n & (n - 1):
        raise ValueError(f"polynomial size must be a power of two >= 2, got {n}")
    return n // 2


def _twist(n: int, dtype: DTypeLike = np.complex128) -> np.ndarray:
    """Twisting factors ``exp(i*pi*j/n)`` for the folded transform.

    Cached per ``(n, dtype)`` so the ``complex64`` precision mode never
    upcasts through a double-precision twist multiply.
    """
    key = (n, np.dtype(dtype))
    tw = _TWIST_CACHE.get(key)
    if tw is None:
        half = n // 2
        tw = np.exp(1j * np.pi * np.arange(half) / n).astype(dtype)
        _TWIST_CACHE[key] = tw
    return tw


def negacyclic_fft(p: np.ndarray) -> np.ndarray:
    """Forward negacyclic transform of real coefficients (last axis = N).

    Returns ``N/2`` complex points - the evaluations of ``p`` at the odd
    powers of the primitive ``2N``-th root of unity.  Batched over leading
    axes.  ``float32`` input selects the single-precision (``complex64``)
    path; everything else runs in ``complex128``.
    """
    p = np.asarray(p)
    cdtype = _COMPLEX_FOR_REAL.get(p.dtype, np.complex128)
    if p.dtype not in (np.float32, np.float64):
        p = p.astype(np.float64)
    n = p.shape[-1]
    half = transform_length(n)
    if _METRICS.enabled:
        _NEGACYCLIC.inc(_count_polys(p.shape), direction="forward")
    folded = np.empty(p.shape[:-1] + (half,), dtype=cdtype)
    folded.real = p[..., :half]
    folded.imag = p[..., half:]
    folded *= _twist(n, cdtype)
    return fft(folded)


def negacyclic_ifft(spectrum: np.ndarray, n: int) -> np.ndarray:
    """Inverse negacyclic transform back to ``n`` real coefficients.

    The output precision follows the spectrum: ``complex64`` spectra
    produce ``float32`` coefficients.
    """
    half = transform_length(n)
    if spectrum.shape[-1] != half:
        raise ValueError(
            f"spectrum length {spectrum.shape[-1]} != N/2 = {half}"
        )
    if _METRICS.enabled:
        _NEGACYCLIC.inc(_count_polys(spectrum.shape), direction="inverse")
    folded = ifft(spectrum)
    folded *= np.conj(_twist(n, folded.dtype))
    real_dtype = np.float32 if folded.dtype == np.complex64 else np.float64
    out = np.empty(spectrum.shape[:-1] + (n,), dtype=real_dtype)
    out[..., :half] = folded.real
    out[..., half:] = folded.imag
    return out


def negacyclic_convolve_fft(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Negacyclic product of real coefficient vectors via the twisted FFT.

    The result is real-valued floats; callers round and reduce modulo
    ``q``.  Exact as long as every intermediate product magnitude stays
    below ~2**52 (the float64 mantissa), which holds for TFHE because the
    decomposed operand coefficients are bounded by ``beta/2``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[-1]
    if b.shape[-1] != n:
        raise ValueError("operands must share the polynomial size")
    spec = negacyclic_fft(a) * negacyclic_fft(b)
    return negacyclic_ifft(spec, n)


def negacyclic_convolve_exact(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact integer negacyclic convolution (int64 / object fallback).

    Schoolbook ``O(N^2)`` via a Toeplitz-style matrix-free formulation:
    compute the full linear convolution then fold with sign flip
    (``X^N = -1``).  Used as the golden reference for the FFT engine and
    for functional bootstraps on small parameters.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    n = a.shape[-1]
    if b.shape[-1] != n:
        raise ValueError("operands must share the polynomial size")
    # np.convolve only handles 1-D; support a single batch axis on `a`.
    if a.ndim == 1 and b.ndim == 1:
        full = np.convolve(a.astype(object), b.astype(object))
        out = np.array(full[:n], dtype=object)
        out[: n - 1] -= full[n:]
        return out.astype(object)
    raise ValueError("exact convolution supports 1-D operands only")
