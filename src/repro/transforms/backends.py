"""Pluggable compute backends for the transform-domain hot path.

The functional substrate spends essentially all of its time in two
kernels: the (negacyclic-folded) FFT and the external-product einsum
contraction.  This module puts both behind a uniform
:class:`ComputeBackend` interface so a run can swap the engine without
touching any call site:

- ``numpy`` (default) - the repo's own zero-copy radix-2 butterfly
  engine (:mod:`repro.transforms.fft`), always available;
- ``scipy`` - ``scipy.fft``'s pocketfft, auto-detected when scipy is
  importable;
- ``pyfftw`` - FFTW via pyFFTW, auto-detected when importable.

Backends only replace the *transform engine*; the negacyclic
fold/twist, metric counting, decomposition, and rounding all stay in
the shared call sites, so every backend is counted and validated
identically.  Selection precedence: an explicit :func:`set_backend` /
:func:`use_backend` call, then the ``REPRO_BACKEND`` environment
variable, then the default (``numpy``).  The active backend's name is
stamped into bench JSON and telemetry events so every recorded number
names the engine that produced it.

Bit-compatibility: the external-product einsum runs with a fixed
reduction order (``optimize=False``) on every backend, and in
``complex128`` the bootstrap's float error stays far below the rounding
threshold, so full bootstraps are bit-identical across backends even
though raw FFT spectra may differ in the last ulps.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "ComputeBackend",
    "NumpyBackend",
    "ScipyBackend",
    "PyFFTWBackend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "active_backend",
    "active_backend_name",
    "set_backend",
    "reset_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
]

#: Environment variable consulted when no backend was selected explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Name of the backend used when neither code nor environment selects one.
DEFAULT_BACKEND = "numpy"


class ComputeBackend:
    """Uniform interface over the FFT + einsum hot path.

    Subclasses provide :meth:`fft`/:meth:`ifft` along the last axis of a
    complex array (power-of-two length, dtype-preserving: ``complex64``
    in means ``complex64`` out) and may override :meth:`einsum`.  The
    default einsum keeps numpy's fixed left-to-right reduction order so
    results stay bit-stable across backends.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def fft(self, x: np.ndarray) -> np.ndarray:
        """Forward FFT along the last axis (batched over leading axes)."""
        raise NotImplementedError

    def ifft(self, x: np.ndarray) -> np.ndarray:
        """Inverse FFT along the last axis (``ifft(fft(x)) == x``)."""
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        """Tensor contraction with a fixed (unoptimized) reduction order."""
        return np.einsum(subscripts, *operands, optimize=False)

    def describe(self) -> str:
        """One-line human description for CLI output."""
        return f"{self.name} ({type(self).__name__})"


class NumpyBackend(ComputeBackend):
    """The repo's own zero-copy radix-2 butterfly engine (always available)."""

    name = "numpy"

    def __init__(self) -> None:
        # Late import: backends.py is imported by fft.py at module load,
        # so the core engine is only resolved once an instance is built
        # (which happens after fft.py has finished importing).
        from .fft import _fft_core, _ifft_core

        self._fft_core = _fft_core
        self._ifft_core = _ifft_core

    def fft(self, x: np.ndarray) -> np.ndarray:
        return self._fft_core(x)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return self._ifft_core(x)


class ScipyBackend(ComputeBackend):
    """``scipy.fft`` (pocketfft).  Raises ImportError when scipy is absent."""

    name = "scipy"

    def __init__(self) -> None:
        import scipy.fft as _sp_fft  # gated: scipy is an optional dependency

        self._sp_fft = _sp_fft.fft
        self._sp_ifft = _sp_fft.ifft

    def fft(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._sp_fft(x, axis=-1))

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._sp_ifft(x, axis=-1))


class PyFFTWBackend(ComputeBackend):
    """FFTW via pyFFTW's numpy-compatible interface (optional dependency)."""

    name = "pyfftw"

    def __init__(self) -> None:
        import pyfftw.interfaces.numpy_fft as _fftw  # gated optional dep
        import pyfftw.interfaces.cache as _fftw_cache

        _fftw_cache.enable()  # keep FFTW plans across calls
        self._fftw_fft = _fftw.fft
        self._fftw_ifft = _fftw.ifft

    def fft(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._fftw_fft(x, axis=-1))

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._fftw_ifft(x, axis=-1))


def _probe_module(module: str) -> bool:
    """True when ``module`` is importable (without importing it fully)."""
    import importlib.util

    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


BackendFactory = Callable[[], ComputeBackend]

# name -> (factory, availability probe); insertion order is listing order.
_REGISTRY: Dict[str, Tuple[BackendFactory, Callable[[], bool]]] = {}
_INSTANCES: Dict[str, ComputeBackend] = {}
_ACTIVE: Optional[ComputeBackend] = None
_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: BackendFactory,
    probe: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory under ``name``.

    ``probe`` reports availability without constructing the backend
    (e.g. "is scipy importable"); omitted means always available.
    """
    if probe is None:
        probe = _always_available
    with _LOCK:
        _REGISTRY[name] = (factory, probe)
        _INSTANCES.pop(name, None)


def _always_available() -> bool:
    return True


def _scipy_available() -> bool:
    return _probe_module("scipy.fft")


def _pyfftw_available() -> bool:
    return _probe_module("pyfftw")


register_backend("numpy", NumpyBackend)
register_backend("scipy", ScipyBackend, probe=_scipy_available)
register_backend("pyfftw", PyFFTWBackend, probe=_pyfftw_available)


def registered_backends() -> List[str]:
    """All registered backend names, available or not."""
    return list(_REGISTRY)


def available_backends() -> List[str]:
    """Backend names whose availability probe passes on this machine."""
    return [name for name, (_, probe) in _REGISTRY.items() if probe()]


def get_backend(name: str) -> ComputeBackend:
    """Return (constructing and caching if needed) the backend ``name``.

    Unknown names and registered-but-unavailable backends both raise
    ``ValueError`` listing the backends that *are* usable here, so a CLI
    typo fails with the fix in the message.
    """
    entry = _REGISTRY.get(name)
    avail = ", ".join(available_backends())
    if entry is None:
        raise ValueError(
            f"unknown compute backend {name!r}; available backends: {avail}"
        )
    factory, probe = entry
    with _LOCK:
        inst = _INSTANCES.get(name)
        if inst is not None:
            return inst
        if not probe():
            raise ValueError(
                f"compute backend {name!r} is not available on this machine "
                f"(optional dependency not importable); available backends: {avail}"
            )
        try:
            inst = factory()
        except ImportError as exc:
            raise ValueError(
                f"compute backend {name!r} failed to import ({exc}); "
                f"available backends: {avail}"
            ) from exc
        _INSTANCES[name] = inst
        return inst


def active_backend() -> ComputeBackend:
    """The backend every transform call dispatches to.

    Resolution order: :func:`set_backend` / :func:`use_backend`, then the
    ``REPRO_BACKEND`` environment variable, then ``numpy``.  The env
    variable is read lazily on first use (and again after
    :func:`reset_backend`), so tests can monkeypatch it.
    """
    global _ACTIVE
    inst = _ACTIVE
    if inst is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
        inst = get_backend(name)
        _ACTIVE = inst
    return inst


def active_backend_name() -> str:
    """Name of the active backend (resolving it if needed)."""
    return active_backend().name


def set_backend(name: str) -> ComputeBackend:
    """Select the process-wide active backend; returns it."""
    global _ACTIVE
    inst = get_backend(name)
    _ACTIVE = inst
    return inst


def reset_backend() -> None:
    """Drop the explicit selection; next use re-reads ``REPRO_BACKEND``."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[ComputeBackend]:
    """Scoped backend selection (``None`` keeps the current resolution)."""
    global _ACTIVE
    prev = _ACTIVE
    try:
        if name is None:
            yield active_backend()
        else:
            yield set_backend(name)
    finally:
        _ACTIVE = prev
