"""Driver behind ``repro verify``.

Three modes, sharing one diagnostic pipeline:

- default: compile every *shipped* configuration (each application
  workload and each accelerator/parameter variant the experiments use)
  and run the program verifier over the resulting instruction streams;
- ``--lint PATH...``: run the AST domain linter over source trees
  instead of compiled programs;
- ``--binary FILE``: decode an :mod:`repro.core.isa_encoding` blob and
  verify the decoded stream - the passes that need a config/params
  degrade gracefully on a bare binary;
- ``--list-rules``: print the combined rule catalog.

``--strict`` turns error findings into a non-zero exit status - the CI
correctness gate.  Warnings never fail the build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .diagnostics import VERIFY_SCHEMA_VERSION, VerifyReport
from .lint import lint_paths, lint_rule_catalog
from .program import program_rule_catalog, verify_stream

__all__ = [
    "VerifyTarget",
    "shipped_targets",
    "verify_target",
    "verify_binary",
    "report_document",
    "run",
]


@dataclass(frozen=True)
class VerifyTarget:
    """One shipped (program, architecture, parameter-set) combination."""

    name: str
    make_layers: Callable[[], list]
    config_name: str = "morphling"
    param_set: str = "III"


def _app_layers(factory: Callable[[], object]) -> Callable[[], list]:
    return lambda: list(factory().layers)  # type: ignore[attr-defined]


def shipped_targets() -> List[VerifyTarget]:
    """Every configuration the experiments/apps ship with."""
    from ..apps import (
        database_query_workload,
        deepcnn_workload,
        genome_match_workload,
        vgg9_workload,
        xgboost_workload,
    )

    targets = [
        VerifyTarget("xgboost@III", _app_layers(xgboost_workload)),
        VerifyTarget("deepcnn-20@III", _app_layers(lambda: deepcnn_workload(20))),
        VerifyTarget("deepcnn-50@III", _app_layers(lambda: deepcnn_workload(50))),
        VerifyTarget("deepcnn-100@III", _app_layers(lambda: deepcnn_workload(100))),
        VerifyTarget("vgg9@III", _app_layers(vgg9_workload)),
        VerifyTarget("database-1k@III",
                     _app_layers(lambda: database_query_workload(1024))),
        VerifyTarget("genomics@III",
                     _app_layers(lambda: genome_match_workload(1000, panel_size=4))),
    ]
    # The equal-resource ablation variants (Fig. 7-b) and every Table III
    # parameter set, each driving one representative workload.
    for config_name in ("no-reuse", "input-reuse"):
        targets.append(VerifyTarget(
            f"xgboost@{config_name}", _app_layers(xgboost_workload),
            config_name=config_name,
        ))
    for param_set in ("I", "II", "IV"):
        targets.append(VerifyTarget(
            f"xgboost@{param_set}", _app_layers(xgboost_workload),
            param_set=param_set,
        ))
    return targets


def _make_config(name: str):
    from ..core.accelerator import MorphlingConfig

    return {
        "morphling": MorphlingConfig.morphling,
        "no-reuse": MorphlingConfig.no_reuse,
        "input-reuse": MorphlingConfig.input_reuse,
    }[name]()


def verify_target(
    target: VerifyTarget,
    occupancy: bool = False,
    noise_budget: bool = False,
) -> VerifyReport:
    """Compile one shipped target and verify the instruction stream.

    ``occupancy``/``noise_budget`` attach the VER007 occupancy proof and
    the VER008 static noise report to the result (the passes themselves
    always run; the flags add the full evidence to the report output).
    """
    from ..core.scheduler import SwScheduler
    from ..params import get_params

    config = _make_config(target.config_name)
    params = get_params(target.param_set)
    stream = SwScheduler(config, params).schedule(target.make_layers())
    report = verify_stream(stream, config=config, params=params,
                           subject=target.name)
    if occupancy:
        from .occupancy import OccupancyModel

        report.attachments["occupancy"] = OccupancyModel(
            config, params
        ).analyze(list(stream), subject=target.name)
    if noise_budget:
        from .noisepass import static_noise_report

        report.attachments["noise_budget"] = static_noise_report(
            list(stream), params
        )
    return report


def _render_catalog() -> str:
    lines = ["Program verifier passes:"]
    lines += [f"  {info}" for info in program_rule_catalog()]
    lines.append("Domain lint rules:")
    lines += [f"  {info}" for info in lint_rule_catalog()]
    return "\n".join(lines)


def verify_binary(path: str) -> VerifyReport:
    """Decode an ``isa_encoding`` blob from ``path`` and verify it.

    Exercises the duck-typed pass path end to end: the decoded stream
    carries no config or parameter set, so capacity/compatibility passes
    that need them skip while the structural passes run in full.
    """
    from ..core.isa_encoding import decode_stream

    with open(path, "rb") as fh:
        data = fh.read()
    stream = decode_stream(data)
    return verify_stream(stream, subject=path)


def report_document(reports: List[VerifyReport]) -> dict:
    """The versioned ``repro verify --json`` document for ``reports``.

    Schema pinned by :data:`repro.verify.diagnostics.VERIFY_SCHEMA_VERSION`
    and the golden file under ``tests/verify/golden/``.
    """
    return {
        "schema_version": VERIFY_SCHEMA_VERSION,
        "ok": all(r.ok for r in reports),
        "reports": [r.to_jsonable() for r in reports],
    }


def run(
    lint: Optional[List[str]] = None,
    strict: bool = False,
    as_json: bool = False,
    list_rules: bool = False,
    target: Optional[str] = None,
    binary: Optional[str] = None,
    occupancy: bool = False,
    noise_budget: bool = False,
    _print: Callable[[str], None] = print,
) -> int:
    """Execute the verify command; returns the process exit code."""
    if list_rules:
        _print(_render_catalog())
        return 0
    if lint:
        reports = [lint_paths(lint)]
    elif binary is not None:
        try:
            reports = [verify_binary(binary)]
        except (OSError, ValueError) as exc:
            _print(f"cannot verify {binary}: {exc}")
            return 2
    else:
        targets = shipped_targets()
        if target is not None:
            targets = [t for t in targets if target in t.name]
            if not targets:
                _print(f"no shipped target matches {target!r}")
                return 2
        reports = [
            verify_target(t, occupancy=occupancy, noise_budget=noise_budget)
            for t in targets
        ]
    failed = sum(0 if r.ok else 1 for r in reports)
    if as_json:
        import json

        _print(json.dumps(report_document(reports), indent=2, sort_keys=True))
    else:
        for report in reports:
            _print(report.render())
    if strict and failed:
        return 1
    return 0
