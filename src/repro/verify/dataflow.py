"""Intra-module reaching definitions for import/alias bindings.

The lint rules in :mod:`repro.verify.rules` need to know what a name
*means* at a use site: ``xp.fft.fft(x)`` bypasses the instrumented FFT
exactly when ``xp`` is numpy, however it was spelled.  This module is
the lightweight dataflow pass behind that question - an abstract
interpretation over the statement list where the abstract value of a
name is the set of dotted *origin paths* it may be bound to
(``{"numpy"}``, ``{"numpy.fft"}``, ...).

Semantics, deliberately simple:

- ``import numpy as xp`` binds ``xp -> {"numpy"}``; ``from numpy import
  fft as F`` binds ``F -> {"numpy.fft"}``; imports of untracked modules
  bind the name to the empty set (killing any earlier binding).
- ``alias = np`` / ``alias = np.fft`` propagate the resolved path of a
  pure ``Name``/``Attribute`` chain; any other right-hand side kills the
  target (rebinding to an unknown value).
- Branches (``if``/``try``/loops) merge by union - a use is flagged
  when *any* path reaches it with a numpy origin (may-analysis: lint
  wants no false negatives across branches).
- Function and class bodies execute on a copy of the enclosing
  environment with parameters killed; their rebindings do not leak out.

The pass yields :class:`QualifiedUse` records - every maximal
``Name``/``Attribute`` chain whose base resolves to a tracked origin -
which the rules filter by path prefix.  The default environment seeds
``np``/``numpy`` as numpy so bare snippets without imports keep linting
the way they always have.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "QualifiedUse",
    "DEFAULT_ASSUMED_BINDINGS",
    "resolve_qualified_uses",
]

Origins = FrozenSet[str]
Env = Dict[str, Origins]

#: Names assumed bound when a module never imports them: conventional
#: numpy spellings, so snippet-level linting stays alias-aware *and*
#: backwards compatible.
DEFAULT_ASSUMED_BINDINGS: Dict[str, str] = {"np": "numpy", "numpy": "numpy"}

_EMPTY: Origins = frozenset()


@dataclass(frozen=True)
class QualifiedUse:
    """One use of a name chain that resolves into a tracked module."""

    lineno: int
    path: str      # canonical dotted origin, e.g. "numpy.fft.fft"
    spelled: str   # how the source wrote it, e.g. "xp.fft.fft"
    is_call: bool  # the chain is the callee of a Call


def _tracked(path: str, roots: Tuple[str, ...]) -> bool:
    return any(path == r or path.startswith(r + ".") for r in roots)


class _BindingWalker:
    """Statement-ordered abstract interpreter collecting qualified uses."""

    def __init__(self, roots: Tuple[str, ...], assume: Dict[str, str]) -> None:
        self.roots = roots
        self.assume = assume
        self.uses: List[QualifiedUse] = []

    # -- name resolution ------------------------------------------------
    def _base_origins(self, name: str, env: Env) -> Origins:
        if name in env:
            return env[name]
        assumed = self.assume.get(name)
        if assumed is not None and _tracked(assumed, self.roots):
            return frozenset({assumed})
        return _EMPTY

    def _chain(self, node: ast.AST) -> Optional[Tuple[str, List[str]]]:
        """``(base name, attribute list)`` for a pure Name/Attribute chain."""
        attrs: List[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            attrs.reverse()
            return node.id, attrs
        return None

    def _resolve_chain(self, node: ast.AST, env: Env) -> Optional[Origins]:
        """Origin paths of a pure chain, or None when not a chain."""
        chain = self._chain(node)
        if chain is None:
            return None
        base, attrs = chain
        origins = self._base_origins(base, env)
        if not origins:
            return _EMPTY
        suffix = "".join("." + a for a in attrs)
        return frozenset(o + suffix for o in origins)

    # -- expression uses ------------------------------------------------
    def _emit_chain(self, node: ast.AST, env: Env, is_call: bool) -> bool:
        """Record a use when ``node`` is a resolvable chain; True if so."""
        chain = self._chain(node)
        if chain is None:
            return False
        base, attrs = chain
        spelled = ".".join([base] + attrs)
        for origin in self._base_origins(base, env):
            path = origin + "".join("." + a for a in attrs)
            if _tracked(path, self.roots):
                self.uses.append(QualifiedUse(
                    lineno=getattr(node, "lineno", 0), path=path,
                    spelled=spelled, is_call=is_call,
                ))
        return True

    def visit_expr(self, node: Optional[ast.AST], env: Env) -> None:
        if node is None:
            return
        if isinstance(node, (ast.Name, ast.Attribute)):
            if self._emit_chain(node, env, is_call=False):
                return
            # f(x).attr - not a pure chain; look inside.
            if isinstance(node, ast.Attribute):
                self.visit_expr(node.value, env)
            return
        if isinstance(node, ast.Call):
            if not self._emit_chain(node.func, env, is_call=True):
                self.visit_expr(node.func, env)
            for arg in node.args:
                self.visit_expr(arg, env)
            for kw in node.keywords:
                self.visit_expr(kw.value, env)
            return
        if isinstance(node, ast.Lambda):
            inner = dict(env)
            self._kill_arguments(node.args, inner)
            self.visit_expr(node.body, inner)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            inner = dict(env)
            for gen in node.generators:
                self.visit_expr(gen.iter, inner)
                self._kill_target(gen.target, inner)
                for cond in gen.ifs:
                    self.visit_expr(cond, inner)
            if isinstance(node, ast.DictComp):
                self.visit_expr(node.key, inner)
                self.visit_expr(node.value, inner)
            else:
                self.visit_expr(node.elt, inner)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child, env)

    # -- binding helpers -------------------------------------------------
    def _kill_target(self, target: ast.AST, env: Env) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                env[node.id] = _EMPTY

    def _kill_arguments(self, args: ast.arguments, env: Env) -> None:
        all_args = list(args.args) + list(args.kwonlyargs)
        all_args += getattr(args, "posonlyargs", [])
        for arg in all_args:
            env[arg.arg] = _EMPTY
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                env[vararg.arg] = _EMPTY

    def _merge(self, env: Env, branches: Sequence[Env]) -> None:
        keys = set()
        for b in branches:
            keys.update(b)
        env.clear()
        env.update({
            k: frozenset().union(*(b.get(k, _EMPTY) for b in branches))
            for k in keys
        })

    # -- statements -------------------------------------------------------
    def exec_block(self, stmts: Iterable[ast.stmt], env: Env) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                env[bound] = (frozenset({origin})
                              if _tracked(origin, self.roots) else _EMPTY)
        elif isinstance(stmt, ast.ImportFrom):
            module = stmt.module or ""
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if stmt.level:  # relative import: never a tracked origin
                    env[bound] = _EMPTY
                    continue
                origin = f"{module}.{alias.name}" if module else alias.name
                env[bound] = (frozenset({origin})
                              if _tracked(origin, self.roots) else _EMPTY)
        elif isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, env)
            resolved = self._resolve_chain(stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name) and resolved is not None:
                    env[target.id] = resolved
                else:
                    self._kill_target(target, env)
        elif isinstance(stmt, ast.AnnAssign):
            self.visit_expr(stmt.value, env)
            resolved = (self._resolve_chain(stmt.value, env)
                        if stmt.value is not None else None)
            if isinstance(stmt.target, ast.Name) and resolved is not None:
                env[stmt.target.id] = resolved
            else:
                self._kill_target(stmt.target, env)
        elif isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value, env)
            self._kill_target(stmt.target, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in stmt.decorator_list:
                self.visit_expr(dec, env)
            for default in list(stmt.args.defaults) + [
                    d for d in stmt.args.kw_defaults if d is not None]:
                self.visit_expr(default, env)
            env[stmt.name] = _EMPTY
            inner = dict(env)
            self._kill_arguments(stmt.args, inner)
            self.exec_block(stmt.body, inner)
        elif isinstance(stmt, ast.ClassDef):
            for dec in stmt.decorator_list:
                self.visit_expr(dec, env)
            for base in stmt.bases:
                self.visit_expr(base, env)
            for kw in stmt.keywords:
                self.visit_expr(kw.value, env)
            env[stmt.name] = _EMPTY
            inner = dict(env)
            self.exec_block(stmt.body, inner)
        elif isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, env)
            then_env = dict(env)
            self.exec_block(stmt.body, then_env)
            else_env = dict(env)
            self.exec_block(stmt.orelse, else_env)
            self._merge(env, (then_env, else_env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, env)
            body_env = dict(env)
            self._kill_target(stmt.target, body_env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self._merge(env, (env, body_env))
        elif isinstance(stmt, ast.While):
            self.visit_expr(stmt.test, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self._merge(env, (env, body_env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.visit_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._kill_target(item.optional_vars, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            branches = [body_env]
            for handler in stmt.handlers:
                h_env = dict(env)
                if handler.type is not None:
                    self.visit_expr(handler.type, h_env)
                if handler.name:
                    h_env[handler.name] = _EMPTY
                self.exec_block(handler.body, h_env)
                branches.append(h_env)
            self._merge(env, branches)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._kill_target(target, env)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Pass,
                               ast.Break, ast.Continue)):
            pass
        else:
            # Expr/Return/Raise/Assert/Match/...: evaluate contained
            # expressions for uses, recurse into any nested statements
            # (conservative: no kills).
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, env)
                elif isinstance(child, ast.stmt):
                    self.exec_stmt(child, env)
                else:  # e.g. a match_case: one level of nested bodies
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.expr):
                            self.visit_expr(sub, env)
                        elif isinstance(sub, ast.stmt):
                            self.exec_stmt(sub, env)


def resolve_qualified_uses(
    tree: ast.AST,
    roots: Tuple[str, ...] = ("numpy",),
    assume: Optional[Dict[str, str]] = None,
) -> List[QualifiedUse]:
    """All uses in ``tree`` whose chain resolves into one of ``roots``.

    ``assume`` seeds bindings for names the module never defines
    (default: ``np``/``numpy`` mean numpy); explicit imports and
    assignments in the module always win over the assumption.
    """
    walker = _BindingWalker(
        roots, DEFAULT_ASSUMED_BINDINGS if assume is None else assume
    )
    body = tree.body if isinstance(tree, ast.Module) else [tree]
    env: Env = {}
    walker.exec_block([s for s in body if isinstance(s, ast.stmt)], env)
    return walker.uses
