"""VER008: static noise-budget bounds - the compile-time twin of
``repro noise``.

The runtime noise telemetry (:mod:`repro.observability.noise` +
:mod:`repro.analysis.failprob`) measures failure probability from
ciphertexts an execution actually produced.  This pass derives the same
bound *statically*: it propagates predicted CGGI variance through the
instruction stream along its dependency edges using the
:mod:`repro.tfhe.noise` algebra - a blind rotation emits
``n`` chained external products' worth of fresh noise, sample-extract
passes it through, key-switch adds the KSK digit terms - and bounds the
workload's decryption-failure probability as a union bound over one
boolean-gate decision per bootstrapped ciphertext.  The decision
geometry (:func:`gate_decision_margin`) is the same LUT-bucket margin
the runtime tracker records at each ``bootstrap_decision`` point, so
the static bound and the measured ``repro noise --fail-prob`` report
agree up to the union-bound slack (``log2`` of the bootstrap count).

Budget overruns are **warnings**, not errors: a parameter set that
breaches 2^-20 at workload scale (set IV's single-level decomposition
does) is a cryptographic-regime risk worth surfacing on every compile,
but the program itself is well-formed and the timing model's results
stand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

from ..core.isa import DmaOp, VpuOp, XpuOp
from .diagnostics import Diagnostic, Severity
from .program import VerifyContext, register_program_pass

__all__ = [
    "STATIC_NOISE_SCHEMA_VERSION",
    "StaticNoiseReport",
    "gate_decision_margin",
    "static_noise_report",
]

STATIC_NOISE_SCHEMA_VERSION = 1

def gate_decision_margin(params: object) -> float:
    """Worst-case boolean-gate decision margin for ``params`` (torus units).

    The gate dialect evaluates its LUTs over ``Z_8`` (quarter-torus
    plaintexts behind a padding bit), so the expected phase sits
    mid-bucket: half a bucket (``1/16``) from the nearest LUT value
    change.  The modulus switch to ``2N`` then quantizes the transition
    to the rotation grid, landing it up to half a rounding step
    (``1/(4N)``) closer.  This is exactly the LUT-geometry margin the
    runtime tracker records at each ``bootstrap_decision`` point, which
    is what makes the static and measured reports comparable.
    """
    n = float(getattr(params, "N", 0) or 1)
    return 1.0 / 16.0 - 1.0 / (4.0 * n)


@dataclass(frozen=True)
class StaticNoiseReport:
    """Statically derived failure-probability bound for one stream."""

    schema_version: int
    params_name: str
    bootstraps: int
    margin: float
    ms_variance: float
    bootstrap_output_variance: float
    decision_variance: float
    decision_std_log2: float
    sigmas: float
    per_bootstrap_log2_prob: float
    total_log2_prob: float
    log2_budget: float

    @property
    def within_budget(self) -> bool:
        return self.total_log2_prob <= self.log2_budget

    def to_jsonable(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "params": self.params_name,
            "bootstraps": self.bootstraps,
            "margin": self.margin,
            "ms_variance": self.ms_variance,
            "bootstrap_output_variance": self.bootstrap_output_variance,
            "decision_variance": self.decision_variance,
            "decision_std_log2": self.decision_std_log2,
            "sigmas": self.sigmas,
            "per_bootstrap_log2_prob": self.per_bootstrap_log2_prob,
            "total_log2_prob": self.total_log2_prob,
            "log2_budget": self.log2_budget,
            "within_budget": self.within_budget,
        }

    def render_text(self) -> str:
        from ..analysis.failprob import LOG2_PROB_FLOOR

        zero = ("  (numerically zero)"
                if self.total_log2_prob <= LOG2_PROB_FLOOR else "")
        return "\n".join([
            f"static noise budget ({self.params_name}, "
            f"{self.bootstraps:,} bootstraps):",
            f"  decision margin {self.margin:.4g}, std "
            f"2^{self.decision_std_log2:.1f} ({self.sigmas:.1f} sigma)",
            f"  log2(p_fail) <= {self.total_log2_prob:.1f}{zero}",
            f"  within 2^{self.log2_budget:.0f} budget: "
            f"{'yes' if self.within_budget else 'NO'}",
        ])


def static_noise_report(
    instructions: Sequence[object],
    params: object,
    margin: Optional[float] = None,
    log2_budget: Optional[float] = None,
) -> StaticNoiseReport:
    """Propagate predicted variance through ``instructions`` and bound
    the workload's decryption-failure probability.

    Variance flows along ``depends_on`` edges keyed by opcode: a
    ``BLIND_ROTATE`` produces the fresh ``n``-external-product variance
    regardless of input (the test polynomial restarts the accumulator),
    ``SAMPLE_EXTRACT``/``STORE_LWE`` pass their operand through, and
    ``KEY_SWITCH`` adds the digit-decomposition terms.  Each ciphertext
    of each bootstrapped batch contributes one gate-decision point whose
    variance adds the modulus-switch rounding of the *next* decision
    phase (two bootstrapped operands per gate) - the union bound over
    all of them is the reported total.  ``margin`` defaults to the
    parameter set's :func:`gate_decision_margin`.
    """
    from ..analysis.failprob import (
        DEFAULT_LOG2_BUDGET,
        LOG2_PROB_FLOOR,
        gaussian_tail_log2,
    )
    from ..tfhe.noise import (
        blind_rotation_noise_variance,
        key_switch_noise_variance,
        modulus_switch_noise_variance,
    )

    if margin is None:
        margin = gate_decision_margin(params)
    if log2_budget is None:
        log2_budget = DEFAULT_LOG2_BUDGET
    br_variance = blind_rotation_noise_variance(params)
    ms_variance = modulus_switch_noise_variance(params)

    variance: Dict[object, float] = {}
    bootstraps = 0
    terminal = 0.0  # worst fully key-switched output variance observed
    for idx, inst in enumerate(instructions):
        op = getattr(inst, "op", None)
        inst_id = getattr(inst, "inst_id", idx)
        operand = max(
            (variance.get(d, 0.0) for d in getattr(inst, "depends_on", ())),
            default=0.0,
        )
        if op is XpuOp.BLIND_ROTATE:
            variance[inst_id] = br_variance
            bootstraps += max(int(getattr(inst, "count", 0)), 0)
        elif op is VpuOp.KEY_SWITCH:
            out = key_switch_noise_variance(params, operand)
            variance[inst_id] = out
            terminal = max(terminal, out)
        elif op in (VpuOp.SAMPLE_EXTRACT, DmaOp.STORE_LWE):
            variance[inst_id] = operand
        else:
            variance[inst_id] = 0.0
    if terminal <= 0.0:
        # No key-switch in the stream (a bare rotation program): fall
        # back to the closed-form bootstrap output variance.
        terminal = key_switch_noise_variance(params, br_variance)

    # One boolean-gate decision per bootstrapped ciphertext: two
    # bootstrapped operands enter the gate's linear combination, the MS
    # rounding widens the decision phase.
    decision_variance = 2.0 * terminal + ms_variance
    std = math.sqrt(decision_variance) if decision_variance > 0.0 else 0.0
    per_point = gaussian_tail_log2(margin, decision_variance)
    count = max(bootstraps, 1)
    total = min(per_point + math.log2(count), 0.0)
    total = max(total, LOG2_PROB_FLOOR)
    return StaticNoiseReport(
        schema_version=STATIC_NOISE_SCHEMA_VERSION,
        params_name=str(getattr(params, "name", "<params>")),
        bootstraps=bootstraps,
        margin=margin,
        ms_variance=ms_variance,
        bootstrap_output_variance=terminal,
        decision_variance=decision_variance,
        decision_std_log2=(math.log2(std) if std > 0.0 else LOG2_PROB_FLOOR),
        sigmas=(margin / std if std > 0.0 else math.inf),
        per_bootstrap_log2_prob=per_point,
        total_log2_prob=total,
        log2_budget=log2_budget,
    )


# ----------------------------------------------------------------------
# VER008 - static noise budget
# ----------------------------------------------------------------------
@register_program_pass(
    "VER008", "static-noise-budget",
    "statically predicted decryption-failure probability should stay "
    "within the 2^-20 workload budget",
    severity=Severity.WARNING,
)
def _check_noise_budget(ctx: VerifyContext) -> Iterator[Diagnostic]:
    if ctx.params is None:
        return
    report = static_noise_report(ctx.instructions, ctx.params)
    if report.bootstraps == 0 or report.within_budget:
        return
    first_br: Optional[int] = None
    for idx, inst in enumerate(ctx.instructions):
        if getattr(inst, "op", None) is XpuOp.BLIND_ROTATE:
            first_br = idx
            break
    yield Diagnostic(
        code="VER008", severity=Severity.WARNING,
        message=(
            f"static failure bound log2(p) <= {report.total_log2_prob:.1f} "
            f"breaches the 2^{report.log2_budget:.0f} budget over "
            f"{report.bootstraps:,} bootstraps under {report.params_name} "
            f"({report.sigmas:.1f} sigma decision margin): the parameter "
            f"regime, not the program, is the risk"
        ),
        instruction_index=first_br,
        op=XpuOp.BLIND_ROTATE.value if first_br is not None else None,
    )
