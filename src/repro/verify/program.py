"""Head 1: static verifier for compiled ISA instruction streams.

A pass pipeline over :class:`repro.core.isa.InstructionStream` (or any
iterable of instruction-shaped objects, e.g. a decoded binary program)
that runs before the HW-scheduler executes the stream.  Each pass owns a
stable ``VERxxx`` code; a violation is reported with the instruction
index, the source op, and a severity.  The pipeline is pure analysis -
it never mutates the stream - so it is safe to run on every compile
(:func:`repro.core.compiler.compile_program` does, unless told not to).

Pass catalog
------------
``VER001``  operand def-before-use: every dependency id must name an
            instruction already emitted (the in-order DMA/engine queues
            cannot satisfy forward references)
``VER002``  identity sanity: duplicate instruction ids, self- or
            duplicate dependencies
``VER003``  opcode/engine compatibility: unknown opcodes and payload
            fields that do not belong on the op's engine
``VER004``  buffer capacity: batch sizes that overflow the Private-A1
            residency / Shared buffer implied by the configuration
``VER005``  stage-order hazards: the per-group bootstrap chain must
            respect MS -> BR -> SE -> KS -> STORE (RAW) and be emitted
            in that order (the scheduler's in-order queue assumption)
``VER006``  HBM transfer sanity: empty or word-misaligned DMA payloads,
            LWE transfers inconsistent with their ciphertext count
``VER007``  occupancy-over-time: aggregate Shared/Private buffer
            occupancy across the abstract timeline must fit capacity
            (:mod:`repro.verify.occupancy`)
``VER008``  static noise budget: predicted CGGI failure probability
            within the 2^-20 budget (:mod:`repro.verify.noisepass`,
            warning severity)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..core.isa import DmaOp, Engine, VpuOp, XpuOp, engine_of
from .diagnostics import Diagnostic, RuleInfo, Severity, VerificationError, VerifyReport

__all__ = [
    "VerifyContext",
    "ProgramPass",
    "PROGRAM_PASSES",
    "register_program_pass",
    "program_rule_catalog",
    "verify_stream",
    "verify_or_raise",
]


@dataclass
class VerifyContext:
    """Everything a pass may inspect.

    ``config``/``params`` are optional: capacity and transfer-size
    checks degrade gracefully (skip) when the architectural context is
    unknown, so the verifier still works on bare decoded binaries.
    """

    instructions: List[object]
    config: Optional[object] = None
    params: Optional[object] = None
    by_id: Dict[int, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_id:
            self.by_id = {
                getattr(i, "inst_id", idx): i
                for idx, i in enumerate(self.instructions)
            }


PassFn = Callable[[VerifyContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class ProgramPass:
    """One verifier pass: metadata plus the check function."""

    info: RuleInfo
    run: PassFn

    @property
    def code(self) -> str:
        return self.info.code


PROGRAM_PASSES: List[ProgramPass] = []


def register_program_pass(code: str, name: str, summary: str,
                          severity: Severity = Severity.ERROR) -> Callable[[PassFn], PassFn]:
    """Register a verifier pass under a stable ``VERxxx`` code (decorator).

    Public so analyses can live in their own modules (the occupancy and
    noise-budget passes do); registration order is catalog order.
    """
    def deco(fn: PassFn) -> PassFn:
        PROGRAM_PASSES.append(
            ProgramPass(RuleInfo(code, name, summary, severity), fn)
        )
        return fn
    return deco


#: Backwards-compatible internal alias (the VER001-VER006 passes below).
_register = register_program_pass


def program_rule_catalog() -> List[RuleInfo]:
    """Catalog of all registered verifier passes."""
    return [p.info for p in PROGRAM_PASSES]


def _diag(code: str, idx: int, inst: object, message: str,
          severity: Severity = Severity.ERROR) -> Diagnostic:
    op = getattr(inst, "op", None)
    return Diagnostic(
        code=code, severity=severity, message=message,
        instruction_index=idx, op=getattr(op, "value", str(op)),
    )


# ----------------------------------------------------------------------
# VER001 - def-before-use
# ----------------------------------------------------------------------
@_register("VER001", "def-before-use",
           "dependencies must reference already-emitted instructions")
def _check_def_before_use(ctx: VerifyContext) -> Iterator[Diagnostic]:
    seen: set = set()
    for idx, inst in enumerate(ctx.instructions):
        for dep in getattr(inst, "depends_on", ()):
            if dep not in seen:
                kind = ("forward reference" if dep in ctx.by_id
                        else "unknown instruction")
                yield _diag(
                    "VER001", idx, inst,
                    f"dependency {dep} is a {kind}: operands must be "
                    f"defined before use",
                )
        seen.add(getattr(inst, "inst_id", idx))


# ----------------------------------------------------------------------
# VER002 - identity sanity
# ----------------------------------------------------------------------
@_register("VER002", "identity-sanity",
           "instruction ids must be unique; no self/duplicate dependencies")
def _check_identity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    seen_ids: set = set()
    for idx, inst in enumerate(ctx.instructions):
        inst_id = getattr(inst, "inst_id", idx)
        if inst_id in seen_ids:
            yield _diag("VER002", idx, inst,
                        f"duplicate instruction id {inst_id}")
        seen_ids.add(inst_id)
        deps = tuple(getattr(inst, "depends_on", ()))
        if inst_id in deps:
            yield _diag("VER002", idx, inst,
                        f"instruction {inst_id} depends on itself")
        if len(deps) != len(set(deps)):
            yield _diag("VER002", idx, inst,
                        f"instruction {inst_id} lists a dependency twice",
                        Severity.WARNING)


# ----------------------------------------------------------------------
# VER003 - opcode/engine compatibility
# ----------------------------------------------------------------------
@_register("VER003", "opcode-engine-compatibility",
           "payload fields must match the opcode's engine")
def _check_opcode_engine(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for idx, inst in enumerate(ctx.instructions):
        op = getattr(inst, "op", None)
        engine = engine_of(op)
        if engine is None:
            yield _diag("VER003", idx, inst,
                        f"unknown opcode {op!r}: no engine dispatches it")
            continue
        count = getattr(inst, "count", 0)
        data_bytes = getattr(inst, "data_bytes", 0)
        macs = getattr(inst, "macs", 0)
        if engine is Engine.DMA:
            if macs:
                yield _diag("VER003", idx, inst,
                            "DMA instructions carry data_bytes, not MACs")
        elif op is VpuOp.P_ALU:
            if not macs:
                yield _diag("VER003", idx, inst,
                            "P_ALU instruction with no MAC work")
            if count:
                yield _diag("VER003", idx, inst,
                            "P_ALU covers MACs, not ciphertexts")
        else:  # XPU blind-rotate or VPU bootstrap stages
            if not count:
                yield _diag("VER003", idx, inst,
                            f"{engine.value.upper()} compute op covers "
                            f"zero ciphertexts")
            if data_bytes:
                yield _diag("VER003", idx, inst,
                            "compute ops do not carry DMA payloads")
            if macs:
                yield _diag("VER003", idx, inst,
                            "bootstrap-stage ops do not carry MAC work")


# ----------------------------------------------------------------------
# VER004 - buffer capacity
# ----------------------------------------------------------------------
@_register("VER004", "buffer-capacity",
           "batch sizes must fit the resident-stream capacity")
def _check_capacity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    if ctx.config is None or ctx.params is None:
        return
    from ..core.buffers import acc_stream_capacity

    streams = max(1, acc_stream_capacity(ctx.config, ctx.params))
    capacity = streams * ctx.config.bootstrap_cores
    batched = (XpuOp.BLIND_ROTATE, VpuOp.MODULUS_SWITCH,
               VpuOp.SAMPLE_EXTRACT, VpuOp.KEY_SWITCH,
               DmaOp.LOAD_LWE, DmaOp.STORE_LWE)
    for idx, inst in enumerate(ctx.instructions):
        if getattr(inst, "op", None) not in batched:
            continue
        count = getattr(inst, "count", 0)
        if count > capacity:
            yield _diag(
                "VER004", idx, inst,
                f"batch of {count} ciphertexts exceeds the scheduler "
                f"group capacity of {capacity} ({streams} resident "
                f"stream(s) x {ctx.config.bootstrap_cores} bootstrap "
                f"cores): Private-A1/Shared residency would overflow",
            )


# ----------------------------------------------------------------------
# VER005 - stage-order hazards
# ----------------------------------------------------------------------
_STAGE_ORDER = {
    VpuOp.MODULUS_SWITCH: 0,
    XpuOp.BLIND_ROTATE: 1,
    VpuOp.SAMPLE_EXTRACT: 2,
    VpuOp.KEY_SWITCH: 3,
    DmaOp.STORE_LWE: 4,
}
#: op -> the upstream stage it must (transitively) consume (RAW edges).
_RAW_PRODUCER = {
    XpuOp.BLIND_ROTATE: VpuOp.MODULUS_SWITCH,
    VpuOp.SAMPLE_EXTRACT: XpuOp.BLIND_ROTATE,
    VpuOp.KEY_SWITCH: VpuOp.SAMPLE_EXTRACT,
    DmaOp.STORE_LWE: VpuOp.KEY_SWITCH,
}


@_register("VER005", "stage-order-hazard",
           "per-group bootstrap chains must order MS -> BR -> SE -> KS -> STORE")
def _check_stage_order(ctx: VerifyContext) -> Iterator[Diagnostic]:
    last_stage: Dict[int, int] = {}
    for idx, inst in enumerate(ctx.instructions):
        op = getattr(inst, "op", None)
        stage = _STAGE_ORDER.get(op)
        if stage is None:
            continue
        group = getattr(inst, "group", 0)
        prev = last_stage.get(group)
        if prev is not None and stage < prev:
            yield _diag(
                "VER005", idx, inst,
                f"group {group} emits stage {op.value!r} after a later "
                f"stage: the in-order engine queues would deadlock or "
                f"reorder writes (WAR hazard)",
            )
        last_stage[group] = stage
        producer = _RAW_PRODUCER.get(op)
        if producer is None:
            continue
        feeds = False
        for dep in getattr(inst, "depends_on", ()):
            dep_inst = ctx.by_id.get(dep)
            if dep_inst is None:
                continue
            if (getattr(dep_inst, "op", None) is producer
                    and getattr(dep_inst, "group", None) == group):
                feeds = True
                break
        if not feeds:
            yield _diag(
                "VER005", idx, inst,
                f"{op.value!r} in group {group} does not depend on the "
                f"group's {producer.value!r} result (RAW hazard: it "
                f"would read stale buffer contents)",
            )


# ----------------------------------------------------------------------
# VER006 - HBM transfer sanity
# ----------------------------------------------------------------------
@_register("VER006", "hbm-transfer-sanity",
           "DMA payloads must be non-empty, word-aligned and count-consistent")
def _check_transfers(ctx: VerifyContext) -> Iterator[Diagnostic]:
    word = 4  # torus coefficients are 32-bit words on every channel
    if ctx.params is not None:
        word = ctx.params.coeff_bytes
    for idx, inst in enumerate(ctx.instructions):
        op = getattr(inst, "op", None)
        if engine_of(op) is not Engine.DMA:
            continue
        data_bytes = getattr(inst, "data_bytes", 0)
        if data_bytes <= 0:
            yield _diag("VER006", idx, inst,
                        "DMA transfer moves zero bytes")
            continue
        if data_bytes % word:
            yield _diag(
                "VER006", idx, inst,
                f"transfer of {data_bytes} B is not a multiple of the "
                f"{word} B coefficient word",
            )
        if ctx.params is None:
            continue
        if op in (DmaOp.LOAD_LWE, DmaOp.STORE_LWE):
            count = getattr(inst, "count", 0)
            expected = count * ctx.params.lwe_bytes
            if count and data_bytes != expected:
                yield _diag(
                    "VER006", idx, inst,
                    f"LWE transfer of {data_bytes} B does not match "
                    f"{count} ciphertexts x {ctx.params.lwe_bytes} B "
                    f"= {expected} B",
                )
        elif op is DmaOp.LOAD_BSK:
            if data_bytes not in (ctx.params.bsk_transform_bytes,
                                  ctx.params.bsk_bytes):
                yield _diag(
                    "VER006", idx, inst,
                    f"BSK transfer of {data_bytes} B matches neither the "
                    f"transform-domain ({ctx.params.bsk_transform_bytes} B) "
                    f"nor the coefficient-domain ({ctx.params.bsk_bytes} B) "
                    f"key footprint",
                    Severity.WARNING,
                )
        elif op is DmaOp.LOAD_KSK:
            if data_bytes != ctx.params.ksk_bytes:
                yield _diag(
                    "VER006", idx, inst,
                    f"KSK transfer of {data_bytes} B does not match the "
                    f"key footprint of {ctx.params.ksk_bytes} B",
                    Severity.WARNING,
                )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def verify_stream(
    stream: Iterable[object],
    config: Optional[object] = None,
    params: Optional[object] = None,
    passes: Optional[Iterable[str]] = None,
    subject: str = "<stream>",
) -> VerifyReport:
    """Run the pass pipeline over ``stream`` and collect diagnostics.

    ``passes`` optionally restricts the run to a subset of ``VERxxx``
    codes.  The stream may be an :class:`InstructionStream`, a decoded
    binary program, or any list of instruction-shaped objects.
    """
    ctx = VerifyContext(list(stream), config=config, params=params)
    report = VerifyReport(subject=subject)
    wanted = set(passes) if passes is not None else None
    for p in PROGRAM_PASSES:
        if wanted is not None and p.code not in wanted:
            continue
        report.extend(p.run(ctx))
    return report


def verify_or_raise(
    stream: Iterable[object],
    config: Optional[object] = None,
    params: Optional[object] = None,
    subject: str = "<stream>",
) -> VerifyReport:
    """Verify and raise :class:`VerificationError` on any error finding."""
    report = verify_stream(stream, config=config, params=params, subject=subject)
    if not report.ok:
        raise VerificationError(report)
    return report
