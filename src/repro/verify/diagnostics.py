"""Shared diagnostic model for the static-analysis subsystem.

Both heads of :mod:`repro.verify` - the ISA program verifier and the
AST-based domain linter - report findings as :class:`Diagnostic` records
collected into a :class:`VerifyReport`.  A diagnostic carries a stable
rule code (``VERxxx`` for program passes, ``RPRxxx`` for lint rules), a
severity, a human-readable message, and a location: either an
instruction index within a compiled stream or a ``file:line`` position
in source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "VERIFY_SCHEMA_VERSION",
    "Severity",
    "Diagnostic",
    "VerifyReport",
    "VerificationError",
    "RuleInfo",
]

#: Version of the ``repro verify --json`` document shape.  v1 was the
#: unversioned PR-2 layout (``{"ok", "reports": [{subject, ok,
#: diagnostics}]}``); v2 adds this marker plus optional per-report
#: ``occupancy``/``noise_budget`` attachment sections.  Any change to
#: field names or nesting must bump this and regenerate the golden file
#: (``tests/verify/_golden.py``).
VERIFY_SCHEMA_VERSION = 2


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the program/source would mislead the
    simulator or break torus discipline; ``--strict`` fails on them.
    ``WARNING`` findings are suspicious but do not invalidate results.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry describing one verifier pass or lint rule."""

    code: str
    name: str
    summary: str
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.name}: {self.summary}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a verifier pass or lint rule.

    Exactly one of ``instruction_index`` / ``path`` is normally set:
    program diagnostics locate by instruction position and source op,
    lint diagnostics by file and line.
    """

    code: str
    severity: Severity
    message: str
    instruction_index: Optional[int] = None
    op: Optional[str] = None
    path: Optional[str] = None
    line: Optional[int] = None

    @property
    def location(self) -> str:
        if self.path is not None:
            return f"{self.path}:{self.line}" if self.line else self.path
        if self.instruction_index is not None:
            loc = f"inst#{self.instruction_index}"
            return f"{loc} ({self.op})" if self.op else loc
        return "<program>"

    def render(self) -> str:
        return f"{self.location}: {self.severity}: {self.code}: {self.message}"


@dataclass
class VerifyReport:
    """All diagnostics from one verification or lint run.

    ``attachments`` carries optional named analysis artifacts riding
    along with the diagnostics (occupancy proofs, static noise reports):
    any object exposing ``to_jsonable()`` and ``render_text()``.
    """

    subject: str = "<stream>"
    diagnostics: list = field(default_factory=list)
    attachments: dict = field(default_factory=dict)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> list:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No errors (warnings do not invalidate a program)."""
        return not self.errors

    def codes(self) -> set:
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        verdict = "clean" if self.ok else f"{len(self.errors)} error(s)"
        if self.warnings:
            verdict += f", {len(self.warnings)} warning(s)"
        lines.append(f"{self.subject}: {verdict}")
        for attachment in self.attachments.values():
            lines.append(attachment.render_text())
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        doc = {
            "subject": self.subject,
            "ok": self.ok,
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity.value,
                    "message": d.message,
                    "location": d.location,
                }
                for d in self.diagnostics
            ],
        }
        for name, attachment in self.attachments.items():
            doc[name] = attachment.to_jsonable()
        return doc


class VerificationError(ValueError):
    """Raised by verify-on-compile when a program fails verification."""

    def __init__(self, report: VerifyReport):
        self.report = report
        first = report.errors[0] if report.errors else None
        head = first.render() if first else "verification failed"
        more = len(report.errors) - 1
        suffix = f" (+{more} more)" if more > 0 else ""
        super().__init__(f"{head}{suffix}")
