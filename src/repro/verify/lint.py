"""Head 2: AST-based domain lint framework.

Ruff-style pluggable rules (codes ``RPRxxx``, catalog in
:mod:`repro.verify.rules`) enforcing the torus-arithmetic and
transform-usage discipline the Morphling reproduction relies on.  The
framework is intentionally small: a rule is a scope predicate over the
file path plus an AST visitor that yields ``(lineno, message)`` pairs;
the driver parses each file once, runs every in-scope rule, and filters
findings through the inline suppression map
(:mod:`repro.verify.suppressions`).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from .diagnostics import Diagnostic, RuleInfo, Severity, VerifyReport
from .suppressions import collect_suppressions, is_suppressed

__all__ = [
    "LintRule",
    "LINT_RULES",
    "lint_rule",
    "lint_rule_catalog",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "module_scope",
]

CheckFn = Callable[[ast.AST], Iterator[Tuple[int, str]]]
ScopeFn = Callable[["ModuleScope"], bool]


@dataclass(frozen=True)
class ModuleScope:
    """Where a file sits in the package, derived from its path."""

    path: str
    in_tfhe: bool
    in_transforms: bool
    is_torus: bool


def module_scope(path: str) -> ModuleScope:
    norm = os.path.normpath(str(path)).replace(os.sep, "/")
    return ModuleScope(
        path=norm,
        in_tfhe="/tfhe/" in norm or norm.startswith("tfhe/"),
        in_transforms="/transforms/" in norm or norm.startswith("transforms/"),
        is_torus=norm.endswith("tfhe/torus.py"),
    )


@dataclass(frozen=True)
class LintRule:
    """One lint rule: catalog metadata, scope predicate, AST check."""

    info: RuleInfo
    applies: ScopeFn
    check: CheckFn

    @property
    def code(self) -> str:
        return self.info.code


LINT_RULES: List[LintRule] = []


def lint_rule(code: str, name: str, summary: str,
              applies: ScopeFn,
              severity: Severity = Severity.ERROR) -> Callable[[CheckFn], CheckFn]:
    """Register an AST check as a lint rule (decorator)."""
    def deco(fn: CheckFn) -> CheckFn:
        LINT_RULES.append(
            LintRule(RuleInfo(code, name, summary, severity), applies, fn)
        )
        return fn
    return deco


def lint_rule_catalog() -> List[RuleInfo]:
    return [r.info for r in LINT_RULES]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> VerifyReport:
    """Lint one source blob as if it lived at ``path``."""
    from . import rules as _rules  # noqa: F401  (registers LINT_RULES)

    report = VerifyReport(subject=path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add(Diagnostic(
            code="RPR000", severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
            path=path, line=exc.lineno or 0,
        ))
        return report
    scope = module_scope(path)
    suppressed = collect_suppressions(source, tree)
    wanted = set(rules) if rules is not None else None
    for rule in LINT_RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        if not rule.applies(scope):
            continue
        for lineno, message in rule.check(tree):
            if is_suppressed(suppressed, lineno, rule.code):
                continue
            report.add(Diagnostic(
                code=rule.code, severity=rule.info.severity,
                message=message, path=scope.path, line=lineno,
            ))
    return report


def lint_file(path: str, rules: Optional[Iterable[str]] = None) -> VerifyReport:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path=str(path), rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif str(path).endswith(".py"):
            yield str(path)


def lint_paths(paths: Iterable[str], rules: Optional[Iterable[str]] = None) -> VerifyReport:
    """Lint every python file under ``paths`` into one merged report."""
    merged = VerifyReport(subject="lint")
    for path in iter_python_files(paths):
        merged.extend(lint_file(path, rules=rules).diagnostics)
    return merged
