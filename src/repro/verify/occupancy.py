"""VER007: occupancy-over-time proofs via abstract interpretation.

VER004 bounds a single instruction's batch ``count`` against the
resident-stream capacity, but says nothing about *aggregate* pressure:
a stream where every instruction individually fits can still overflow
the Shared buffer when several blind-rotation results are live at once
(their sample-extracts lagging behind the XPU).  This pass symbolically
executes the scheduled program's timeline - the same in-order engine
queues the HW-scheduler uses, with abstract unit durations - and tracks
interval-domain occupancy of the three bootstrap buffers:

- **Shared**: a ``BLIND_ROTATE`` result (``count x glwe_bytes``) is live
  from the rotation's completion until its last consumer (the
  ``SAMPLE_EXTRACT`` per VER005's stage chain) retires.  A result no
  instruction consumes never drains - it stays live to the end of the
  program (a leak the proof makes visible).
- **Private-A1**: the rotating ACC streams pin
  ``count x glwe_bytes x A1_STREAM_OVERHEAD`` (rotation windows, double
  buffering, bank padding - the :mod:`repro.core.buffers` residency
  model) while the ``BLIND_ROTATE`` executes.
- **Private-A2**: the double-buffered transform-domain BSK_i slice for
  every XPU plus the twiddle table is pinned while any rotation runs
  (the BSK itself *streams* through - only the per-iteration slice is
  resident, which is the whole point of the buffer's sizing).

The result is a per-buffer high-water-mark **proof**: the peak
occupancy, when it happens, and which instruction produced the peak.
Because the model is a pure function of the instruction stream and the
architecture - no timing models, no simulation - the same
:class:`OccupancyModel` doubles as the admission-control oracle for a
serving scheduler (:meth:`OccupancyModel.admissible_batch`): the
verifier and the scheduler share one resource model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.isa import DmaOp, Engine, XpuOp, engine_of
from .diagnostics import Diagnostic, Severity
from .program import VerifyContext, register_program_pass

__all__ = [
    "BufferHighWater",
    "OccupancyProof",
    "OccupancyModel",
]

#: Buffers the proof covers, in report order.
_BUFFERS = ("shared", "private_a1", "private_a2")


@dataclass(frozen=True)
class BufferHighWater:
    """Peak occupancy of one buffer over the program's timeline."""

    buffer: str
    capacity_bytes: int
    high_water_bytes: int
    at_step: int
    at_instruction: Optional[int]

    @property
    def ok(self) -> bool:
        return self.high_water_bytes <= self.capacity_bytes

    @property
    def utilization(self) -> float:
        if self.capacity_bytes <= 0:
            return 0.0
        return self.high_water_bytes / self.capacity_bytes

    def to_jsonable(self) -> dict:
        return {
            "buffer": self.buffer,
            "capacity_bytes": self.capacity_bytes,
            "high_water_bytes": self.high_water_bytes,
            "utilization": self.utilization,
            "at_step": self.at_step,
            "at_instruction": self.at_instruction,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class OccupancyProof:
    """High-water marks for every modeled buffer over one stream."""

    subject: str
    steps: int
    buffers: Tuple[BufferHighWater, ...]

    @property
    def ok(self) -> bool:
        return all(b.ok for b in self.buffers)

    def high_water(self, buffer: str) -> Optional[BufferHighWater]:
        for hw in self.buffers:
            if hw.buffer == buffer:
                return hw
        return None

    def to_jsonable(self) -> dict:
        return {
            "subject": self.subject,
            "steps": self.steps,
            "ok": self.ok,
            "buffers": [b.to_jsonable() for b in self.buffers],
        }

    def render_text(self) -> str:
        lines = [f"occupancy proof ({self.subject}, {self.steps} abstract steps):"]
        for hw in self.buffers:
            verdict = "fits" if hw.ok else "OVERFLOW"
            lines.append(
                f"  {hw.buffer:10s} peak {hw.high_water_bytes:>12,} B of "
                f"{hw.capacity_bytes:>12,} B ({hw.utilization:.0%}) "
                f"at step {hw.at_step}: {verdict}"
            )
        return "\n".join(lines)


class OccupancyModel:
    """Interval-domain buffer occupancy over a scheduled ISA stream.

    The timeline is an abstract list schedule: the same engine queues as
    :class:`repro.core.scheduler.HwScheduler` (XPU pool, per-lane-group
    VPUs, the two DMA channel groups), in-order per queue, every
    instruction one abstract step.  Real durations only shift when peaks
    happen, not whether producers and consumers can overlap - the
    high-water mark over the abstract timeline bounds what the in-order
    queues can keep live simultaneously.
    """

    def __init__(self, config: object, params: object) -> None:
        from ..core.buffers import A1_STREAM_OVERHEAD

        self.config = config
        self.params = params
        glwe = int(getattr(params, "glwe_bytes"))
        self.shared_per_ct = glwe
        self.a1_per_ct = glwe * A1_STREAM_OVERHEAD
        # Per-iteration BSK slice, double buffered per XPU, plus twiddles
        # (the Private-A2 budget from repro.core.buffers.buffer_budget).
        bsk_slice = (int(getattr(params, "polynomials_per_ggsw"))
                     * int(getattr(params, "N"))
                     * int(getattr(params, "coeff_bytes")))
        self.a2_resident = (int(getattr(config, "num_xpus")) * 2 * bsk_slice
                            + int(getattr(params, "N")) * 8)
        self.capacities = {
            "shared": int(getattr(config, "shared_bytes")),
            "private_a1": int(getattr(config, "private_a1_bytes")),
            "private_a2": int(getattr(config, "private_a2_bytes")),
        }

    # -- abstract timeline ---------------------------------------------
    def _engine_key(self, inst: object) -> str:
        op = getattr(inst, "op", None)
        engine = engine_of(op)
        if engine is Engine.DMA:
            return "dma_xpu" if op is DmaOp.LOAD_BSK else "dma_vpu"
        if engine is Engine.VPU:
            lane_groups = max(1, int(getattr(self.config, "vpu_lane_groups", 1)))
            return f"vpu{int(getattr(inst, 'group', 0)) % lane_groups}"
        return "xpu"

    def _abstract_schedule(
        self, instructions: Sequence[object]
    ) -> Tuple[List[int], List[int], Dict[object, int]]:
        """Unit-duration list schedule; returns (start, end, finish-by-id)."""
        ready: Dict[str, int] = {}
        finish: Dict[object, int] = {}
        start: List[int] = []
        end: List[int] = []
        for idx, inst in enumerate(instructions):
            key = self._engine_key(inst)
            deps_done = max(
                (finish.get(d, 0) for d in getattr(inst, "depends_on", ())),
                default=0,
            )
            s = max(ready.get(key, 0), deps_done)
            e = s + 1
            ready[key] = e
            finish[getattr(inst, "inst_id", idx)] = e
            start.append(s)
            end.append(e)
        return start, end, finish

    # -- liveness intervals --------------------------------------------
    def _intervals(
        self, instructions: Sequence[object],
        start: List[int], end: List[int],
    ) -> Dict[str, List[Tuple[int, int, int, int]]]:
        """Per-buffer ``(from, to, bytes, producer index)`` live ranges."""
        consumers: Dict[object, List[int]] = {}
        for idx, inst in enumerate(instructions):
            for dep in getattr(inst, "depends_on", ()):
                consumers.setdefault(dep, []).append(idx)
        horizon = (max(end) if end else 0) + 1
        intervals: Dict[str, List[Tuple[int, int, int, int]]] = {
            b: [] for b in _BUFFERS
        }
        for idx, inst in enumerate(instructions):
            if getattr(inst, "op", None) is not XpuOp.BLIND_ROTATE:
                continue
            count = int(getattr(inst, "count", 0))
            inst_id = getattr(inst, "inst_id", idx)
            # ACC streams + the resident BSK slice live while rotating.
            intervals["private_a1"].append(
                (start[idx], end[idx], count * self.a1_per_ct, idx)
            )
            intervals["private_a2"].append(
                (start[idx], end[idx], self.a2_resident, idx)
            )
            # The rotation result sits in Shared until its last consumer
            # (the SE per VER005) retires; unconsumed results leak to the
            # end of the program.
            drained = max(
                (end[c] for c in consumers.get(inst_id, ())), default=horizon
            )
            intervals["shared"].append(
                (end[idx], max(drained, end[idx] + 1), count * self.shared_per_ct, idx)
            )
        return intervals

    # -- the proof ------------------------------------------------------
    def analyze(
        self, instructions: Sequence[object], subject: str = "<stream>"
    ) -> OccupancyProof:
        """High-water-mark proof for ``instructions``."""
        insts = list(instructions)
        start, end, _finish = self._abstract_schedule(insts)
        intervals = self._intervals(insts, start, end)
        marks: List[BufferHighWater] = []
        for buffer in _BUFFERS:
            # Sweep allocation/release events in time order; releases
            # sort before allocations at equal timestamps (the intervals
            # are half-open, so a consumer retiring at t frees its bytes
            # before anything allocated at t lands).
            events: List[Tuple[int, int, int]] = []
            for t_from, t_to, nbytes, idx in intervals[buffer]:
                if nbytes <= 0:
                    continue
                events.append((t_from, nbytes, idx))
                events.append((t_to, -nbytes, idx))
            level = 0
            peak = 0
            peak_step = 0
            peak_idx: Optional[int] = None
            for t, delta, idx in sorted(events, key=lambda e: (e[0], e[1])):
                level += delta
                if level > peak:
                    peak = level
                    peak_step = t
                    peak_idx = idx
            marks.append(BufferHighWater(
                buffer=buffer,
                capacity_bytes=self.capacities[buffer],
                high_water_bytes=peak,
                at_step=peak_step,
                at_instruction=peak_idx,
            ))
        steps = max(end) if end else 0
        return OccupancyProof(subject=subject, steps=steps, buffers=tuple(marks))

    # -- admission control ---------------------------------------------
    def fits_batch(self, count: int) -> bool:
        """Can one group of ``count`` ciphertexts run without overflow?

        Steady state keeps two rotation results in Shared (the producing
        group plus the one draining - exactly the double buffering the
        capacity formula provisions) and one group's ACC streams in
        Private-A1.
        """
        if count <= 0:
            return False
        return (
            2 * count * self.shared_per_ct <= self.capacities["shared"]
            and count * self.a1_per_ct <= self.capacities["private_a1"]
            and self.a2_resident <= self.capacities["private_a2"]
        )

    def admissible_batch(self) -> int:
        """Largest per-group ciphertext count every buffer can sustain.

        The serving scheduler's admission bound: work beyond this must
        queue rather than be scheduled, or the stream it compiles into
        would fail its own occupancy proof.
        """
        if self.a2_resident > self.capacities["private_a2"]:
            return 0
        if self.shared_per_ct <= 0 or self.a1_per_ct <= 0:
            return 0
        return min(
            self.capacities["shared"] // (2 * self.shared_per_ct),
            self.capacities["private_a1"] // self.a1_per_ct,
        )


# ----------------------------------------------------------------------
# VER007 - occupancy-over-time
# ----------------------------------------------------------------------
@register_program_pass(
    "VER007", "occupancy-over-time",
    "aggregate buffer occupancy over the scheduled timeline must fit "
    "Shared/Private capacities (liveness of results vs consumers)",
)
def _check_occupancy(ctx: VerifyContext) -> Iterator[Diagnostic]:
    if ctx.config is None or ctx.params is None:
        return
    proof = OccupancyModel(ctx.config, ctx.params).analyze(ctx.instructions)
    for hw in proof.buffers:
        if hw.ok:
            continue
        inst = (ctx.instructions[hw.at_instruction]
                if hw.at_instruction is not None else None)
        op = getattr(inst, "op", None)
        yield Diagnostic(
            code="VER007", severity=Severity.ERROR,
            message=(
                f"{hw.buffer} high-water mark of {hw.high_water_bytes:,} B "
                f"exceeds the {hw.capacity_bytes:,} B capacity at abstract "
                f"step {hw.at_step}: too many live results between "
                f"producers and their consumers (per-instruction batches "
                f"fit, the aggregate does not)"
            ),
            instruction_index=hw.at_instruction,
            op=getattr(op, "value", str(op)) if op is not None else None,
        )
