"""Static program verifier + domain lint framework (``repro.verify``).

Two heads, one diagnostic model:

- the **program verifier** (:mod:`repro.verify.program`) statically
  checks compiled :mod:`repro.core.isa` instruction streams before the
  HW-scheduler timing model executes them - def-before-use operands,
  buffer-capacity fits, opcode/engine compatibility, RAW/WAR stage
  ordering, HBM transfer sanity (codes ``VER001``-``VER006``), plus the
  abstract-interpretation analyses: occupancy-over-time proofs
  (``VER007``, :mod:`repro.verify.occupancy`) and static noise-budget
  bounds (``VER008``, :mod:`repro.verify.noisepass`);
- the **domain linter** (:mod:`repro.verify.lint` +
  :mod:`repro.verify.rules`) enforces torus-arithmetic and
  transform-usage discipline over the source tree with pluggable
  AST rules (codes ``RPR001``-``RPR006``), an alias-aware
  reaching-definitions pass (:mod:`repro.verify.dataflow`) so the
  numpy rules survive ``import numpy as xp``, and ruff-style inline
  suppressions (``# repro: allow[RPR002] why``).

Both run from the CLI (``repro verify``, ``repro verify --lint src``)
and in CI with ``--strict``; the compiler runs the program verifier on
every compile unless asked not to (``verify=False``).
"""

from .diagnostics import (
    VERIFY_SCHEMA_VERSION,
    Diagnostic,
    RuleInfo,
    Severity,
    VerificationError,
    VerifyReport,
)
from .lint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    lint_rule_catalog,
    lint_source,
)
from .program import (
    PROGRAM_PASSES,
    program_rule_catalog,
    register_program_pass,
    verify_or_raise,
    verify_stream,
)
# Import order is catalog order: VER007 then VER008 register after the
# structural VER001-VER006 passes above.
from .occupancy import OccupancyModel, OccupancyProof
from .noisepass import StaticNoiseReport, static_noise_report
from .dataflow import QualifiedUse, resolve_qualified_uses
from . import rules as _rules  # noqa: F401  (registers the lint rules)

__all__ = [
    "VERIFY_SCHEMA_VERSION",
    "Severity",
    "Diagnostic",
    "RuleInfo",
    "VerifyReport",
    "VerificationError",
    "verify_stream",
    "verify_or_raise",
    "PROGRAM_PASSES",
    "register_program_pass",
    "program_rule_catalog",
    "OccupancyModel",
    "OccupancyProof",
    "StaticNoiseReport",
    "static_noise_report",
    "QualifiedUse",
    "resolve_qualified_uses",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_rule_catalog",
    "LINT_RULES",
]
