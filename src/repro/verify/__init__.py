"""Static program verifier + domain lint framework (``repro.verify``).

Two heads, one diagnostic model:

- the **program verifier** (:mod:`repro.verify.program`) statically
  checks compiled :mod:`repro.core.isa` instruction streams before the
  HW-scheduler timing model executes them - def-before-use operands,
  buffer-capacity fits, opcode/engine compatibility, RAW/WAR stage
  ordering, HBM transfer sanity (codes ``VER001``-``VER006``);
- the **domain linter** (:mod:`repro.verify.lint` +
  :mod:`repro.verify.rules`) enforces torus-arithmetic and
  transform-usage discipline over the source tree with pluggable
  AST rules (codes ``RPR001``-``RPR005``) and ruff-style inline
  suppressions (``# repro: allow[RPR002] why``).

Both run from the CLI (``repro verify``, ``repro verify --lint src``)
and in CI with ``--strict``; the compiler runs the program verifier on
every compile unless asked not to (``verify=False``).
"""

from .diagnostics import (
    Diagnostic,
    RuleInfo,
    Severity,
    VerificationError,
    VerifyReport,
)
from .lint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    lint_rule_catalog,
    lint_source,
)
from .program import (
    PROGRAM_PASSES,
    program_rule_catalog,
    verify_or_raise,
    verify_stream,
)
from . import rules as _rules  # noqa: F401  (registers the lint rules)

__all__ = [
    "Severity",
    "Diagnostic",
    "RuleInfo",
    "VerifyReport",
    "VerificationError",
    "verify_stream",
    "verify_or_raise",
    "PROGRAM_PASSES",
    "program_rule_catalog",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_rule_catalog",
    "LINT_RULES",
]
