"""Lint rule catalog: torus-discipline and transform-usage rules.

Every rule flags a construct that historically breaks TFHE fixed-point
reproductions (FPT and MATCHA both call this class of bug out): torus
numerators silently leaving exact mod-2^32 arithmetic, precision-losing
dtypes, or transform code bypassing the instrumented, tested wrappers in
:mod:`repro.transforms`.

Scopes
------
``RPR001``/``RPR002`` apply to ``repro/tfhe`` outside ``torus.py`` (the
one module allowed to spell out raw reductions - it *defines* the
discipline).  ``RPR003`` applies to all tfhe modules.  ``RPR004``
applies everywhere except ``repro/transforms`` (which implements its own
FFT precisely so nothing else imports ``numpy.fft``).  ``RPR005``
applies package-wide.  ``RPR006`` shares RPR001's scope: ``torus.py``
owns the rounding conventions, so truncating divisions elsewhere are
suspect.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .dataflow import resolve_qualified_uses
from .diagnostics import Severity
from .lint import ModuleScope, lint_rule

__all__ = ["NARROW_DTYPES", "FLOAT_DTYPES", "LEGACY_RNG_FUNCS"]

_NUMPY_NAMES = ("np", "numpy")

FLOAT_DTYPES = ("float64", "float32", "float16")
NARROW_DTYPES = ("float32", "float16", "int8", "uint8", "int16", "uint16")
LEGACY_RNG_FUNCS = (
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform",
    "binomial", "poisson", "exponential",
)

_Q = 1 << 32
_MASK = _Q - 1


def _is_numpy(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in _NUMPY_NAMES


def _numpy_attr(node: ast.AST) -> str:
    """``'x'`` when ``node`` is ``np.x``/``numpy.x``, else ``''``."""
    if isinstance(node, ast.Attribute) and _is_numpy(node.value):
        return node.attr
    return ""


def _const_value(node: ast.AST):
    """Fold the handful of constant spellings of q/masks: ``2**32``,
    ``1 << 32``, ``0x100000000``, ``0xFFFFFFFF``, optionally wrapped in a
    ``np.uint32``/``np.uint64`` cast."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.BinOp):
        left = _const_value(node.left)
        right = _const_value(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.LShift):
            return left << right
        if isinstance(node.op, ast.Pow):
            return left ** right
        if isinstance(node.op, ast.Sub):
            return left - right
        return None
    if (isinstance(node, ast.Call) and not node.keywords
            and len(node.args) == 1
            and _numpy_attr(node.func) in ("uint32", "uint64", "int64")):
        return _const_value(node.args[0])
    return None


# ----------------------------------------------------------------------
# RPR001 - raw mod-2^32 reduction outside repro.tfhe.torus
# ----------------------------------------------------------------------
@lint_rule(
    "RPR001", "raw-torus-reduction",
    "raw `% 2**32` / `& 0xFFFFFFFF` outside repro.tfhe.torus; use "
    "to_torus/torus_dot so the reduction convention stays centralized",
    applies=lambda s: s.in_tfhe and not s.is_torus,
)
def _raw_reduction(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.BinOp):
            continue
        if isinstance(node.op, ast.Mod) and _const_value(node.right) == _Q:
            yield (node.lineno,
                   "raw modulo-2**32 reduction; use repro.tfhe.torus.to_torus")
        elif isinstance(node.op, ast.BitAnd) and _MASK in (
                _const_value(node.left), _const_value(node.right)):
            yield (node.lineno,
                   "raw & 0xFFFFFFFF mask; use repro.tfhe.torus helpers "
                   "(to_torus / torus_dot / torus_scalar_mul)")


# ----------------------------------------------------------------------
# RPR002 - float conversion of torus data outside repro.tfhe.torus
# ----------------------------------------------------------------------
@lint_rule(
    "RPR002", "float-escape",
    ".astype(float) on torus arrays outside repro.tfhe.torus; floats "
    "lose the exact mod-2**32 discipline - use to_double or justify the "
    "transform boundary with a suppression",
    applies=lambda s: s.in_tfhe and not s.is_torus,
)
def _float_escape(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args):
            continue
        arg = node.args[0]
        is_float = (
            (isinstance(arg, ast.Name) and arg.id == "float")
            or _numpy_attr(arg) in FLOAT_DTYPES
        )
        if is_float:
            yield (node.lineno,
                   "float conversion of a torus-typed array; route through "
                   "repro.tfhe.torus.to_double or suppress at a declared "
                   "transform boundary")


# ----------------------------------------------------------------------
# RPR003 - precision-losing dtype literal in tfhe modules
# ----------------------------------------------------------------------
@lint_rule(
    "RPR003", "narrow-dtype",
    "narrow dtype literal (float32/float16/int8/...) in a tfhe module; "
    "torus numerators need full uint32/uint64 (or int64 intermediary) width",
    applies=lambda s: s.in_tfhe,
)
def _narrow_dtype(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        attr = _numpy_attr(node)
        if attr in NARROW_DTYPES:
            yield (node.lineno,
                   f"np.{attr} cannot hold 32-bit torus numerators exactly")


# ----------------------------------------------------------------------
# RPR004 - numpy.fft bypassing repro.transforms
# ----------------------------------------------------------------------
@lint_rule(
    "RPR004", "direct-numpy-fft",
    "direct numpy.fft usage outside repro.transforms; use the "
    "negacyclic/merge-split wrappers so transform counts stay observable "
    "(alias-aware: survives `import numpy as xp` and rebinding)",
    applies=lambda s: not s.in_transforms,
)
def _direct_fft(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "numpy.fft" or module.startswith("numpy.fft."):
                yield (node.lineno, "import from numpy.fft; use repro.transforms")
            elif module == "numpy" and any(a.name == "fft" for a in node.names):
                yield (node.lineno, "import of numpy's fft; use repro.transforms")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if (alias.name == "numpy.fft"
                        or alias.name.startswith("numpy.fft.")):
                    yield (node.lineno,
                           "import of numpy.fft; use repro.transforms")
    for use in resolve_qualified_uses(tree):
        # Strict children only: holding a reference to the module
        # (`F = np.fft`) is fine until a transform is actually called.
        if use.path.startswith("numpy.fft."):
            alias_note = ("" if use.spelled == use.path.replace("numpy", "np", 1)
                          or use.spelled == use.path
                          else f" (= {use.path})")
            yield (use.lineno,
                   f"{use.spelled}{alias_note} bypasses repro.transforms "
                   f"(the instrumented negacyclic FFT)")


# ----------------------------------------------------------------------
# RPR005 - legacy global numpy RNG
# ----------------------------------------------------------------------
@lint_rule(
    "RPR005", "global-rng",
    "legacy np.random.* global-state call; experiments must stay "
    "reproducible - thread a seeded np.random.Generator instead "
    "(alias-aware: survives `import numpy as xp` and rebinding)",
    applies=lambda s: True,
    severity=Severity.WARNING,
)
def _global_rng(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for use in resolve_qualified_uses(tree):
        if not use.is_call or not use.path.startswith("numpy.random."):
            continue
        func = use.path[len("numpy.random."):]
        if func in LEGACY_RNG_FUNCS:
            yield (use.lineno,
                   f"{use.spelled}() draws from hidden global state; use "
                   f"np.random.default_rng(seed)")


# ----------------------------------------------------------------------
# RPR006 - unchecked int() truncation of a torus division
# ----------------------------------------------------------------------
#: Calls whose results are already correctly rounded: wrapping a division
#: in one of these before ``int()`` is the sanctioned pattern.
ROUNDING_FUNCS = (
    "round", "floor", "ceil", "rint",
    "modswitch", "decode_message", "round_to_multiple",
)


def _is_rounding_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ROUNDING_FUNCS
    if isinstance(func, ast.Attribute):
        return func.attr in ROUNDING_FUNCS
    return False


def _has_bare_division(node: ast.AST) -> bool:
    """True when the subtree contains a ``/`` not guarded by a rounding call.

    Floor division (``//``) stays exact in integer arithmetic and the
    half-step-offset idiom ``(t + s // 2) // s`` is the *correct* decode
    spelling, so only true division counts.
    """
    if _is_rounding_call(node):
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    return any(_has_bare_division(child) for child in ast.iter_child_nodes(node))


@lint_rule(
    "RPR006", "int-truncation",
    "int() around a bare `/` division truncates toward zero instead of "
    "rounding to nearest - the classic off-by-half-step decode bug; wrap "
    "the division in round()/np.rint() or use the repro.tfhe.torus "
    "helpers (modswitch, decode_message, round_to_multiple)",
    applies=lambda s: s.in_tfhe and not s.is_torus,
)
def _int_truncation(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "int"
                and len(node.args) == 1
                and not node.keywords
                and _has_bare_division(node.args[0])):
            yield (node.lineno,
                   "int() truncation of a true division; torus decoding "
                   "must round to nearest (round(), np.rint, or a "
                   "repro.tfhe.torus helper)")
