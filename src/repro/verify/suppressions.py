"""Inline suppression comments for the domain linter.

A finding can be acknowledged in source with::

    x = raw_thing()  # repro: allow[RPR001] reason the pattern is safe

The marker suppresses the named code(s) on its own line.  A comment-only
line suppresses the next code line instead, for statements too long to
carry a trailing comment::

    # repro: allow[RPR002] FFT boundary: floats leave the torus here
    spectrum = negacyclic_fft(digits.astype(np.float64))

Multiple codes separate with commas: ``# repro: allow[RPR001,RPR004]``.
Suppressions are deliberately line-scoped - there is no file- or
block-level escape hatch - so every exemption sits next to the code it
excuses, with its one-line justification.
"""

from __future__ import annotations

import re
from typing import Dict, Set

__all__ = ["SUPPRESS_RE", "collect_suppressions", "is_suppressed"]

SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> set of suppressed rule codes."""
    suppressed: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        codes = (
            {c.strip() for c in match.group(1).split(",") if c.strip()}
            if match else set()
        )
        stripped = line.strip()
        if not stripped:
            continue  # blank lines do not consume a pending suppression
        if stripped.startswith("#"):
            # Comment-only line: carry the suppression to the next code line.
            pending |= codes
            continue
        if codes or pending:
            suppressed.setdefault(lineno, set()).update(codes | pending)
        pending = set()
    return suppressed


def is_suppressed(suppressed: Dict[int, Set[str]], lineno: int, code: str) -> bool:
    return code in suppressed.get(lineno, ())
