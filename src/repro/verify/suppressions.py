"""Inline suppression comments for the domain linter.

A finding can be acknowledged in source with::

    x = raw_thing()  # repro: allow[RPR001] reason the pattern is safe

The marker suppresses the named code(s) on its own line.  A comment-only
line suppresses the next code line instead, for statements too long to
carry a trailing comment::

    # repro: allow[RPR002] FFT boundary: floats leave the torus here
    spectrum = negacyclic_fft(digits.astype(np.float64))

Multiple codes separate with commas: ``# repro: allow[RPR001,RPR004]``.
Suppressions are deliberately *statement*-scoped - there is no file- or
block-level escape hatch - so every exemption sits next to the code it
excuses, with its one-line justification.  A marker anywhere within a
multi-line simple statement (a call spanning several lines, a wrapped
expression) covers the statement's whole line range when the caller
passes the parsed tree; compound statements (``if``/``for``/``def``/...)
are deliberately *not* expanded - suppressing a header must never
silence the block under it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Optional, Set

__all__ = ["SUPPRESS_RE", "collect_suppressions", "is_suppressed"]

SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")

#: Statements whose bodies must never inherit a header suppression.
_COMPOUND_STMTS = (
    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)


def collect_suppressions(
    source: str, tree: Optional[ast.AST] = None
) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> set of suppressed rule codes.

    With ``tree`` (the parsed module), markers on any line of a
    multi-line *simple* statement are expanded over the statement's
    full ``lineno..end_lineno`` range, so a finding reported at the
    first line of a wrapped call is covered by a trailing comment on
    its closing parenthesis (and vice versa).
    """
    suppressed: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        codes = (
            {c.strip() for c in match.group(1).split(",") if c.strip()}
            if match else set()
        )
        stripped = line.strip()
        if not stripped:
            continue  # blank lines do not consume a pending suppression
        if stripped.startswith("#"):
            # Comment-only line: carry the suppression to the next code line.
            pending |= codes
            continue
        if codes or pending:
            suppressed.setdefault(lineno, set()).update(codes | pending)
        pending = set()
    if tree is not None and suppressed:
        _expand_statement_spans(suppressed, tree)
    return suppressed


def _expand_statement_spans(
    suppressed: Dict[int, Set[str]], tree: ast.AST
) -> None:
    """Spread each simple statement's codes over its full line range."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or isinstance(node, _COMPOUND_STMTS):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if end <= node.lineno:
            continue
        span = range(node.lineno, end + 1)
        codes: Set[str] = set()
        for lineno in span:
            codes |= suppressed.get(lineno, set())
        if not codes:
            continue
        for lineno in span:
            suppressed.setdefault(lineno, set()).update(codes)


def is_suppressed(suppressed: Dict[int, Set[str]], lineno: int, code: str) -> bool:
    return code in suppressed.get(lineno, ())
