"""Published reference points for Table V.

The paper compares Morphling against published numbers for CPU, GPU,
FPGA, and ASIC systems; it does not re-run them.  We embed the same rows
(platform, parameter set, latency, throughput, and - for ASICs - area and
power) so the Table V bench can print the identical comparison and
compute the speedup factors.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReferencePoint", "TABLE_V_REFERENCES", "references_for", "speedup_range"]


@dataclass(frozen=True)
class ReferencePoint:
    """One published row of Table V."""

    system: str
    platform: str
    param_set: str
    latency_ms: float
    throughput_bs: float
    area_mm2: float = None
    power_w: float = None
    reuse_class: str = None  # how the paper classifies its transform reuse


TABLE_V_REFERENCES = [
    ReferencePoint("Concrete", "CPU", "I", 15.65, 63),
    ReferencePoint("Concrete", "CPU", "II", 27.26, 36),
    ReferencePoint("Concrete", "CPU", "III", 82.19, 12),
    ReferencePoint("NuFHE", "GPU", "I", 240.00, 2500),
    ReferencePoint("NuFHE", "GPU", "II", 420.00, 550),
    ReferencePoint("cuda TFHE", "GPU", "IV", 66.00, 1786),
    ReferencePoint("XHEC", "FPGA", "I", 1.15, 4000),
    ReferencePoint("XHEC", "FPGA", "II", 1.65, 2800),
    ReferencePoint("MATCHA", "ASIC (16 nm)", "I", 0.20, 10000,
                   area_mm2=36.96, power_w=39.98, reuse_class="no-reuse"),
    ReferencePoint("Strix", "ASIC (28 nm)", "I", 0.16, 74696,
                   area_mm2=141.37, power_w=77.14, reuse_class="input-reuse"),
    ReferencePoint("Strix", "ASIC (28 nm)", "II", 0.23, 39600,
                   area_mm2=141.37, power_w=77.14, reuse_class="input-reuse"),
    ReferencePoint("Strix", "ASIC (28 nm)", "III", 0.44, 21104,
                   area_mm2=141.37, power_w=77.14, reuse_class="input-reuse"),
]

#: The paper's own Morphling rows, for regression comparison.
TABLE_V_MORPHLING_PAPER = {
    "I": ReferencePoint("Morphling", "ASIC (28 nm)", "I", 0.11, 147615,
                        area_mm2=74.79, power_w=53.00, reuse_class="input+output-reuse"),
    "II": ReferencePoint("Morphling", "ASIC (28 nm)", "II", 0.20, 78692,
                         area_mm2=74.79, power_w=53.00, reuse_class="input+output-reuse"),
    "III": ReferencePoint("Morphling", "ASIC (28 nm)", "III", 0.38, 41850,
                          area_mm2=74.79, power_w=53.00, reuse_class="input+output-reuse"),
    "IV": ReferencePoint("Morphling", "ASIC (28 nm)", "IV", 0.16, 98933,
                         area_mm2=74.79, power_w=53.00, reuse_class="input+output-reuse"),
}


def references_for(system: str) -> list:
    """All published rows of one system."""
    rows = [r for r in TABLE_V_REFERENCES if r.system == system]
    if not rows:
        known = sorted({r.system for r in TABLE_V_REFERENCES})
        raise KeyError(f"unknown system {system!r}; known: {known}")
    return rows


def speedup_range(morphling_throughput: dict, system: str) -> tuple:
    """(min, max) throughput speedup of Morphling over ``system``.

    ``morphling_throughput`` maps parameter-set name -> simulated BS/s;
    only sets the reference system also reports are compared (this is
    how the paper derives e.g. '2145-3439x over Concrete').
    """
    ratios = [
        morphling_throughput[r.param_set] / r.throughput_bs
        for r in references_for(system)
        if r.param_set in morphling_throughput
    ]
    if not ratios:
        raise ValueError(f"no overlapping parameter sets with {system}")
    return min(ratios), max(ratios)
