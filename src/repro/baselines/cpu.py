"""Concrete-style CPU cost model, calibrated to the paper's Table V rows.

The paper measures Concrete on a 64-core Xeon Gold 6226R.  Our model
charges:

- ``FFT_NS_PER_UNIT`` nanoseconds per FFT "unit" (one butterfly-level
  multiply slot: a transform of size N costs ``(N/2) * log2(N/2)``
  units), with a ``WIDE_WORD_FACTOR`` penalty for the 64-bit arithmetic
  the N>=2048 sets use;
- Concrete accumulates external products in the Fourier domain, so a
  bootstrap pays ``n * ((k+1)*l_b + (k+1))`` transforms;
- key switching at the effective memory bandwidth ``KS_BYTES_PER_S``
  (the paper observes KS time is dominated by streaming the KSK).

Calibration (set I pins the FFT constant, set III the wide-word factor)
reproduces Concrete's published latencies within ~8 % on all three rows
and the Fig. 1 CPU time breakdown (BR 37.7 ms / KS 6.4 ms) within ~10 %.
Application workloads run on all 64 cores at ``PARALLEL_EFFICIENCY``,
calibrated against Table VI's XG-Boost row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..params import TFHEParams

__all__ = ["CpuCostModel", "CpuBootstrapTime"]

FFT_NS_PER_UNIT = 1.02
WIDE_WORD_FACTOR = 1.47
WIDE_WORD_THRESHOLD = 2048
KS_BYTES_PER_S = 5.3e9
CORES = 64
PARALLEL_EFFICIENCY = 0.38


@dataclass(frozen=True)
class CpuBootstrapTime:
    """Single-core bootstrap time split into its stages (seconds)."""

    blind_rotation_s: float
    key_switch_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return self.blind_rotation_s + self.key_switch_s + self.other_s


class CpuCostModel:
    """Concrete-on-Xeon latency and throughput estimates."""

    def __init__(
        self,
        fft_ns_per_unit: float = FFT_NS_PER_UNIT,
        wide_word_factor: float = WIDE_WORD_FACTOR,
        ks_bytes_per_s: float = KS_BYTES_PER_S,
        cores: int = CORES,
        parallel_efficiency: float = PARALLEL_EFFICIENCY,
    ):
        if min(fft_ns_per_unit, wide_word_factor, ks_bytes_per_s) <= 0:
            raise ValueError("calibration constants must be positive")
        if cores < 1 or not 0 < parallel_efficiency <= 1:
            raise ValueError("invalid parallel execution parameters")
        self.fft_ns_per_unit = fft_ns_per_unit
        self.wide_word_factor = wide_word_factor
        self.ks_bytes_per_s = ks_bytes_per_s
        self.cores = cores
        self.parallel_efficiency = parallel_efficiency

    # ------------------------------------------------------------------
    def _transform_units(self, N: int) -> float:
        # One unit per butterfly input slot: points * log2(points); the
        # twist pass and cache effects are folded into FFT_NS_PER_UNIT.
        points = N // 2
        return points * math.log2(points)

    def bootstrap_time(self, params: TFHEParams) -> CpuBootstrapTime:
        """Single-core time of one programmable bootstrap."""
        p = params
        transforms = p.n * ((p.k + 1) * p.l_b + (p.k + 1))
        wide = self.wide_word_factor if p.N >= WIDE_WORD_THRESHOLD else 1.0
        br = transforms * self._transform_units(p.N) * self.fft_ns_per_unit * 1e-9 * wide
        ks = p.ksk_bytes / self.ks_bytes_per_s
        other = (p.n + 1 + p.k * p.N) * 1e-9  # MS + SE, negligible by design
        return CpuBootstrapTime(blind_rotation_s=br, key_switch_s=ks, other_s=other)

    def bootstrap_seconds(self, params: TFHEParams) -> float:
        return self.bootstrap_time(params).total_s

    def throughput_bs(self, params: TFHEParams) -> float:
        """Single-core bootstraps/second (the Table V 'Concrete' rows)."""
        return 1.0 / self.bootstrap_seconds(params)

    # ------------------------------------------------------------------
    def effective_parallel_cores(self) -> float:
        return self.cores * self.parallel_efficiency

    def workload_seconds(self, params: TFHEParams, bootstraps: int, linear_macs: int = 0) -> float:
        """Wall time of an application workload on all cores.

        Bootstraps dominate; linear algebra runs at an optimistic
        aggregate 100 GMAC/s (it never matters at these ratios).
        """
        if bootstraps < 0 or linear_macs < 0:
            raise ValueError("workload sizes must be non-negative")
        pbs = bootstraps * self.bootstrap_seconds(params) / self.effective_parallel_cores()
        linear = linear_macs / 100e9
        return pbs + linear
