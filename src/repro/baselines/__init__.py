"""Baselines: calibrated CPU model, published reference rows, and
prior-accelerator-style simulator configurations."""

from .accelerators import (
    equal_resource_variants,
    matcha_like,
    morphling_config,
    strix_like,
)
from .cpu import CpuBootstrapTime, CpuCostModel
from .reference import (
    TABLE_V_MORPHLING_PAPER,
    TABLE_V_REFERENCES,
    ReferencePoint,
    references_for,
    speedup_range,
)

__all__ = [
    "CpuCostModel",
    "CpuBootstrapTime",
    "ReferencePoint",
    "TABLE_V_REFERENCES",
    "TABLE_V_MORPHLING_PAPER",
    "references_for",
    "speedup_range",
    "matcha_like",
    "strix_like",
    "morphling_config",
    "equal_resource_variants",
]
