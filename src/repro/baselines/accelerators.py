"""Prior-accelerator-style configurations expressed in our simulator.

MATCHA and Strix differ from Morphling (for the Fig. 7-b study) chiefly
in how much transform-domain reuse their datapaths capture: MATCHA is the
No-Reuse class and Strix the Input-Reuse class, both optimized for k=1.
The equal-resource variants here keep Morphling's unit counts and memory
system and change only the reuse class (and merge-split availability), so
throughput differences isolate the paper's contribution.
"""

from __future__ import annotations

from ..core.accelerator import MorphlingConfig
from ..core.reuse import ReuseType

__all__ = [
    "matcha_like",
    "strix_like",
    "morphling_config",
    "equal_resource_variants",
]


def morphling_config(**overrides) -> MorphlingConfig:
    """Morphling: input+output reuse, merge-split FFT."""
    return MorphlingConfig.morphling(**overrides)


def matcha_like(**overrides) -> MorphlingConfig:
    """No-Reuse class with Morphling's resources (MATCHA-style datapath)."""
    return MorphlingConfig.no_reuse(**overrides)


def strix_like(**overrides) -> MorphlingConfig:
    """Input-Reuse class with Morphling's resources (Strix-style datapath)."""
    return MorphlingConfig.input_reuse(**overrides)


def equal_resource_variants(**overrides) -> dict:
    """The Fig. 7-b ladder: same resources, increasing reuse, then +MS-FFT.

    Returns an ordered mapping; ``morphling+ms`` is the shipped design.
    """
    return {
        "no-reuse": matcha_like(**overrides),
        "input-reuse": strix_like(**overrides),
        "input+output-reuse": MorphlingConfig(
            name="input+output-reuse", reuse=ReuseType.INPUT_OUTPUT_REUSE,
            merge_split=False, **overrides,
        ),
        "input+output-reuse+ms-fft": morphling_config(
            name="input+output-reuse+ms-fft", **overrides
        ),
    }
