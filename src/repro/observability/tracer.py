"""Span-based structured tracer.

The tracer is the timeline half of :mod:`repro.observability`: it records
named spans - ``(name, category, start, duration, track, args)`` - that
the exporters (:mod:`repro.observability.export`) turn into Chrome
trace-event JSON for Perfetto / ``chrome://tracing``.

Two clock domains coexist:

- *wall-clock spans* from :meth:`Tracer.span` (a context manager) or the
  :func:`traced` decorator, timed with ``time.perf_counter`` relative to
  the tracer's epoch - used around real work such as a functional
  bootstrap;
- *simulated-time spans* from :meth:`Tracer.add_span`, where the caller
  supplies start/duration in microseconds of modelled time - used by the
  performance simulator and the HW-scheduler, whose events never happen
  in wall time at all.

Both kinds land in the same buffer; the ``track`` field (rendered as a
thread in trace viewers) keeps engines, pipeline stages and wall-clock
code on separate rows.

Wall-clock spans participate in distributed tracing: entering
:meth:`Tracer.span` activates a child of the ambient
:class:`~repro.observability.context.TraceContext` (or an explicit
``ctx=``), so bus events published inside the span - including the
span's own ``"span"`` event - carry its ``trace_id/span_id/parent_id``,
and nested spans parent to it.  A worker process that entered an
extracted carrier context therefore produces spans whose ``parent_id``
resolves to the driver's submitting span.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

from . import context as _context
from .bus import BUS as _BUS

__all__ = ["Span", "Tracer", "traced"]

#: Lazily registered wall-clock span-duration histogram (TIME_BUCKETS
#: seconds ladder).  Lazy because the process registry singleton lives in
#: the package ``__init__`` which imports this module.
_SPAN_SECONDS: Optional[Any] = None


def _span_seconds_metric() -> Any:
    global _SPAN_SECONDS
    if _SPAN_SECONDS is None:
        from . import REGISTRY
        from .registry import TIME_BUCKETS

        _SPAN_SECONDS = REGISTRY.histogram(
            "tracer_span_seconds",
            "Wall-clock span durations recorded by the tracer, by category",
            buckets=TIME_BUCKETS,
        )
    return _SPAN_SECONDS


@dataclass(frozen=True)
class Span:
    """One completed span on the trace timeline (times in microseconds)."""

    name: str
    ts_us: float
    dur_us: float
    category: str = ""
    track: str = "main"
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us


class Tracer:
    """Append-only span buffer with an on/off switch.

    Like the metrics registry, the disabled path is a single attribute
    read and branch; nothing is allocated and ``perf_counter`` is never
    called.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._epoch = time.perf_counter()

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._epoch = time.perf_counter()

    # -- recording ------------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "", track: str = "main",
             ctx: Optional[_context.TraceContext] = None,
             **args: Any) -> Iterator[Optional["Tracer"]]:
        """Context manager timing a wall-clock span (no-op when disabled).

        While the span is open, a child of the ambient trace context is
        active (so everything published inside carries this span's
        identity).  Pass ``ctx=`` to record with an explicit context
        instead - the driver uses this to emit the *root* span with the
        root context's own ids, giving remote children a span to resolve
        their ``parent_id`` against.  Outside any trace, spans record
        without trace identity, exactly as before.
        """
        if not self.enabled:
            yield None
            return
        span_ctx = ctx if ctx is not None else _context.child_of(_context.current())
        token = None if span_ctx is None else _context.activate(span_ctx)
        start = time.perf_counter()
        try:
            yield self
        finally:
            end = time.perf_counter()
            try:
                # Publish while the span's context is still active so the
                # "span" bus event carries its own span_id/parent_id.
                self.add_span(
                    name,
                    ts_us=(start - self._epoch) * 1e6,
                    dur_us=(end - start) * 1e6,
                    category=category,
                    track=track,
                    args=args,
                )
                # Wall-clock spans also land on the seconds-ladder histogram
                # (TIME_BUCKETS); simulated-time add_span callers do not.
                _span_seconds_metric().observe(
                    end - start, category=category or "uncategorized"
                )
            finally:
                if token is not None:
                    _context.deactivate(token)

    def add_span(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        category: str = "",
        track: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """Record a span with explicit timestamps (simulated-time friendly)."""
        if not self.enabled:
            return
        span = Span(name, float(ts_us), float(dur_us), category, track,
                    dict(args or {}))
        with self._lock:
            self._spans.append(span)
        if _BUS.enabled:
            _BUS.publish("span", name, value=span.dur_us, ts_us=span.ts_us,
                         dur_us=span.dur_us, category=category, track=track,
                         args=span.args)

    # -- reads ----------------------------------------------------------
    def spans(self) -> List[Span]:
        """Copy of all recorded spans, in recording order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def traced(name: Optional[str] = None, category: str = "", track: str = "main",
           tracer: Optional[Tracer] = None) -> Callable[[Callable], Callable]:
    """Decorator recording one span per call on the (global) tracer.

    ``@traced()`` uses the function's qualified name; pass ``name=`` to
    override and ``tracer=`` to target a non-global tracer (tests).
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            active = tracer if tracer is not None else _global_tracer()
            if not active.enabled:
                return fn(*args, **kwargs)
            with active.span(span_name, category=category, track=track):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _global_tracer() -> Tracer:
    from . import TRACER

    return TRACER
