"""Runtime noise telemetry: per-ciphertext provenance and drift detection.

The perf-counter bank (:mod:`repro.observability.counters`) made the
*performance* model observable; this module is its counterpart on the
*correctness* axis.  A :class:`NoiseTracker` attaches a provenance record
to every LWE ciphertext the functional TFHE path produces, carrying

- the **predicted** noise variance of the value (propagated through the
  same CGGI algebra as :mod:`repro.tfhe.noise` - the instrumented sites
  compute the per-op formulas and hand the result in, so no tfhe import
  happens here);
- the exact **plaintext shadow** (the noise-free torus numerator the
  ciphertext should decrypt to), maintained without any secret key by
  replaying each op's arithmetic on the expected values;
- optionally, with a **debug secret key** registered, the **measured**
  centered phase error of the ciphertext right after the op - the
  predicted-vs-measured pair every drift check needs.

On top of the records the module provides :func:`drift_report` (flag op
classes whose measured noise leaves the analytic envelope - a model
miscalibration or an implementation bug) and the raw **failure points**
(decision margins at bootstraps and decode points) that
:mod:`repro.analysis.failprob` turns into a decryption-failure
probability.

Discipline is identical to the counters: one process-wide singleton
(:data:`NOISE`), off by default, every instrumented site is a single
``enabled`` read-and-branch when disabled, and nothing is allocated on
the disabled path (``benchmarks/bench_observability_overhead.py`` holds
the tfhe layer to that with a ``tracemalloc`` guard).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .bus import BUS as _BUS

__all__ = [
    "NoiseRecord",
    "FailurePoint",
    "OpClassDrift",
    "NoiseTracker",
    "NOISE",
    "noise_tracking",
    "drift_report",
]

_Q = float(1 << 32)
_MASK = (1 << 32) - 1

#: Histogram buckets for torus-unit noise magnitudes: powers of two from
#: 2^-36 up to 2^-2 (fresh TFHE noise lives around 2^-15..2^-30).
NOISE_STD_BUCKETS = tuple(2.0 ** -e for e in range(36, 1, -2))


@dataclass
class NoiseRecord:
    """Provenance of one tracked ciphertext: one record per producing op.

    ``expected`` is the noise-free torus numerator (the plaintext
    shadow); ``measured`` is the centered phase error in torus units when
    a debug key was registered at tracking time, else ``None``.
    """

    op_id: int
    op: str
    predicted_variance: float
    expected: int
    parents: Tuple[int, ...] = ()
    measured: Optional[float] = None
    label: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def predicted_std(self) -> float:
        return math.sqrt(max(self.predicted_variance, 0.0))

    @property
    def predicted_std_log2(self) -> float:
        return 0.5 * math.log2(max(self.predicted_variance, 1e-300))

    @property
    def sigma(self) -> Optional[float]:
        """|measured| in units of the predicted stddev (None if unmeasured)."""
        if self.measured is None:
            return None
        return abs(self.measured) / max(self.predicted_std, 1e-300)

    def to_jsonable(self) -> dict:
        return {
            "op_id": self.op_id,
            "op": self.op,
            "label": self.label,
            "predicted_variance": self.predicted_variance,
            "predicted_std_log2": self.predicted_std_log2,
            "expected": self.expected,
            "parents": list(self.parents),
            "measured": self.measured,
            "sigma": self.sigma,
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class FailurePoint:
    """One place a workload can silently fail: a rounding decision.

    ``margin`` is the distance (torus units) from the noise-free value to
    the nearest decision boundary - a decode grid edge, a sign boundary,
    or the nearest test-polynomial bucket whose output differs.  The
    Gaussian tail of ``variance`` past ``margin`` is the per-point
    failure probability (:mod:`repro.analysis.failprob`).
    """

    op_id: int
    kind: str  # "decode" | "sign_decode" | "bootstrap_decision"
    margin: float
    variance: float
    label: str = ""

    def to_jsonable(self) -> dict:
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "margin": self.margin,
            "variance": self.variance,
            "label": self.label,
        }


@dataclass(frozen=True)
class OpClassDrift:
    """Drift verdict for one op class (all records sharing ``op``)."""

    op: str
    count: int
    measured_count: int
    predicted_std_rms: float
    measured_rms: float
    worst_sigma: float
    sigmas: float

    @property
    def within_envelope(self) -> bool:
        """True when every measured sample stayed inside the envelope."""
        return self.measured_count == 0 or self.worst_sigma <= self.sigmas

    def to_jsonable(self) -> dict:
        return {
            "op": self.op,
            "count": self.count,
            "measured_count": self.measured_count,
            "predicted_std_rms": self.predicted_std_rms,
            "measured_rms": self.measured_rms,
            "worst_sigma": self.worst_sigma,
            "sigmas": self.sigmas,
            "within_envelope": self.within_envelope,
        }


class NoiseTracker:
    """Per-ciphertext noise provenance with optional debug-key measurement.

    All mutating methods are no-ops while ``enabled`` is False.  The
    tracker never imports the tfhe layer at module scope; instrumented
    sites compute predicted variances themselves and measurement lazily
    imports the phase decryptor only when a debug key is registered.
    """

    #: Attribute name used to attach provenance to ciphertext objects.
    ATTR = "_noise_record"

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: List[NoiseRecord] = []
        self._failure_points: List[FailurePoint] = []
        self._labels: List[str] = []
        self._debug_key: Any = None
        self._next_id = 0

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every record and failure point (key and flag untouched)."""
        with self._lock:
            self._records.clear()
            self._failure_points.clear()
            self._labels.clear()
            self._next_id = 0

    # -- debug key ------------------------------------------------------
    def register_debug_key(self, lwe_key: Any) -> None:
        """Register the client LWE secret key for measured-noise mode.

        Measurement decrypts every tracked ciphertext's phase and records
        the centered error against the plaintext shadow - debug only, the
        key never leaves the tracker.
        """
        self._debug_key = lwe_key

    def clear_debug_key(self) -> None:
        self._debug_key = None

    @property
    def measuring(self) -> bool:
        return self._debug_key is not None

    # -- labels ---------------------------------------------------------
    @contextmanager
    def labelled(self, label: str) -> Iterator[None]:
        """Tag every record produced inside the block with ``label``."""
        if not self.enabled:
            yield
            return
        with self._lock:
            self._labels.append(label)
        try:
            yield
        finally:
            with self._lock:
                if self._labels:
                    self._labels.pop()

    def _current_label(self) -> str:
        return self._labels[-1] if self._labels else ""

    # -- recording ------------------------------------------------------
    def track(
        self,
        ct: Any,
        op: str,
        variance: float,
        expected: int,
        parents: Sequence[Any] = (),
        **meta: Any,
    ) -> Optional[NoiseRecord]:
        """Attach a provenance record to ``ct`` after op ``op``.

        ``parents`` are ciphertext objects (their records, if tracked,
        become the provenance edges).  Returns the record, or None when
        disabled.
        """
        if not self.enabled:
            return None
        parent_ids = tuple(
            r.op_id for r in (self.record_of(p) for p in parents) if r is not None
        )
        measured = self._measure(ct, expected)
        with self._lock:
            record = NoiseRecord(
                op_id=self._next_id,
                op=op,
                predicted_variance=float(variance),
                expected=int(expected) & _MASK,
                parents=parent_ids,
                measured=measured,
                label=self._current_label(),
                meta=dict(meta),
            )
            self._next_id += 1
            self._records.append(record)
        try:
            setattr(ct, self.ATTR, record)
        except AttributeError:
            pass  # slotted/foreign objects simply stay untracked downstream
        self._export(record)
        if _BUS.enabled:
            _BUS.publish(
                "noise", record.op, value=record.predicted_std_log2,
                op_id=record.op_id, label=record.label,
                predicted_std_log2=record.predicted_std_log2,
                measured=record.measured, sigma=record.sigma,
            )
        return record

    def track_linear(
        self,
        out: Any,
        op: str,
        terms: Sequence[Tuple[int, Any]],
        plain_offset: int = 0,
    ) -> Optional[NoiseRecord]:
        """Track a plaintext-weighted sum ``out = sum w_i * ct_i + offset``.

        Repeated ciphertext objects merge their weights first, so
        ``x + x`` correctly quadruples (not doubles) the variance.  If
        any operand carries no record the output stays untracked -
        provenance would be a guess.
        """
        if not self.enabled:
            return None
        merged: Dict[int, Tuple[Any, int]] = {}
        for weight, ct in terms:
            key = id(ct)
            if key in merged:
                merged[key] = (ct, merged[key][1] + int(weight))
            else:
                merged[key] = (ct, int(weight))
        variance = 0.0
        expected = int(plain_offset)
        parent_cts = []
        for ct, weight in merged.values():
            record = self.record_of(ct)
            if record is None:
                return None
            variance += float(weight) * float(weight) * record.predicted_variance
            expected += weight * record.expected
            parent_cts.append(ct)
        return self.track(out, op, variance, expected & _MASK, parents=parent_cts)

    def record_failure_point(
        self, kind: str, margin: float, variance: float,
        op_id: Optional[int] = None,
    ) -> None:
        """Record one decision whose Gaussian tail can fail the workload."""
        if not self.enabled:
            return
        with self._lock:
            point = FailurePoint(
                op_id=self._next_id - 1 if op_id is None else op_id,
                kind=kind,
                margin=float(margin),
                variance=float(variance),
                label=self._current_label(),
            )
            self._failure_points.append(point)
        if _BUS.enabled:
            _BUS.publish("failure_point", point.kind, value=point.margin,
                         op_id=point.op_id, variance=point.variance,
                         label=point.label)

    # -- measurement ----------------------------------------------------
    def _measure(self, ct: Any, expected: int) -> Optional[float]:
        """Centered phase error in torus units (None without a debug key)."""
        if self._debug_key is None:
            return None
        # Lazy import: keeps this module tfhe-free and the disabled path
        # allocation-free; only debug-mode tracking pays for it.
        from ..tfhe.lwe import lwe_decrypt_phase

        if getattr(ct, "a", None) is None or getattr(self._debug_key, "bits", None) is None:
            return None
        if ct.n != self._debug_key.n:
            return None
        phase = int(lwe_decrypt_phase(ct, self._debug_key))
        diff = (phase - int(expected)) & _MASK
        if diff >= 1 << 31:
            diff -= 1 << 32
        return diff / _Q

    def _export(self, record: NoiseRecord) -> None:
        """Mirror one record into the registry histograms and the tracer."""
        from . import REGISTRY, TRACER

        if REGISTRY.enabled:
            predicted = REGISTRY.histogram(
                "tfhe_noise_predicted_std",
                "Predicted per-op noise stddev (torus units), by op",
                buckets=NOISE_STD_BUCKETS,
            )
            predicted.observe(record.predicted_std, op=record.op)
            if record.measured is not None:
                measured = REGISTRY.histogram(
                    "tfhe_noise_measured_abs",
                    "Measured |centered phase error| (torus units), by op",
                    buckets=NOISE_STD_BUCKETS,
                )
                measured.observe(abs(record.measured), op=record.op)
        if TRACER.enabled:
            TRACER.add_span(
                f"noise/{record.op}",
                ts_us=float(record.op_id),
                dur_us=1.0,
                category="noise",
                track="noise" if not record.label else f"noise/{record.label}",
                args={
                    "predicted_std_log2": record.predicted_std_log2,
                    "measured": record.measured,
                    "sigma": record.sigma,
                },
            )

    # -- reads ----------------------------------------------------------
    def record_of(self, ct: Any) -> Optional[NoiseRecord]:
        """The provenance record attached to ``ct`` (None if untracked)."""
        return getattr(ct, self.ATTR, None)

    def records(self) -> List[NoiseRecord]:
        with self._lock:
            return list(self._records)

    def failure_points(self) -> List[FailurePoint]:
        with self._lock:
            return list(self._failure_points)

    def records_for(self, op: str) -> List[NoiseRecord]:
        with self._lock:
            return [r for r in self._records if r.op == op]

    def op_classes(self) -> List[str]:
        with self._lock:
            return sorted({r.op for r in self._records})

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def snapshot(self) -> dict:
        """Deterministic plain-dict view (the noise-waterfall JSON export)."""
        with self._lock:
            return {
                "measured": self._debug_key is not None,
                "records": [r.to_jsonable() for r in self._records],
                "failure_points": [p.to_jsonable() for p in self._failure_points],
            }


#: Process-wide noise tracker (disabled until enabled explicitly or via
#: :func:`repro.observability.enable` / :func:`noise_tracking`).
NOISE = NoiseTracker()


@contextmanager
def noise_tracking(
    lwe_key: Any = None,
    clear: bool = True,
    tracker: Optional[NoiseTracker] = None,
) -> Iterator[NoiseTracker]:
    """Enable just the noise tracker for a ``with`` block.

    Pass ``lwe_key`` (the client secret key) to measure real phase errors
    alongside the predictions; the key is dropped again on exit.  With
    ``clear`` (default) the record buffer is reset on entry so the block
    observes only itself.
    """
    active = tracker if tracker is not None else NOISE
    prior_enabled = active.enabled
    prior_key = active._debug_key
    if clear:
        active.reset()
    if lwe_key is not None:
        active.register_debug_key(lwe_key)
    active.enable()
    try:
        yield active
    finally:
        active.enabled = prior_enabled
        active._debug_key = prior_key


def drift_report(
    tracker: Optional[NoiseTracker] = None, sigmas: float = 6.0
) -> List[OpClassDrift]:
    """Per-op-class drift verdicts: measured noise vs the analytic envelope.

    An op class drifts when any measured sample exceeded ``sigmas``
    predicted standard deviations - either the variance algebra is
    miscalibrated for that op or the implementation leaks extra noise.
    Classes without measured samples report ``within_envelope`` (nothing
    contradicts the model) but ``measured_count == 0`` flags them.
    """
    active = tracker if tracker is not None else NOISE
    by_op: Dict[str, List[NoiseRecord]] = {}
    for record in active.records():
        by_op.setdefault(record.op, []).append(record)
    out = []
    for op in sorted(by_op):
        records = by_op[op]
        measured = [r for r in records if r.measured is not None]
        mean_var = sum(r.predicted_variance for r in records) / len(records)
        rms = (
            math.sqrt(sum(r.measured * r.measured for r in measured) / len(measured))  # type: ignore[operator]
            if measured else 0.0
        )
        worst = max((r.sigma for r in measured), default=0.0)
        out.append(OpClassDrift(
            op=op,
            count=len(records),
            measured_count=len(measured),
            predicted_std_rms=math.sqrt(mean_var),
            measured_rms=rms,
            worst_sigma=float(worst or 0.0),
            sigmas=sigmas,
        ))
    return out
