"""Unified telemetry bus: one typed event stream for every subsystem.

PRs 1/3/4 grew three parallel telemetry systems - the metrics registry,
the span tracer, the perf-counter bank - plus the noise tracker.  Each
kept its own buffer and its own export path, which is fine for post-hoc
analysis but gives no single *runtime* view: nothing a live dashboard or
an always-on flight recorder can subscribe to.  This module is that
missing spine.

A :class:`TelemetryBus` carries :class:`TelemetryEvent` values - small
frozen records ``(seq, t_s, kind, name, value, fields)`` plus the
distributed identity stamped since schema v2 (``worker`` and the
``trace_id/span_id/parent_id`` triple from
:mod:`repro.observability.context`) - from *publishers* to
*subscribers*:

- the four existing systems publish as a side effect of recording (a
  counter increment becomes a ``"metric"`` event, a span a ``"span"``
  event, a perf-counter sample a ``"sample"`` event, a noise record a
  ``"noise"`` event), so every instrumented site built since PR 1 feeds
  the bus with **zero new call sites**;
- the hot paths publish a handful of direct events: batched bootstraps
  (``"batch"``), simulator and scheduler result summaries
  (``"snapshot"``), machine stage boundaries (``"stage"``), workload
  descriptors (``"workload"``) and anomalies (``"anomaly"``);
- subscribers are plain callables: the flight recorder
  (:mod:`repro.observability.flightrec`), the live ``repro top``
  dashboard (:mod:`repro.observability.dashboard`), and the
  :class:`JsonlEventLog` structured log writer.

Discipline matches the rest of the package: one process-wide singleton
(:data:`BUS`), off by default, and the disabled path is a single
``enabled`` read-and-branch with **zero allocation**
(``benchmarks/bench_observability_overhead.py`` proves it with a
``tracemalloc`` guard).  Publishing happens synchronously on the caller's
thread; subscriber lists are copy-on-write tuples so ``publish`` never
takes a lock around user code.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Dict, List, Optional, Tuple, Union

from . import context as _context

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "SUPPORTED_EVENT_SCHEMA_VERSIONS",
    "EVENT_KINDS",
    "TelemetryEvent",
    "TelemetryBus",
    "BUS",
    "JsonlEventLog",
    "event_to_jsonable",
    "event_from_jsonable",
    "read_jsonl_events",
    "read_jsonl_header",
]

#: Bump on any incompatible change to the JSONL / bundle event shape.
#: v2 added the distributed-identity fields (``worker``, ``trace_id``,
#: ``span_id``, ``parent_id``) and the ``"heartbeat"`` kind.
EVENT_SCHEMA_VERSION = 2

#: Versions :func:`event_from_jsonable` can still read.  v1 records
#: simply lack the distributed-identity fields; readers default them.
SUPPORTED_EVENT_SCHEMA_VERSIONS = (1, 2)

#: The closed set of event kinds the bus carries.  Publishers may only
#: use these; consumers switch on them.
EVENT_KINDS = (
    "metric",         # registry counter/gauge/histogram update
    "span",           # tracer span (wall-clock or simulated time)
    "counter",        # perf-counter cycles/bytes/ops accumulation
    "sample",         # perf-counter time-resolved (t, value) sample
    "stage",          # ordered discrete event (machine/stages, ...)
    "noise",          # one noise-tracker provenance record
    "failure_point",  # one noise-tracker rounding-decision record
    "batch",          # one batched-bootstrap dispatch (size, precision)
    "snapshot",       # end-of-run summary (simulator/scheduler reports)
    "workload",       # workload descriptor announced before a run
    "anomaly",        # a trigger fired (drift breach, budget overrun, ...)
    "request",        # one request-latency sample (value=s, count-weighted)
    "heartbeat",      # worker liveness beacon (distrib shards)
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed event on the bus.

    ``t_s`` is seconds since the bus epoch (wall clock by default; tests
    inject a deterministic clock).  ``value`` is the event's one headline
    number when it has one (span duration, sample value, batch size);
    everything else rides in ``fields``.

    Since schema v2 every event also carries its distributed identity:
    ``worker`` is the producing process's id ("" when anonymous) and
    ``trace_id/span_id/parent_id`` mirror the trace context active at
    publish time (None outside any trace).
    """

    seq: int
    t_s: float
    kind: str
    name: str
    value: Optional[float] = None
    worker: str = ""
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    fields: Dict[str, Any] = field(default_factory=dict)


def event_to_jsonable(event: TelemetryEvent) -> Dict[str, Any]:
    """Stable-field-order plain dict for one event.

    The order is part of the JSONL contract (golden-tested): ``v, seq,
    t_s, kind, name, value, worker, trace_id, span_id, parent_id,
    fields`` - with ``fields`` keys sorted - so logs diff cleanly and
    line-level consumers can parse positionally.
    """
    from .export import to_jsonable

    return {
        "v": EVENT_SCHEMA_VERSION,
        "seq": event.seq,
        "t_s": event.t_s,
        "kind": event.kind,
        "name": event.name,
        "value": event.value,
        "worker": event.worker,
        "trace_id": event.trace_id,
        "span_id": event.span_id,
        "parent_id": event.parent_id,
        "fields": {k: to_jsonable(event.fields[k]) for k in sorted(event.fields)},
    }


def event_from_jsonable(record: Dict[str, Any]) -> TelemetryEvent:
    """Rebuild a :class:`TelemetryEvent` from an exported JSONL record.

    Inverse of :func:`event_to_jsonable` for offline replay (``repro top
    --from``): the schema version must be one of
    :data:`SUPPORTED_EVENT_SCHEMA_VERSIONS` (v1 records default the
    distributed-identity fields) and header records are rejected -
    filter with :func:`read_jsonl_events` first.
    """
    version = record.get("v")
    if version not in SUPPORTED_EVENT_SCHEMA_VERSIONS:
        supported = ", ".join(f"v{v}" for v in SUPPORTED_EVENT_SCHEMA_VERSIONS)
        raise ValueError(
            f"unsupported event schema version {version!r} "
            f"(this build reads {supported})"
        )
    kind = record["kind"]
    if kind == "jsonl_header":
        raise ValueError("header record is not an event; skip it "
                         "(read_jsonl_events does)")
    value = record.get("value")
    return TelemetryEvent(
        seq=int(record["seq"]),
        t_s=float(record["t_s"]),
        kind=kind,
        name=record["name"],
        value=None if value is None else float(value),
        worker=str(record.get("worker", "")),
        trace_id=record.get("trace_id"),
        span_id=record.get("span_id"),
        parent_id=record.get("parent_id"),
        fields=dict(record.get("fields", {})),
    )


Subscriber = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """In-process pub/sub spine for telemetry events.

    All publishing methods are no-ops while ``enabled`` is False - the
    whole disabled path is one attribute read and branch, nothing is
    allocated.  Subscribers run synchronously on the publishing thread in
    subscription order; a subscriber must therefore be cheap and must
    never publish back into the bus *for the event kinds it consumes*
    (the flight recorder publishes ``"anomaly"`` events but does not
    re-trigger on them).
    """

    def __init__(self, enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None,
                 wall_clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter
        self._wall_clock = wall_clock if wall_clock is not None else time.time
        self._epoch = self._clock()
        self._epoch_unix = self._wall_clock()
        self._lock = threading.Lock()
        self._seq = 0
        self._subscribers: Tuple[Subscriber, ...] = ()

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Restart the sequence counter and the clock epoch.

        Subscribers stay attached (they are wiring, not data); each keeps
        its own buffer to clear.
        """
        with self._lock:
            self._seq = 0
            self._epoch = self._clock()
            self._epoch_unix = self._wall_clock()

    # -- subscriptions ----------------------------------------------------
    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach ``fn``; it receives every subsequent published event."""
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers = self._subscribers + (fn,)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        # Equality, not identity: a bound method (`recorder._on_event`) is
        # a fresh object on every attribute access, but compares equal.
        with self._lock:
            self._subscribers = tuple(s for s in self._subscribers if s != fn)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- clock ------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the bus epoch (the ``t_s`` of a new event)."""
        return self._clock() - self._epoch

    @property
    def epoch_unix(self) -> float:
        """Wall-clock time (unix seconds) of the bus epoch.

        Written into JSONL shard headers so the fleet aggregator can put
        events from different processes on one global timeline:
        ``global_t = epoch_unix + t_s``.
        """
        return self._epoch_unix

    # -- publishing -------------------------------------------------------
    def publish(self, kind: str, name: str, value: Optional[float] = None,
                **fields: Any) -> Optional[TelemetryEvent]:
        """Publish one event; returns it, or None when the bus is off.

        ``kind`` must come from :data:`EVENT_KINDS`.  Keyword arguments
        become the event's ``fields``.
        """
        if not self.enabled:
            return None
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one "
                             f"of {', '.join(EVENT_KINDS)}")
        with self._lock:
            seq = self._seq
            self._seq += 1
        ctx = _context.current()
        event = TelemetryEvent(
            seq=seq,
            t_s=self._clock() - self._epoch,
            kind=kind,
            name=name,
            value=None if value is None else float(value),
            worker=_context.get_worker_id(),
            trace_id=None if ctx is None else ctx.trace_id,
            span_id=None if ctx is None else ctx.span_id,
            parent_id=None if ctx is None else ctx.parent_id,
            fields=fields,
        )
        for subscriber in self._subscribers:
            subscriber(event)
        return event


#: Process-wide telemetry bus (disabled until enabled explicitly or via
#: :func:`repro.observability.enable`).
BUS = TelemetryBus()


class JsonlEventLog:
    """Bus subscriber writing one JSON line per event (schema-versioned).

    Every line is self-describing: it opens with ``"v"`` (the event
    schema version) and keeps the stable field order of
    :func:`event_to_jsonable`.  The first line is a header record
    (``"kind": "jsonl_header"``) naming the schema version once more so a
    consumer can reject a whole file cheaply.

    Use as a context manager around a run::

        with obs.telemetry(), JsonlEventLog("run.jsonl") as log:
            run_workload(...)
        # one line per event, replayable offline

    Crash safety: the log registers an ``atexit`` flush (so an
    interpreter shutdown never strands buffered lines) and flushes
    eagerly whenever an ``"anomaly"`` event passes through (the flight
    recorder publishes one before cutting a bundle, so the shard on disk
    is complete up to the moment something went wrong).  Both hooks are
    pid-guarded: a fork child inheriting this object by accident will
    not double-flush the parent's file handle.
    """

    def __init__(self, target: Union[str, IO[str]], bus: Optional[TelemetryBus] = None,
                 worker: Optional[str] = None):
        self._bus = bus if bus is not None else BUS
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._closed = False
        self.worker = worker if worker is not None else _context.get_worker_id()
        self.lines_written = 0
        self._write_header()
        self._bus.subscribe(self._on_event)
        atexit.register(self._atexit_flush)

    def _write_header(self) -> None:
        header = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": "jsonl_header",
            "producer": "repro.observability.bus",
            "worker": self.worker,
            "epoch_unix": self._bus.epoch_unix,
        }
        self._fh.write(json.dumps(header, separators=(", ", ": ")) + "\n")

    def _on_event(self, event: TelemetryEvent) -> None:
        line = json.dumps(event_to_jsonable(event), separators=(", ", ": "),
                          default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self.lines_written += 1
            if event.kind == "anomaly":
                # Something just went wrong; make the shard durable up
                # to this moment in case the process dies next.
                self._fh.flush()

    def flush(self) -> None:
        """Flush buffered lines to the underlying file."""
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def _atexit_flush(self) -> None:
        if self._closed or os.getpid() != self._pid:
            return
        try:
            self.flush()
        except (OSError, ValueError):
            pass  # interpreter teardown; the file may already be gone

    def close(self) -> None:
        """Detach from the bus and flush/close the underlying file."""
        self._bus.unsubscribe(self._on_event)
        if self._closed:
            return
        with self._lock:
            self._closed = True
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()
        try:
            atexit.unregister(self._atexit_flush)
        except Exception:
            pass

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_jsonl_header(path: str) -> Optional[Dict[str, Any]]:
    """The file's ``jsonl_header`` record, or None when absent.

    The header carries the schema version, the producing worker's id,
    and ``epoch_unix`` - everything the fleet aggregator needs before it
    commits to reading the body.
    """
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return None
            return record if record.get("kind") == "jsonl_header" else None
    return None


def read_jsonl_events(path: str, tolerant: bool = False) -> List[Dict[str, Any]]:
    """Load a JSONL event log back into plain dicts (header skipped).

    With ``tolerant=True`` an undecodable *final* line is silently
    dropped: a SIGKILL'd worker can die mid-write, leaving one truncated
    record at the tail of an otherwise-valid shard.  Corruption anywhere
    else still raises - that is a broken file, not a crash artifact.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        lines = fh.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if tolerant and i == len(lines) - 1:
                break
            raise
        if record.get("kind") == "jsonl_header":
            continue
        events.append(record)
    return events
