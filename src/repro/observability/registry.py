"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the accounting half of :mod:`repro.observability`.  Hot
paths (the blind-rotation loop, the FFT engines, the HBM model) register
their metrics once at import time and then update them through a single
``enabled`` check, so the instrumented code costs one attribute read and
one branch per site when telemetry is off.

Design points:

- *labels*: every update may carry keyword labels (``direction="forward"``)
  producing one time series per label set, Prometheus style;
- *thread safety*: each metric guards its series map with a lock; reads
  (:meth:`MetricsRegistry.snapshot`) take the same locks, so snapshots
  are consistent per metric;
- *zero overhead when disabled*: ``update -> if not registry.enabled:
  return`` is the whole disabled path (verified by
  ``benchmarks/bench_observability_overhead.py``);
- *snapshot/reset*: :meth:`MetricsRegistry.snapshot` returns plain dicts
  ready for the JSON/Prometheus exporters; :meth:`MetricsRegistry.reset`
  zeroes values but keeps registrations.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from .bus import BUS as _BUS
from .sketch import DEFAULT_QUANTILES, DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Quantile",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
]

#: Default histogram buckets: powers of four covering transform sizes
#: (tens) through simulated byte volumes (billions).
DEFAULT_BUCKETS = tuple(float(4**e) for e in range(1, 16))

#: Log-spaced *seconds* ladder for time-valued histograms: half-decade
#: steps from 1 microsecond to 1000 seconds.  The powers-of-four
#: :data:`DEFAULT_BUCKETS` ladder starts at 4 (seconds!), so every
#: latency used to collapse into its first bucket; time-valued call
#: sites must pass this ladder instead.
TIME_BUCKETS = tuple(
    round(10.0 ** (e / 2.0), 12) for e in range(-12, 7)
)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical hashable key for a label set."""
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared machinery: name, help text, per-label-set series."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[tuple, Any] = {}

    # -- subclass hooks -------------------------------------------------
    def _zero(self) -> Any:
        return 0.0

    def _series_snapshot(self, value: Any) -> dict:
        return {"value": value}

    # -- shared API -----------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"type", "help", "values": [...]}``."""
        with self._lock:
            values = [
                dict(labels=dict(key), **self._series_snapshot(value))
                for key, value in sorted(self._series.items())
            ]
        return {"type": self.kind, "help": self.help, "values": values}

    def value(self, **labels: Any) -> Any:
        """Current value for one label set (None if never updated)."""
        with self._lock:
            return self._series.get(_label_key(labels))


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, operations)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount
        if _BUS.enabled:
            _BUS.publish("metric", self.name, value=amount,
                         metric="counter", labels=labels)


class Gauge(_Metric):
    """Point-in-time value (group size, residency, occupancy)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)
        if _BUS.enabled:
            _BUS.publish("metric", self.name, value=float(value),
                         metric="gauge", labels=labels)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            new_value = self._series.get(key, 0.0) + amount
            self._series[key] = new_value
        if _BUS.enabled:
            _BUS.publish("metric", self.name, value=new_value,
                         metric="gauge", labels=labels)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Distribution with cumulative buckets (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _series_snapshot(self, value) -> dict:
        count, total, per_bucket = value
        cumulative = {}
        running = 0
        for bound, n in zip(self.buckets, per_bucket):
            running += n
            cumulative[bound] = running
        return {"count": count, "sum": total, "buckets": cumulative}

    def observe(self, value: float, count: int = 1, **labels: Any) -> None:
        """Record ``count`` observations of ``value`` (batch-friendly)."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0, 0.0, [0] * len(self.buckets)]
                self._series[key] = series
            series[0] += count
            series[1] += value * count
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[2][i] += count
                    break
        if _BUS.enabled:
            _BUS.publish("metric", self.name, value=value,
                         metric="histogram", count=count, labels=labels)


class Quantile(_Metric):
    """Streaming quantile distribution (mergeable DDSketch per label set).

    Where :class:`Histogram` answers "how many fell below X" for a fixed
    ladder, a quantile metric answers "what is the p99" with a bounded
    relative error, and its per-label-set sketches merge exactly across
    shards (see :mod:`repro.observability.sketch`).  This is the metric
    kind behind every request-latency SLO.
    """

    kind = "quantile"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "",
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 quantiles: Iterable[float] = DEFAULT_QUANTILES):
        super().__init__(registry, name, help)
        self.relative_accuracy = float(relative_accuracy)
        self.quantiles = tuple(float(q) for q in quantiles)

    def _series_snapshot(self, value: QuantileSketch) -> dict:
        return {
            "count": value.count,
            "sum": value.sum,
            "min": value.min,
            "max": value.max,
            "quantiles": {repr(q): value.quantile(q) for q in self.quantiles},
        }

    def observe(self, value: float, count: int = 1, **labels: Any) -> None:
        """Fold ``count`` observations of ``value`` into the sketch."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            sketch = self._series.get(key)
            if sketch is None:
                sketch = QuantileSketch(self.relative_accuracy)
                self._series[key] = sketch
            sketch.add(value, count)
        if _BUS.enabled:
            _BUS.publish("metric", self.name, value=value,
                         metric="quantile", count=count, labels=labels)

    def sketch(self, **labels: Any) -> Optional[QuantileSketch]:
        """Copy of the sketch behind one label set (None if never fed)."""
        with self._lock:
            sketch = self._series.get(_label_key(labels))
            return sketch.copy() if sketch is not None else None

    def merged(self) -> Optional[QuantileSketch]:
        """All label sets merged into one sketch (None if never fed)."""
        with self._lock:
            sketches = list(self._series.values())
        if not sketches:
            return None
        merged = sketches[0].copy()
        for sketch in sketches[1:]:
            merged.merge(sketch)
        return merged


class MetricsRegistry:
    """Named collection of metrics with one shared on/off switch.

    Registration is idempotent: asking for an existing name returns the
    existing metric (so module-level registration and tests compose), but
    re-registering under a different type raises.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------
    def _register(self, cls: Type[_Metric], name: str, help: str,
                  **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(self, name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def quantile(self, name: str, help: str = "",
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 quantiles: Iterable[float] = DEFAULT_QUANTILES) -> Quantile:
        return self._register(Quantile, name, help,
                              relative_accuracy=relative_accuracy,
                              quantiles=quantiles)

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric's series; registrations survive."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    # -- reads ----------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Point-in-time view of every metric, exporter-ready."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}
