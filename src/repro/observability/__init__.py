"""Unified telemetry: metrics registry, span tracer, exporters.

This package is the instrumentation substrate every layer shares.  The
process-wide singletons are

- :data:`REGISTRY` - the :class:`~repro.observability.registry.MetricsRegistry`
  all hot paths register their counters/gauges/histograms on;
- :data:`TRACER` - the :class:`~repro.observability.tracer.Tracer`
  collecting wall-clock and simulated-time spans;
- :data:`COUNTERS` - the modelled hardware perf-counter bank;
- :data:`NOISE` - the per-ciphertext noise tracker;
- :data:`BUS` - the :class:`~repro.observability.bus.TelemetryBus` the
  four systems above publish typed events onto, feeding
- :data:`FLIGHT` - the always-on
  :class:`~repro.observability.flightrec.FlightRecorder` that dumps the
  recent event window to a JSON bundle when an anomaly trigger fires.

Telemetry is **off by default**: every instrumented site guards itself
with one ``enabled`` check, so the uninstrumented code path is restored
when disabled (see ``benchmarks/bench_observability_overhead.py``).
Turn it on around a region of interest::

    from repro import observability as obs

    with obs.telemetry():
        simulate_bootstrap(config, params)
        print(obs.render_prometheus(obs.REGISTRY.snapshot()))

or globally with :func:`enable` / :func:`disable`.  Exporters turn what
was recorded into Prometheus text, JSON, JSONL event logs, or a Chrome
trace-event file that opens in Perfetto (see ``docs/observability.md``).
"""

from __future__ import annotations

from contextlib import contextmanager

from .bus import (
    BUS,
    EVENT_SCHEMA_VERSION,
    SUPPORTED_EVENT_SCHEMA_VERSIONS,
    JsonlEventLog,
    TelemetryBus,
    TelemetryEvent,
    event_from_jsonable,
    event_to_jsonable,
    read_jsonl_events,
    read_jsonl_header,
)
from .context import (
    TraceContext,
    extract,
    get_worker_id,
    inject,
    set_worker_id,
    start_trace,
    use_context,
)
from .counters import COUNTERS, PerfCounters, counting
from .dashboard import Dashboard, run_top
from .distrib import (
    FLEET_SCHEMA_VERSION,
    FleetReport,
    ShardWriter,
    aggregate_shards,
    discover_shards,
    worker_telemetry,
)
from .export import (
    chrome_trace_events,
    counter_track_events,
    flight_trace_events,
    merged_trace_events,
    noise_trace_events,
    pipeline_trace_events,
    render_prometheus,
    schedule_trace_events,
    to_jsonable,
    write_chrome_trace,
)
from .flightrec import (
    BUNDLE_SCHEMA_VERSION,
    FLIGHT,
    FlightRecorder,
    flight_recording,
    load_bundle,
    report_anomaly,
)
from .noise import (
    NOISE,
    FailurePoint,
    NoiseRecord,
    NoiseTracker,
    OpClassDrift,
    drift_report,
    noise_tracking,
)
from .registry import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Quantile,
)
from .sketch import DEFAULT_QUANTILES, DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from .slo import (
    DEFAULT_BURN_WINDOWS,
    SLO_REPORT_SCHEMA_VERSION,
    FailureBudgetObjective,
    LatencyObjective,
    SLOMonitor,
    SLORegistry,
    SLOReport,
    ThroughputObjective,
    price_slos,
)
from .tracer import Span, Tracer, traced

__all__ = [
    "REGISTRY",
    "TRACER",
    "COUNTERS",
    "NOISE",
    "BUS",
    "FLIGHT",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Quantile",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
    "QuantileSketch",
    "DEFAULT_QUANTILES",
    "DEFAULT_RELATIVE_ACCURACY",
    "SLORegistry",
    "SLOMonitor",
    "SLOReport",
    "LatencyObjective",
    "ThroughputObjective",
    "FailureBudgetObjective",
    "price_slos",
    "SLO_REPORT_SCHEMA_VERSION",
    "DEFAULT_BURN_WINDOWS",
    "Tracer",
    "Span",
    "traced",
    "PerfCounters",
    "counting",
    "NoiseTracker",
    "NoiseRecord",
    "FailurePoint",
    "OpClassDrift",
    "noise_tracking",
    "drift_report",
    "TelemetryBus",
    "TelemetryEvent",
    "JsonlEventLog",
    "EVENT_SCHEMA_VERSION",
    "SUPPORTED_EVENT_SCHEMA_VERSIONS",
    "event_to_jsonable",
    "event_from_jsonable",
    "read_jsonl_events",
    "read_jsonl_header",
    "TraceContext",
    "start_trace",
    "use_context",
    "inject",
    "extract",
    "set_worker_id",
    "get_worker_id",
    "ShardWriter",
    "worker_telemetry",
    "discover_shards",
    "FleetReport",
    "aggregate_shards",
    "FLEET_SCHEMA_VERSION",
    "FlightRecorder",
    "BUNDLE_SCHEMA_VERSION",
    "flight_recording",
    "load_bundle",
    "report_anomaly",
    "Dashboard",
    "run_top",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "telemetry",
    "to_jsonable",
    "render_prometheus",
    "chrome_trace_events",
    "counter_track_events",
    "noise_trace_events",
    "pipeline_trace_events",
    "schedule_trace_events",
    "merged_trace_events",
    "flight_trace_events",
    "write_chrome_trace",
]

#: Process-wide metrics registry (disabled until :func:`enable`).
REGISTRY = MetricsRegistry()

#: Process-wide span tracer (disabled until :func:`enable`).
TRACER = Tracer()


def enable() -> None:
    """Switch every telemetry system on (registry, tracer, counters,
    noise tracker, bus and flight recorder)."""
    REGISTRY.enable()
    TRACER.enable()
    COUNTERS.enable()
    NOISE.enable()
    BUS.enable()
    FLIGHT.enable()


def disable() -> None:
    """Switch every telemetry system off."""
    REGISTRY.disable()
    TRACER.disable()
    COUNTERS.disable()
    NOISE.disable()
    BUS.disable()
    FLIGHT.disable()


def is_enabled() -> bool:
    return (REGISTRY.enabled or TRACER.enabled or COUNTERS.enabled
            or NOISE.enabled or BUS.enabled or FLIGHT.enabled)


def reset() -> None:
    """Clear all recorded metrics, spans, counters, noise records and
    buffered bus/flight-recorder events."""
    REGISTRY.reset()
    TRACER.reset()
    COUNTERS.reset()
    NOISE.reset()
    BUS.reset()
    FLIGHT.reset()


@contextmanager
def telemetry(clear: bool = True):
    """Enable telemetry for a ``with`` block, restoring the prior state.

    With ``clear`` (the default) every system is reset on entry so the
    block observes only its own activity.
    """
    prior = (REGISTRY.enabled, TRACER.enabled, COUNTERS.enabled,
             NOISE.enabled, BUS.enabled, FLIGHT.enabled)
    if clear:
        reset()
    enable()
    try:
        yield REGISTRY, TRACER
    finally:
        (REGISTRY.enabled, TRACER.enabled, COUNTERS.enabled,
         NOISE.enabled, BUS.enabled, FLIGHT.enabled) = prior
