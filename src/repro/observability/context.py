"""Causal trace context: W3C-traceparent-style propagation primitives.

Every telemetry subsystem built in PRs 1-8 is a per-process singleton
with no notion of *which request* an event belongs to or *which worker*
produced it.  This module supplies both identities as ambient context:

- a :class:`TraceContext` is the ``(trace_id, span_id, parent_id)``
  triple of distributed tracing: ``trace_id`` names the request end to
  end, ``span_id`` the operation currently in flight, ``parent_id`` the
  operation that caused it.  The active context lives in a
  :mod:`contextvars` variable, so it nests correctly across threads and
  ``with`` blocks;
- the **carrier** form is a W3C ``traceparent``-style string
  (``00-<32 hex trace id>-<16 hex span id>-01``) produced by
  :func:`inject` and parsed by :func:`extract`, so a parent process can
  hand its context to a ``multiprocessing`` worker through any string
  channel (argument tuple, environment, queue) and the worker's spans
  parent correctly across the process boundary;
- a process-wide **worker id** (:func:`set_worker_id` /
  :func:`get_worker_id`) stamps every published event with the shard
  identity the fleet aggregator re-sequences by.

Import discipline: this module imports only the standard library so the
bus can import it without cycles.  Nothing here allocates on telemetry's
disabled paths - the bus only consults :func:`current` and
:func:`get_worker_id` after its own ``enabled`` check passed
(``benchmarks/bench_observability_overhead.py`` proves the disabled
paths never touch this module).
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "current",
    "start_trace",
    "child_of",
    "use_context",
    "inject",
    "extract",
    "set_worker_id",
    "get_worker_id",
]

#: Carrier version prefix (the W3C ``traceparent`` version field).
CARRIER_VERSION = "00"

_CARRIER_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace: ``(trace_id, span_id, parent_id)``.

    ``trace_id`` is shared by every span of one request; ``span_id``
    identifies this operation; ``parent_id`` is the ``span_id`` of the
    causing operation (``None`` for a root).  Ids are lowercase hex:
    16 bytes for the trace, 8 for spans, per the W3C trace-context
    format.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValueError(
                f"trace_id must be 32 lowercase hex chars, got {self.trace_id!r}"
            )
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValueError(
                f"span_id must be 16 lowercase hex chars, got {self.span_id!r}"
            )
        if self.parent_id is not None and not re.fullmatch(
            r"[0-9a-f]{16}", self.parent_id
        ):
            raise ValueError(
                f"parent_id must be 16 lowercase hex chars, got {self.parent_id!r}"
            )

    def child(self) -> "TraceContext":
        """A fresh span in the same trace, parented to this one."""
        return TraceContext(self.trace_id, new_span_id(), self.span_id)


#: The ambient trace context (None outside any trace).
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_context", default=None
)

#: The process's worker identity ("" until a shard/worker init names it).
_WORKER_ID: str = ""


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def current() -> Optional[TraceContext]:
    """The active trace context, or None outside any trace."""
    return _CURRENT.get()


def start_trace() -> TraceContext:
    """A fresh root context (new trace id, new span id, no parent).

    This only *creates* the context; activate it with
    :func:`use_context` (and record its root span via
    ``Tracer.span(..., ctx=root)`` so children have a span to resolve
    their ``parent_id`` against).
    """
    return TraceContext(new_trace_id(), new_span_id(), None)


def child_of(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """A child of ``ctx`` (None in, None out - convenience for callers)."""
    return ctx.child() if ctx is not None else None


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Activate ``ctx`` for the duration of the block (None deactivates)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def activate(ctx: Optional[TraceContext]) -> "contextvars.Token[Optional[TraceContext]]":
    """Low-level: set the ambient context, returning the reset token."""
    return _CURRENT.set(ctx)


def deactivate(token: "contextvars.Token[Optional[TraceContext]]") -> None:
    """Low-level: restore the context captured by :func:`activate`."""
    _CURRENT.reset(token)


def inject(ctx: Optional[TraceContext] = None) -> Optional[str]:
    """Serialize ``ctx`` (default: the active context) into a carrier.

    The carrier is the W3C ``traceparent`` shape
    ``00-<trace_id>-<span_id>-01``: the receiving process's spans will
    parent to the injected ``span_id``.  Returns None when there is no
    context to carry.
    """
    if ctx is None:
        ctx = current()
    if ctx is None:
        return None
    return f"{CARRIER_VERSION}-{ctx.trace_id}-{ctx.span_id}-01"


def extract(carrier: Optional[str]) -> Optional[TraceContext]:
    """Parse a carrier back into a :class:`TraceContext` (None passes through).

    The returned context's ``span_id`` is the *sender's* span: entering
    it (``use_context``) makes every local span a child of the remote
    parent.  Malformed carriers raise ``ValueError`` - a worker must not
    silently detach from its trace.
    """
    if carrier is None:
        return None
    match = _CARRIER_RE.match(carrier.strip().lower())
    if match is None:
        raise ValueError(
            f"malformed trace carrier {carrier!r}; expected "
            f"'00-<32 hex>-<16 hex>-<2 hex>'"
        )
    return TraceContext(match.group("trace_id"), match.group("span_id"), None)


def set_worker_id(worker_id: str) -> None:
    """Name this process for telemetry ("" clears back to anonymous).

    The id is stamped into every published event's ``worker`` field and
    into shard filenames (``events-<worker_id>.jsonl``); keep it short
    and filesystem-safe (``w0``..``wN``, ``driver``).
    """
    if not re.fullmatch(r"[A-Za-z0-9._-]*", worker_id):
        raise ValueError(
            f"worker id must be filesystem-safe ([A-Za-z0-9._-]*), got {worker_id!r}"
        )
    global _WORKER_ID
    _WORKER_ID = worker_id


def get_worker_id() -> str:
    """The process's worker id ("" when never set)."""
    return _WORKER_ID
