"""Hardware performance-counter subsystem.

Real accelerators expose a perf-counter block next to every engine: free
running cycle/byte/op counters plus a handful of sampled registers
(buffer fill levels, queue depths) that a debug bus reads out over time.
This module is that block for the Morphling models.  It complements the
:mod:`~repro.observability.registry` (aggregate, Prometheus-shaped
series) with the four value kinds a bottleneck profiler needs:

- **cycles** per resource (``xpu/stage/rotation``, ``vpu/stage/key_switch``):
  busy-cycle accumulators, the utilization numerators;
- **bytes** per channel (``hbm/channel/3``): traffic accumulators at
  single-HBM-channel granularity, the bandwidth numerators;
- **ops** per unit (``rotator/vector_reads``, ``noc/hops/xpu_to_shared``):
  event counts with no time dimension of their own;
- **samples**: ``(simulated time, value)`` pairs per track
  (``buffer/shared`` occupancy, per-stage pipeline occupancy), the
  time-resolved view; high-water marks are derived from these.

A fifth kind, **events**, records *ordered* discrete happenings
(``machine/stages``: ``modulus_switch`` -> ``blind_rotate`` -> ...) so a
dynamic execution can be checked against the static stage-order model
(verifier pass VER005).

Discipline is identical to the registry: one process-wide singleton
(:data:`COUNTERS`), off by default, every recording call is a single
``enabled`` read-and-branch when disabled, and nothing is allocated on
the disabled path (``benchmarks/bench_observability_overhead.py`` holds
the models to that with a ``tracemalloc`` guard).  Snapshots are plain
dicts with deterministically sorted keys; :meth:`PerfCounters.digest`
hashes the canonical JSON form, so two identical simulator runs produce
byte-identical digests - the property the benchmark-regression harness
keys on.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .bus import BUS as _BUS

__all__ = ["PerfCounters", "COUNTERS", "counting"]


class PerfCounters:
    """Bank of modelled hardware performance counters.

    All mutating methods are no-ops while ``enabled`` is False; reads
    work regardless.  Recording is thread-safe (one lock, coarse -
    counter updates are far off the contended path).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._cycles: Dict[str, float] = {}
        self._bytes: Dict[str, float] = {}
        self._ops: Dict[str, float] = {}
        self._samples: Dict[str, List[Tuple[float, float]]] = {}
        self._events: List[Tuple[str, str]] = []

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear every recorded value (the enabled flag is untouched)."""
        with self._lock:
            self._cycles.clear()
            self._bytes.clear()
            self._ops.clear()
            self._samples.clear()
            self._events.clear()

    # -- recording ------------------------------------------------------
    def add_cycles(self, resource: str, cycles: float) -> None:
        """Accumulate busy cycles on ``resource``."""
        if not self.enabled:
            return
        if cycles < 0:
            raise ValueError(f"cycle counter {resource} cannot decrease")
        with self._lock:
            self._cycles[resource] = self._cycles.get(resource, 0.0) + cycles
        if _BUS.enabled:
            _BUS.publish("counter", resource, value=cycles, unit="cycles")

    def add_bytes(self, channel: str, nbytes: float) -> None:
        """Accumulate bytes moved over ``channel``."""
        if not self.enabled:
            return
        if nbytes < 0:
            raise ValueError(f"byte counter {channel} cannot decrease")
        with self._lock:
            self._bytes[channel] = self._bytes.get(channel, 0.0) + nbytes
        if _BUS.enabled:
            _BUS.publish("counter", channel, value=nbytes, unit="bytes")

    def add_ops(self, name: str, count: float = 1.0) -> None:
        """Accumulate ``count`` operations on counter ``name``."""
        if not self.enabled:
            return
        if count < 0:
            raise ValueError(f"op counter {name} cannot decrease")
        with self._lock:
            self._ops[name] = self._ops.get(name, 0.0) + count
        if _BUS.enabled:
            _BUS.publish("counter", name, value=count, unit="ops")

    def sample(self, track: str, t_s: float, value: float) -> None:
        """Record one time-resolved sample: ``value`` at simulated ``t_s``."""
        if not self.enabled:
            return
        with self._lock:
            self._samples.setdefault(track, []).append((float(t_s), float(value)))
        if _BUS.enabled:
            _BUS.publish("sample", track, value=value, t_sim_s=float(t_s))

    def event(self, track: str, name: str) -> None:
        """Record one ordered discrete event on ``track``."""
        if not self.enabled:
            return
        with self._lock:
            self._events.append((track, name))
        if _BUS.enabled:
            _BUS.publish("stage", name, track=track)

    # -- reads ----------------------------------------------------------
    def cycles(self, resource: str) -> float:
        with self._lock:
            return self._cycles.get(resource, 0.0)

    def bytes_moved(self, channel: str) -> float:
        with self._lock:
            return self._bytes.get(channel, 0.0)

    def ops(self, name: str) -> float:
        with self._lock:
            return self._ops.get(name, 0.0)

    def samples_on(self, track: str) -> List[Tuple[float, float]]:
        """Copy of the ``(t_s, value)`` samples recorded on ``track``."""
        with self._lock:
            samples = self._samples.get(track)
            return list(samples) if samples else []

    def watermark(self, track: str) -> float:
        """High-water mark of a sampled track (0.0 if never sampled)."""
        with self._lock:
            samples = self._samples.get(track)
            return max((v for _, v in samples), default=0.0) if samples else 0.0

    def events_on(self, track: str) -> List[str]:
        """Event names recorded on ``track``, in recording order."""
        with self._lock:
            return [name for t, name in self._events if t == track]

    def tracks(self) -> List[str]:
        """Sorted names of every sampled track."""
        with self._lock:
            return sorted(self._samples)

    def snapshot(self) -> dict:
        """Deterministic plain-dict view of everything recorded.

        Keys are sorted; sample lists keep recording order (simulated
        time already orders them within a run); high-water marks are
        included per track so consumers need not recompute them.
        """
        with self._lock:
            return {
                "cycles": dict(sorted(self._cycles.items())),
                "bytes": dict(sorted(self._bytes.items())),
                "ops": dict(sorted(self._ops.items())),
                "samples": {
                    track: [[t, v] for t, v in values]
                    for track, values in sorted(self._samples.items())
                },
                "watermarks": {
                    track: max((v for _, v in values), default=0.0)
                    for track, values in sorted(self._samples.items())
                },
                "events": [[track, name] for track, name in self._events],
            }

    def digest(self) -> str:
        """SHA-256 of the canonical JSON snapshot (regression fingerprint)."""
        payload = json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        """Number of distinct counters/tracks holding data."""
        with self._lock:
            return (len(self._cycles) + len(self._bytes) + len(self._ops)
                    + len(self._samples) + (1 if self._events else 0))


#: Process-wide perf-counter bank (disabled until enabled explicitly or
#: via :func:`repro.observability.enable` / :func:`counting`).
COUNTERS = PerfCounters()


@contextmanager
def counting(clear: bool = True,
             counters: Optional[PerfCounters] = None) -> Iterator[PerfCounters]:
    """Enable just the perf counters for a ``with`` block.

    Unlike :func:`repro.observability.telemetry` this leaves the metrics
    registry and tracer alone - the profiler uses it to collect counter
    snapshots without paying for span buffers.  With ``clear`` (default)
    the bank is reset on entry so the block observes only itself.
    """
    bank = counters if counters is not None else COUNTERS
    prior = bank.enabled
    if clear:
        bank.reset()
    bank.enable()
    try:
        yield bank
    finally:
        bank.enabled = prior
