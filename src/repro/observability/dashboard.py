"""Live terminal dashboard (``repro top``) fed by the telemetry bus.

:class:`Dashboard` subscribes to the :class:`~repro.observability.bus.
TelemetryBus` and folds the event stream into the handful of numbers an
operator watches while a workload runs:

- **bootstraps/s** - from ``batch`` events (each carries the batch size)
  over the bus-time window they arrived in;
- **batch occupancy** - ``batch`` events that carry a ``capacity`` field
  (the machine publishes ``len(cts) / vpe_rows``) averaged over the run:
  the steady-state throughput evidence of the paper's Fig. 13;
- **per-stage cycle fractions** - ``counter`` events with
  ``unit="cycles"`` accumulated per resource, the bottleneck view;
- **HBM traffic** - ``counter`` events with ``unit="bytes"``;
- **noise drift verdict** - worst sigma seen on ``noise`` events against
  the flight recorder's drift envelope;
- **recent anomalies** - the last few ``anomaly`` events verbatim.

The aggregation is incremental and O(1) per event, so the dashboard can
stay subscribed for the whole run.  :func:`run_top` drives a workload
callable under full telemetry and redraws the panel between refreshes -
the implementation behind ``repro top``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, IO, Iterable, List, Optional, Tuple

from .bus import BUS, TelemetryBus, TelemetryEvent, event_from_jsonable, read_jsonl_events
from .flightrec import DEFAULT_DRIFT_SIGMAS
from .sketch import DEFAULT_QUANTILES, QuantileSketch

__all__ = ["Dashboard", "run_top"]


class Dashboard:
    """Incremental aggregator over bus events, renderable as a panel.

    With ``slos`` (an :class:`~repro.observability.slo.SLORegistry`) the
    panel also tracks request latency per objective: every ``"request"``
    event updates a quantile sketch plus per-objective good/bad counts,
    and the rendered panel shows p50/p95/p99 with error-budget-remaining
    columns.
    """

    def __init__(self, bus: Optional[TelemetryBus] = None,
                 drift_sigmas: float = DEFAULT_DRIFT_SIGMAS,
                 anomaly_history: int = 8, slos: Optional[Any] = None):
        self.bus = bus if bus is not None else BUS
        self.drift_sigmas = float(drift_sigmas)
        self.slos = slos
        self._latency = QuantileSketch()
        self._requests = 0
        # objective name -> [total, bad] request counts
        self._slo_counts: Dict[str, List[int]] = {
            o.name: [0, 0] for o in getattr(slos, "latency_objectives", ())
        }
        self._lock = threading.Lock()
        self._bootstraps = 0.0
        self._first_t: Optional[float] = None
        self._last_t: Optional[float] = None
        self._occupancy_sum = 0.0
        self._occupancy_n = 0
        self._stage_cycles: Dict[str, float] = {}
        self._hbm_bytes: Dict[str, float] = {}
        self._noise_ops = 0
        self._worst_sigma: Optional[float] = None
        self._anomalies: Deque[Tuple[float, str, Dict[str, Any]]] = deque(
            maxlen=anomaly_history
        )
        self._workload: Optional[str] = None
        self._report: Dict[str, Any] = {}
        # worker id -> {events, bootstraps, requests, heartbeats,
        #               last_heartbeat_t, final_heartbeat}
        self._workers: Dict[str, Dict[str, Any]] = {}
        self.bus.subscribe(self._on_event)

    def close(self) -> None:
        """Detach from the bus (the aggregated state stays readable)."""
        self.bus.unsubscribe(self._on_event)

    def __enter__(self) -> "Dashboard":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- event folding ----------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        with self._lock:
            if self._first_t is None:
                self._first_t = event.t_s
            self._last_t = event.t_s
            kind = event.kind
            if event.worker:
                row = self._workers.setdefault(event.worker, {
                    "events": 0, "bootstraps": 0.0, "requests": 0,
                    "heartbeats": 0, "last_heartbeat_t": None,
                    "final_heartbeat": False,
                })
                row["events"] += 1
                if kind == "batch":
                    row["bootstraps"] += float(event.value or 0.0)
                elif kind == "request":
                    row["requests"] += int(event.fields.get("count", 1) or 1)
                elif kind == "heartbeat":
                    row["heartbeats"] += 1
                    row["last_heartbeat_t"] = event.t_s
                    if event.fields.get("final"):
                        row["final_heartbeat"] = True
            if kind == "batch":
                self._bootstraps += float(event.value or 0.0)
                capacity = event.fields.get("capacity")
                if capacity:
                    self._occupancy_sum += float(event.value or 0.0) / float(capacity)
                    self._occupancy_n += 1
            elif kind == "counter":
                unit = event.fields.get("unit")
                if unit == "cycles":
                    self._stage_cycles[event.name] = (
                        self._stage_cycles.get(event.name, 0.0)
                        + float(event.value or 0.0)
                    )
                elif unit == "bytes":
                    self._hbm_bytes[event.name] = (
                        self._hbm_bytes.get(event.name, 0.0)
                        + float(event.value or 0.0)
                    )
            elif kind == "noise":
                self._noise_ops += 1
                sigma = event.fields.get("sigma")
                if sigma is not None:
                    s = float(sigma)
                    if self._worst_sigma is None or s > self._worst_sigma:
                        self._worst_sigma = s
            elif kind == "request":
                latency = float(event.value or 0.0)
                count = int(event.fields.get("count", 1) or 1)
                self._latency.add(latency, count)
                self._requests += count
                if self.slos is not None:
                    for objective in self.slos.latency_objectives:
                        counts = self._slo_counts[objective.name]
                        counts[0] += count
                        if latency > objective.threshold_s:
                            counts[1] += count
            elif kind == "anomaly":
                self._anomalies.append((event.t_s, event.name, dict(event.fields)))
            elif kind == "workload":
                self._workload = event.name
            elif kind == "snapshot":
                self._report[event.name] = {"value": event.value, **event.fields}

    def feed_jsonl(self, path: str) -> int:
        """Fold a recorded JSONL event log (``repro record``) offline.

        Replays every event through the same aggregation the live bus
        feeds, so ``repro top --from FILE`` renders the panel a live run
        would have shown.  Returns the number of events folded.
        """
        events = read_jsonl_events(path)
        for record in events:
            self._on_event(event_from_jsonable(record))
        return len(events)

    def feed_events(self, events: Iterable[TelemetryEvent]) -> int:
        """Fold already-parsed events (a fleet aggregator's merged
        timeline) through the same live aggregation.  Returns the count."""
        n = 0
        for event in events:
            self._on_event(event)
            n += 1
        return n

    # -- reads --------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict view of the aggregated state."""
        with self._lock:
            elapsed = ((self._last_t - self._first_t)
                       if self._first_t is not None and self._last_t is not None
                       else 0.0)
            total_cycles = sum(self._stage_cycles.values())
            fractions = {
                name: (cycles / total_cycles if total_cycles else 0.0)
                for name, cycles in sorted(self._stage_cycles.items())
            }
            drift_ok = (self._worst_sigma is None
                        or self._worst_sigma <= self.drift_sigmas)
            latency = {
                "count": self._requests,
                **{f"p{q * 100:g}": self._latency.quantile(q)
                   for q in DEFAULT_QUANTILES},
            }
            slo_rows = []
            if self.slos is not None:
                for objective in self.slos.latency_objectives:
                    total, bad = self._slo_counts[objective.name]
                    budget = objective.budget_fraction
                    bad_fraction = bad / total if total else 0.0
                    slo_rows.append({
                        "name": objective.name,
                        "quantile": objective.quantile,
                        "threshold_s": objective.threshold_s,
                        "observed_s": self._latency.quantile(objective.quantile),
                        "budget_remaining": 1.0 - bad_fraction / budget,
                    })
            return {
                "workload": self._workload,
                "bootstraps": self._bootstraps,
                "elapsed_s": elapsed,
                "bootstraps_per_s": (self._bootstraps / elapsed
                                     if elapsed > 0 else 0.0),
                "batch_occupancy": (self._occupancy_sum / self._occupancy_n
                                    if self._occupancy_n else None),
                "latency": latency,
                "slo": slo_rows,
                "stage_cycle_fractions": fractions,
                "hbm_bytes": dict(sorted(self._hbm_bytes.items())),
                "noise_ops": self._noise_ops,
                "worst_sigma": self._worst_sigma,
                "drift_ok": drift_ok,
                "anomalies": [
                    {"t_s": t, "reason": reason, "fields": dict(sorted(f.items()))}
                    for t, reason, f in self._anomalies
                ],
                "reports": {k: dict(sorted(v.items()))
                            for k, v in sorted(self._report.items())},
                "workers": {w: dict(self._workers[w])
                            for w in sorted(self._workers)},
            }

    def render(self, width: int = 72) -> str:
        """Render the panel as fixed-width text (one terminal screen)."""
        snap = self.snapshot()
        bar_w = 28
        lines: List[str] = []
        title = " repro top "
        lines.append(title.center(width, "="))
        workload = snap["workload"] or "-"
        lines.append(f"workload: {workload:<30s} elapsed: "
                     f"{snap['elapsed_s']:8.3f} s")
        lines.append(f"bootstraps: {snap['bootstraps']:>10,.0f}   "
                     f"rate: {snap['bootstraps_per_s']:>12,.1f} /s")
        occ = snap["batch_occupancy"]
        if occ is not None:
            filled = int(round(min(max(occ, 0.0), 1.0) * bar_w))
            bar = "#" * filled + "-" * (bar_w - filled)
            lines.append(f"batch occupancy: [{bar}] {occ:6.1%}")
        else:
            lines.append("batch occupancy: (no batch events yet)")
        lines.append("-" * width)
        lines.append("stage cycle fractions:")
        fractions = snap["stage_cycle_fractions"]
        if fractions:
            for name, frac in sorted(fractions.items(),
                                     key=lambda kv: -kv[1])[:8]:
                filled = int(round(frac * bar_w))
                bar = "#" * filled + "-" * (bar_w - filled)
                lines.append(f"  {name:<28.28s} [{bar}] {frac:6.1%}")
        else:
            lines.append("  (no cycle counters yet)")
        hbm_total = sum(snap["hbm_bytes"].values())
        lines.append(f"HBM traffic: {hbm_total / 2**20:10.1f} MiB over "
                     f"{len(snap['hbm_bytes'])} channels")
        lines.append("-" * width)
        latency = snap["latency"]
        if latency["count"]:
            def _ms(v: Optional[float]) -> str:
                return f"{v * 1e3:.2f}ms" if v is not None else "-"

            lines.append(
                f"requests: {latency['count']:>10,d}   "
                f"p50 {_ms(latency['p50']):>10s}  "
                f"p95 {_ms(latency['p95']):>10s}  "
                f"p99 {_ms(latency['p99']):>10s}"
            )
            for row in snap["slo"]:
                remaining = row["budget_remaining"]
                verdict = "ok" if remaining >= 0.0 else "BREACH"
                lines.append(
                    f"  slo {row['name']:<16.16s} "
                    f"<= {_ms(row['threshold_s']):>10s}  "
                    f"observed {_ms(row['observed_s']):>10s}  "
                    f"budget {remaining:+7.1%}  {verdict}"
                )
        else:
            lines.append("requests: (no request events yet)")
        workers = snap["workers"]
        if len(workers) > 1:
            lines.append("-" * width)
            lines.append(f"workers ({len(workers)}):")
            for worker_id in sorted(workers):
                row = workers[worker_id]
                status = "ok" if row["final_heartbeat"] else "open"
                lines.append(
                    f"  {worker_id:<12.12s} events {row['events']:>7,d}  "
                    f"bootstraps {row['bootstraps']:>9,.0f}  "
                    f"requests {row['requests']:>7,d}  "
                    f"hb {row['heartbeats']:>4d} {status}"
                )
        lines.append("-" * width)
        if snap["worst_sigma"] is None:
            noise_line = f"noise: {snap['noise_ops']} ops, unmeasured"
        else:
            verdict = "ok" if snap["drift_ok"] else "DRIFT"
            noise_line = (f"noise: {snap['noise_ops']} ops, worst sigma "
                          f"{snap['worst_sigma']:.2f} "
                          f"(envelope {self.drift_sigmas:.1f}) -> {verdict}")
        lines.append(noise_line)
        anomalies = snap["anomalies"]
        lines.append(f"anomalies ({len(anomalies)} recent):")
        if anomalies:
            for a in anomalies:
                detail = ", ".join(f"{k}={v}" for k, v in a["fields"].items())
                lines.append(f"  !! {a['reason']:<16.16s} {detail:.{width - 22}s}")
        else:
            lines.append("  (none)")
        lines.append("=" * width)
        return "\n".join(lines)


def run_top(work: Callable[[int], Any], iterations: int = 5,
            interval_s: float = 0.0, stream: Optional[IO[str]] = None,
            clear_screen: Optional[bool] = None,
            bus: Optional[TelemetryBus] = None) -> Dashboard:
    """Drive ``work`` under a live dashboard, redrawing between rounds.

    ``work`` is called with the iteration index; whatever telemetry it
    produces lands on the bus and appears on the next redraw.  The
    caller is responsible for having telemetry enabled (``repro top``
    wraps this in :func:`repro.observability.telemetry`).  Returns the
    dashboard so the final state can be inspected or printed.
    """
    out: IO[str] = stream if stream is not None else sys.stdout
    if clear_screen is None:
        clear_screen = bool(getattr(out, "isatty", lambda: False)())
    dash = Dashboard(bus=bus)
    try:
        for i in range(iterations):
            work(i)
            if clear_screen:
                out.write("\x1b[2J\x1b[H")
            out.write(dash.render() + "\n")
            out.flush()
            if interval_s > 0 and i + 1 < iterations:
                time.sleep(interval_s)
    finally:
        dash.close()
    return dash
