"""Exporters: Prometheus text, JSON snapshots, Chrome trace-event JSON.

Three consumers, one data model:

- :func:`render_prometheus` turns a registry snapshot into the text
  exposition format a Prometheus scrape endpoint would serve;
- :func:`to_jsonable` is the single serializer behind every ``--json``
  CLI surface: it converts dataclasses (``SimulationReport``,
  ``IterationBreakdown``...), numpy scalars/arrays, enums and nested
  containers into plain JSON types;
- the ``*_trace_events`` family renders spans - recorded by the tracer,
  replayed from a :class:`~repro.core.trace.PipelineTrace`, or taken
  from a scheduler :class:`~repro.core.scheduler.ScheduleResult` - as
  Chrome trace-event dicts (``ph: "X"`` complete events plus ``ph: "M"``
  thread-name metadata), which :func:`write_chrome_trace` wraps into a
  file that loads directly in Perfetto or ``chrome://tracing``.

The trace-event converters only duck-type their inputs (``.spans``,
``.config.clock_ghz``), keeping this module import-free of the core
layer.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "to_jsonable",
    "render_prometheus",
    "chrome_trace_events",
    "counter_track_events",
    "noise_trace_events",
    "pipeline_trace_events",
    "schedule_trace_events",
    "merged_trace_events",
    "flight_trace_events",
    "write_chrome_trace",
]


# ---------------------------------------------------------------------------
# JSON serialization (shared by CLI --json and the snapshot exporter)
# ---------------------------------------------------------------------------
def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable plain types."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    # numpy scalars and arrays, without importing numpy here
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return to_jsonable(obj.item())
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return to_jsonable(tolist())
    return str(obj)


def _key(k: Any) -> str:
    if isinstance(k, enum.Enum):
        return str(k.value)
    return str(k)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in text exposition format."""
    lines: List[str] = []
    for name, metric in snapshot.items():
        if metric["help"]:
            lines.append(f"# HELP {name} {metric['help']}")
        # Our "quantile" kind is a Prometheus *summary* (pre-computed
        # quantiles), which is what scrapers expect the TYPE to say.
        exposition_type = "summary" if metric["type"] == "quantile" else metric["type"]
        lines.append(f"# TYPE {name} {exposition_type}")
        for series in metric["values"]:
            labels = series["labels"]
            if metric["type"] == "histogram":
                for bound, count in series["buckets"].items():
                    le = _format_labels(labels, {"le": _format_value(bound)})
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _format_labels(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{inf} {series['count']}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
            elif metric["type"] == "quantile":
                # Prometheus summary-style exposition: one sample per
                # tracked quantile plus _sum/_count.
                for q, estimate in series["quantiles"].items():
                    if estimate is None:
                        continue
                    ql = _format_labels(labels, {"quantile": q})
                    lines.append(f"{name}{ql} {_format_value(estimate)}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------
_PID = 0  # single logical process; tracks map to tids


def _track_ids(tracks: Iterable[str]) -> Dict[str, int]:
    return {track: tid for tid, track in enumerate(sorted(tracks))}


def _thread_metadata(track_ids: Dict[str, int]) -> List[dict]:
    return [
        {
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in sorted(track_ids.items(), key=lambda kv: kv[1])
    ]


def chrome_trace_events(spans: Iterable[Any]) -> List[dict]:
    """Convert tracer :class:`~repro.observability.tracer.Span` objects.

    Produces ``ph: "X"`` (complete) events preceded by thread-name
    metadata so each span's ``track`` renders as its own named row.
    """
    spans = list(spans)
    track_ids = _track_ids({s.track for s in spans})
    events = _thread_metadata(track_ids)
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.category or "span",
                "ph": "X",
                "ts": s.ts_us,
                "dur": s.dur_us,
                "pid": _PID,
                "tid": track_ids[s.track],
                "args": to_jsonable(s.args),
            }
        )
    return events


def pipeline_trace_events(trace: Any, clock_ghz: Optional[float] = None) -> List[dict]:
    """Render a :class:`~repro.core.trace.PipelineTrace` as trace events.

    Stage spans are in cycles; ``clock_ghz`` (defaulting to the traced
    config's clock) converts them to microseconds so the viewer's time
    axis is real time.  One row per pipeline stage, iteration number in
    the args.
    """
    if clock_ghz is None:
        clock_ghz = trace.config.clock_ghz
    us_per_cycle = 1e-3 / clock_ghz
    track_ids = _track_ids({s.stage for s in trace.spans})
    events = _thread_metadata(track_ids)
    for s in trace.spans:
        events.append(
            {
                "name": f"{s.stage} i{s.iteration}",
                "cat": "xpu_pipeline",
                "ph": "X",
                "ts": s.start * us_per_cycle,
                "dur": s.duration * us_per_cycle,
                "pid": _PID,
                "tid": track_ids[s.stage],
                "args": {"iteration": s.iteration, "cycles": s.duration},
            }
        )
    return events


def schedule_trace_events(result: Any) -> List[dict]:
    """Render a scheduler :class:`ScheduleResult` (``record_spans=True``).

    Each engine becomes a row; each instruction a complete event with its
    group id in the args.  Times are seconds of simulated time -> us.
    """
    if not result.spans:
        raise ValueError("execute the stream with record_spans=True first")
    track_ids = _track_ids({s[0] for s in result.spans})
    events = _thread_metadata(track_ids)
    for engine, op, group, start, end in result.spans:
        events.append(
            {
                "name": op,
                "cat": "schedule",
                "ph": "X",
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "pid": _PID,
                "tid": track_ids[engine],
                "args": {"group": group},
            }
        )
    return events


def counter_track_events(counters: Any) -> List[dict]:
    """Render perf-counter sampled tracks as Chrome counter events.

    ``counters`` is a :class:`~repro.observability.counters.PerfCounters`
    (or anything with a compatible ``snapshot()``).  Each sampled track
    becomes a ``ph: "C"`` counter series (drawn by Perfetto as a
    step-line row); ordered events become ``ph: "i"`` instants on their
    own row.  Sample times are simulated seconds -> trace microseconds.
    """
    snapshot = counters.snapshot() if hasattr(counters, "snapshot") else counters
    events: List[dict] = []
    for track, samples in snapshot.get("samples", {}).items():
        for t_s, value in samples:
            events.append(
                {
                    "name": track,
                    "cat": "perf_counter",
                    "ph": "C",
                    "ts": t_s * 1e6,
                    "pid": _PID,
                    "args": {"value": value},
                }
            )
    for seq, (track, name) in enumerate(snapshot.get("events", [])):
        events.append(
            {
                "name": name,
                "cat": "perf_event",
                "ph": "i",
                "s": "g",
                "ts": float(seq),
                "pid": _PID,
                "tid": 0,
                "args": {"track": track, "seq": seq},
            }
        )
    return events


def noise_trace_events(tracker: Any) -> List[dict]:
    """Render a noise-tracker snapshot as a Chrome-trace noise waterfall.

    ``tracker`` is a :class:`~repro.observability.noise.NoiseTracker` (or
    a compatible ``snapshot()`` dict).  Each record becomes a ``ph: "X"``
    event on a per-label row at ts = op_id (the waterfall axis is op
    order, not time), carrying predicted/measured noise in the args;
    provenance edges render as ``ph: "s"/"f"`` flow events so Perfetto
    draws arrows from parents to children.  Two ``ph: "C"`` counter
    series plot predicted std and measured |error| in log2 torus units.
    """
    snapshot = tracker.snapshot() if hasattr(tracker, "snapshot") else tracker
    records = snapshot.get("records", [])
    tracks = {f"noise/{r['label']}" if r["label"] else "noise" for r in records}
    track_ids = _track_ids(tracks)
    events = _thread_metadata(track_ids)
    for r in records:
        track = f"noise/{r['label']}" if r["label"] else "noise"
        tid = track_ids[track]
        ts = float(r["op_id"])
        events.append(
            {
                "name": r["op"],
                "cat": "noise",
                "ph": "X",
                "ts": ts,
                "dur": 1.0,
                "pid": _PID,
                "tid": tid,
                "args": {
                    "op_id": r["op_id"],
                    "predicted_std_log2": r["predicted_std_log2"],
                    "measured": r["measured"],
                    "sigma": r["sigma"],
                },
            }
        )
        for parent in r["parents"]:
            flow = {"cat": "noise", "id": f"n{parent}->{r['op_id']}", "pid": _PID}
            events.append(
                {**flow, "name": "dep", "ph": "s", "ts": float(parent) + 0.5,
                 "tid": tid}
            )
            events.append(
                {**flow, "name": "dep", "ph": "f", "bp": "e", "ts": ts + 0.5,
                 "tid": tid}
            )
        events.append(
            {
                "name": "predicted_std_log2",
                "cat": "noise",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": {"value": r["predicted_std_log2"]},
            }
        )
        if r["measured"] is not None:
            magnitude = math.log2(max(abs(r["measured"]), 2.0**-40))
            events.append(
                {
                    "name": "measured_abs_log2",
                    "cat": "noise",
                    "ph": "C",
                    "ts": ts,
                    "pid": _PID,
                    "args": {"value": magnitude},
                }
            )
    return events


def merged_trace_events(sections: Dict[str, List[dict]]) -> List[dict]:
    """Merge several per-system event lists into one timeline.

    Every exporter above emits events on the single logical process
    ``pid 0``, so naively concatenating two exporters' outputs collides
    their thread ids.  This function gives each named *section* its own
    pid (in sorted section order), prefixed with ``ph: "M"``
    ``process_name`` metadata, so Perfetto renders the merged file as one
    timeline with one labelled process group per section.  Events keep
    their relative order and all other fields.
    """
    events: List[dict] = []
    for pid, section in enumerate(sorted(sections)):
        section_events = sections[section]
        if not section_events:
            continue
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": section},
            }
        )
        for event in section_events:
            events.append({**event, "pid": pid})
    return events


def flight_trace_events(bundle: Dict[str, Any]) -> List[dict]:
    """Render a flight-recorder bundle as one merged Chrome timeline.

    The bundle (see :mod:`repro.observability.flightrec`) holds the last
    window of bus events.  Each event kind maps onto the viewer concept
    it represents, grouped into per-section process rows via
    :func:`merged_trace_events`:

    - ``span`` -> ``ph: "X"`` complete events on their recorded track
      (simulated/wall microseconds, as the tracer stored them);
    - ``counter``/``metric`` -> ``ph: "C"`` running-total series per
      counter name, on the bus-time axis;
    - ``sample`` -> ``ph: "C"`` series on the *simulated*-time axis;
    - ``noise`` -> the waterfall (``ph: "X"`` at ts = op id, plus a
      predicted-std counter series), sigma in the args;
    - everything else (``stage``, ``batch``, ``snapshot``, ``workload``,
      ``failure_point``, ``anomaly``) -> ``ph: "i"`` instants on a row
      per kind, bus-time axis, full fields in the args.
    """
    records: List[Dict[str, Any]] = list(bundle.get("events", []))
    t0 = min((float(r["t_s"]) for r in records), default=0.0)

    spans: List[dict] = []
    counters: List[dict] = []
    noise: List[dict] = []
    instants: List[dict] = []

    span_tracks = _track_ids(
        {str(r["fields"].get("track", "main")) for r in records
         if r["kind"] == "span"}
    )
    spans.extend(_thread_metadata(span_tracks))
    noise_tracks = _track_ids(
        {f"noise/{r['fields']['label']}" if r["fields"].get("label") else "noise"
         for r in records if r["kind"] == "noise"}
    )
    noise.extend(_thread_metadata(noise_tracks))
    instant_tracks = _track_ids(
        {r["kind"] for r in records
         if r["kind"] not in ("span", "counter", "metric", "sample", "noise")}
    )
    instants.extend(_thread_metadata(instant_tracks))

    totals: Dict[str, float] = {}
    for r in records:
        kind = str(r["kind"])
        fields: Dict[str, Any] = r.get("fields", {})
        bus_ts = (float(r["t_s"]) - t0) * 1e6
        if kind == "span":
            args = dict(to_jsonable(fields.get("args", {})))
            # v2 events carry their distributed identity; surface it in
            # the viewer so cross-process parent links are inspectable.
            if r.get("trace_id"):
                args["trace_id"] = r["trace_id"]
                args["span_id"] = r.get("span_id")
                args["parent_id"] = r.get("parent_id")
            if r.get("worker"):
                args["worker"] = r["worker"]
            spans.append(
                {
                    "name": r["name"],
                    "cat": fields.get("category") or "span",
                    "ph": "X",
                    "ts": float(fields.get("ts_us", bus_ts)),
                    "dur": float(fields.get("dur_us", r.get("value") or 0.0)),
                    "pid": _PID,
                    "tid": span_tracks[str(fields.get("track", "main"))],
                    "args": args,
                }
            )
        elif kind in ("counter", "metric"):
            name = str(r["name"])
            totals[name] = totals.get(name, 0.0) + float(r.get("value") or 0.0)
            counters.append(
                {
                    "name": name,
                    "cat": f"flight_{kind}",
                    "ph": "C",
                    "ts": bus_ts,
                    "pid": _PID,
                    "args": {"value": totals[name]},
                }
            )
        elif kind == "sample":
            counters.append(
                {
                    "name": r["name"],
                    "cat": "flight_sample",
                    "ph": "C",
                    "ts": float(fields.get("t_sim_s", 0.0)) * 1e6,
                    "pid": _PID,
                    "args": {"value": float(r.get("value") or 0.0)},
                }
            )
        elif kind == "noise":
            label = fields.get("label")
            track = f"noise/{label}" if label else "noise"
            ts = float(fields.get("op_id", 0))
            noise.append(
                {
                    "name": r["name"],
                    "cat": "noise",
                    "ph": "X",
                    "ts": ts,
                    "dur": 1.0,
                    "pid": _PID,
                    "tid": noise_tracks[track],
                    "args": {
                        "op_id": fields.get("op_id"),
                        "predicted_std_log2": fields.get("predicted_std_log2"),
                        "measured": fields.get("measured"),
                        "sigma": fields.get("sigma"),
                    },
                }
            )
            noise.append(
                {
                    "name": "predicted_std_log2",
                    "cat": "noise",
                    "ph": "C",
                    "ts": ts,
                    "pid": _PID,
                    "args": {"value": fields.get("predicted_std_log2")},
                }
            )
        else:
            instants.append(
                {
                    "name": r["name"],
                    "cat": f"flight_{kind}",
                    "ph": "i",
                    "s": "g",
                    "ts": bus_ts,
                    "pid": _PID,
                    "tid": instant_tracks[kind],
                    "args": to_jsonable({"seq": r["seq"], **fields}),
                }
            )

    return merged_trace_events(
        {"spans": spans, "counters": counters, "noise": noise, "events": instants}
    )


def write_chrome_trace(path: str, events: Iterable[dict],
                       metadata: Optional[dict] = None) -> None:
    """Write trace events as a JSON object file Perfetto can open."""
    document: Dict[str, Any] = {"traceEvents": list(events), "displayTimeUnit": "ms"}
    if metadata:
        document["otherData"] = to_jsonable(metadata)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
