"""Mergeable streaming quantile sketch (DDSketch-style, relative error).

Fixed-bucket histograms answer "how many observations fell below X" for
a hand-picked ladder of Xs; an SLO engine needs the inverse question -
"what is the p99" - with an accuracy guarantee that survives merging
across shards and runs.  This module implements the log-bucketed sketch
of Masson, Rim and Lee ("DDSketch: a fast and fully-mergeable quantile
sketch with relative-error guarantees", VLDB 2019):

- values are mapped to geometric buckets ``gamma^(i-1) < v <= gamma^i``
  with ``gamma = (1 + alpha) / (1 - alpha)``, so returning the bucket
  midpoint ``2 * gamma^i / (gamma + 1)`` is within relative error
  ``alpha`` of any value in the bucket;
- buckets are a sparse ``dict`` (index -> count), so memory grows with
  the *dynamic range* of the stream (logarithmically), not its length;
- :meth:`QuantileSketch.merge` adds bucket counts pointwise, which makes
  the merge **exact**: a sketch of shard A merged with a sketch of shard
  B is bucket-for-bucket identical to one sketch of A+B, hence merging
  is associative and commutative and never degrades the error bound.

Only non-negative values are accepted (latencies, durations, sizes);
values below :attr:`QuantileSketch.MIN_TRACKABLE` collapse into an exact
zero bucket.  The property tests in
``tests/observability/test_slo.py`` hold the sketch to the
``alpha``-relative-error bound on adversarial streams and to exact
shard-merge agreement.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = ["DEFAULT_RELATIVE_ACCURACY", "DEFAULT_QUANTILES", "QuantileSketch"]

#: Default relative-error bound ``alpha``: quantile estimates are within
#: 1% of the true value (two sketches at the same alpha merge exactly).
DEFAULT_RELATIVE_ACCURACY = 0.01

#: The quantiles every snapshot/report quotes by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Log-bucketed quantile sketch with a relative-error guarantee.

    ``alpha`` is the relative accuracy: for any quantile ``q``,
    :meth:`quantile` returns an estimate ``x`` with
    ``|x - x_q| <= alpha * x_q`` where ``x_q`` is the true ``q``-quantile
    of everything added so far.  Instances are cheap (one dict), exact on
    ``count``/``sum``/``min``/``max``, and merge losslessly with any
    sketch built at the same ``alpha``.
    """

    #: Values below this are counted in the exact zero bucket; keeps the
    #: bucket indices bounded for degenerate streams (log2(1e-12) ~ -40).
    MIN_TRACKABLE = 1e-12

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_buckets", "_zero_count",
                 "count", "sum", "min", "max")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.alpha = float(relative_accuracy)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ------------------------------------------------------
    def _index(self, value: float) -> int:
        """Bucket index ``i`` with ``gamma^(i-1) < value <= gamma^i``."""
        return int(math.ceil(math.log(value) / self._log_gamma))

    def add(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (must be >= 0)."""
        value = float(value)
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if value < 0.0 or math.isnan(value) or math.isinf(value):
            raise ValueError(f"sketch values must be finite and >= 0, got {value}")
        if value < self.MIN_TRACKABLE:
            self._zero_count += count
        else:
            index = self._index(value)
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- reads ----------------------------------------------------------
    def _bucket_value(self, index: int) -> float:
        """Midpoint estimate for bucket ``index`` (max rel. error alpha)."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (None while the sketch is empty).

        The rank convention is the lower-interpolation one
        (``rank = floor(q * (count - 1))``), matching
        ``sorted(values)[rank]`` - the property tests compare against
        exactly that.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = int(math.floor(q * (self.count - 1)))
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return self._bucket_value(index)
        return self.max  # unreachable unless counts drifted; be safe

    def quantiles(self, qs: Iterable[float] = DEFAULT_QUANTILES) -> Dict[float, Optional[float]]:
        return {float(q): self.quantile(q) for q in qs}

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    @property
    def bucket_count(self) -> int:
        """Sparse buckets in use (memory footprint, for tests/telemetry)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    # -- merging --------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (in place); returns ``self``.

        Exact: bucket counts add pointwise, so merge order never changes
        the result.  Both sketches must share the same ``alpha``.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__} into a sketch")
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different accuracies "
                f"({self.alpha} vs {other.alpha})"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.alpha)
        clone._buckets = dict(self._buckets)
        clone._zero_count = self._zero_count
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    # -- serialization --------------------------------------------------
    def to_jsonable(self, qs: Iterable[float] = DEFAULT_QUANTILES) -> Dict[str, Any]:
        """Exporter-ready plain dict (quantile keys as strings)."""
        return {
            "relative_accuracy": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "quantiles": {repr(float(q)): self.quantile(q) for q in qs},
        }

    def state(self) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        """Canonical bucket state, for exact-equality assertions in tests."""
        return (self._zero_count, tuple(sorted(self._buckets.items())))

    def to_state(self) -> Dict[str, Any]:
        """Lossless JSON-serializable state (inverse: :meth:`from_state`).

        Unlike :meth:`to_jsonable` (which quotes quantile *estimates*),
        this carries the raw sparse buckets, so a shard snapshot written
        by one process can be rebuilt in another and merged exactly -
        the round trip is bucket-for-bucket identical.
        """
        return {
            "relative_accuracy": self.alpha,
            "zero_count": self._zero_count,
            "buckets": [[index, count]
                        for index, count in sorted(self._buckets.items())],
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_state` output (exact)."""
        sketch = cls(float(state["relative_accuracy"]))
        sketch._zero_count = int(state["zero_count"])
        sketch._buckets = {int(index): int(count)
                           for index, count in state["buckets"]}
        sketch.count = int(state["count"])
        sketch.sum = float(state["sum"])
        sketch.min = None if state["min"] is None else float(state["min"])
        sketch.max = None if state["max"] is None else float(state["max"])
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
                f"buckets={self.bucket_count})")
