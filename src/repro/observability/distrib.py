"""Distributed telemetry: per-worker shards and the fleet aggregator.

Everything in :mod:`repro.observability` up to PR 8 is single-process:
one bus, one registry, one flight recorder.  The serving roadmap
(continuous batching, multi-worker sharding) needs the same telemetry to
survive process boundaries, the way Morphling's per-XPU counters roll up
to one machine-level throughput figure.  This module supplies the three
pieces:

- :class:`ShardWriter` - each worker process writes its own
  schema-versioned JSONL shard (``events-<worker_id>.jsonl``), plus
  periodic **heartbeat** events and serialized sketch/counter
  **snapshots**, so the shard alone is enough to reconstruct the
  worker's latency distribution and liveness timeline;
- :func:`worker_telemetry` - the worker-side lifecycle: reset every
  singleton (a fork child must never inherit parent buffers - a
  process-level ``os.register_at_fork`` hook backstops this), name the
  process, enter the trace context carried from the driver, and start
  heartbeats;
- :func:`aggregate_shards` - the driver-side roll-up: merge N shards
  into one re-sequenced timeline, merge latency sketches **exactly**
  (the PR 8 pointwise-merge proof is what makes fleet p99 from shards
  identical to the single-process sketch), union counter banks, and
  detect dead workers from missed heartbeats, firing a ``worker_lost``
  flight-recorder anomaly with a bundle of the lost worker's trailing
  events.

Timeline semantics: every shard header records the producing bus's
``epoch_unix`` (wall clock at epoch).  The aggregator places event ``e``
of worker ``w`` at ``global_t = epoch_unix(w) + e.t_s``, sorts by
``(global_t, worker_id, seq)`` and re-sequences; the merged timeline's
``t_s`` is relative to the earliest shard epoch.  Clock skew between
hosts is out of scope (single-host multiprocessing); ordering within a
worker is always preserved because ``seq`` breaks ties.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import context as _context
from .bus import (
    BUS,
    SUPPORTED_EVENT_SCHEMA_VERSIONS,
    JsonlEventLog,
    TelemetryBus,
    TelemetryEvent,
    event_from_jsonable,
    event_to_jsonable,
    read_jsonl_events,
    read_jsonl_header,
)
from .counters import COUNTERS
from .flightrec import BUNDLE_SCHEMA_VERSION, report_anomaly
from .sketch import DEFAULT_QUANTILES, DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_MISS_FACTOR",
    "ShardWriter",
    "worker_telemetry",
    "discover_shards",
    "FleetReport",
    "aggregate_shards",
]

#: Bump on any incompatible change to the fleet-report JSON shape.
FLEET_SCHEMA_VERSION = 1

#: How often a worker beacons liveness (and flushes its shard).
DEFAULT_HEARTBEAT_INTERVAL_S = 0.25

#: A worker is declared lost when the fleet timeline extends more than
#: ``miss_factor * heartbeat_interval`` past its last heartbeat without
#: a final one.
DEFAULT_MISS_FACTOR = 3.0

#: Trailing-window length (global seconds) of a ``worker_lost`` bundle.
LOST_WINDOW_S = 30.0


# ---------------------------------------------------------------------------
# fork safety
# ---------------------------------------------------------------------------

_FORK_HOOK_INSTALLED = False


def _reset_in_child() -> None:
    """Drop every inherited telemetry buffer in a freshly forked child.

    The child must start anonymous and silent: parent subscribers (log
    writers, dashboards) would otherwise double-write into the parent's
    file handles, and inherited ring/span buffers would leak parent
    events into the child's shard.  The flight recorder is re-attached
    (it is wiring, not data); :func:`worker_telemetry` then names the
    process and re-enables what it needs.
    """
    import repro.observability as obs

    BUS._subscribers = ()
    obs.disable()
    obs.reset()
    from .flightrec import FLIGHT

    FLIGHT.attach(BUS)
    _context.set_worker_id("")


def _install_fork_hook() -> None:
    global _FORK_HOOK_INSTALLED
    if _FORK_HOOK_INSTALLED:
        return
    if hasattr(os, "register_at_fork"):  # not on Windows
        os.register_at_fork(after_in_child=_reset_in_child)
    _FORK_HOOK_INSTALLED = True


_install_fork_hook()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class ShardWriter:
    """One worker's telemetry shard: JSONL events + heartbeats + snapshots.

    Wraps a :class:`JsonlEventLog` on ``<shard_dir>/events-<worker_id>.jsonl``
    and additionally:

    - folds every ``"request"`` event into a local
      :class:`QuantileSketch` (count-weighted), mirroring what the
      dashboard does live;
    - :meth:`heartbeat` publishes a ``"heartbeat"`` event and flushes
      the shard, so the aggregator can bound how stale a silent worker's
      file can be;
    - :meth:`snapshot_state` publishes serialized sketch and counter
      snapshots (``"snapshot"`` events named ``worker/sketch/latency``
      and ``worker/counters``) that the aggregator rebuilds exactly via
      :meth:`QuantileSketch.from_state`;
    - :meth:`start_heartbeats` runs both on a daemon thread every
      ``heartbeat_interval_s``.

    :meth:`close` emits one final snapshot and a ``final=True``
    heartbeat (the clean-shutdown marker the dead-worker detector keys
    on) before closing the file.
    """

    def __init__(self, shard_dir: str, worker_id: Optional[str] = None,
                 bus: Optional[TelemetryBus] = None,
                 heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        self.worker_id = (worker_id if worker_id is not None
                          else _context.get_worker_id()) or f"pid{os.getpid()}"
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        os.makedirs(shard_dir, exist_ok=True)
        self.path = os.path.join(shard_dir, f"events-{self.worker_id}.jsonl")
        self._bus = bus if bus is not None else BUS
        self._log = JsonlEventLog(self.path, bus=self._bus, worker=self.worker_id)
        self._sketch = QuantileSketch(relative_accuracy)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.heartbeats_sent = 0
        self._bus.subscribe(self._on_event)

    # -- live folding ---------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        if event.kind == "request" and event.value is not None:
            count = int(event.fields.get("count", 1))
            if count > 0 and event.value >= 0.0:
                with self._lock:
                    self._sketch.add(event.value, count=count)

    def sketch(self) -> QuantileSketch:
        """Copy of the worker's request-latency sketch so far."""
        with self._lock:
            return self._sketch.copy()

    # -- beacons --------------------------------------------------------
    def heartbeat(self, final: bool = False) -> None:
        """Publish a liveness beacon and make the shard durable."""
        self._bus.publish(
            "heartbeat", f"worker/{self.worker_id}",
            value=float(self.heartbeats_sent),
            interval_s=self.heartbeat_interval_s, final=final,
        )
        self.heartbeats_sent += 1
        self._log.flush()

    def snapshot_state(self) -> None:
        """Publish serialized sketch + counter state into the shard."""
        with self._lock:
            state = self._sketch.to_state()
        self._bus.publish("snapshot", "worker/sketch/latency",
                          value=float(state["count"]), state=state)
        counters = COUNTERS.snapshot()
        self._bus.publish("snapshot", "worker/counters",
                          cycles=counters["cycles"],
                          bytes=counters["bytes"],
                          ops=counters["ops"])
        self._log.flush()

    # -- heartbeat thread -----------------------------------------------
    def start_heartbeats(self) -> None:
        """Beacon + snapshot every ``heartbeat_interval_s`` on a daemon
        thread until :meth:`close`."""
        if self._thread is not None:
            return
        self.heartbeat()  # immediate first beacon: liveness from t=0

        def _loop() -> None:
            while not self._stop.wait(self.heartbeat_interval_s):
                self.heartbeat()
                self.snapshot_state()

        self._thread = threading.Thread(
            target=_loop, name=f"shard-heartbeat-{self.worker_id}", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Final snapshot, ``final=True`` heartbeat, close the shard."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.snapshot_state()
        self.heartbeat(final=True)
        self._bus.unsubscribe(self._on_event)
        self._log.close()

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@contextmanager
def worker_telemetry(
    worker_id: str,
    shard_dir: str,
    carrier: Optional[str] = None,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
) -> Iterator[ShardWriter]:
    """Worker-side telemetry lifecycle, as a ``with`` block.

    Resets every singleton (so nothing inherited from the parent leaks
    into the shard), names the process ``worker_id``, enables telemetry,
    opens the shard with heartbeats running, and - when ``carrier`` is
    given - enters the extracted trace context so every span and event
    the worker produces parents to the driver's submitting span.  On
    exit the shard is closed cleanly (final heartbeat) and telemetry is
    disabled again.
    """
    import repro.observability as obs

    obs.reset()
    _context.set_worker_id(worker_id)
    obs.enable()
    writer = ShardWriter(shard_dir, worker_id=worker_id,
                         heartbeat_interval_s=heartbeat_interval_s)
    token = None
    ctx = _context.extract(carrier)
    if ctx is not None:
        token = _context.activate(ctx)
    writer.start_heartbeats()
    try:
        yield writer
    finally:
        if token is not None:
            _context.deactivate(token)
        writer.close()
        obs.disable()
        _context.set_worker_id("")


# ---------------------------------------------------------------------------
# driver side: aggregation
# ---------------------------------------------------------------------------

def discover_shards(shard_dir: str) -> List[str]:
    """Sorted shard paths (``events-*.jsonl``) under ``shard_dir``."""
    return sorted(_glob.glob(os.path.join(shard_dir, "events-*.jsonl")))


class FleetReport:
    """The merged view of N worker shards (see :func:`aggregate_shards`).

    Attributes:

    - ``events``: the re-sequenced merged timeline
      (:class:`TelemetryEvent`, ``t_s`` relative to the earliest shard
      epoch, per-event ``worker`` preserved);
    - ``sketch``: the fleet latency sketch - per-worker sketches folded
      from ``"request"`` events, merged pointwise (exact);
    - ``snapshot_sketch``: the merge of the workers' last *serialized*
      snapshots (None when no shard carried one) - lags ``sketch`` by at
      most one heartbeat interval per worker;
    - ``counters``: unioned cycle/byte/op banks;
    - ``workers``: per-worker summaries (events, requests, heartbeat
      status);
    - ``lost_workers`` / ``lost_bundles``: dead-worker verdicts and the
      flight-bundle-shaped evidence for each.
    """

    def __init__(self, event_schema_version: int):
        self.event_schema_version = event_schema_version
        self.epoch_unix = 0.0
        self.elapsed_s = 0.0
        self.events: List[TelemetryEvent] = []
        self.sketch = QuantileSketch()
        self.snapshot_sketch: Optional[QuantileSketch] = None
        self.counters: Dict[str, Dict[str, float]] = {
            "cycles": {}, "bytes": {}, "ops": {},
        }
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.lost_workers: List[str] = []
        self.lost_bundles: List[Dict[str, Any]] = []

    # -- views ----------------------------------------------------------
    def quantiles(self, qs: Sequence[float] = DEFAULT_QUANTILES) -> Dict[float, Optional[float]]:
        return self.sketch.quantiles(qs)

    def to_jsonable(self) -> Dict[str, Any]:
        """Schema-versioned plain dict (the ``repro fleet --json`` body).

        Stable field order, workers sorted by id - golden-pinned in
        ``tests/observability/golden/fleet_report.json``.
        """
        latency = self.sketch.to_jsonable()
        return {
            "v": FLEET_SCHEMA_VERSION,
            "kind": "fleet_report",
            "event_schema_version": self.event_schema_version,
            "elapsed_s": self.elapsed_s,
            "events_total": len(self.events),
            "workers": [self.workers[w] for w in sorted(self.workers)],
            "lost_workers": sorted(self.lost_workers),
            "latency": latency,
            "snapshot_latency": (None if self.snapshot_sketch is None
                                 else self.snapshot_sketch.to_jsonable()),
            "counters": {
                bank: dict(sorted(values.items()))
                for bank, values in sorted(self.counters.items())
            },
        }

    def to_bundle(self) -> Dict[str, Any]:
        """The merged timeline as a flight-bundle-shaped dict.

        Shape-compatible with :func:`repro.observability.load_bundle`
        consumers, so ``repro replay --chrome`` renders a fleet timeline
        exactly like a single-process bundle.
        """
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "kind": "flight_bundle",
            "event_schema_version": self.event_schema_version,
            "trigger": {
                "reason": "fleet_aggregate",
                "t_s": self.elapsed_s,
                "fields": {"workers": sorted(self.workers),
                           "lost_workers": sorted(self.lost_workers)},
            },
            "window_s": self.elapsed_s,
            "capacity": len(self.events),
            "counts": {k: counts[k] for k in sorted(counts)},
            "events": [event_to_jsonable(e) for e in self.events],
        }

    def render_text(self) -> str:
        """Fixed-width fleet panel (the ``repro fleet`` default output)."""
        lines = [
            f"fleet report (v{FLEET_SCHEMA_VERSION}) | "
            f"{len(self.workers)} workers | {len(self.events)} events | "
            f"elapsed {self.elapsed_s:.3f}s",
            "",
            f"  {'worker':<10} {'events':>7} {'requests':>9} "
            f"{'bootstraps':>11} {'heartbeats':>11}  status",
        ]
        for worker_id in sorted(self.workers):
            row = self.workers[worker_id]
            status = "LOST" if worker_id in self.lost_workers else (
                "ok" if row["final_heartbeat"] else "open")
            lines.append(
                f"  {worker_id:<10} {row['events']:>7} {row['requests']:>9} "
                f"{row['bootstraps']:>11.0f} {row['heartbeats']:>11}  {status}"
            )
        qs = self.quantiles()
        fmt = {q: ("-" if v is None else f"{v * 1e3:.3f}ms")
               for q, v in qs.items()}
        lines.append("")
        lines.append(
            f"  latency (fleet, n={self.sketch.count}): "
            + "  ".join(f"p{int(q * 100)} {fmt[q]}" for q in sorted(fmt))
        )
        if self.lost_workers:
            lines.append(
                f"  !! worker_lost: {', '.join(sorted(self.lost_workers))}"
            )
        return "\n".join(lines)


def _read_shard(path: str, tolerant: bool) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    header = read_jsonl_header(path)
    if header is None or header.get("kind") != "jsonl_header":
        raise ValueError(f"{path} has no jsonl_header record; not a telemetry shard")
    version = header.get("v")
    if version not in SUPPORTED_EVENT_SCHEMA_VERSIONS:
        supported = ", ".join(f"v{v}" for v in SUPPORTED_EVENT_SCHEMA_VERSIONS)
        raise ValueError(
            f"{path} has event schema version {version!r}; this build reads {supported}"
        )
    return header, read_jsonl_events(path, tolerant=tolerant)


def aggregate_shards(
    paths: Sequence[str],
    miss_factor: float = DEFAULT_MISS_FACTOR,
    relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    dump_dir: Optional[str] = None,
    tolerant: bool = True,
) -> FleetReport:
    """Merge N worker shards into one :class:`FleetReport`.

    - the merged timeline is ordered by ``(global_t, worker_id, seq)``
      and re-sequenced from 0, with ``t_s`` rebased to the earliest
      shard epoch;
    - the fleet latency sketch is the **exact** pointwise merge of
      per-worker sketches folded from ``"request"`` events, so fleet
      percentiles match a single-process sketch of the same stream
      bucket-for-bucket;
    - counter banks are unioned by summing per-name across workers;
    - a worker that beaconed heartbeats but never sent a ``final`` one,
      and whose last beacon is more than ``miss_factor * interval``
      behind the fleet's last event, is declared **lost**: a
      ``worker_lost`` anomaly is reported (flight recorder / bus, when
      enabled) and a flight-bundle-shaped evidence bundle of its
      trailing events is built (written to ``dump_dir`` when given).

    All shards must share one event schema version; mixing versions
    raises ``ValueError``.  With ``tolerant`` (the default) a truncated
    final line - the signature of a SIGKILL mid-write - is dropped
    instead of failing the whole aggregation.
    """
    if not paths:
        raise ValueError("aggregate_shards needs at least one shard path")
    shards: List[Tuple[str, Dict[str, Any], List[Dict[str, Any]]]] = []
    versions: Dict[int, List[str]] = {}
    for path in paths:
        header, records = _read_shard(path, tolerant=tolerant)
        shards.append((path, header, records))
        versions.setdefault(int(header["v"]), []).append(path)
    if len(versions) > 1:
        detail = "; ".join(
            f"v{v}: {', '.join(os.path.basename(p) for p in ps)}"
            for v, ps in sorted(versions.items())
        )
        raise ValueError(
            f"cannot aggregate shards with mixed event schema versions ({detail})"
        )

    report = FleetReport(event_schema_version=next(iter(versions)))
    fleet_epoch = min(float(h.get("epoch_unix", 0.0)) for _, h, _ in shards)
    report.epoch_unix = fleet_epoch

    # -- merge the timeline --------------------------------------------
    # keyed rows: (global_t, worker_id, seq, event)
    rows: List[Tuple[float, str, int, TelemetryEvent]] = []
    per_worker_events: Dict[str, List[Tuple[float, TelemetryEvent]]] = {}
    for path, header, records in shards:
        epoch = float(header.get("epoch_unix", 0.0))
        worker_id = str(header.get("worker", "")) or os.path.basename(path)
        bucket = per_worker_events.setdefault(worker_id, [])
        for record in records:
            event = event_from_jsonable(record)
            if not event.worker:
                event = replace(event, worker=worker_id)
            global_t = epoch + event.t_s
            rows.append((global_t, event.worker, event.seq, event))
            bucket.append((global_t, event))
    rows.sort(key=lambda row: (row[0], row[1], row[2]))

    fleet_end = rows[-1][0] if rows else fleet_epoch
    report.elapsed_s = max(0.0, fleet_end - fleet_epoch)
    report.events = [
        replace(event, seq=i, t_s=global_t - fleet_epoch)
        for i, (global_t, _, _, event) in enumerate(rows)
    ]

    # -- fold per-worker state -----------------------------------------
    snapshot_states: List[Dict[str, Any]] = []
    for worker_id in sorted(per_worker_events):
        events = per_worker_events[worker_id]
        worker_sketch = QuantileSketch(relative_accuracy)
        requests = 0
        bootstraps = 0.0
        heartbeats = 0
        final_heartbeat = False
        last_heartbeat_t: Optional[float] = None
        interval_s = DEFAULT_HEARTBEAT_INTERVAL_S
        last_sketch_state: Optional[Dict[str, Any]] = None
        for global_t, event in events:
            if event.kind == "request" and event.value is not None:
                count = int(event.fields.get("count", 1))
                if count > 0 and event.value >= 0.0:
                    worker_sketch.add(event.value, count=count)
                    requests += count
            elif event.kind == "batch" and event.value is not None:
                bootstraps += event.value
            elif event.kind == "heartbeat":
                heartbeats += 1
                last_heartbeat_t = global_t
                interval_s = float(event.fields.get("interval_s", interval_s))
                if event.fields.get("final"):
                    final_heartbeat = True
            elif event.kind == "counter" and event.value is not None:
                bank = {"cycles": "cycles", "bytes": "bytes",
                        "ops": "ops"}.get(str(event.fields.get("unit", "")))
                if bank is not None:
                    values = report.counters[bank]
                    values[event.name] = values.get(event.name, 0.0) + event.value
            elif event.kind == "snapshot" and event.name == "worker/sketch/latency":
                state = event.fields.get("state")
                if isinstance(state, dict):
                    last_sketch_state = state
        report.sketch.merge(worker_sketch)
        if last_sketch_state is not None:
            snapshot_states.append(last_sketch_state)
        report.workers[worker_id] = {
            "worker": worker_id,
            "events": len(events),
            "requests": requests,
            "bootstraps": bootstraps,
            "heartbeats": heartbeats,
            "final_heartbeat": final_heartbeat,
            "last_heartbeat_t": (None if last_heartbeat_t is None
                                 else last_heartbeat_t - fleet_epoch),
            "heartbeat_interval_s": interval_s,
            "latency": worker_sketch.to_jsonable(),
        }

        # -- dead-worker verdict ---------------------------------------
        if (heartbeats > 0 and not final_heartbeat
                and last_heartbeat_t is not None
                and fleet_end - last_heartbeat_t > miss_factor * interval_s):
            report.lost_workers.append(worker_id)
            bundle = _lost_bundle(
                report, worker_id, events,
                last_heartbeat_t=last_heartbeat_t, fleet_end=fleet_end,
                fleet_epoch=fleet_epoch, miss_factor=miss_factor,
                interval_s=interval_s,
            )
            report.lost_bundles.append(bundle)

    if snapshot_states:
        merged = QuantileSketch.from_state(snapshot_states[0])
        for state in snapshot_states[1:]:
            merged.merge(QuantileSketch.from_state(state))
        report.snapshot_sketch = merged

    # -- side effects: anomaly + evidence ------------------------------
    for worker_id, bundle in zip(report.lost_workers, report.lost_bundles):
        row = report.workers[worker_id]
        report_anomaly(
            "worker_lost", worker=worker_id,
            last_heartbeat_t=row["last_heartbeat_t"],
            heartbeat_interval_s=row["heartbeat_interval_s"],
            miss_factor=miss_factor,
        )
        if dump_dir is not None:
            os.makedirs(dump_dir, exist_ok=True)
            out = os.path.join(dump_dir, f"fleet-worker-lost-{worker_id}.json")
            with open(out, "w") as fh:
                json.dump(bundle, fh, indent=1)

    return report


def _lost_bundle(
    report: FleetReport,
    worker_id: str,
    events: List[Tuple[float, TelemetryEvent]],
    last_heartbeat_t: float,
    fleet_end: float,
    fleet_epoch: float,
    miss_factor: float,
    interval_s: float,
) -> Dict[str, Any]:
    """Flight-bundle-shaped evidence for one lost worker.

    Carries the worker's trailing :data:`LOST_WINDOW_S` seconds of
    events (times rebased to the fleet epoch) so the usual bundle
    tooling (``repro replay``) renders what the worker was doing when it
    went silent.
    """
    cutoff = fleet_end - LOST_WINDOW_S
    window = [(t, e) for t, e in events if t >= cutoff]
    counts: Dict[str, int] = {}
    for _, event in window:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {
        "schema_version": BUNDLE_SCHEMA_VERSION,
        "kind": "flight_bundle",
        "event_schema_version": report.event_schema_version,
        "trigger": {
            "reason": "worker_lost",
            "t_s": fleet_end - fleet_epoch,
            "fields": {
                "worker": worker_id,
                "last_heartbeat_t": last_heartbeat_t - fleet_epoch,
                "heartbeat_interval_s": interval_s,
                "miss_factor": miss_factor,
            },
        },
        "window_s": LOST_WINDOW_S,
        "capacity": len(events),
        "counts": {k: counts[k] for k in sorted(counts)},
        "events": [event_to_jsonable(replace(e, t_s=t - fleet_epoch))
                   for t, e in window],
    }
