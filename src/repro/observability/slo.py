"""Request-level SLO engine: objectives, error budgets, burn-rate alerts.

The paper quotes Morphling's results as the two numbers a serving
deployment would state as objectives - bootstraps/s (Table 5) and
application latency (Table 6) - and the related work (MATCHA, FPT)
frames throughput as *sustained under a bounded decryption-failure
rate*.  This module turns those quantities into a declarative,
evaluated contract:

- an :class:`SLORegistry` holds named objectives of three kinds:
  latency quantiles (``p99 of request latency <= threshold``),
  throughput floors, and the decryption-failure budget the analysis
  layer already computes (:mod:`repro.analysis.failprob`);
- :func:`price_slos` derives default thresholds from the perf-counter
  cycle model (:func:`repro.core.simulator.simulate_bootstrap`), so the
  objectives are the paper's own numbers with an explicit slack
  multiplier, not hand-tuned constants;
- an :class:`SLOMonitor` subscribes to the telemetry bus, folds every
  ``"request"`` event into a mergeable
  :class:`~repro.observability.sketch.QuantileSketch`, and evaluates
  each latency objective with **multi-window burn-rate** math (Google
  SRE style): the error budget of a ``q``-quantile objective is
  ``1 - q``; the burn rate over a window is the fraction of bad
  requests divided by that budget; when both a short and a long window
  exceed a factor, the monitor fires an ``slo_burn`` anomaly through
  the flight recorder, freezing the event window that produced the
  breach exactly like a noise-drift trigger does;
- :meth:`SLOMonitor.evaluate` renders the whole contract as a
  schema-versioned :class:`SLOReport` (the ``repro slo --json``
  surface, golden-pinned in ``tests/observability/test_slo.py``).

Request semantics: a ``"request"`` bus event carries one latency sample
in ``value`` (seconds) weighted by ``fields["count"]`` requests.  The
scheduler publishes completion times since workload start (so the
max observed sample is the makespan and throughput can be derived from
the sketch), the batched TFHE pipeline publishes wall-clock per-batch
latency, and the simulator publishes its modelled bootstrap latency.

Import discipline: this module is imported by ``repro.core`` through
the observability package, so everything core-side
(``simulate_bootstrap``) is imported lazily inside the pricing helpers.
"""

from __future__ import annotations

import collections
import threading
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from .bus import BUS, TelemetryBus, TelemetryEvent
from .flightrec import report_anomaly
from .sketch import DEFAULT_QUANTILES, DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "SLO_REPORT_SCHEMA_VERSION",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_SLACK",
    "LatencyObjective",
    "ThroughputObjective",
    "FailureBudgetObjective",
    "SLORegistry",
    "price_slos",
    "ObjectiveStatus",
    "SLOReport",
    "SLOMonitor",
]

#: Bump on any incompatible change to the ``repro slo --json`` shape.
SLO_REPORT_SCHEMA_VERSION = 1

#: Multi-window burn-rate alert pairs ``(short_s, long_s, factor)`` in
#: bus seconds - the classic (5m, 1h, 14.4x) / (30m, 6h, 6x) pages
#: scaled to run-length windows.  An alert needs BOTH windows of a pair
#: over the factor: the long window proves sustained burn, the short
#: window proves it is still happening.
DEFAULT_BURN_WINDOWS: Tuple[Tuple[float, float, float], ...] = (
    (5.0, 60.0, 14.4),
    (30.0, 300.0, 6.0),
)

#: Default pricing slack: objectives sit at ``slack x`` the modelled
#: value, so ordinary model/schedule divergence never pages while a
#: reuse-disabled (~3.5x slower) run blows straight through.
DEFAULT_SLACK = 2.0


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyObjective:
    """``quantile`` of request latency must stay <= ``threshold_s``.

    The error budget is ``1 - quantile``: a p99 objective tolerates 1%
    of requests over the threshold before the budget is spent.
    """

    name: str
    quantile: float
    threshold_s: float
    description: str = ""

    kind = "latency"

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"latency quantile must be in (0, 1), got {self.quantile}")
        if self.threshold_s <= 0.0:
            raise ValueError(f"latency threshold must be positive, got {self.threshold_s}")

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.quantile


@dataclass(frozen=True)
class ThroughputObjective:
    """Sustained request throughput must stay >= ``floor_per_s``."""

    name: str
    floor_per_s: float
    description: str = ""

    kind = "throughput"

    def __post_init__(self) -> None:
        if self.floor_per_s <= 0.0:
            raise ValueError(f"throughput floor must be positive, got {self.floor_per_s}")


@dataclass(frozen=True)
class FailureBudgetObjective:
    """Workload decryption-failure probability must stay <= 2**budget."""

    name: str
    log2_budget: float = -20.0
    description: str = ""

    kind = "failure"


class SLORegistry:
    """Named, ordered collection of objectives (one name, one objective)."""

    def __init__(self) -> None:
        self._objectives: "collections.OrderedDict[str, Any]" = collections.OrderedDict()

    def add(self, objective: Any) -> Any:
        if objective.name in self._objectives:
            raise ValueError(f"objective {objective.name!r} already registered")
        self._objectives[objective.name] = objective
        return objective

    def latency(self, name: str, quantile: float, threshold_s: float,
                description: str = "") -> LatencyObjective:
        return self.add(LatencyObjective(name, quantile, threshold_s, description))

    def throughput(self, name: str, floor_per_s: float,
                   description: str = "") -> ThroughputObjective:
        return self.add(ThroughputObjective(name, floor_per_s, description))

    def failure_budget(self, name: str, log2_budget: float = -20.0,
                       description: str = "") -> FailureBudgetObjective:
        return self.add(FailureBudgetObjective(name, log2_budget, description))

    def objectives(self) -> Tuple[Any, ...]:
        return tuple(self._objectives.values())

    @property
    def latency_objectives(self) -> Tuple[LatencyObjective, ...]:
        return tuple(o for o in self._objectives.values()
                     if isinstance(o, LatencyObjective))

    def get(self, name: str) -> Optional[Any]:
        return self._objectives.get(name)

    def __len__(self) -> int:
        return len(self._objectives)

    def __iter__(self):
        return iter(self._objectives.values())


def price_slos(config: Any, params: Any, total_bootstraps: Optional[int] = None,
               slack: float = DEFAULT_SLACK,
               quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
               log2_budget: float = -20.0) -> SLORegistry:
    """Price a default SLO contract from the cycle model.

    Runs :func:`repro.core.simulator.simulate_bootstrap` on ``(config,
    params)`` and derives:

    - per-quantile request-latency thresholds.  With ``total_bootstraps``
      the request population is a scheduled workload whose samples are
      *completion times since start*; requests retire at the modelled
      throughput, so the ``q``-quantile completion time is about
      ``q * total / throughput + bootstrap_latency`` and the threshold is
      ``slack`` times that.  Without it, thresholds price a single
      bootstrap: ``slack * bootstrap_latency``.
    - a throughput floor of ``throughput / slack``;
    - the standard ``2**-20`` decryption-failure budget.

    Call this *before* enabling telemetry: the pricing run publishes its
    own simulator events, which must not contaminate the monitored run.
    """
    from ..core.simulator import simulate_bootstrap  # lazy: core imports us

    if slack < 1.0:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    report = simulate_bootstrap(config, params)
    slos = SLORegistry()
    service_s = (total_bootstraps / report.throughput_bs
                 if total_bootstraps else 0.0)
    for q in quantiles:
        threshold = slack * (q * service_s + report.bootstrap_latency_s)
        slos.latency(
            f"request_p{q * 100:g}", q, threshold,
            description=(f"p{q * 100:g} request latency priced from "
                         f"{config.name}@{params.name} at {slack:g}x slack"),
        )
    slos.throughput(
        "throughput_floor", report.throughput_bs / slack,
        description=(f"modelled {report.throughput_bs:,.0f} bootstraps/s "
                     f"at 1/{slack:g} slack"),
    )
    slos.failure_budget(
        "decrypt_failure", log2_budget,
        description="union-bound decryption-failure probability budget",
    )
    return slos


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveStatus:
    """One objective's verdict inside an :class:`SLOReport`.

    ``budget_remaining`` is the fraction of the error budget left (1.0 =
    untouched, 0.0 = exactly spent, negative = overspent); ``None`` for
    objective kinds without a fractional budget (throughput floors).
    """

    name: str
    kind: str
    target: float
    observed: Optional[float]
    budget_remaining: Optional[float]
    ok: bool
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "observed": self.observed,
            "budget_remaining": self.budget_remaining,
            "ok": self.ok,
            "fields": {k: self.fields[k] for k in sorted(self.fields)},
        }


@dataclass(frozen=True)
class SLOReport:
    """Schema-versioned evaluation of a full SLO contract."""

    schema_version: int
    requests: int
    makespan_s: Optional[float]
    objectives: Tuple[ObjectiveStatus, ...]
    breaches: Tuple[Dict[str, Any], ...]
    latency: Dict[str, Optional[float]]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.objectives)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "ok": self.ok,
            "requests": self.requests,
            "makespan_s": self.makespan_s,
            "latency": {k: self.latency[k] for k in sorted(self.latency)},
            "objectives": [o.to_jsonable() for o in self.objectives],
            "breaches": [dict(sorted(b.items())) for b in self.breaches],
        }

    def render_text(self, width: int = 72) -> str:
        lines = [" SLO report ".center(width, "=")]
        lines.append(f"requests: {self.requests:,}"
                     + (f"   makespan: {self.makespan_s:.4f} s"
                        if self.makespan_s is not None else ""))
        quantile_bits = ", ".join(
            f"{name}={value * 1e3:.2f} ms" if value is not None else f"{name}=-"
            for name, value in sorted(self.latency.items())
        )
        lines.append(f"latency: {quantile_bits}")
        lines.append("-" * width)
        header = (f"{'objective':<22s} {'kind':<10s} {'target':>12s} "
                  f"{'observed':>12s} {'budget left':>11s}  verdict")
        lines.append(header)
        for o in self.objectives:
            target = _fmt(o.kind, o.target)
            observed = _fmt(o.kind, o.observed) if o.observed is not None else "-"
            budget = (f"{o.budget_remaining:+.1%}"
                      if o.budget_remaining is not None else "-")
            verdict = "ok" if o.ok else "BREACH"
            lines.append(f"{o.name:<22.22s} {o.kind:<10s} {target:>12s} "
                         f"{observed:>12s} {budget:>11s}  {verdict}")
        if self.breaches:
            lines.append("-" * width)
            lines.append(f"burn-rate alerts ({len(self.breaches)}):")
            for b in self.breaches:
                lines.append(
                    f"  !! {b['objective']}: burn {b['burn_short']:.1f}x/"
                    f"{b['burn_long']:.1f}x over {b['window_short_s']:g}s/"
                    f"{b['window_long_s']:g}s (factor {b['factor']:g})"
                )
        lines.append(("breached" if not self.ok else "all objectives met")
                     .center(width, "="))
        return "\n".join(lines)


def _fmt(kind: str, value: float) -> str:
    if kind == "latency":
        return f"{value * 1e3:.2f} ms"
    if kind == "throughput":
        return f"{value:,.0f}/s"
    return f"2^{value:.0f}"


# ---------------------------------------------------------------------------
# Monitor
# ---------------------------------------------------------------------------
class _LatencyWindow:
    """Sliding-window good/bad accounting for one latency objective."""

    __slots__ = ("events", "total", "bad")

    def __init__(self) -> None:
        self.events: Deque[Tuple[float, int, int]] = collections.deque()
        self.total = 0  # lifetime requests (never evicted)
        self.bad = 0    # lifetime requests over threshold

    def push(self, t: float, count: int, bad: int, horizon_s: float) -> None:
        self.events.append((t, count, bad))
        self.total += count
        self.bad += bad
        cutoff = t - horizon_s
        while self.events and self.events[0][0] < cutoff:
            self.events.popleft()

    def window_fractions(self, now: float, window_s: float) -> Tuple[int, int]:
        """(requests, bad requests) inside the trailing ``window_s``."""
        total = bad = 0
        cutoff = now - window_s
        for t, count, b in reversed(self.events):
            if t < cutoff:
                break
            total += count
            bad += b
        return total, bad


class SLOMonitor:
    """Bus subscriber evaluating an SLO contract over ``"request"`` events.

    Folds every request sample into one mergeable quantile sketch plus
    per-objective sliding windows, firing ``slo_burn`` anomalies through
    :func:`repro.observability.flightrec.report_anomaly` when a
    multi-window burn-rate pair trips.  Attach around a run::

        monitor = SLOMonitor(slos)
        monitor.attach()
        try:
            run_workload(...)
        finally:
            monitor.detach()
        report = monitor.evaluate(failure=failure_report)
    """

    def __init__(self, slos: SLORegistry, bus: Optional[TelemetryBus] = None,
                 windows: Tuple[Tuple[float, float, float], ...] = DEFAULT_BURN_WINDOWS,
                 cooldown_s: float = 30.0,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        self.slos = slos
        self.bus = bus if bus is not None else BUS
        self.windows = tuple(windows)
        self.cooldown_s = cooldown_s
        self.sketch = QuantileSketch(relative_accuracy)
        self.requests = 0
        self.breaches: List[Dict[str, Any]] = []
        self._horizon_s = max((w[1] for w in self.windows), default=0.0)
        self._lock = threading.Lock()
        self._state: Dict[str, _LatencyWindow] = {
            o.name: _LatencyWindow() for o in slos.latency_objectives
        }
        self._last_fire: Dict[str, float] = {}

    # -- wiring ---------------------------------------------------------
    def attach(self) -> "SLOMonitor":
        self.bus.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        self.bus.unsubscribe(self._on_event)

    def __enter__(self) -> "SLOMonitor":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- folding --------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        if event.kind != "request":
            return
        latency = float(event.value or 0.0)
        count = int(event.fields.get("count", 1) or 1)
        fired: List[Dict[str, Any]] = []
        with self._lock:
            self.sketch.add(latency, count)
            self.requests += count
            for objective in self.slos.latency_objectives:
                state = self._state[objective.name]
                bad = count if latency > objective.threshold_s else 0
                state.push(event.t_s, count, bad, self._horizon_s)
                if bad:
                    alert = self._check_burn(objective, state, event.t_s)
                    if alert is not None:
                        fired.append(alert)
        # Anomalies publish back onto the bus; fire outside the lock so a
        # recorder/dashboard subscriber can never deadlock against us.
        for alert in fired:
            report_anomaly("slo_burn", **alert)

    def _check_burn(self, objective: LatencyObjective, state: _LatencyWindow,
                    now: float) -> Optional[Dict[str, Any]]:
        last = self._last_fire.get(objective.name)
        if last is not None and now - last < self.cooldown_s:
            return None
        budget = objective.budget_fraction
        for short_s, long_s, factor in self.windows:
            n_short, bad_short = state.window_fractions(now, short_s)
            n_long, bad_long = state.window_fractions(now, long_s)
            if not n_short or not n_long:
                continue
            burn_short = (bad_short / n_short) / budget
            burn_long = (bad_long / n_long) / budget
            if burn_short >= factor and burn_long >= factor:
                self._last_fire[objective.name] = now
                alert = {
                    "objective": objective.name,
                    "quantile": objective.quantile,
                    "threshold_s": objective.threshold_s,
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "window_short_s": short_s,
                    "window_long_s": long_s,
                    "factor": factor,
                    "t_s": now,
                }
                self.breaches.append(alert)
                return alert
        return None

    # -- evaluation -----------------------------------------------------
    def evaluate(self, throughput_per_s: Optional[float] = None,
                 failure: Optional[Any] = None) -> SLOReport:
        """Render the contract's current verdict as an :class:`SLOReport`.

        ``throughput_per_s`` overrides the derived throughput (requests
        divided by the max observed sample - correct when samples are
        completion times since start, as the scheduler publishes).
        ``failure`` is an :class:`repro.analysis.failprob.AppFailureReport`
        (or anything with ``total_log2_prob``) backing the failure-budget
        objectives; without one they report unevaluated-but-ok.
        """
        with self._lock:
            sketch = self.sketch.copy()
            requests = self.requests
            state = {name: (s.total, s.bad) for name, s in self._state.items()}
            breaches = tuple(dict(b) for b in self.breaches)
        makespan = sketch.max
        if throughput_per_s is None and makespan and requests:
            throughput_per_s = requests / makespan
        statuses: List[ObjectiveStatus] = []
        for objective in self.slos:
            if isinstance(objective, LatencyObjective):
                total, bad = state[objective.name]
                observed = sketch.quantile(objective.quantile)
                budget = objective.budget_fraction
                bad_fraction = bad / total if total else 0.0
                remaining = 1.0 - bad_fraction / budget
                ok = remaining >= 0.0 and not any(
                    b["objective"] == objective.name for b in breaches
                )
                statuses.append(ObjectiveStatus(
                    name=objective.name, kind=objective.kind,
                    target=objective.threshold_s, observed=observed,
                    budget_remaining=remaining, ok=ok,
                    fields={"quantile": objective.quantile,
                            "requests": total, "bad": bad},
                ))
            elif isinstance(objective, ThroughputObjective):
                observed = throughput_per_s
                ok = observed is None or observed >= objective.floor_per_s
                statuses.append(ObjectiveStatus(
                    name=objective.name, kind=objective.kind,
                    target=objective.floor_per_s, observed=observed,
                    budget_remaining=None, ok=ok,
                    fields={"requests": requests},
                ))
            elif isinstance(objective, FailureBudgetObjective):
                observed = (float(failure.total_log2_prob)
                            if failure is not None else None)
                # Budget used is a probability ratio: the workload spends
                # 2^(observed - budget) of its failure budget.
                remaining = (1.0 - 2.0 ** min(observed - objective.log2_budget, 64.0)
                             if observed is not None else None)
                ok = observed is None or observed <= objective.log2_budget
                statuses.append(ObjectiveStatus(
                    name=objective.name, kind=objective.kind,
                    target=objective.log2_budget, observed=observed,
                    budget_remaining=remaining, ok=ok,
                    fields={"evaluated": observed is not None},
                ))
        return SLOReport(
            schema_version=SLO_REPORT_SCHEMA_VERSION,
            requests=requests,
            makespan_s=makespan,
            objectives=tuple(statuses),
            breaches=breaches,
            latency={f"p{q * 100:g}": sketch.quantile(q)
                     for q in DEFAULT_QUANTILES},
        )
