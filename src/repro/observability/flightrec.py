"""Always-on flight recorder: bounded event ring + anomaly-triggered dumps.

Aircraft keep a flight recorder running at all times precisely because
failures are not reproducible on demand; a serving stack needs the same
thing, and the telemetry bus (:mod:`repro.observability.bus`) finally
gives one stream worth recording.  A :class:`FlightRecorder` subscribes
to the bus and keeps the most recent events in a bounded ring buffer
(``collections.deque(maxlen=...)`` - O(1) append, old events fall off the
back).  When an **anomaly trigger** fires, the recorder freezes the last
``window_s`` seconds of that ring into a self-contained JSON **bundle**:
spans, counter samples, noise records, stage markers and the triggering
event itself, plus the trigger's reason and context.

Trigger catalog (all route through :meth:`FlightRecorder.trigger`):

- ``noise_drift`` - a measured noise sample left the analytic envelope
  (``sigma > drift_sigmas``); detected inline on every ``"noise"`` event;
- ``failure_budget`` - a workload's union-bound decryption-failure
  probability overran its budget (reported by the failure-probability
  analyzer through :func:`report_anomaly`);
- ``latency_spike`` - a scheduled workload blew its latency budget
  (``run_workload(..., latency_budget_s=...)``);
- ``exception`` - an uncaught exception escaped ``run_workload`` or the
  batched bootstrap pipeline (reported, then re-raised);
- ``slo_burn`` - a latency objective's error budget is burning faster
  than its multi-window alert factor (fired by
  :class:`repro.observability.slo.SLOMonitor`);
- ``manual`` - an explicit ``repro record`` capture.

Every trigger publishes an ``"anomaly"`` event back onto the bus (so the
live dashboard shows it) *before* collecting the window, which puts the
anomaly itself inside its own bundle.  Consecutive triggers within
``cooldown_s`` are coalesced into the first dump so a drifting op class
cannot flood the disk.

Discipline matches the bus: one process-wide singleton (:data:`FLIGHT`),
off by default, and the disabled subscriber is a single ``enabled``
read-and-branch with zero allocation (held to it by
``benchmarks/bench_observability_overhead.py``).
"""

from __future__ import annotations

import collections
import json
import os
import threading
from typing import Any, Deque, Dict, List, Optional

from .bus import BUS, EVENT_SCHEMA_VERSION, TelemetryBus, TelemetryEvent, event_to_jsonable

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "FlightRecorder",
    "FLIGHT",
    "report_anomaly",
    "load_bundle",
    "flight_recording",
]

#: Bump on any incompatible change to the flight-bundle JSON shape.
BUNDLE_SCHEMA_VERSION = 1

#: Default ring capacity (events) and dump window (bus seconds).
DEFAULT_CAPACITY = 8192
DEFAULT_WINDOW_S = 30.0
#: Default drift threshold, matching :func:`repro.observability.drift_report`.
DEFAULT_DRIFT_SIGMAS = 6.0


class FlightRecorder:
    """Bounded ring of bus events with anomaly-triggered JSON dumps.

    The recorder holds at most ``capacity`` events; a trigger freezes the
    trailing ``window_s`` seconds into a bundle, keeps it as
    :attr:`last_bundle`, and - when ``dump_dir`` is set - writes it to
    ``flight-<seq>-<reason>.json`` there.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        window_s: float = DEFAULT_WINDOW_S,
        drift_sigmas: float = DEFAULT_DRIFT_SIGMAS,
        cooldown_s: float = 1.0,
        dump_dir: Optional[str] = None,
        enabled: bool = False,
    ):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.window_s = window_s
        self.drift_sigmas = drift_sigmas
        self.cooldown_s = cooldown_s
        self.dump_dir = dump_dir
        self.last_bundle: Optional[Dict[str, Any]] = None
        self.last_dump_path: Optional[str] = None
        self.dumps_written = 0
        self.triggers_fired = 0
        self.triggers_coalesced = 0
        self._ring: Deque[TelemetryEvent] = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._last_trigger_t: Optional[float] = None
        self._bus: TelemetryBus = BUS

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every buffered event and forget the last dump."""
        with self._lock:
            self._ring.clear()
            self._last_trigger_t = None
        self.last_bundle = None
        self.last_dump_path = None
        self.dumps_written = 0
        self.triggers_fired = 0
        self.triggers_coalesced = 0

    def attach(self, bus: Optional[TelemetryBus] = None) -> None:
        """Subscribe to ``bus`` (the global one by default)."""
        self._bus = bus if bus is not None else BUS
        self._bus.subscribe(self._on_event)

    def detach(self) -> None:
        self._bus.unsubscribe(self._on_event)

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording ------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        """Bus subscriber: O(1) ring append + inline drift detection."""
        if not self.enabled:
            return
        self._ring.append(event)
        if event.kind == "noise":
            sigma = event.fields.get("sigma")
            if sigma is not None and sigma > self.drift_sigmas:
                self.trigger(
                    "noise_drift", op=event.name, sigma=float(sigma),
                    drift_sigmas=self.drift_sigmas, event_seq=event.seq,
                )

    # -- triggering -----------------------------------------------------
    def trigger(self, reason: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Fire an anomaly: publish it, freeze the window, maybe dump.

        Returns the bundle, or None when the recorder is disabled or the
        trigger landed inside the cooldown window of the previous one
        (coalesced - the earlier dump already covers it).
        """
        if not self.enabled:
            return None
        self.triggers_fired += 1
        now = self._bus.now()
        with self._lock:
            if (self._last_trigger_t is not None
                    and now - self._last_trigger_t < self.cooldown_s):
                self.triggers_coalesced += 1
                return None
            self._last_trigger_t = now
        # The anomaly event lands in the ring before the window is cut,
        # so every bundle contains its own trigger.
        self._bus.publish("anomaly", reason, **fields)
        bundle = self._bundle(reason, fields)
        self.last_bundle = bundle
        if self.dump_dir is not None:
            self._write(bundle)
        return bundle

    def _bundle(self, reason: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Freeze the trailing window into a self-contained plain dict."""
        from .export import to_jsonable

        now = self._bus.now()
        cutoff = now - self.window_s
        with self._lock:
            window = [e for e in self._ring if e.t_s >= cutoff]
        counts: Dict[str, int] = {}
        for event in window:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "kind": "flight_bundle",
            "event_schema_version": EVENT_SCHEMA_VERSION,
            "trigger": {
                "reason": reason,
                "t_s": now,
                "fields": {k: to_jsonable(fields[k]) for k in sorted(fields)},
            },
            "window_s": self.window_s,
            "capacity": self.capacity,
            "counts": {k: counts[k] for k in sorted(counts)},
            "events": [event_to_jsonable(e) for e in window],
        }

    def _write(self, bundle: Dict[str, Any]) -> str:
        assert self.dump_dir is not None
        os.makedirs(self.dump_dir, exist_ok=True)
        seq = bundle["events"][-1]["seq"] if bundle["events"] else 0
        reason = str(bundle["trigger"]["reason"]).replace("/", "_")
        path = os.path.join(self.dump_dir, f"flight-{seq:08d}-{reason}.json")
        with open(path, "w") as fh:
            json.dump(bundle, fh, indent=1)
        self.last_dump_path = path
        self.dumps_written += 1
        return path

    # -- explicit capture -------------------------------------------------
    def capture(self, reason: str = "manual", **fields: Any) -> Dict[str, Any]:
        """Post-mortem bundle of whatever the ring holds, enabled or not.

        Unlike :meth:`trigger` this never publishes, never dumps and
        ignores the cooldown - it is the read-side API ``repro record``
        and the CI failure hook use to serialize the recorder's state.
        """
        return self._bundle(reason, fields)

    def dump(self, path: str, reason: str = "manual", **fields: Any) -> Dict[str, Any]:
        """Write a :meth:`capture` bundle to ``path`` and return it."""
        bundle = self.capture(reason, **fields)
        with open(path, "w") as fh:
            json.dump(bundle, fh, indent=1)
        return bundle


#: Process-wide flight recorder, subscribed to :data:`BUS` at import and
#: disabled until :func:`repro.observability.enable`.
FLIGHT = FlightRecorder()
FLIGHT.attach(BUS)


def report_anomaly(reason: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Report an anomaly from anywhere: dashboard sees it, recorder dumps.

    Safe to call unconditionally on cold paths (exception handlers,
    budget checks): with the recorder enabled it routes through
    :meth:`FlightRecorder.trigger`; with only the bus enabled it still
    publishes the ``"anomaly"`` event; fully disabled it is a no-op.
    """
    if FLIGHT.enabled:
        return FLIGHT.trigger(reason, **fields)
    if BUS.enabled:
        BUS.publish("anomaly", reason, **fields)
    return None


def load_bundle(path: str) -> Dict[str, Any]:
    """Load a flight bundle, validating kind and schema version."""
    with open(path) as fh:
        bundle = json.load(fh)
    if bundle.get("kind") != "flight_bundle":
        raise ValueError(f"{path} is not a flight-recorder bundle")
    version = bundle.get("schema_version")
    if version != BUNDLE_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has bundle schema {version}, expected {BUNDLE_SCHEMA_VERSION}"
        )
    return bundle


class flight_recording:
    """Context manager enabling bus + recorder for a block.

    ::

        with flight_recording(dump_dir="dumps") as rec:
            run_workload(...)        # anomalies dump automatically
        bundle = rec.capture()       # or capture explicitly at the end
    """

    def __init__(self, dump_dir: Optional[str] = None,
                 window_s: Optional[float] = None, clear: bool = True):
        self._dump_dir = dump_dir
        self._window_s = window_s
        self._clear = clear
        self._prior: Optional[tuple] = None

    def __enter__(self) -> FlightRecorder:
        self._prior = (BUS.enabled, FLIGHT.enabled, FLIGHT.dump_dir,
                       FLIGHT.window_s)
        if self._clear:
            BUS.reset()
            FLIGHT.reset()
        if self._dump_dir is not None:
            FLIGHT.dump_dir = self._dump_dir
        if self._window_s is not None:
            FLIGHT.window_s = self._window_s
        BUS.enable()
        FLIGHT.enable()
        return FLIGHT

    def __exit__(self, *exc: Any) -> None:
        assert self._prior is not None
        BUS.enabled, FLIGHT.enabled, FLIGHT.dump_dir, FLIGHT.window_s = self._prior
