"""Workload analysis: operation counts, memory footprints, compute intensity.

These modules regenerate the paper's Figure 1 motivation study from first
principles (with the counting conventions documented per module).
"""

from .calibration import NoiseMeasurement, calibrate_bootstrap_noise, calibrate_fresh_noise
from .failprob import (
    FAILPROB_SCHEMA_VERSION,
    FailurePointEstimate,
    WorkloadFailureReport,
    estimate_failure_probability,
    gaussian_tail_log2,
)
from .intensity import StageIntensity, bootstrap_intensity
from .param_search import ParameterChoice, cheapest_for_modulus, search_decomposition
from .memory import MemoryBreakdown, bootstrap_memory
from .profile import (
    PROFILE_SCHEMA_VERSION,
    BootstrapProfile,
    WhatIf,
    collect_profile,
    what_if_catalog,
)
from .roofline import RooflinePoint, attainable_rate, machine_balance, workload_points
from .security import SecurityEstimate, classify_parameter_set, estimate_security
from .opcount import OperationBreakdown, count_bootstrap_operations, transform_real_mults

__all__ = [
    "StageIntensity",
    "NoiseMeasurement",
    "calibrate_fresh_noise",
    "calibrate_bootstrap_noise",
    "ParameterChoice",
    "search_decomposition",
    "cheapest_for_modulus",
    "bootstrap_intensity",
    "MemoryBreakdown",
    "SecurityEstimate",
    "RooflinePoint",
    "machine_balance",
    "workload_points",
    "attainable_rate",
    "classify_parameter_set",
    "estimate_security",
    "bootstrap_memory",
    "OperationBreakdown",
    "count_bootstrap_operations",
    "transform_real_mults",
    "PROFILE_SCHEMA_VERSION",
    "BootstrapProfile",
    "WhatIf",
    "collect_profile",
    "what_if_catalog",
    "FAILPROB_SCHEMA_VERSION",
    "FailurePointEstimate",
    "WorkloadFailureReport",
    "estimate_failure_probability",
    "gaussian_tail_log2",
]
