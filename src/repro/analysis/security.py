"""Simplified LWE security estimation for the parameter sets (Table III).

A full lattice estimator is out of scope; we use the standard
rule-of-thumb linear model for binary-secret LWE under lattice-reduction
attacks (the same first-order model parameter-selection tools start
from):

``lambda ~= SECURITY_SLOPE * n / log2(q / sigma)``

where ``sigma`` is the noise standard deviation as a torus fraction.
The slope is calibrated on the TFHE-rs 128-bit point our set IV descends
from (n=742, sigma=2^-15 -> 128 bits), which also places set I at ~86
bits (claimed 80) and set II at ~109 (claimed 110).

Expected honest outcome (see DESIGN.md's parameter-set note): because
this repository re-derives the noise levels for a 32-bit modulus so the
*functional* bootstrap closes, the high-security small-n sets (III, B,
C) estimate below their 64-bit-modulus claims - the estimator makes that
substitution visible rather than hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams

__all__ = ["SECURITY_SLOPE", "SecurityEstimate", "estimate_security", "classify_parameter_set"]

#: Calibrated so (n=742, sigma=2^-15) -> 128 bits, matching the TFHE-rs
#: 128-bit boolean set this repo's set IV descends from.
SECURITY_SLOPE = 2.59


def estimate_security(n: int, q_bits: int, noise_log2: float) -> float:
    """First-order security level (bits) of one LWE instance.

    ``noise_log2`` is the noise stddev as a torus fraction, so the
    modulus-to-noise ratio is ``log2(q/sigma) = -noise_log2``.
    """
    if n <= 0:
        raise ValueError("dimension must be positive")
    log_ratio = -noise_log2
    if log_ratio <= 0:
        raise ValueError("noise must be below the torus scale")
    if log_ratio >= q_bits:
        # Noise below the quantization floor: the effective ratio is the
        # full modulus width.
        log_ratio = q_bits
    return SECURITY_SLOPE * n / log_ratio


@dataclass(frozen=True)
class SecurityEstimate:
    """Security of both halves of a TFHE parameter set."""

    lwe_bits: float
    glwe_bits: float
    claimed_bits: int

    @property
    def effective_bits(self) -> float:
        """The scheme is only as strong as its weaker half."""
        return min(self.lwe_bits, self.glwe_bits)

    @property
    def meets_claim(self) -> bool:
        # Allow 20% estimator slack; this is a first-order model.
        return self.effective_bits >= 0.8 * self.claimed_bits


def classify_parameter_set(params: TFHEParams) -> SecurityEstimate:
    """Estimate the security of both the LWE and GLWE halves of a set."""
    lwe = estimate_security(params.n, params.q_bits, params.lwe_noise_log2)
    glwe = estimate_security(
        params.k * params.N, params.q_bits, params.glwe_noise_log2
    )
    return SecurityEstimate(lwe_bits=lwe, glwe_bits=glwe, claimed_bits=params.lam)
