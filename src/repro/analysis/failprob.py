"""Decryption-failure probability from tracked noise at decision points.

TFHE computations fail *silently*: whenever a noisy phase crosses a
rounding boundary - the modswitch bucket choice inside a bootstrap, the
sign of a gate decode, the nearest-multiple grid of a message decode -
the wrong plaintext comes out with no error raised.  The paper's
throughput claims (like MATCHA's) hold *at a bounded failure rate*, so a
workload report is incomplete without one.

The noise tracker (:mod:`repro.observability.noise`) records every such
decision as a :class:`~repro.observability.noise.FailurePoint` carrying
the decision margin (distance from the noise-free value to the nearest
boundary, torus units) and the predicted variance of the value being
rounded.  Under the CGGI Gaussian noise model the per-point failure
probability is the two-sided tail

``p = erfc(z / sqrt(2))``  with  ``z = margin / std``

and the per-workload probability is the union bound over all points.
Realistic ``z`` values (hundreds of sigmas on the shipped test set) make
``erfc`` underflow to zero in double precision, so everything here works
in log2 space, switching to the asymptotic expansion
``log2 p ~= -z^2/2 * log2(e) - log2(z) + log2(sqrt(2/pi))`` once ``erfc``
can no longer represent the tail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..observability.noise import NoiseTracker

__all__ = [
    "FAILPROB_SCHEMA_VERSION",
    "LOG2_PROB_FLOOR",
    "DEFAULT_LOG2_BUDGET",
    "gaussian_tail_log2",
    "FailurePointEstimate",
    "WorkloadFailureReport",
    "estimate_failure_probability",
    "AppFailureReport",
    "estimate_app_failure",
]

FAILPROB_SCHEMA_VERSION = 1

#: Default workload failure budget: ``p_fail <= 2**-20``, the bound the
#: ``repro noise`` verdict already gates on.
DEFAULT_LOG2_BUDGET = -20.0

#: Probabilities below ``2**LOG2_PROB_FLOOR`` are clamped: "numerically
#: zero", and keeps the JSON output free of ``-Infinity``.
LOG2_PROB_FLOOR = -4096.0

_LOG2_E = math.log2(math.e)
#: Above this many sigmas ``erfc(z/sqrt(2))`` underflows double precision.
_ERFC_Z_LIMIT = 36.0


def gaussian_tail_log2(margin: float, variance: float) -> float:
    """``log2 P(|N(0, variance)| > margin)``, safe far into the tail.

    Returns 0.0 (probability one) for non-positive margins and
    :data:`LOG2_PROB_FLOOR` for non-positive variance (a noiseless value
    cannot cross the boundary).
    """
    if margin <= 0.0:
        return 0.0
    if variance <= 0.0:
        return LOG2_PROB_FLOOR
    z = margin / math.sqrt(variance)
    if z < _ERFC_Z_LIMIT:
        p = math.erfc(z / math.sqrt(2.0))
        if p > 0.0:
            return max(math.log2(p), LOG2_PROB_FLOOR)
    # erfc(x) ~ exp(-x^2) / (x * sqrt(pi)) with x = z / sqrt(2):
    log2_p = -0.5 * z * z * _LOG2_E - math.log2(z) + 0.5 * math.log2(2.0 / math.pi)
    return max(log2_p, LOG2_PROB_FLOOR)


@dataclass(frozen=True)
class FailurePointEstimate:
    """One decision point with its estimated failure probability."""

    op_id: int
    kind: str
    label: str
    margin: float
    std_log2: float
    sigmas: float
    log2_prob: float

    def to_jsonable(self) -> dict:
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "label": self.label,
            "margin": self.margin,
            "std_log2": self.std_log2,
            "sigmas": self.sigmas,
            "log2_prob": self.log2_prob,
        }


@dataclass(frozen=True)
class WorkloadFailureReport:
    """Union-bound decryption-failure probability of one tracked run."""

    schema_version: int
    points: tuple
    total_log2_prob: float

    @property
    def worst(self) -> Optional[FailurePointEstimate]:
        if not self.points:
            return None
        return max(self.points, key=lambda p: p.log2_prob)

    def meets(self, log2_budget: float) -> bool:
        """True when the workload failure probability <= 2**log2_budget."""
        return self.total_log2_prob <= log2_budget

    def to_jsonable(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "total_log2_prob": self.total_log2_prob,
            "num_points": len(self.points),
            "worst": self.worst.to_jsonable() if self.worst else None,
            "points": [p.to_jsonable() for p in self.points],
        }

    def render_text(self) -> str:
        lines = [
            f"decryption-failure probability (union bound over "
            f"{len(self.points)} decision points):",
            f"  log2(p_fail) <= {self.total_log2_prob:.1f}"
            + ("  (numerically zero)" if self.total_log2_prob <= LOG2_PROB_FLOOR
               else ""),
        ]
        worst = self.worst
        if worst is not None:
            label = f" [{worst.label}]" if worst.label else ""
            lines.append(
                f"  worst point: {worst.kind}{label} margin={worst.margin:.4g} "
                f"std=2^{worst.std_log2:.1f} ({worst.sigmas:.1f} sigma, "
                f"log2 p = {worst.log2_prob:.1f})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class AppFailureReport:
    """Analytic decryption-failure budget for an app-scale workload.

    The simulated workloads (``repro workload``, ``repro profile``) never
    materialize ciphertexts, so there are no tracked failure points to
    sum - instead this report *extrapolates*: one boolean-gate decision
    per bootstrap, with the decision variance taken from the CGGI noise
    algebra (two bootstrapped operands entering the gate's linear
    combination, plus the modulus-switch rounding of the decision phase)
    and the union bound scaled by the workload's bootstrap count.  It is
    the analytic counterpart of :func:`estimate_failure_probability`,
    answering the open telemetry question "does this workload stay inside
    its failure budget at full scale?".
    """

    schema_version: int
    params_name: str
    bootstraps: int
    margin: float
    decision_std_log2: float
    sigmas: float
    per_bootstrap_log2_prob: float
    total_log2_prob: float
    log2_budget: float

    @property
    def within_budget(self) -> bool:
        return self.total_log2_prob <= self.log2_budget

    def to_jsonable(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "params": self.params_name,
            "bootstraps": self.bootstraps,
            "margin": self.margin,
            "decision_std_log2": self.decision_std_log2,
            "sigmas": self.sigmas,
            "per_bootstrap_log2_prob": self.per_bootstrap_log2_prob,
            "total_log2_prob": self.total_log2_prob,
            "log2_budget": self.log2_budget,
            "within_budget": self.within_budget,
        }

    def render_text(self) -> str:
        zero = ("  (numerically zero)"
                if self.total_log2_prob <= LOG2_PROB_FLOOR else "")
        return "\n".join([
            f"analytic failure budget ({self.params_name}, "
            f"{self.bootstraps:,} bootstraps):",
            f"  decision margin {self.margin:.4g}, std "
            f"2^{self.decision_std_log2:.1f} ({self.sigmas:.1f} sigma)",
            f"  log2(p_fail) <= {self.total_log2_prob:.1f}{zero}",
            f"  within 2^{self.log2_budget:.0f} budget: "
            f"{'yes' if self.within_budget else 'NO'}",
        ])


def estimate_app_failure(params, bootstraps: int,
                         margin: float = 1.0 / 8.0,
                         log2_budget: float = DEFAULT_LOG2_BUDGET) -> AppFailureReport:
    """Analytic union-bound failure probability for ``bootstraps`` gates.

    ``margin`` is the decision margin per bootstrap in torus units; the
    default ``1/8`` is the boolean-gate margin (quarter-torus plaintexts,
    the decision phase lands half a step from the boundary).  Reports a
    ``failure_budget`` anomaly through the flight recorder when the
    budget is overrun, so a breach during a telemetry-enabled run dumps
    the window that produced it.
    """
    from ..observability.flightrec import report_anomaly
    from ..tfhe.noise import (
        blind_rotation_noise_variance,
        key_switch_noise_variance,
        modulus_switch_noise_variance,
    )

    bootstrap_out = key_switch_noise_variance(
        params, blind_rotation_noise_variance(params)
    )
    # A gate decision sees the sum of two bootstrapped operands plus the
    # modswitch rounding of its own decision phase.
    variance = 2.0 * bootstrap_out + modulus_switch_noise_variance(params)
    std = math.sqrt(variance)
    per_point = gaussian_tail_log2(margin, variance)
    count = max(int(bootstraps), 1)
    total = min(per_point + math.log2(count), 0.0)
    total = max(total, LOG2_PROB_FLOOR)
    report = AppFailureReport(
        schema_version=FAILPROB_SCHEMA_VERSION,
        params_name=params.name,
        bootstraps=count,
        margin=margin,
        decision_std_log2=math.log2(std) if std > 0.0 else LOG2_PROB_FLOOR,
        sigmas=margin / std if std > 0.0 else math.inf,
        per_bootstrap_log2_prob=per_point,
        total_log2_prob=total,
        log2_budget=log2_budget,
    )
    if not report.within_budget:
        report_anomaly("failure_budget", params=params.name,
                       bootstraps=count, total_log2_prob=total,
                       log2_budget=log2_budget)
    return report


def estimate_failure_probability(tracker: NoiseTracker) -> WorkloadFailureReport:
    """Estimate the tracked workload's decryption-failure probability.

    Every failure point the tracker recorded becomes one Gaussian-tail
    term; the total is the union bound (sum of probabilities, computed as
    a log-sum-exp in log2 space so deep tails don't vanish).
    """
    estimates: List[FailurePointEstimate] = []
    for point in tracker.failure_points():
        std = math.sqrt(max(point.variance, 0.0))
        estimates.append(FailurePointEstimate(
            op_id=point.op_id,
            kind=point.kind,
            label=point.label,
            margin=point.margin,
            std_log2=math.log2(std) if std > 0.0 else LOG2_PROB_FLOOR,
            sigmas=point.margin / std if std > 0.0 else math.inf,
            log2_prob=gaussian_tail_log2(point.margin, point.variance),
        ))
    if estimates:
        lmax = max(e.log2_prob for e in estimates)
        if lmax <= LOG2_PROB_FLOOR:
            total = LOG2_PROB_FLOOR
        else:
            total = lmax + math.log2(
                sum(2.0 ** (e.log2_prob - lmax) for e in estimates)
            )
            total = min(total, 0.0)  # probabilities cap at one
    else:
        total = LOG2_PROB_FLOOR
    return WorkloadFailureReport(
        schema_version=FAILPROB_SCHEMA_VERSION,
        points=tuple(estimates),
        total_log2_prob=total,
    )
