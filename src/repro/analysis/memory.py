"""Memory-footprint accounting for the bootstrap working set (Figure 1-b).

The bootstrap's memory demand is dominated by the two evaluation keys:
the BSK during blind rotation (the paper reports 101.4 MB for the Fig. 1
set - their count stores the transform image in expanded double-complex
form; our packed 32+32-bit layout gives 70.9 MB, see EXPERIMENTS.md) and
the KSK during key switching (paper: 33.8 MB; ours: 35.5 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams

__all__ = ["MemoryBreakdown", "bootstrap_memory"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes required by each bootstrap stage's working set."""

    bsk_bytes: int
    ksk_bytes: int
    acc_bytes: int
    test_poly_bytes: int
    lwe_bytes: int

    @property
    def blind_rotation_bytes(self) -> int:
        return self.bsk_bytes + self.acc_bytes + self.test_poly_bytes

    @property
    def key_switch_bytes(self) -> int:
        return self.ksk_bytes

    @property
    def total_bytes(self) -> int:
        return (
            self.bsk_bytes + self.ksk_bytes + self.acc_bytes
            + self.test_poly_bytes + self.lwe_bytes
        )

    def megabytes(self) -> dict:
        mb = 1024 * 1024
        return {
            "bsk": self.bsk_bytes / mb,
            "ksk": self.ksk_bytes / mb,
            "acc": self.acc_bytes / mb,
            "test_poly": self.test_poly_bytes / mb,
            "lwe": self.lwe_bytes / mb,
        }


def bootstrap_memory(params: TFHEParams) -> MemoryBreakdown:
    """Working-set bytes of one bootstrap under ``params``."""
    return MemoryBreakdown(
        bsk_bytes=params.bsk_transform_bytes,
        ksk_bytes=params.ksk_bytes,
        acc_bytes=params.glwe_bytes,
        test_poly_bytes=params.glwe_bytes,
        lwe_bytes=2 * params.lwe_bytes,
    )
