"""Empirical noise calibration: measured distributions vs the model.

The noise formulas in :mod:`repro.tfhe.noise` predict variances; this
module *measures* them by running real encryptions/bootstraps with the
secret key in hand and collecting phase errors - the experiment a
parameter-selection pipeline runs before trusting any analytic model.

``calibrate_fresh_noise`` and ``calibrate_bootstrap_noise`` return
:class:`NoiseMeasurement` records (sample count, empirical std,
predicted std, worst observation); ``NoiseMeasurement.consistent``
applies a generous chi-square-style band, since analytic TFHE noise
models are intentionally conservative upper bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..tfhe.encoding import identity_test_polynomial
from ..tfhe.bootstrap import programmable_bootstrap
from ..tfhe.noise import (
    bootstrap_output_noise_std_log2,
    measure_lwe_noise,
)
from ..tfhe.ops import TfheContext
from ..tfhe.torus import encode_message

__all__ = ["NoiseMeasurement", "calibrate_fresh_noise", "calibrate_bootstrap_noise"]


@dataclass(frozen=True)
class NoiseMeasurement:
    """Empirical vs predicted noise of one ciphertext population."""

    label: str
    samples: int
    empirical_std: float
    predicted_std: float
    worst_abs_error: float

    @property
    def ratio(self) -> float:
        """Empirical / predicted; < 1 means the model is conservative."""
        if self.predicted_std <= 0:
            return math.inf
        return self.empirical_std / self.predicted_std

    def consistent(self, slack: float = 4.0) -> bool:
        """Measured noise must not exceed the prediction by ``slack``x.

        (The other direction - measuring *less* noise than predicted -
        is expected: the formulas are worst-case bounds.)
        """
        return self.ratio <= slack


def calibrate_fresh_noise(
    ctx: TfheContext, samples: int = 64, message: int = 1, p: int = 8
) -> NoiseMeasurement:
    """Measure the phase error of fresh encryptions."""
    if samples < 2:
        raise ValueError("need at least two samples")
    expected = int(encode_message(message, p, ctx.params.q_bits)[()])
    errors = np.array([
        measure_lwe_noise(ctx.encrypt(message, p), ctx.keyset.lwe_key, expected)
        for _ in range(samples)
    ])
    return NoiseMeasurement(
        "fresh-encryption",
        samples,
        float(errors.std(ddof=1)),
        2.0 ** ctx.params.lwe_noise_log2,
        float(np.abs(errors).max()),
    )


def calibrate_bootstrap_noise(
    ctx: TfheContext, samples: int = 16, message: int = 2, p: int = 8
) -> NoiseMeasurement:
    """Measure the phase error of bootstrapped ciphertexts."""
    if samples < 2:
        raise ValueError("need at least two samples")
    tp = identity_test_polynomial(ctx.params, p)
    expected = int(encode_message(message, p, ctx.params.q_bits)[()])
    errors = []
    for _ in range(samples):
        out = programmable_bootstrap(ctx.encrypt(message, p), tp, ctx.keyset)
        errors.append(measure_lwe_noise(out, ctx.keyset.lwe_key, expected))
    errors = np.array(errors)
    return NoiseMeasurement(
        "bootstrap-output",
        samples,
        float(errors.std(ddof=1)),
        2.0 ** bootstrap_output_noise_std_log2(ctx.params),
        float(np.abs(errors).max()),
    )
