"""Compute intensity (operations/byte) per bootstrap stage.

Section III's observation: blind rotation is compute-intensive (high
ops/byte) while key switching and the other stages are memory-intensive
(low ops/byte) - which is why Morphling splits the machine into XPUs and
a programmable VPU.  This module quantifies that split from the
operation and memory models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams
from .memory import bootstrap_memory
from .opcount import count_bootstrap_operations

__all__ = ["StageIntensity", "bootstrap_intensity"]


@dataclass(frozen=True)
class StageIntensity:
    """Ops/byte per stage; the XPU/VPU split criterion."""

    blind_rotation: float
    key_switch: float
    other: float

    def compute_bound_stage(self) -> str:
        """The stage with the highest arithmetic intensity."""
        stages = {
            "blind_rotation": self.blind_rotation,
            "key_switch": self.key_switch,
            "other": self.other,
        }
        return max(stages, key=stages.get)


def bootstrap_intensity(params: TFHEParams) -> StageIntensity:
    """Operations per byte for each bootstrap stage."""
    ops = count_bootstrap_operations(params)
    mem = bootstrap_memory(params)
    other_bytes = mem.lwe_bytes + mem.acc_bytes  # MS/SE touch ciphertexts only
    return StageIntensity(
        blind_rotation=ops.blind_rotation_ops / mem.blind_rotation_bytes,
        key_switch=ops.key_switch_ops / mem.key_switch_bytes,
        other=ops.other_ops / max(other_bytes, 1),
    )
