"""Bottleneck-attribution profiler built on the perf-counter subsystem.

``collect_profile`` runs one steady-state bootstrap group with the
:mod:`repro.observability.counters` bank enabled and condenses what the
counters saw into a single schema-versioned report:

- **utilization** per overlapped group resource (XPU compute, BSK
  bandwidth, VPU compute, KSK bandwidth) - busy seconds over the group
  time, so the bottleneck row reads 1.0;
- **stage cycles and occupancy** inside the XPU pipeline and the VPU,
  the paper's Fig. 7-a component view at counter granularity;
- **per-HBM-channel traffic** and the sampled buffer high-water marks;
- **roofline position** of the two big stages at the achieved reuse
  factors (:mod:`repro.analysis.roofline`);
- **what-if estimates**: each candidate upgrade (2x XPU HBM bandwidth,
  2x FFT units, ...) is priced by *actually re-running the simulator*
  with the perturbed configuration - no analytical shortcut that could
  drift from the model - and reported as a speedup over the baseline;
- the counter **digest**, the fingerprint the benchmark-regression
  harness compares across commits.

The report is a plain dataclass: ``repro profile --json`` serializes it
with the shared :func:`repro.observability.to_jsonable` exporter, and
``schema_version`` gates consumers the same way the bench harness does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.accelerator import MorphlingConfig
from ..core.simulator import SimulationReport, simulate_bootstrap
from ..observability import counting
from ..params import TFHEParams
from .roofline import machine_balance, workload_points

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "WhatIf",
    "BootstrapProfile",
    "what_if_catalog",
    "collect_profile",
]

#: Bump on any incompatible change to :class:`BootstrapProfile`'s JSON shape.
PROFILE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WhatIf:
    """One candidate upgrade, priced by re-running the perturbed simulator."""

    name: str
    description: str
    overrides: Dict[str, Any]
    baseline_throughput_bs: float
    throughput_bs: float
    speedup: float
    bottleneck_before: str
    bottleneck_after: str


@dataclass(frozen=True)
class BootstrapProfile:
    """Schema-versioned bottleneck-attribution report for one run."""

    schema_version: int
    config_name: str
    params_name: str
    clock_ghz: float
    throughput_bs: float
    bootstrap_latency_ms: float
    bottleneck: str
    group_size: int
    acc_streams: int
    bsk_reuse: int
    ksk_reuse: int
    group_time_s: float
    utilization: Dict[str, float]
    latency_fractions: Dict[str, float]
    xpu_stage_cycles: Dict[str, float]
    xpu_occupancy: Dict[str, float]
    vpu_stage_cycles: Dict[str, float]
    hbm_channel_bytes: Dict[str, float]
    hbm_channel_utilization: Dict[str, float]
    noc_hops: Dict[str, float]
    buffer_watermarks: Dict[str, float]
    rotator_ops: Dict[str, float]
    roofline_balance: Dict[str, float]
    roofline_points: List[Dict[str, Any]]
    counters_digest: str
    what_ifs: List[WhatIf] = field(default_factory=list)

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Human-readable report (the default ``repro profile`` output)."""
        lines = [
            f"profile: {self.config_name} @ set {self.params_name} "
            f"({self.clock_ghz:g} GHz)",
            f"  throughput        : {self.throughput_bs:,.0f} bootstraps/s",
            f"  bootstrap latency : {self.bootstrap_latency_ms:.3f} ms",
            f"  scheduler group   : {self.group_size} ciphertexts "
            f"({self.acc_streams} streams, BSK/KSK reuse "
            f"{self.bsk_reuse}x/{self.ksk_reuse}x)",
            f"  bottleneck        : {self.bottleneck}",
            "  resource utilization (of group time):",
        ]
        for name, util in self.utilization.items():
            marker = "  <- bottleneck" if name == self.bottleneck else ""
            lines.append(f"    {name:16s} {util:7.1%}{marker}")
        lines.append("  XPU pipeline occupancy (of the iteration interval):")
        for stage, occ in self.xpu_occupancy.items():
            lines.append(f"    {stage:16s} {occ:7.1%}")
        lines.append("  roofline:")
        for point in self.roofline_points:
            regime = "compute-bound" if point["compute_bound"] else "memory-bound"
            lines.append(
                f"    {str(point['name']):16s} "
                f"{float(point['ops_per_byte']):10.1f} ops/B  ({regime})"
            )
        if self.what_ifs:
            lines.append("  what-if (simulator re-run with the perturbed config):")
            for wi in self.what_ifs:
                shift = (
                    ""
                    if wi.bottleneck_after == wi.bottleneck_before
                    else f", bottleneck -> {wi.bottleneck_after}"
                )
                lines.append(
                    f"    {wi.name:16s} {wi.speedup:5.2f}x  "
                    f"({wi.description}{shift})"
                )
        lines.append(f"  counters digest   : {self.counters_digest[:16]}...")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def what_if_catalog(config: MorphlingConfig) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Candidate upgrades as ``(name, description, config overrides)``.

    Channel-count doublings keep the *other* group's bandwidth constant
    by doubling the stack bandwidth and channel count together with the
    target group's share (integral for any starting split), so each
    what-if isolates exactly one resource.
    """
    return [
        (
            "xpu_hbm_2x",
            "2x XPU HBM bandwidth, VPU bandwidth unchanged",
            {
                "hbm_bandwidth_gbs": config.hbm_bandwidth_gbs * 2,
                "hbm_channels": config.hbm_channels * 2,
                "xpu_hbm_channels": config.xpu_hbm_channels * 2,
            },
        ),
        (
            "vpu_hbm_2x",
            "2x VPU HBM bandwidth, XPU bandwidth unchanged",
            {
                "hbm_bandwidth_gbs": config.hbm_bandwidth_gbs * 2,
                "hbm_channels": config.hbm_channels * 2,
                "vpu_hbm_channels": config.vpu_hbm_channels * 2,
            },
        ),
        (
            "fft_units_2x",
            "2x FFT and IFFT units per XPU",
            {
                "fft_units_per_xpu": config.fft_units_per_xpu * 2,
                "ifft_units_per_xpu": config.ifft_units_per_xpu * 2,
            },
        ),
        (
            "vpu_macs_2x",
            "2x VPU MAC throughput",
            {"vpu_lanes_per_group": config.vpu_lanes_per_group * 2},
        ),
        (
            "clock_1p5x",
            "1.5x core clock, memory system unchanged",
            {"clock_ghz": config.clock_ghz * 1.5},
        ),
        (
            "a1_2x",
            "2x Private-A1 capacity and stream cap",
            {
                "private_a1_bytes": config.private_a1_bytes * 2,
                "max_acc_streams": config.max_acc_streams * 2,
            },
        ),
    ]


def _evaluate_what_ifs(
    config: MorphlingConfig,
    params: TFHEParams,
    baseline: SimulationReport,
) -> List[WhatIf]:
    results: List[WhatIf] = []
    for name, description, overrides in what_if_catalog(config):
        perturbed = simulate_bootstrap(config.with_overrides(**overrides), params)
        results.append(
            WhatIf(
                name=name,
                description=description,
                overrides=dict(overrides),
                baseline_throughput_bs=baseline.throughput_bs,
                throughput_bs=perturbed.throughput_bs,
                speedup=perturbed.throughput_bs / baseline.throughput_bs,
                bottleneck_before=baseline.bottleneck,
                bottleneck_after=perturbed.bottleneck,
            )
        )
    return results


def collect_profile(
    config: Optional[MorphlingConfig] = None,
    params: Optional[TFHEParams] = None,
    what_ifs: bool = True,
) -> BootstrapProfile:
    """Profile one steady-state group of ``config`` running ``params``.

    Runs the simulator once under :func:`repro.observability.counting`
    (the global bank is cleared first and restored to its prior enabled
    state after), then optionally prices the what-if catalog with the
    counters *disabled* so the perturbed re-runs cannot contaminate the
    baseline's counter digest.
    """
    if config is None:
        config = MorphlingConfig()
    if params is None:
        from ..params import get_params

        params = get_params("I")

    with counting() as bank:
        report = simulate_bootstrap(config, params)
        snapshot = bank.snapshot()
        digest = bank.digest()

    times = report.resource_times()
    group_time = report.group_time_s
    utilization = {k: v / group_time for k, v in times.items()}

    cycles: Dict[str, float] = snapshot["cycles"]
    xpu_stage_cycles = {
        key.split("/", 2)[2]: value
        for key, value in cycles.items()
        if key.startswith("xpu/stage/")
    }
    vpu_stage_cycles = {
        key.split("/", 2)[2]: value
        for key, value in cycles.items()
        if key.startswith("vpu/stage/")
    }
    hbm_channel_bytes = {
        key: value
        for key, value in snapshot["bytes"].items()
        if key.startswith("hbm/channel/")
    }
    noc_hops = {
        key.split("/", 2)[2]: value
        for key, value in snapshot["ops"].items()
        if key.startswith("noc/hops/")
    }
    rotator_ops = {
        key: value
        for key, value in snapshot["ops"].items()
        if key.startswith("rotator/")
    }
    watermarks: Dict[str, float] = snapshot["watermarks"]
    buffer_watermarks = {
        key.split("/", 1)[1]: value
        for key, value in watermarks.items()
        if key.startswith("buffer/")
    }
    hbm_channel_utilization = {
        key.rsplit("/", 1)[0]: value
        for key, value in watermarks.items()
        if key.startswith("hbm/channel/") and key.endswith("/utilization")
    }

    points = [
        {
            "name": p.name,
            "ops_per_byte": p.ops_per_byte,
            "compute_bound": p.compute_bound,
        }
        for p in workload_points(
            config, params, bsk_reuse=report.bsk_reuse, ksk_reuse=report.ksk_reuse
        )
    ]

    return BootstrapProfile(
        schema_version=PROFILE_SCHEMA_VERSION,
        config_name=report.config_name,
        params_name=report.params_name,
        clock_ghz=report.clock_ghz,
        throughput_bs=report.throughput_bs,
        bootstrap_latency_ms=report.bootstrap_latency_ms,
        bottleneck=report.bottleneck,
        group_size=report.group_size,
        acc_streams=report.acc_streams,
        bsk_reuse=report.bsk_reuse,
        ksk_reuse=report.ksk_reuse,
        group_time_s=report.group_time_s,
        utilization=utilization,
        latency_fractions=report.latency_fractions(),
        xpu_stage_cycles=xpu_stage_cycles,
        xpu_occupancy=report.iteration.occupancy(),
        vpu_stage_cycles=vpu_stage_cycles,
        hbm_channel_bytes=hbm_channel_bytes,
        hbm_channel_utilization=hbm_channel_utilization,
        noc_hops=noc_hops,
        buffer_watermarks=buffer_watermarks,
        rotator_ops=rotator_ops,
        roofline_balance=machine_balance(config),
        roofline_points=points,
        counters_digest=digest,
        what_ifs=_evaluate_what_ifs(config, params, report) if what_ifs else [],
    )
