"""Parameter optimization: pick the cheapest decomposition that closes.

A miniature of Concrete's parameter optimizer (the paper's reference
[18], "Parameter Optimization and Larger Precision for (T)FHE"): given a
target message modulus and the (N, n, k) skeleton, search the gadget
decomposition space ``(beta_bits, l_b, beta_ks_bits, l_k)`` for the
configuration that minimizes bootstrap cost while the predicted output
noise still decodes with margin.

Cost model: blind-rotation work scales with ``l_b`` (it multiplies the
polynomial products *and* the BSK bytes) and key switching with ``l_k``,
so the optimizer wants both as small as the noise budget allows - which
is exactly why the paper's Table III sets pair small ``l_b`` with wide
bases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams
from ..tfhe.noise import bootstrap_output_noise_std_log2, max_noise_for_message_modulus

__all__ = ["ParameterChoice", "search_decomposition", "cheapest_for_modulus"]


@dataclass(frozen=True)
class ParameterChoice:
    """One feasible decomposition with its cost and noise margin."""

    params: TFHEParams
    cost: float
    noise_std: float
    budget: float

    @property
    def margin(self) -> float:
        """Budget / (4 sigma): >= 1 means the choice decodes safely."""
        return self.budget / (4.0 * self.noise_std)


def _bootstrap_cost(params: TFHEParams) -> float:
    """Relative bootstrap cost: external-product work + KS work.

    Polynomial products dominate (each costs ~N log N); KS contributes
    its MAC count scaled to the same units.
    """
    import math

    br = params.polymults_per_bootstrap * params.N * math.log2(params.N)
    ks = params.k * params.N * params.l_k * (params.n + 1)
    return br + ks


def search_decomposition(
    base: TFHEParams,
    p: int,
    sigmas: float = 4.0,
    l_b_range=range(1, 5),
    l_k_range=range(2, 7),
) -> list:
    """Enumerate feasible (beta, l_b, beta_ks, l_k) choices, cheapest first.

    For every level count the base width is maximized (wider base =
    fewer levels of work) subject to fitting in the modulus; a choice is
    feasible when the predicted bootstrap output noise decodes ``p``
    with a ``sigmas`` margin.
    """
    if p < 2 or p & (p - 1):
        raise ValueError("message modulus must be a power of two >= 2")
    budget = max_noise_for_message_modulus(p)
    feasible = []
    for l_b in l_b_range:
        for l_k in l_k_range:
            # Cost depends only on the level counts; among base widths we
            # keep the feasible choice with the most noise margin.
            best = None
            for beta_bits in range(1, base.q_bits // l_b + 1):
                for beta_ks_bits in range(1, base.q_bits // l_k + 1):
                    candidate = base.with_overrides(
                        name=f"{base.name}-b{beta_bits}l{l_b}-kb{beta_ks_bits}kl{l_k}",
                        beta_bits=beta_bits, l_b=l_b,
                        beta_ks_bits=beta_ks_bits, l_k=l_k,
                    )
                    std = 2.0 ** bootstrap_output_noise_std_log2(candidate)
                    if sigmas * std < budget and (best is None or std < best.noise_std):
                        best = ParameterChoice(
                            candidate, _bootstrap_cost(candidate), std, budget
                        )
            if best is not None:
                feasible.append(best)
    feasible.sort(key=lambda c: c.cost)
    return feasible


def cheapest_for_modulus(base: TFHEParams, p: int, sigmas: float = 4.0) -> ParameterChoice:
    """The cheapest feasible decomposition for message modulus ``p``."""
    feasible = search_decomposition(base, p, sigmas)
    if not feasible:
        raise ValueError(
            f"no feasible decomposition for p={p} on {base.describe()}"
        )
    return feasible[0]
