"""Operation counting for the bootstrap breakdown (paper Figure 1).

The paper profiles TFHE bootstrapping (Concrete, 128-bit set: N=1024,
n=481, k=2, l_b=4, l_k=9) and reports that I/FFT contributes ~88 % of all
multiplications, key switching ~1.9 %, everything else ~1 %.

Counting conventions (documented because Fig. 1's shares depend on them):

- one *operation* is one real multiplication; a complex multiplication
  counts as 4 (the paper counts single multiplications);
- every polynomial multiplication pays a forward and an inverse
  negacyclic transform (the paper's motivation explicitly doubles the
  transform count per polynomial product - no reuse in the baseline);
- a negacyclic transform of size ``N`` is an ``N/2``-point FFT plus the
  twisting pass: ``4 * ((N/4) * log2(N/2) + N/2)`` real multiplications;
- pointwise products in the transform domain are ``N/2`` complex
  multiplications;
- key switching is ``k*N * l_k`` scalar x (n+1)-vector multiplications;
- modulus switching is one multiply per mask element; decomposition and
  sample extraction are shifts/moves (no multiplications), matching the
  paper's "other operations are a small fraction" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams
from ..transforms.fft import fft_stage_count

__all__ = ["OperationBreakdown", "transform_real_mults", "count_bootstrap_operations"]


def transform_real_mults(N: int) -> int:
    """Real multiplications of one negacyclic transform (N/2-pt FFT + twist)."""
    points = N // 2
    butterfly_cmults = (points // 2) * fft_stage_count(points)
    twist_cmults = points
    return 4 * (butterfly_cmults + twist_cmults)


@dataclass(frozen=True)
class OperationBreakdown:
    """Multiplication counts per bootstrap, by stage."""

    fft_ops: int
    pointwise_ops: int
    key_switch_ops: int
    mod_switch_ops: int
    decomposition_ops: int
    sample_extract_ops: int

    @property
    def blind_rotation_ops(self) -> int:
        return self.fft_ops + self.pointwise_ops

    @property
    def other_ops(self) -> int:
        return self.mod_switch_ops + self.decomposition_ops + self.sample_extract_ops

    @property
    def total(self) -> int:
        return self.blind_rotation_ops + self.key_switch_ops + self.other_ops

    def shares(self) -> dict:
        """Fractional shares in the same buckets Fig. 1 plots."""
        t = self.total
        return {
            "ifft_fft": self.fft_ops / t,
            "pointwise": self.pointwise_ops / t,
            "key_switch": self.key_switch_ops / t,
            "other": self.other_ops / t,
        }


def count_bootstrap_operations(params: TFHEParams) -> OperationBreakdown:
    """Count the multiplications of one programmable bootstrap."""
    p = params
    polymults = p.polymults_per_bootstrap  # n * (k+1)^2 * l_b
    transforms = 2 * polymults  # forward + inverse per product
    fft_ops = transforms * transform_real_mults(p.N)
    pointwise_ops = polymults * (p.N // 2) * 4
    key_switch_ops = p.k * p.N * p.l_k * (p.n + 1)
    mod_switch_ops = p.n + 1
    return OperationBreakdown(
        fft_ops=fft_ops,
        pointwise_ops=pointwise_ops,
        key_switch_ops=key_switch_ops,
        mod_switch_ops=mod_switch_ops,
        decomposition_ops=0,
        sample_extract_ops=0,
    )
