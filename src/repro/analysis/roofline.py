"""Roofline analysis of Morphling: machine balance vs workload intensity.

Section III's compute-vs-memory split, made quantitative: the machine's
*balance point* is its peak compute rate divided by its memory bandwidth
(ops/byte); workloads above it are compute-bound, below it memory-bound.
The analysis confirms the paper's architecture argument end to end:

- raw key switching (no reuse) sits far below the VPU group's balance
  point -> it is bandwidth work, which is why Morphling gives the VPU 6
  of the 8 HBM channels;
- the scheduler's reuse factors (64x BSK / 64x KSK) are exactly what
  drags both stages across their balance points into the compute-bound
  regime - the roofline view of Section IV-C's argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.accelerator import MorphlingConfig
from ..params import TFHEParams
from .opcount import count_bootstrap_operations

__all__ = ["RooflinePoint", "machine_balance", "workload_points", "attainable_rate"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload on the roofline: intensity and its binding resource."""

    name: str
    ops_per_byte: float
    compute_bound: bool


def _xpu_peak_ops(config: MorphlingConfig) -> float:
    """Peak real multiply rate of all VPE arrays (ops/s).

    Each VPE does one complex MAC per lane element per cycle: 8 lanes x
    4 real multiplies.
    """
    vpes = config.num_xpus * config.vpe_rows * config.vpe_cols
    return vpes * config.fft_lanes * 4 * config.clock_ghz * 1e9


def _vpu_peak_ops(config: MorphlingConfig) -> float:
    return config.vpu_macs_per_cycle * config.clock_ghz * 1e9


def machine_balance(config: MorphlingConfig) -> dict:
    """Balance points (ops/byte) of the XPU and VPU resource pairs."""
    return {
        "xpu": _xpu_peak_ops(config) / (config.xpu_bandwidth_gbs * 1e9),
        "vpu": _vpu_peak_ops(config) / (config.vpu_bandwidth_gbs * 1e9),
    }


def workload_points(
    config: MorphlingConfig, params: TFHEParams, bsk_reuse: int = 1, ksk_reuse: int = 1
) -> list:
    """Roofline positions of the bootstrap's two big stages.

    With the default ``reuse = 1`` the points describe the raw algorithm
    (key switching lands memory-bound); passing the scheduler's factors
    (64/64) shows both stages crossing into the compute-bound regime.
    """
    ops = count_bootstrap_operations(params)
    balance = machine_balance(config)
    br_bytes = params.bsk_transform_bytes / bsk_reuse
    # The VPE array does the pointwise work; transforms run on dedicated
    # FFT pipelines, so the roofline charges the MAC stream.
    br_intensity = ops.pointwise_ops / br_bytes
    ks_bytes = params.ksk_bytes / ksk_reuse
    ks_intensity = ops.key_switch_ops / ks_bytes
    return [
        RooflinePoint("blind_rotation", br_intensity,
                      compute_bound=br_intensity > balance["xpu"]),
        RooflinePoint("key_switch", ks_intensity,
                      compute_bound=ks_intensity > balance["vpu"]),
    ]


def attainable_rate(
    config: MorphlingConfig, intensity_ops_per_byte: float, unit: str = "xpu"
) -> float:
    """Classic roofline: min(peak, bandwidth * intensity), in ops/s."""
    if intensity_ops_per_byte < 0:
        raise ValueError("intensity must be non-negative")
    if unit == "xpu":
        peak, bw = _xpu_peak_ops(config), config.xpu_bandwidth_gbs * 1e9
    elif unit == "vpu":
        peak, bw = _vpu_peak_ops(config), config.vpu_bandwidth_gbs * 1e9
    else:
        raise ValueError(f"unknown unit {unit!r}; expected 'xpu' or 'vpu'")
    return min(peak, bw * intensity_ops_per_byte)
