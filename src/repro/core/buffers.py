"""Specialized on-chip buffers and the double-pointer rotator (Section V-C).

Morphling's first-level memory holds four buffer types; the performance
model needs their capacity arithmetic (how many ACC ciphertext *streams*
fit in Private-A1, which bounds BSK reuse), and the rotator needs a
functional model proving the double-pointer scheme streams
``(ACC, X^t * ACC)`` pairs with no pipeline stalls.

Capacity model
--------------
One resident stream keeps, per bootstrap core, the ``(k+1)`` ACC
polynomials in rotation-window form: original + rotated access windows
(x2, double pointer), double-buffered against the in-flight iteration
(x2), and padded to bank-aligned tiles across the 16 banks (x2).  We
charge ``A1_STREAM_OVERHEAD = 8`` polynomial-equivalents per polynomial,
calibrated once so the paper's 4 MB knee (Fig. 8-a) falls where reported
for the 128-bit set III; the knee position then scales with ``N``, ``k``
and the core count exactly as the formula says.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..observability import COUNTERS as _COUNTERS
from ..params import TFHEParams
from ..tfhe.polynomial import monomial_mul
from .accelerator import MorphlingConfig

__all__ = [
    "A1_STREAM_OVERHEAD",
    "BufferBudget",
    "acc_stream_capacity",
    "buffer_budget",
    "DoublePointerRotator",
    "shifter_stall_cycles",
]

#: Polynomial-equivalents charged per resident ACC polynomial: rotation
#: windows (x2), double buffering (x2), and bank-alignment padding (x2).
A1_STREAM_OVERHEAD = 8


@dataclass(frozen=True)
class BufferBudget:
    """Bytes required in each buffer for one resident workload."""

    private_a1: int
    private_a2: int
    private_b: int
    shared: int

    def fits(self, config: MorphlingConfig) -> bool:
        return (
            self.private_a1 <= config.private_a1_bytes
            and self.private_a2 <= config.private_a2_bytes
            and self.private_b <= config.private_b_bytes
            and self.shared <= config.shared_bytes
        )


def acc_stream_capacity(config: MorphlingConfig, params: TFHEParams) -> int:
    """How many ciphertext streams the Private-A1 buffer can keep resident.

    Each stream pins ``bootstrap_cores`` ACC ciphertexts (one per VPE row
    per XPU) at ``A1_STREAM_OVERHEAD`` polynomial-equivalents each.  The
    result bounds the third BSK reuse dimension (Section IV-C); Morphling
    caps it at ``max_acc_streams``.
    """
    per_stream = config.bootstrap_cores * params.glwe_bytes * A1_STREAM_OVERHEAD
    if per_stream <= 0:
        raise ValueError("stream footprint must be positive")
    return max(0, min(config.max_acc_streams, config.private_a1_bytes // per_stream))


def buffer_budget(config: MorphlingConfig, params: TFHEParams,
                  streams: Optional[int] = None) -> BufferBudget:
    """Bytes each buffer needs for ``streams`` resident ciphertext streams.

    - Private-A1: the ACC residency computed above plus the switched LWE
      masks used by the rotator's address generator.
    - Private-A2: double-buffered transform-domain BSK_i for every XPU
      plus the twiddle table.
    - Shared: one blind-rotation result per bootstrap core, double
      buffered, so XPU and VPU run decoupled.
    - Private-B: KSK working tile plus LWE ciphertext operands.
    """
    if streams is None:
        streams = max(1, acc_stream_capacity(config, params))
    cores = config.bootstrap_cores
    # Switched masks (one word per mask element) ride inside the stream
    # overhead allowance; the budget is the residency formula itself.
    a1 = streams * cores * params.glwe_bytes * A1_STREAM_OVERHEAD
    bsk_i = params.polynomials_per_ggsw * params.N * params.coeff_bytes
    a2 = config.num_xpus * 2 * bsk_i + params.N * 8  # double buffer + twiddles
    shared = 2 * cores * params.glwe_bytes
    ksk_tile = params.l_k * (params.n + 1) * 4 * config.vpu_lanes
    b = ksk_tile + 4 * cores * params.lwe_bytes
    return BufferBudget(private_a1=a1, private_a2=a2, private_b=b, shared=shared)


class DoublePointerRotator:
    """Functional model of the in-buffer rotation (Section V-C).

    The ACC polynomial is tiled across banks in ``vector_width`` lanes.
    Pointer A walks the original coefficients; pointer B walks the
    coefficients of ``X^t * ACC`` by address arithmetic on the same
    storage (the reorder unit handles unaligned lanes and the sign flip
    of the negacyclic wraparound).  Every cycle yields one aligned vector
    from each pointer with *no* data movement - which is why the XPU
    pipeline never stalls on the rotation amount.
    """

    def __init__(self, poly: np.ndarray, vector_width: int = 8) -> None:
        poly = np.asarray(poly, dtype=np.uint32)
        if poly.ndim != 1:
            raise ValueError("rotator stores one polynomial at a time")
        if poly.shape[0] % vector_width:
            raise ValueError("polynomial size must be a multiple of the vector width")
        self._storage = poly.copy()
        self.vector_width = vector_width

    @property
    def n(self) -> int:
        return self._storage.shape[0]

    def read_vector(self, chunk: int, rotation: int) -> tuple:
        """Read cycle ``chunk``: (pointer-A lanes, pointer-B lanes).

        Pointer B returns the lanes of ``X^rotation * poly`` at the same
        chunk offset, computed by address arithmetic + conditional
        negation - not by physically rotating the buffer.
        """
        w, n = self.vector_width, self.n
        start = chunk * w
        if start >= n:
            raise IndexError(f"chunk {chunk} beyond polynomial of size {n}")
        lanes_a = self._storage[start : start + w].copy()
        t = int(rotation) % (2 * n)
        idx = (np.arange(start, start + w) - t) % (2 * n)
        negate = idx >= n
        src = np.where(negate, idx - n, idx)
        lanes_b = self._storage[src].astype(np.int64)
        lanes_b[negate] = -lanes_b[negate]
        return lanes_a, lanes_b.astype(np.uint32)

    def stream(self, rotation: int) -> tuple:
        """Full-polynomial streams: returns ``(original, rotated)`` arrays.

        The rotated stream must equal :func:`monomial_mul`; tests assert
        this identity.
        """
        chunks = self.n // self.vector_width
        a = np.empty(self.n, dtype=np.uint32)
        b = np.empty(self.n, dtype=np.uint32)
        for c in range(chunks):
            la, lb = self.read_vector(c, rotation)
            a[c * self.vector_width : (c + 1) * self.vector_width] = la
            b[c * self.vector_width : (c + 1) * self.vector_width] = lb
        if _COUNTERS.enabled:
            _COUNTERS.add_ops("rotator/streams")
            _COUNTERS.add_ops("rotator/vector_reads", chunks)
        return a, b

    def reference_rotation(self, rotation: int) -> np.ndarray:
        """Golden rotated polynomial via the ring primitive."""
        return monomial_mul(self._storage, rotation)


def shifter_stall_cycles(params: TFHEParams, config: MorphlingConfig) -> float:
    """Average per-iteration stall of the variable-delay shifter alternative.

    A shifter in the XPU imposes a variable latency equal to the rotation
    amount modulo the vector width times the refill of the downstream
    pipeline; averaged over uniform masks this costs about half the
    maximum misalignment per polynomial chunk plus a pipeline flush per
    rotation-amount change (once per iteration).  The double-pointer
    design makes this identically zero.
    """
    if config.rotator == "double_pointer":
        return 0.0
    pipeline_flush = params.N / (2 * config.fft_lanes)  # refill of one pass
    misalignment = (config.fft_lanes - 1) / 2.0
    polys_per_iter = (params.k + 1) * config.vpe_rows
    return pipeline_flush + misalignment * polys_per_iter
