"""Morphling accelerator configuration (Section IV-A / VI-B).

``MorphlingConfig`` captures every architecture knob the paper sweeps:
unit counts, VPE array geometry, buffer sizes, reuse type, merge-split,
rotator style, clock, and the HBM budget.  Named constructors give the
default Morphling build plus the equal-resource No-Reuse / Input-Reuse
variants used by the Figure 7-b ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .reuse import ReuseType

__all__ = ["MorphlingConfig", "MORPHLING_DEFAULT"]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class MorphlingConfig:
    """Architecture parameters of one Morphling instance.

    Defaults reproduce the paper's shipped configuration: four XPUs, each
    a 4x4 VPE array fed by 2 merge-split FFT units and drained by 4 IFFT
    units; a VPU of 4 lane groups x 32 lanes (8-wide datapaths); 4 MB
    Private-A1, 4 MB Private-A2, 2 MB Private-B, 1 MB Shared; one HBM2e
    stack at a moderated average 310 GB/s split 2 channels to the XPUs
    and 6 to the VPU.
    """

    name: str = "morphling"
    clock_ghz: float = 1.2
    num_xpus: int = 4
    vpe_rows: int = 4
    vpe_cols: int = 4
    fft_units_per_xpu: int = 2
    ifft_units_per_xpu: int = 4
    decomp_units_per_xpu: int = 4
    fft_lanes: int = 8
    merge_split: bool = True
    reuse: ReuseType = ReuseType.INPUT_OUTPUT_REUSE
    rotator: str = "double_pointer"  # or "shifter"
    vpu_lane_groups: int = 4
    vpu_lanes_per_group: int = 32
    vpu_simd_width: int = 16
    private_a1_bytes: int = 4 * MIB
    private_a2_bytes: int = 4 * MIB
    private_b_bytes: int = 2 * MIB
    shared_bytes: int = 1 * MIB
    hbm_channels: int = 8
    hbm_bandwidth_gbs: float = 310.0
    xpu_hbm_channels: int = 2
    vpu_hbm_channels: int = 6
    max_acc_streams: int = 4
    noc_bandwidth_tbs: float = 4.8

    def __post_init__(self) -> None:
        if self.num_xpus < 1:
            raise ValueError("need at least one XPU")
        if self.vpe_rows < 1 or self.vpe_cols < 1:
            raise ValueError("VPE array must be at least 1x1")
        if self.fft_units_per_xpu < 1 or self.ifft_units_per_xpu < 1:
            raise ValueError("need at least one FFT and one IFFT unit per XPU")
        if self.rotator not in ("double_pointer", "shifter"):
            raise ValueError(f"unknown rotator style: {self.rotator!r}")
        if self.xpu_hbm_channels + self.vpu_hbm_channels > self.hbm_channels:
            raise ValueError("channel split exceeds the HBM stack")
        if self.clock_ghz <= 0 or self.hbm_bandwidth_gbs <= 0:
            raise ValueError("clock and bandwidth must be positive")

    # ------------------------------------------------------------------
    @property
    def bootstrap_cores(self) -> int:
        """Concurrent bootstraps in flight: one per VPE row per XPU."""
        return self.num_xpus * self.vpe_rows

    @property
    def vpu_lanes(self) -> int:
        return self.vpu_lane_groups * self.vpu_lanes_per_group

    @property
    def vpu_macs_per_cycle(self) -> int:
        """VPU MAC throughput: every lane is a 512-bit (16x32-bit) datapath."""
        return self.vpu_lanes * self.vpu_simd_width

    @property
    def total_ifft_units(self) -> int:
        return self.num_xpus * self.ifft_units_per_xpu

    @property
    def total_fft_units(self) -> int:
        return self.num_xpus * self.fft_units_per_xpu

    @property
    def total_transform_units(self) -> int:
        """The paper's "I/FFT" count (24 for the default build)."""
        return self.total_fft_units + self.total_ifft_units

    @property
    def xpu_bandwidth_gbs(self) -> float:
        """HBM bandwidth available to BSK streaming."""
        return self.hbm_bandwidth_gbs * self.xpu_hbm_channels / self.hbm_channels

    @property
    def vpu_bandwidth_gbs(self) -> float:
        """HBM bandwidth available to KSK / ciphertext traffic."""
        return self.hbm_bandwidth_gbs * self.vpu_hbm_channels / self.hbm_channels

    def with_overrides(self, **kwargs) -> "MorphlingConfig":
        """Copy with fields replaced (sweeps and ablations)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    @classmethod
    def morphling(cls, **overrides) -> "MorphlingConfig":
        """The paper's shipped configuration."""
        return cls(**overrides)

    @classmethod
    def no_reuse(cls, **overrides) -> "MorphlingConfig":
        """Equal-resource No-Reuse variant (MATCHA-style, Fig. 7-b baseline)."""
        return cls(name="no-reuse", reuse=ReuseType.NO_REUSE,
                   merge_split=False, **overrides)

    @classmethod
    def input_reuse(cls, **overrides) -> "MorphlingConfig":
        """Equal-resource Input-Reuse variant (Strix-style)."""
        return cls(name="input-reuse", reuse=ReuseType.INPUT_REUSE,
                   merge_split=False, **overrides)


MORPHLING_DEFAULT = MorphlingConfig()
