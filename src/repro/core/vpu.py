"""VPU timing model (Section V-B).

The programmable vector unit runs everything except blind rotation: MS
(scalar multiply + round over the mask), SE (data regrouping), KS (the
KSK contraction), and P-ALU ops for application-level linear algebra.
Four lane groups of 32 lanes; each lane moves a 512-bit vector (16x32-bit
MACs) per cycle.  One VPU serves all four XPUs because these stages are a
small fraction of the bootstrap (Fig. 7-a).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability import COUNTERS as _COUNTERS
from ..params import TFHEParams
from .accelerator import MorphlingConfig

__all__ = ["VpuStageCycles", "VpuModel"]


@dataclass(frozen=True)
class VpuStageCycles:
    """Per-ciphertext cycle costs of the VPU stages of one bootstrap."""

    modulus_switch: float
    sample_extract: float
    key_switch: float

    @property
    def total(self) -> float:
        return self.modulus_switch + self.sample_extract + self.key_switch

    def stage_cycle_map(self) -> dict:
        """Stage name -> cycles, in bootstrap order (perf-counter keys)."""
        return {
            "modulus_switch": self.modulus_switch,
            "sample_extract": self.sample_extract,
            "key_switch": self.key_switch,
        }


class VpuModel:
    """Cycle model of the vector processing unit."""

    def __init__(self, config: MorphlingConfig, params: TFHEParams):
        self.config = config
        self.params = params

    def stage_cycles(self) -> VpuStageCycles:
        """Cycles per bootstrapped ciphertext for MS, SE, and KS.

        - MS: one multiply+round per mask element (n+1 ops).
        - SE: regroup ``k*N`` words (register-file moves, one vector/cycle
          per lane group).
        - KS: ``k*N * l_k`` scalar-vector MACs of width ``n+1`` - the
          dominant term and the reason KS is memory/VPU-bound rather than
          XPU work.
        """
        p, cfg = self.params, self.config
        macs = cfg.vpu_macs_per_cycle
        ms = (p.n + 1) / macs
        se = p.k * p.N / macs
        ks = p.k * p.N * p.l_k * (p.n + 1) / macs
        return VpuStageCycles(modulus_switch=ms, sample_extract=se, key_switch=ks)

    def record_stage_work(self, batch: int) -> None:
        """Account ``batch`` ciphertexts' MS/SE/KS cycles on the perf counters.

        Called by whoever *executes* the modelled work (the simulator per
        steady-state group, the HW-scheduler per instruction) so model
        evaluations are never confused with scheduled cycles.
        """
        if not _COUNTERS.enabled:
            return
        for stage, cycles in self.stage_cycles().stage_cycle_map().items():
            _COUNTERS.add_cycles(f"vpu/stage/{stage}", batch * cycles)

    def bootstrap_tail_cycles(self, batch: int) -> float:
        """VPU cycles to post-process ``batch`` ciphertexts (SE + KS) plus
        pre-process the next batch (MS)."""
        stages = self.stage_cycles()
        return batch * stages.total

    def linear_op_cycles(self, macs: int) -> float:
        """Cycles for application-level linear algebra (P-ALU path)."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs / self.config.vpu_macs_per_cycle
