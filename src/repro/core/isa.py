"""Custom instruction set for the XPU, VPU and DMA engines (Section V-E).

The SW-scheduler lowers an application into three instruction streams;
the HW-scheduler dispatches them respecting the declared dependencies.
Instructions are deliberately coarse-grained - one XPU instruction is a
whole blind rotation of a resident batch - matching the granularity the
paper schedules at (Fig. 6).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Engine",
    "XpuOp",
    "VpuOp",
    "DmaOp",
    "Instruction",
    "InstructionStream",
    "engine_of",
    "OP_ENGINES",
]


class Engine(enum.Enum):
    XPU = "xpu"
    VPU = "vpu"
    DMA = "dma"


class XpuOp(enum.Enum):
    BLIND_ROTATE = "blind_rotate"


class VpuOp(enum.Enum):
    MODULUS_SWITCH = "modulus_switch"
    SAMPLE_EXTRACT = "sample_extract"
    KEY_SWITCH = "key_switch"
    P_ALU = "p_alu"


class DmaOp(enum.Enum):
    LOAD_LWE = "load_lwe"
    LOAD_BSK = "load_bsk"
    LOAD_KSK = "load_ksk"
    LOAD_TEST_POLY = "load_test_poly"
    STORE_LWE = "store_lwe"


#: Opcode -> engine table (the decoder's dispatch map).  Read-only from
#: the outside; use :func:`engine_of` for lookups that may fail.
OP_ENGINES = {
    **{op: Engine.XPU for op in XpuOp},
    **{op: Engine.VPU for op in VpuOp},
    **{op: Engine.DMA for op in DmaOp},
}
_OP_ENGINES = OP_ENGINES  # backwards-compatible private alias


def engine_of(op: object) -> Optional[Engine]:
    """Engine an opcode dispatches to, or ``None`` for unknown opcodes."""
    return OP_ENGINES.get(op)


@dataclass(frozen=True)
class Instruction:
    """One scheduled operation.

    ``count`` is the number of ciphertexts the op covers (batch size for
    XPU/VPU ops); ``data_bytes`` the DMA payload; ``macs`` the P-ALU work.
    ``depends_on`` lists instruction ids that must retire first.
    """

    inst_id: int
    op: object
    group: int
    count: int = 0
    data_bytes: int = 0
    macs: int = 0
    depends_on: Tuple[int, ...] = ()

    @property
    def engine(self) -> Engine:
        return OP_ENGINES[self.op]

    def __post_init__(self) -> None:
        if self.op not in OP_ENGINES:
            raise ValueError(f"unknown opcode: {self.op!r}")
        if self.count < 0 or self.data_bytes < 0 or self.macs < 0:
            raise ValueError("instruction sizes must be non-negative")


class InstructionStream:
    """An append-only, dependency-checked instruction list."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._ids = itertools.count()
        self._known_ids: Set[int] = set()

    def emit(
        self,
        op: object,
        group: int,
        depends_on: Iterable[int] = (),
        **sizes: int,
    ) -> Instruction:
        """Append an instruction; dependencies must already exist."""
        deps = tuple(depends_on)
        for d in deps:
            if d not in self._known_ids:
                raise ValueError(f"dependency {d} not yet emitted")
        inst = Instruction(next(self._ids), op, group, depends_on=deps, **sizes)
        self._instructions.append(inst)
        self._known_ids.add(inst.inst_id)
        return inst

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def by_engine(self, engine: Engine) -> List[Instruction]:
        return [i for i in self._instructions if i.engine is engine]

    def groups(self) -> List[int]:
        return sorted({i.group for i in self._instructions})

    def validate_dependencies(self) -> None:
        """Check the stream is a DAG in emission order (deps point backwards)."""
        seen: Set[int] = set()
        for inst in self._instructions:
            for d in inst.depends_on:
                if d not in seen:
                    raise ValueError(
                        f"instruction {inst.inst_id} depends on unretired {d}"
                    )
            seen.add(inst.inst_id)
