"""Network-on-Chip model (Section V-D).

Morphling's NoC is intentionally simple because the systolic array and
the specialized buffers fix the dataflow: four 4-to-4 crossbars (A1<->XPU,
XPU<->Shared, Shared<->VPU, B<->VPU) and one multicast tree (A2 -> XPUs,
one-directional, BSK + twiddles).  The model enumerates the links, checks
that steady-state flows fit the chip-wide budget (4.8 TB/s in the paper),
and reports per-link utilization for a given parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams
from .accelerator import MorphlingConfig

__all__ = ["NocLink", "NocModel"]


@dataclass(frozen=True)
class NocLink:
    """One NoC connection group."""

    name: str
    topology: str  # "crossbar" or "multicast"
    endpoints: int
    bidirectional: bool


class NocModel:
    """Structural + steady-state bandwidth model of the NoC."""

    def __init__(self, config: MorphlingConfig):
        self.config = config
        x = config.num_xpus
        self.links = [
            NocLink("private_a1_to_xpu", "crossbar", x, bidirectional=True),
            NocLink("private_a2_to_xpu", "multicast", x, bidirectional=False),
            NocLink("xpu_to_shared", "crossbar", x, bidirectional=True),
            NocLink("shared_to_vpu", "crossbar", config.vpu_lane_groups, bidirectional=True),
            NocLink("private_b_to_vpu", "crossbar", config.vpu_lane_groups, bidirectional=True),
        ]

    def link(self, name: str) -> NocLink:
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(f"unknown NoC link {name!r}")

    # ------------------------------------------------------------------
    def steady_state_flows_gbs(self, params: TFHEParams, iteration_cycles: float) -> dict:
        """Per-link steady-state bandwidth (GB/s) during blind rotation.

        Every iteration each XPU pulls ``(k+1)`` rotated polynomial pairs
        from A1 (2 x 32-bit words per coefficient read), streams one
        transform-domain BSK_i through the multicast tree, and at the end
        of a bootstrap writes ``(k+1)`` result polynomials to Shared.
        """
        if iteration_cycles <= 0:
            raise ValueError("iteration_cycles must be positive")
        cfg = self.config
        cycle_s = 1.0 / (cfg.clock_ghz * 1e9)
        iter_s = iteration_cycles * cycle_s
        per_xpu_rows = cfg.vpe_rows
        a1_bytes = per_xpu_rows * (params.k + 1) * params.N * 4 * 2
        bsk_bytes = params.polynomials_per_ggsw * params.N * params.coeff_bytes
        shared_bytes = per_xpu_rows * params.glwe_bytes / max(params.n, 1)
        flows = {
            "private_a1_to_xpu": cfg.num_xpus * a1_bytes / iter_s / 1e9,
            "private_a2_to_xpu": bsk_bytes / iter_s / 1e9,  # multicast: sent once
            "xpu_to_shared": cfg.num_xpus * shared_bytes / iter_s / 1e9,
        }
        return flows

    def total_utilization(self, params: TFHEParams, iteration_cycles: float) -> float:
        """Fraction of the chip-wide NoC budget in use during blind rotation."""
        flows = self.steady_state_flows_gbs(params, iteration_cycles)
        return sum(flows.values()) / (self.config.noc_bandwidth_tbs * 1000.0)

    # ------------------------------------------------------------------
    def hops_per_group(
        self, params: TFHEParams, group_size: int, streams: int
    ) -> dict:
        """Link traversals ("hops") one steady-state scheduler group causes.

        A hop is one polynomial-sized message crossing one NoC link; a
        multicast delivery counts one hop per reached endpoint.  Per
        blind-rotation iteration every XPU pulls ``vpe_rows * (k+1)``
        rotated pairs from A1 and receives the broadcast BSK_i; per
        finished bootstrap ``(k+1)`` result polynomials cross to Shared
        and on to the VPU, and the KSK tile plus LWE operands cross the
        Private-B link once per group.  These are the perf-counter
        ``noc/hops/*`` denominators the profiler reports.
        """
        if group_size < 1 or streams < 1:
            raise ValueError("group_size and streams must be >= 1")
        cfg = self.config
        iters = params.n * streams  # iterations to retire the whole group
        per_iter_a1 = cfg.num_xpus * cfg.vpe_rows * (params.k + 1)
        return {
            "private_a1_to_xpu": iters * per_iter_a1,
            "private_a2_to_xpu": iters * params.polynomials_per_ggsw * cfg.num_xpus,
            "xpu_to_shared": group_size * (params.k + 1),
            "shared_to_vpu": group_size * (params.k + 1),
            "private_b_to_vpu": group_size + params.l_k,
        }
