"""Cycle-level performance simulator of the full Morphling accelerator.

The simulator composes the stage models - XPU pipeline, VPU, buffers, HBM
channel groups - into steady-state bootstrap throughput and single-shot
latency, mirroring how the paper's cycle-accurate simulator is used in
Section VI:

1. The Private-A1 capacity fixes how many ciphertext *streams* stay
   resident (:func:`repro.core.buffers.acc_stream_capacity`); with
   ``vpe_rows`` ciphertexts per XPU and ``num_xpus`` XPUs that defines
   the scheduler's group (64 for the default build) and the BSK/KSK
   reuse factors.
2. One group costs the *max* of four overlapped busy times: XPU compute,
   BSK streaming over the XPU HBM channels, VPU post-processing, and
   KSK/ciphertext traffic over the VPU channels.  Throughput is
   group size / group time; the slowest resource is the bottleneck.
3. Single-bootstrap latency is the serial walk MS -> BR -> SE -> KS.

Validation: the model reproduces all four Table V rows within a few
percent (see EXPERIMENTS.md); every other experiment reuses it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability import (
    BUS as _BUS,
    COUNTERS as _COUNTERS,
    REGISTRY as _METRICS,
    TRACER as _TRACER,
)
from ..params import TFHEParams
from .accelerator import MorphlingConfig
from .buffers import A1_STREAM_OVERHEAD, acc_stream_capacity, buffer_budget
from .hbm import HbmModel, TrafficBreakdown
from .noc import NocModel
from .reuse import bsk_reuse_factor, transforms_per_bootstrap
from .vpu import VpuModel, VpuStageCycles
from .xpu import IterationBreakdown, XpuModel

__all__ = ["SimulationReport", "MorphlingSimulator", "simulate_bootstrap"]

_SIM_RUNS = _METRICS.counter(
    "sim_runs_total", "Simulator runs executed, by parameter set"
)
_SIM_GROUPS = _METRICS.counter(
    "sim_groups_total", "Scheduler groups formed by the simulator"
)
_SIM_BOOTSTRAPS = _METRICS.counter(
    "sim_bootstraps_total", "Bootstraps accounted by the performance simulator"
)
_SIM_TRANSFORMS = _METRICS.counter(
    "sim_transforms_total",
    "Domain transforms the modelled group performs, by direction",
)
_SIM_BOTTLENECK = _METRICS.counter(
    "sim_bottleneck_total", "Group-time bottleneck decisions, by resource"
)
_SIM_GROUP_SIZE = _METRICS.gauge(
    "sim_group_size", "Ciphertexts per scheduler group in the last run"
)
_SIM_ACC_STREAMS = _METRICS.gauge(
    "sim_acc_streams", "Resident ACC streams per XPU in the last run"
)
_SIM_BOOTSTRAP_LATENCY = _METRICS.quantile(
    "sim_bootstrap_latency_seconds",
    "Modelled single-bootstrap latency, by config and parameter set",
)


@dataclass(frozen=True)
class SimulationReport:
    """Everything one simulation run produces."""

    config_name: str
    params_name: str
    bootstrap_latency_s: float
    throughput_bs: float
    bottleneck: str
    group_size: int
    acc_streams: int
    bsk_reuse: int
    ksk_reuse: int
    group_time_s: float
    xpu_busy_s: float
    bsk_transfer_s: float
    vpu_busy_s: float
    ksk_transfer_s: float
    iteration: IterationBreakdown
    vpu_stages: VpuStageCycles
    traffic: TrafficBreakdown
    clock_ghz: float = 1.2

    @property
    def bootstrap_latency_ms(self) -> float:
        return self.bootstrap_latency_s * 1e3

    def resource_times(self) -> dict:
        """Busy seconds of the four overlapped group resources."""
        return {
            "xpu_compute": self.xpu_busy_s,
            "bsk_bandwidth": self.bsk_transfer_s,
            "vpu_compute": self.vpu_busy_s,
            "ksk_bandwidth": self.ksk_transfer_s,
        }

    def latency_fractions(self) -> dict:
        """Aggregate time share per component over one group (Fig. 7-a).

        XPU vs the three VPU stages; shares are of busy time, matching
        the paper's component breakdown.  VPU stage cycles convert to
        seconds at the simulated clock so the shares stay correct for
        any ``clock_ghz`` (``xpu_busy_s`` is already real seconds).
        """
        clock_hz = self.clock_ghz * 1e9
        vpu = self.vpu_stages
        ms = self.group_size * vpu.modulus_switch / clock_hz
        se = self.group_size * vpu.sample_extract / clock_hz
        ks = self.group_size * vpu.key_switch / clock_hz
        xpu = self.xpu_busy_s
        total = xpu + ms + se + ks
        return {
            "xpu_blind_rotation": xpu / total,
            "vpu_modulus_switch": ms / total,
            "vpu_sample_extract": se / total,
            "vpu_key_switch": ks / total,
        }


class MorphlingSimulator:
    """Steady-state + latency simulation for one (config, params) pair."""

    def __init__(self, config: MorphlingConfig, params: TFHEParams) -> None:
        self.config = config
        self.params = params
        self.xpu = XpuModel(config, params)
        self.vpu = VpuModel(config, params)
        self.hbm = HbmModel(config)

    # ------------------------------------------------------------------
    def verify(self):
        """Statically verify the canonical steady-state group program.

        Lowers one full scheduler group (the exact program whose timing
        :meth:`run` models) and runs the :mod:`repro.verify` pass
        pipeline over it, so a (config, params) pair that would compile
        to an ill-formed stream is caught before its throughput numbers
        are trusted.  Returns the :class:`repro.verify.VerifyReport`.
        """
        from ..verify import verify_stream
        from .buffers import acc_stream_capacity
        from .scheduler import LayerDemand, SwScheduler

        scheduler = SwScheduler(self.config, self.params)
        streams = max(1, acc_stream_capacity(self.config, self.params))
        group = streams * self.config.bootstrap_cores
        stream = scheduler.schedule([LayerDemand("steady-state-group", group)])
        return verify_stream(
            stream, config=self.config, params=self.params,
            subject=f"{self.config.name}@{self.params.name}",
        )

    def run(self, verify: bool = False) -> "SimulationReport":
        """Simulate; with ``verify`` the canonical group program must be
        statically clean first (raises ``VerificationError``)."""
        if verify:
            from ..verify import VerificationError

            report = self.verify()
            if not report.ok:
                raise VerificationError(report)
        return self._run()

    # ------------------------------------------------------------------
    def _streams_and_stall(self) -> tuple:
        """Resident streams and the stall factor when not even one fits."""
        cfg, p = self.config, self.params
        streams = acc_stream_capacity(cfg, p)
        if streams >= 1:
            return streams, 1.0
        per_stream = cfg.bootstrap_cores * p.glwe_bytes * A1_STREAM_OVERHEAD
        fraction = cfg.private_a1_bytes / per_stream
        # Less than one stream fits: XPUs time-share the buffer; compute
        # time inflates by the residency shortfall.
        return 1, 1.0 / max(fraction, 1e-6)

    def _run(self) -> SimulationReport:
        cfg, p = self.config, self.params
        clock_hz = cfg.clock_ghz * 1e9

        streams, stall = self._streams_and_stall()
        group_size = streams * cfg.bootstrap_cores
        bsk_reuse = bsk_reuse_factor(cfg.vpe_rows, cfg.num_xpus, streams)
        ksk_reuse = group_size

        iteration = self.xpu.iteration_breakdown()
        br_seconds = self.xpu.blind_rotation_seconds()
        xpu_busy = streams * br_seconds * stall

        traffic = self.hbm.per_bootstrap_traffic(p, bsk_reuse, ksk_reuse)
        bsk_transfer = self.hbm.xpu_transfer_seconds(traffic.xpu_bytes * group_size)
        ksk_transfer = self.hbm.vpu_transfer_seconds(traffic.vpu_bytes * group_size)

        vpu_stages = self.vpu.stage_cycles()
        vpu_busy = group_size * vpu_stages.total / clock_hz

        times = {
            "xpu_compute": xpu_busy,
            "bsk_bandwidth": bsk_transfer,
            "vpu_compute": vpu_busy,
            "ksk_bandwidth": ksk_transfer,
        }
        bottleneck = max(times, key=times.get)
        group_time = times[bottleneck]
        throughput = group_size / group_time

        if _METRICS.enabled:
            _SIM_RUNS.inc(params=p.name)
            _SIM_GROUPS.inc()
            _SIM_BOOTSTRAPS.inc(group_size)
            _SIM_BOTTLENECK.inc(resource=bottleneck)
            _SIM_GROUP_SIZE.set(group_size)
            _SIM_ACC_STREAMS.set(streams)
            counts = transforms_per_bootstrap(p, cfg.reuse)
            _SIM_TRANSFORMS.inc(counts.forward * group_size, direction="forward")
            _SIM_TRANSFORMS.inc(counts.inverse * group_size, direction="inverse")
        if _TRACER.enabled:
            # One steady-state group, resources overlapped from t=0: the
            # slowest row is the group time the throughput is quoted at.
            for resource, seconds in times.items():
                _TRACER.add_span(
                    resource, ts_us=0.0, dur_us=seconds * 1e6,
                    category="simulator", track=f"sim/{resource}",
                    args={"group_size": group_size,
                          "bottleneck": resource == bottleneck},
                )
        if _COUNTERS.enabled:
            # The simulator *executes* one steady-state group: account the
            # scheduled work (every XPU runs `streams` blind rotations,
            # the VPU post-processes the whole group) and sample the
            # time-resolved tracks at the group boundaries.
            self.xpu.record_blind_rotations(streams * cfg.num_xpus)
            self.vpu.record_stage_work(group_size)
            for stage, frac in iteration.occupancy().items():
                track = f"xpu/occupancy/{stage}"
                _COUNTERS.sample(track, 0.0, frac)
                _COUNTERS.sample(track, group_time, frac)
            xpu_util = bsk_transfer / group_time
            vpu_util = ksk_transfer / group_time
            for ch in range(cfg.xpu_hbm_channels + cfg.vpu_hbm_channels):
                util = xpu_util if ch < cfg.xpu_hbm_channels else vpu_util
                track = f"hbm/channel/{ch}/utilization"
                _COUNTERS.sample(track, 0.0, util)
                _COUNTERS.sample(track, group_time, util)
            budget = buffer_budget(cfg, p, streams)
            for name, used in (
                ("private_a1", budget.private_a1),
                ("private_a2", budget.private_a2),
                ("private_b", budget.private_b),
                ("shared", budget.shared),
            ):
                track = f"buffer/{name}"
                _COUNTERS.sample(track, 0.0, float(used))
                _COUNTERS.sample(track, group_time, float(used))
            hops = NocModel(cfg).hops_per_group(p, group_size, streams)
            for link, count in hops.items():
                _COUNTERS.add_ops(f"noc/hops/{link}", float(count))

        # Pure arithmetic (not `vpu_transfer_seconds`): the latency walk is
        # a model evaluation, not executed traffic, and must not be
        # accounted on the byte counters.
        ksk_tail = p.ksk_bytes / (cfg.vpu_bandwidth_gbs * 1e9) / ksk_reuse
        latency = (
            br_seconds * stall
            + (vpu_stages.modulus_switch + vpu_stages.sample_extract + vpu_stages.key_switch)
            / clock_hz
            + ksk_tail
        )

        if _METRICS.enabled:
            # Every request in the modelled group experiences the same
            # bootstrap latency: one count-weighted sample per run.
            _SIM_BOOTSTRAP_LATENCY.observe(latency, count=group_size,
                                           config=cfg.name, params=p.name)
        if _BUS.enabled:
            _BUS.publish("request", "sim/bootstrap", value=latency,
                         count=group_size, config=cfg.name, params=p.name)
            _BUS.publish("snapshot", "sim/report", value=throughput,
                         bottleneck=bottleneck, group_size=group_size,
                         latency_ms=latency * 1e3, params=p.name,
                         config=cfg.name)

        return SimulationReport(
            config_name=cfg.name,
            params_name=p.name,
            bootstrap_latency_s=latency,
            throughput_bs=throughput,
            bottleneck=bottleneck,
            group_size=group_size,
            acc_streams=streams,
            bsk_reuse=bsk_reuse,
            ksk_reuse=ksk_reuse,
            group_time_s=group_time,
            xpu_busy_s=xpu_busy,
            bsk_transfer_s=bsk_transfer,
            vpu_busy_s=vpu_busy,
            ksk_transfer_s=ksk_transfer,
            iteration=iteration,
            vpu_stages=vpu_stages,
            traffic=traffic,
            clock_ghz=cfg.clock_ghz,
        )


def simulate_bootstrap(
    config: MorphlingConfig, params: TFHEParams, verify: bool = False
) -> SimulationReport:
    """Convenience wrapper: simulate one (config, params) pair."""
    return MorphlingSimulator(config, params).run(verify=verify)
