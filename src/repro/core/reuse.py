"""Transform-domain reuse analysis (paper Sections III and IV-B, Figure 3).

The external product multiplies the decomposed ACC vector (``(k+1)*l_b``
polynomials) by the BSK matrix (``(k+1)*l_b x (k+1)`` polynomials).  How
many domain transforms one blind-rotation iteration needs depends on what
the VPE array shares:

- ``NO_REUSE`` (MATCHA-style): every VPE transforms its own input and
  output: ``(k+1)^2 * l_b`` forward + ``(k+1)^2 * l_b`` inverse.
- ``INPUT_REUSE`` (Strix-style): a decomposed-input transform is shared
  across the row (each input polynomial multiplies all ``k+1`` BSK
  columns), but every product still leaves the transform domain:
  ``(k+1)*l_b`` forward + ``(k+1)^2 * l_b`` inverse.
- ``INPUT_OUTPUT_REUSE`` (Morphling): additionally exploit IFFT linearity
  to accumulate each output column entirely in the transform domain
  (POLY-ACC-REG): ``(k+1)*l_b`` forward + ``(k+1)`` inverse.

All Figure 3 numbers are exact consequences of these three formulas; e.g.
parameter set C (n=487, k=3, l_b=3) gives 487 * 96 = 46,752 transforms
with no reuse and an 83.3 % reduction with input+output reuse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..params import TFHEParams

__all__ = [
    "ReuseType",
    "TransformCounts",
    "transforms_per_external_product",
    "transforms_per_bootstrap",
    "reduction_vs_no_reuse",
    "acc_input_reuse_factor",
    "acc_output_reuse_factor",
    "bsk_reuse_factor",
]


class ReuseType(enum.Enum):
    """Which transform-domain data the VPE array shares."""

    NO_REUSE = "no-reuse"
    INPUT_REUSE = "input-reuse"
    INPUT_OUTPUT_REUSE = "input+output-reuse"


@dataclass(frozen=True)
class TransformCounts:
    """Forward/inverse transform counts for one external product."""

    forward: int
    inverse: int

    @property
    def total(self) -> int:
        return self.forward + self.inverse


def transforms_per_external_product(k: int, l_b: int, reuse: ReuseType) -> TransformCounts:
    """Domain transforms one external product needs under ``reuse``."""
    if k < 1 or l_b < 1:
        raise ValueError("k and l_b must be >= 1")
    inputs = (k + 1) * l_b
    products = (k + 1) * (k + 1) * l_b
    outputs = k + 1
    if reuse is ReuseType.NO_REUSE:
        return TransformCounts(forward=products, inverse=products)
    if reuse is ReuseType.INPUT_REUSE:
        return TransformCounts(forward=inputs, inverse=products)
    if reuse is ReuseType.INPUT_OUTPUT_REUSE:
        return TransformCounts(forward=inputs, inverse=outputs)
    raise ValueError(f"unknown reuse type: {reuse}")


def transforms_per_bootstrap(params: TFHEParams, reuse: ReuseType) -> TransformCounts:
    """Domain transforms one full blind rotation (``n`` iterations) needs."""
    per_iter = transforms_per_external_product(params.k, params.l_b, reuse)
    return TransformCounts(
        forward=params.n * per_iter.forward,
        inverse=params.n * per_iter.inverse,
    )


def reduction_vs_no_reuse(k: int, l_b: int, reuse: ReuseType) -> float:
    """Fractional reduction in transforms relative to NO_REUSE (Fig. 3)."""
    base = transforms_per_external_product(k, l_b, ReuseType.NO_REUSE).total
    this = transforms_per_external_product(k, l_b, reuse).total
    return 1.0 - this / base


def acc_input_reuse_factor(k: int) -> int:
    """How many times one decomposed ACC-input transform is reused.

    Each decomposed polynomial multiplies every one of the ``k+1`` BSK
    columns (Section IV-B).
    """
    return k + 1


def acc_output_reuse_factor(k: int, l_b: int) -> int:
    """How many partial sums accumulate into one ACC-output transform.

    Each output column is a dot product over the ``(k+1)*l_b`` decomposed
    inputs, so the transform-domain accumulator is reused that many times.
    """
    return (k + 1) * l_b


def bsk_reuse_factor(vpe_rows: int, num_xpus: int, acc_streams: int) -> int:
    """Ciphertexts sharing one BSK fetch (Section IV-C).

    BSK reuse is only available *across* ciphertexts: down a VPE column
    (``vpe_rows``), across XPUs (``num_xpus``), and across consecutive
    ciphertext streams resident in the Private-A1 buffer (``acc_streams``).
    Morphling's default 4 x 4 x 4 = 64.
    """
    if min(vpe_rows, num_xpus, acc_streams) < 1:
        raise ValueError("all reuse dimensions must be >= 1")
    return vpe_rows * num_xpus * acc_streams
