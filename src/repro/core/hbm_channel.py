"""Detailed HBM2e channel model: where "a moderate 310 GB/s" comes from.

The paper assumes "a moderate average bandwidth of 310 GB/s" from one
HBM2e stack (Section VI-B).  A stack's *peak* is higher - 8 channels x
128 bits x 3.6 Gbps = 460.8 GB/s - and the gap is access-pattern
efficiency.  This module models the per-channel effective bandwidth from
first principles:

- burst granularity: transfers round up to 32-byte bursts per
  pseudo-channel access;
- row-buffer locality: page hits stream at the IO rate, page misses pay
  tRC-equivalent bubbles;
- refresh overhead: a fixed few-percent duty cycle.

With the access patterns Morphling generates (BSK: long sequential
streams, ~97 % page hits; KSK: strided tile reads, ~85 %), the derived
stack bandwidth lands within a few percent of the paper's 310 GB/s - so
the simulator's headline assumption is itself reproduced, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HbmChannelSpec", "AccessPattern", "effective_bandwidth_gbs",
           "stack_bandwidth_gbs", "BSK_PATTERN", "KSK_PATTERN"]


@dataclass(frozen=True)
class HbmChannelSpec:
    """Electrical/timing parameters of one HBM2e channel."""

    io_gbps: float = 3.6          # per-pin data rate
    bus_bits: int = 128           # channel width
    burst_bytes: int = 32         # pseudo-channel burst granularity
    page_miss_penalty_ns: float = 45.0  # tRC-equivalent bubble
    bank_parallelism: int = 20    # banks x pseudo-channels hiding tRC
    refresh_overhead: float = 0.035     # tREFI duty

    @property
    def peak_gbs(self) -> float:
        """Peak channel bandwidth (GB/s)."""
        return self.io_gbps * self.bus_bits / 8

    @property
    def burst_time_ns(self) -> float:
        """Time to move one burst at the IO rate."""
        return self.burst_bytes / self.peak_gbs


@dataclass(frozen=True)
class AccessPattern:
    """How a traffic class touches memory."""

    name: str
    page_hit_rate: float
    avg_request_bytes: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.page_hit_rate <= 1.0:
            raise ValueError("page hit rate must be in [0, 1]")
        if self.avg_request_bytes < 1:
            raise ValueError("requests must move at least one byte")


#: BSK streaming: megabyte-long sequential reads, almost always in-page.
BSK_PATTERN = AccessPattern("bsk-stream", page_hit_rate=0.97,
                            avg_request_bytes=4096)
#: KSK tiles: strided per-level reads with decent locality.
KSK_PATTERN = AccessPattern("ksk-tile", page_hit_rate=0.85,
                            avg_request_bytes=2048)


def effective_bandwidth_gbs(spec: HbmChannelSpec, pattern: AccessPattern) -> float:
    """Sustained bandwidth of one channel under an access pattern.

    Page-miss bubbles are mostly hidden by bank-level parallelism (an
    activation to one bank overlaps transfers from the others); the
    exposed penalty is the tRC bubble divided by the usable parallelism.
    """
    bursts = -(-pattern.avg_request_bytes // spec.burst_bytes)
    useful = pattern.avg_request_bytes
    padded = bursts * spec.burst_bytes
    stream_ns = bursts * spec.burst_time_ns
    misses = (1.0 - pattern.page_hit_rate) * bursts
    exposed_ns = misses * spec.page_miss_penalty_ns / spec.bank_parallelism
    total_ns = stream_ns + exposed_ns
    raw = useful / total_ns  # GB/s (bytes per ns)
    return raw * (1.0 - spec.refresh_overhead) * (useful / padded)


def stack_bandwidth_gbs(
    spec: HbmChannelSpec = None,
    channels: int = 8,
    bsk_channels: int = 2,
    patterns=(BSK_PATTERN, KSK_PATTERN),
) -> float:
    """Average sustained bandwidth of the whole stack.

    ``bsk_channels`` stream the BSK pattern; the rest carry the KSK/LWE
    pattern - the paper's 2/6 priority split.
    """
    spec = spec or HbmChannelSpec()
    bsk_pattern, ksk_pattern = patterns
    if not 0 <= bsk_channels <= channels:
        raise ValueError("invalid channel split")
    return (
        bsk_channels * effective_bandwidth_gbs(spec, bsk_pattern)
        + (channels - bsk_channels) * effective_bandwidth_gbs(spec, ksk_pattern)
    )
