"""End-to-end compilation: program -> schedule -> binary -> execution report.

The facade that makes the pieces compose the way a user of the paper's
system would drive it:

1. take a program (a :class:`~repro.apps.workload.Workload`, a
   :class:`~repro.tfhe.boolean.Circuit`, or raw layers);
2. lower it with the SW-scheduler (optionally per client);
3. statically verify the stream with the :mod:`repro.verify` pass
   pipeline (def-before-use, buffer capacity, engine compatibility,
   hazard ordering, HBM transfer sanity) - on by default, disable with
   ``verify=False``;
4. serialize the instruction stream to the binary wire format (what the
   host would ship to the accelerator);
5. execute on the HW-scheduler timing model;
6. return a :class:`CompilationReport` with the program, the binary
   size, the makespan, utilizations, and the achieved bootstrap rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..params import TFHEParams
from .accelerator import MorphlingConfig
from .isa import XpuOp
from .isa_encoding import encode_stream
from .scheduler import HwScheduler, ScheduleResult, SwScheduler

__all__ = ["CompilationReport", "compile_program", "compile_and_run"]


@dataclass(frozen=True)
class CompilationReport:
    """Everything one compile-and-run produces."""

    program_name: str
    instructions: int
    binary_bytes: int
    total_bootstraps: int
    total_seconds: float
    bootstraps_per_second: float
    xpu_utilization: float
    padding_waste: float

    def summary(self) -> str:
        return (
            f"{self.program_name}: {self.instructions} instructions "
            f"({self.binary_bytes:,} B), {self.total_bootstraps:,} bootstraps "
            f"in {self.total_seconds * 1e3:.2f} ms "
            f"({self.bootstraps_per_second:,.0f} BS/s, "
            f"XPU {self.xpu_utilization:.0%} busy)"
        )


def _to_layers(program: object) -> Tuple[str, List[object]]:
    """Accept a Workload, a Circuit, or a plain layer list."""
    from ..apps.workload import Workload
    from ..tfhe.boolean import Circuit

    if isinstance(program, Circuit):
        workload = program.to_workload("circuit")
        return workload.name, list(workload.layers)
    if isinstance(program, Workload):
        return program.name, list(program.layers)
    if isinstance(program, (list, tuple)) and program:
        return "layers", list(program)
    raise TypeError(
        "program must be a Workload, a Circuit, or a non-empty layer list"
    )


def compile_program(
    program: object, config: MorphlingConfig, params: TFHEParams,
    verify: bool = True,
) -> tuple:
    """Lower a program; returns ``(name, stream, binary)``.

    With ``verify`` (the default) the compiled stream must pass the
    static program verifier; an ill-formed program raises
    :class:`repro.verify.VerificationError` instead of reaching the
    timing model with silently-wrong results.
    """
    name, layers = _to_layers(program)
    stream = SwScheduler(config, params).schedule(layers)
    if verify:
        from ..verify import verify_or_raise

        verify_or_raise(stream, config=config, params=params, subject=name)
    return name, stream, encode_stream(stream)


def compile_and_run(
    program: object, config: Optional[MorphlingConfig] = None,
    params: Optional[TFHEParams] = None, verify: bool = True,
) -> CompilationReport:
    """Full pipeline: lower, verify, serialize, execute, report."""
    from ..params import get_params

    config = config or MorphlingConfig()
    params = params or get_params("III")
    name, stream, binary = compile_program(program, config, params, verify=verify)
    result: ScheduleResult = HwScheduler(config, params).execute(stream)
    bootstraps = sum(i.count for i in stream if i.op is XpuOp.BLIND_ROTATE)
    rate = bootstraps / result.total_seconds if result.total_seconds else 0.0
    return CompilationReport(
        program_name=name,
        instructions=len(stream),
        binary_bytes=len(binary),
        total_bootstraps=bootstraps,
        total_seconds=result.total_seconds,
        bootstraps_per_second=rate,
        xpu_utilization=result.utilization["xpu"],
        padding_waste=result.padding_waste,
    )
