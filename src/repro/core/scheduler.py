"""SW-HW co-scheduler (Section V-E, Fig. 6).

The SW-scheduler batches an application's bootstrap demands into groups
of ``group_size`` LWE ciphertexts (64 for the default build: 16 bootstrap
cores x 4 resident streams), lowers every group into the dependent
instruction chain ``DMA -> VPU(MS) -> XPU(BR) -> VPU(SE) -> VPU(KS) ->
DMA``, and interleaves application-level linear work as P-ALU
instructions.  The HW-scheduler executes the stream against the timing
models with engines running concurrently: a list-scheduler that tracks
per-engine ready times and honours dependencies, which is exactly the
resource model of the paper's pipelined execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle at runtime)
    from ..verify.occupancy import OccupancyProof

from ..observability import (
    BUS as _BUS,
    COUNTERS as _COUNTERS,
    REGISTRY as _METRICS,
    TRACER as _TRACER,
    report_anomaly as _report_anomaly,
)
from ..params import TFHEParams
from .accelerator import MorphlingConfig
from .buffers import acc_stream_capacity
from .hbm import HbmModel
from .isa import DmaOp, Engine, Instruction, InstructionStream, VpuOp, XpuOp
from .vpu import VpuModel
from .xpu import XpuModel

__all__ = [
    "LayerDemand",
    "SwScheduler",
    "HwScheduler",
    "ScheduleResult",
    "run_workload",
]

_SCHED_GROUPS = _METRICS.counter(
    "sched_groups_formed_total", "Scheduler groups lowered by the SW-scheduler"
)
_SCHED_INSTRUCTIONS = _METRICS.counter(
    "sched_instructions_total", "Instructions executed by the HW-scheduler, by op"
)
_SCHED_PADDING = _METRICS.counter(
    "sched_padded_slots_total", "Bootstrap slots scheduled but unused (padding)"
)
_SCHED_REQUEST_LATENCY = _METRICS.quantile(
    "sched_request_latency_seconds",
    "Simulated completion time of each scheduled bootstrap group's "
    "requests (STORE_LWE retire time since workload start)",
)


@dataclass(frozen=True)
class LayerDemand:
    """One dependency level of an application.

    All ``bootstraps`` within a layer are independent of each other;
    layer ``i+1`` cannot start before layer ``i`` retires.  ``linear_macs``
    is the P-ALU work (convolution / FC accumulation) feeding the layer.
    """

    name: str
    bootstraps: int
    linear_macs: int = 0

    def __post_init__(self) -> None:
        if self.bootstraps < 0 or self.linear_macs < 0:
            raise ValueError("layer demands must be non-negative")


@dataclass
class ScheduleResult:
    """Outcome of executing a stream on the HW-scheduler."""

    total_seconds: float
    engine_busy_seconds: dict
    instructions: int
    groups: int
    padding_waste: float  # fraction of scheduled bootstrap slots unused
    spans: Optional[list] = None  # (engine, op, group, start, end) when recorded

    @property
    def utilization(self) -> dict:
        return {
            e: busy / self.total_seconds if self.total_seconds else 0.0
            for e, busy in self.engine_busy_seconds.items()
        }


class SwScheduler:
    """Lower application layers into a dependency-correct instruction stream."""

    def __init__(self, config: MorphlingConfig, params: TFHEParams) -> None:
        self.config = config
        self.params = params
        streams = max(1, acc_stream_capacity(config, params))
        self.group_size = streams * config.bootstrap_cores

    def schedule(self, layers: list) -> InstructionStream:
        """Emit the instruction stream for ``layers`` (in dependency order).

        Per layer, all DMA loads are emitted before the compute chains so
        the in-order DMA queues prefetch ahead of the XPUs - the
        double-buffering role of the Private-A2 buffer.
        """
        stream = InstructionStream()
        p = self.params
        group_id = 0
        barrier = ()  # ids the next layer must wait on
        for layer in layers:
            layer_tail = []
            if layer.linear_macs:
                palu = stream.emit(
                    VpuOp.P_ALU, group_id, depends_on=barrier, macs=layer.linear_macs
                )
                layer_tail.append(palu.inst_id)
                linear_dep = (palu.inst_id,)
            else:
                linear_dep = barrier
            # Split the layer into scheduler groups.
            batches = []
            remaining = layer.bootstraps
            while remaining > 0:
                batches.append(min(self.group_size, remaining))
                remaining -= batches[-1]
            if batches:
                _SCHED_GROUPS.inc(len(batches))
            # Phase 1: prefetch every group's operands.
            loads = []
            for batch in batches:
                load = stream.emit(
                    DmaOp.LOAD_LWE, group_id + len(loads), depends_on=linear_dep,
                    count=batch, data_bytes=batch * p.lwe_bytes,
                )
                bsk = stream.emit(
                    DmaOp.LOAD_BSK, group_id + len(loads), depends_on=linear_dep,
                    data_bytes=p.bsk_transform_bytes,
                )
                ksk = stream.emit(
                    DmaOp.LOAD_KSK, group_id + len(loads), depends_on=linear_dep,
                    data_bytes=p.ksk_bytes,
                )
                loads.append((load, bsk, ksk))
            # Phase 2: the dependent compute chain per group.
            for batch, (load, bsk, ksk) in zip(batches, loads):
                ms = stream.emit(
                    VpuOp.MODULUS_SWITCH, group_id,
                    depends_on=(load.inst_id,), count=batch,
                )
                br = stream.emit(
                    XpuOp.BLIND_ROTATE, group_id,
                    depends_on=(ms.inst_id, bsk.inst_id), count=batch,
                )
                se = stream.emit(
                    VpuOp.SAMPLE_EXTRACT, group_id,
                    depends_on=(br.inst_id,), count=batch,
                )
                ks = stream.emit(
                    VpuOp.KEY_SWITCH, group_id,
                    depends_on=(se.inst_id, ksk.inst_id), count=batch,
                )
                store = stream.emit(
                    DmaOp.STORE_LWE, group_id,
                    depends_on=(ks.inst_id,),
                    count=batch, data_bytes=batch * p.lwe_bytes,
                )
                layer_tail.append(store.inst_id)
                group_id += 1
            barrier = tuple(layer_tail)
        stream.validate_dependencies()
        return stream


    def schedule_clients(self, clients: dict) -> InstructionStream:
        """Schedule several clients' workloads (Section V-E's key rule).

        Ciphertexts under different secret keys must never share a group
        (their BSK/KSK differ), so each client's layers are lowered into
        its own group chain; chains from different clients interleave
        freely because the HW-scheduler sees no dependencies between
        them.  The cost of multi-tenancy shows up as group padding and
        extra evaluation-key traffic - measurable on the same models.
        """
        if not clients:
            raise ValueError("need at least one client")
        merged = InstructionStream()
        # Reuse the single-client lowering per client, then re-emit into
        # one stream with disjoint group ids and remapped dependencies.
        group_base = 0
        for name, layers in clients.items():
            sub = self.schedule(layers)
            id_map = {}
            max_group = -1
            for inst in sub:
                new_deps = tuple(id_map[d] for d in inst.depends_on)
                sizes = {}
                if inst.data_bytes:
                    sizes["data_bytes"] = inst.data_bytes
                if inst.macs:
                    sizes["macs"] = inst.macs
                new = merged.emit(
                    inst.op, group_base + inst.group, depends_on=new_deps,
                    count=inst.count, **sizes,
                )
                id_map[inst.inst_id] = new.inst_id
                max_group = max(max_group, inst.group)
            group_base += max_group + 1
        merged.validate_dependencies()
        return merged


class HwScheduler:
    """List-scheduler executing an instruction stream on the timing models.

    Engines (all XPUs as one pool, the VPU, the two DMA channel groups)
    process their queues in order; an instruction starts at
    ``max(engine ready, dependencies retired)``.  This reproduces the
    decoupled XPU/VPU pipelining through the Shared buffer.
    """

    def __init__(self, config: MorphlingConfig, params: TFHEParams) -> None:
        self.config = config
        self.params = params
        self.xpu = XpuModel(config, params)
        self.vpu = VpuModel(config, params)
        self.hbm = HbmModel(config)

    def occupancy_proof(self, stream: InstructionStream) -> "OccupancyProof":
        """Static occupancy proof for ``stream`` - the admission-control
        view of :class:`repro.verify.occupancy.OccupancyModel`, shared
        with the VER007 verifier pass so scheduler and verifier agree on
        one resource model.
        """
        from ..verify.occupancy import OccupancyModel

        return OccupancyModel(self.config, self.params).analyze(list(stream))

    # -- per-instruction timing ----------------------------------------
    def _duration(self, inst: Instruction) -> float:
        cfg, p = self.config, self.params
        clock = cfg.clock_ghz * 1e9
        if inst.engine is Engine.XPU:
            # Blind-rotate `count` ciphertexts: ceil(count/cores) resident
            # waves, each one full blind rotation.
            waves = -(-inst.count // cfg.bootstrap_cores)
            return waves * self.xpu.blind_rotation_seconds()
        if inst.engine is Engine.VPU:
            # One lane group (1/vpu_lane_groups of the MAC width) serves
            # each scheduled group, so consecutive groups post-process in
            # parallel (Section V-B: groups are programmed individually).
            scale = self.config.vpu_lane_groups
            stages = self.vpu.stage_cycles()
            if inst.op is VpuOp.MODULUS_SWITCH:
                return scale * inst.count * stages.modulus_switch / clock
            if inst.op is VpuOp.SAMPLE_EXTRACT:
                return scale * inst.count * stages.sample_extract / clock
            if inst.op is VpuOp.KEY_SWITCH:
                return scale * inst.count * stages.key_switch / clock
            return scale * self.vpu.linear_op_cycles(inst.macs) / clock
        # DMA: BSK rides the XPU channel group, everything else the VPU's.
        if inst.op is DmaOp.LOAD_BSK:
            return self.hbm.xpu_transfer_seconds(inst.data_bytes)
        return self.hbm.vpu_transfer_seconds(inst.data_bytes)

    def _engine_key(self, inst: Instruction) -> str:
        if inst.engine is Engine.DMA:
            return "dma_xpu" if inst.op is DmaOp.LOAD_BSK else "dma_vpu"
        if inst.engine is Engine.VPU:
            return f"vpu{inst.group % self.config.vpu_lane_groups}"
        return inst.engine.value

    def execute(
        self, stream: InstructionStream, record_spans: bool = False,
        verify: bool = False,
    ) -> ScheduleResult:
        """Run the stream to completion; returns makespan and busy times.

        With ``record_spans`` the result carries per-instruction
        ``(engine, op, group, start, end)`` tuples for Gantt rendering
        (:func:`render_schedule`).  With ``verify`` the stream must
        first pass the static program verifier (raises
        :class:`repro.verify.VerificationError` otherwise); the compile
        facade verifies by default, so this is off here to avoid
        re-checking the same stream.
        """
        if verify:
            from ..verify import verify_or_raise

            verify_or_raise(stream, config=self.config, params=self.params)
        ready = {"xpu": 0.0, "dma_xpu": 0.0, "dma_vpu": 0.0}
        ready.update({f"vpu{g}": 0.0 for g in range(self.config.vpu_lane_groups)})
        busy = dict.fromkeys(ready, 0.0)
        finish = {}
        scheduled_slots = 0
        used_slots = 0
        spans = [] if record_spans else None
        clock_hz = self.config.clock_ghz * 1e9
        # Shared-buffer pressure: (time, byte delta) pairs collected while
        # scheduling, replayed in time order afterwards into one sampled
        # perf-counter track.  BR results land in Shared when the XPU
        # instruction finishes and leave when SE drains them.
        pressure = [] if _COUNTERS.enabled else None
        # Request-latency samples: each group's STORE_LWE retire time is
        # the completion time of its `count` requests (since t=0), the
        # population the SLO monitor prices p50/p95/p99 over.
        requests = [] if (_BUS.enabled or _METRICS.enabled) else None
        for inst in stream:
            duration = self._duration(inst)
            if inst.op is XpuOp.BLIND_ROTATE:
                scheduled_slots += self.config.bootstrap_cores * (
                    -(-inst.count // self.config.bootstrap_cores)
                )
                used_slots += inst.count
            key = self._engine_key(inst)
            deps_done = max((finish[d] for d in inst.depends_on), default=0.0)
            start = max(ready[key], deps_done)
            end = start + duration
            ready[key] = end
            busy[key] += duration
            finish[inst.inst_id] = end
            if requests is not None and inst.op is DmaOp.STORE_LWE and inst.count:
                requests.append((end, inst.count, inst.group))
            if spans is not None:
                spans.append((key, inst.op.value, inst.group, start, end))
            if _METRICS.enabled:
                _SCHED_INSTRUCTIONS.inc(op=inst.op.value)
            if _TRACER.enabled:
                _TRACER.add_span(
                    inst.op.value, ts_us=start * 1e6, dur_us=duration * 1e6,
                    category="schedule", track=f"hw/{key}",
                    args={"group": inst.group, "count": inst.count},
                )
            if pressure is not None:
                _COUNTERS.add_cycles(f"sched/engine/{key}", duration * clock_hz)
                if inst.op is XpuOp.BLIND_ROTATE:
                    waves = -(-inst.count // self.config.bootstrap_cores)
                    self.xpu.record_blind_rotations(waves * self.config.num_xpus)
                    pressure.append((end, inst.count * self.params.glwe_bytes))
                elif inst.op in (
                    VpuOp.MODULUS_SWITCH, VpuOp.SAMPLE_EXTRACT, VpuOp.KEY_SWITCH
                ):
                    cycles = self.vpu.stage_cycles().stage_cycle_map()[inst.op.value]
                    _COUNTERS.add_cycles(
                        f"vpu/stage/{inst.op.value}", inst.count * cycles
                    )
                    if inst.op is VpuOp.SAMPLE_EXTRACT:
                        pressure.append(
                            (end, -inst.count * self.params.glwe_bytes)
                        )
        if pressure:
            level = 0.0
            _COUNTERS.sample("sched/shared_inflight_bytes", 0.0, 0.0)
            for t, delta in sorted(pressure):
                level += delta
                _COUNTERS.sample("sched/shared_inflight_bytes", t, level)
        total = max(finish.values(), default=0.0)
        waste = 1.0 - used_slots / scheduled_slots if scheduled_slots else 0.0
        if scheduled_slots:
            _SCHED_PADDING.inc(scheduled_slots - used_slots)
        # Collapse the per-lane-group VPU engines into one "vpu" row,
        # normalized so utilization stays a fraction of the whole unit.
        groups = self.config.vpu_lane_groups
        merged = {
            "xpu": busy["xpu"],
            "vpu": sum(v for k, v in busy.items() if k.startswith("vpu")) / groups,
            "dma_xpu": busy["dma_xpu"],
            "dma_vpu": busy["dma_vpu"],
        }
        result = ScheduleResult(
            total_seconds=total,
            engine_busy_seconds=merged,
            instructions=len(stream),
            groups=len(stream.groups()),
            padding_waste=waste,
            spans=spans,
        )
        if requests:
            for end, count, group in requests:
                _SCHED_REQUEST_LATENCY.observe(end, count=count)
                if _BUS.enabled:
                    _BUS.publish("request", "sched/request", value=end,
                                 count=count, group=group)
        if _BUS.enabled:
            _BUS.publish("snapshot", "sched/result", value=total,
                         instructions=result.instructions,
                         groups=result.groups, padding_waste=waste,
                         utilization=result.utilization)
            if scheduled_slots:
                # Scheduled-slot occupancy: the steady-state batch-fill
                # evidence the dashboard's occupancy bar reports when a
                # run goes through the scheduler rather than the machine.
                _BUS.publish("batch", "sched/slots", value=float(used_slots),
                             capacity=scheduled_slots)
        return result


def render_schedule(result: ScheduleResult, width: int = 72) -> str:
    """ASCII Gantt chart of an executed schedule (the paper's Fig. 6 view).

    One row per engine; digits mark which group occupies the engine.
    Requires the result to have been produced with ``record_spans=True``.
    """
    if not result.spans:
        raise ValueError("execute the stream with record_spans=True first")
    total = result.total_seconds
    engines = sorted({s[0] for s in result.spans})
    lines = []
    for engine in engines:
        row = [" "] * width
        for key, _op, group, start, end in result.spans:
            if key != engine or end <= start:
                continue
            lo = int(start / total * width)
            hi = max(lo + 1, int(end / total * width))
            for x in range(lo, min(hi, width)):
                row[x] = str(group % 10)
        lines.append(f"{engine:8s} |{''.join(row)}|")
    lines.append(f"{'time':8s} |0{' ' * (width - 2)}|{result.total_seconds * 1e3:.2f} ms")
    return "\n".join(lines)


def run_workload(
    config: MorphlingConfig, params: TFHEParams, layers: list,
    verify: bool = True, latency_budget_s: Optional[float] = None,
) -> ScheduleResult:
    """Schedule, statically verify, and execute a workload end to end.

    ``latency_budget_s`` arms the flight recorder's latency-spike
    trigger: a makespan over the budget reports a ``latency_spike``
    anomaly (the run still returns normally — the budget is telemetry,
    not admission control).  Uncaught exceptions in scheduling or
    execution are reported as ``exception`` anomalies and re-raised, so
    a crash dump carries the events leading up to it.
    """
    try:
        stream = SwScheduler(config, params).schedule(layers)
        result = HwScheduler(config, params).execute(stream, verify=verify)
    except Exception as exc:
        _report_anomaly("exception", where="run_workload", error=repr(exc),
                        config=config.name, params=params.name)
        raise
    if latency_budget_s is not None and result.total_seconds > latency_budget_s:
        _report_anomaly("latency_spike", budget_s=latency_budget_s,
                        actual_s=result.total_seconds,
                        config=config.name, params=params.name)
    return result
