"""XPU timing model (Section V-A).

The XPU is a streaming pipeline: the Private-A1 rotator feeds the
decomposition units, which feed the merge-split pipelined FFTs, which
feed the VPE array, which drains through the IFFTs.  In steady state one
blind-rotation iteration costs the *maximum* of its stage cycle counts
(the pipeline overlaps stages across iterations); fill/drain and rotator
stalls are added once per iteration where applicable.

The per-stage formulas and the default unit counts reproduce the paper's
Table V latencies analytically (see DESIGN.md for the derivation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability import COUNTERS as _COUNTERS
from ..params import TFHEParams
from ..transforms.pipeline_model import PipelinedFFTModel
from .accelerator import MorphlingConfig
from .buffers import shifter_stall_cycles
from .reuse import transforms_per_external_product
from .vpe_array import map_external_product

__all__ = ["IterationBreakdown", "XpuModel"]

#: Per-iteration pipeline overhead (cycles): handoff registers between the
#: rotator, decomposition, FFT and VPE stages.  Calibrated once against
#: the paper's Table V (set I throughput implies ~4 cycles of overhead
#: per iteration) and used unchanged for every other experiment.
ITERATION_OVERHEAD_CYCLES = 4.0


@dataclass(frozen=True)
class IterationBreakdown:
    """Cycle cost of each pipeline stage for one blind-rotation iteration."""

    rotation: float
    decomposition: float
    forward_fft: float
    vpe_stream: float
    inverse_fft: float
    bsk_stream: float
    overhead: float

    @property
    def critical(self) -> float:
        """Steady-state cycles per iteration: slowest stage + overhead."""
        return (
            max(
                self.rotation,
                self.decomposition,
                self.forward_fft,
                self.vpe_stream,
                self.inverse_fft,
                self.bsk_stream,
            )
            + self.overhead
        )

    def stage_cycle_map(self) -> dict:
        """Stage name -> cycles, in dataflow order (perf-counter keys)."""
        return {
            "rotation": self.rotation,
            "decomposition": self.decomposition,
            "forward_fft": self.forward_fft,
            "vpe_stream": self.vpe_stream,
            "inverse_fft": self.inverse_fft,
            "bsk_stream": self.bsk_stream,
        }

    def occupancy(self) -> dict:
        """Per-stage busy fraction of the steady-state iteration interval.

        The pipelined-FFT rows of this dict are the paper's I/FFT
        occupancy discussion (Section VI): a stage at 1.0 paces the
        pipeline, everything below it idles part of each iteration.
        """
        critical = self.critical
        if critical <= 0:
            return dict.fromkeys(self.stage_cycle_map(), 0.0)
        return {s: c / critical for s, c in self.stage_cycle_map().items()}

    def bottleneck(self) -> str:
        """Name of the slowest stage."""
        stages = self.stage_cycle_map()
        return max(stages, key=stages.get)


class XpuModel:
    """Cycle model of one external product unit."""

    def __init__(self, config: MorphlingConfig, params: TFHEParams):
        self.config = config
        self.params = params
        self.fft = PipelinedFFTModel(
            poly_size=params.N,
            lanes=config.fft_lanes,
            merge_split=config.merge_split,
        )
        # IFFT units drain one accumulator spectrum per pass; the inverse
        # merge-split (packing two spectra of real polynomials) is part of
        # the same merge-split option.
        self.ifft = PipelinedFFTModel(
            poly_size=params.N,
            lanes=config.fft_lanes,
            merge_split=False,
        )

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Bootstraps processed concurrently by this XPU."""
        return self.config.vpe_rows

    def iteration_breakdown(self) -> IterationBreakdown:
        """Stage cycles for one iteration across all resident rows."""
        cfg, p = self.config, self.params
        counts = transforms_per_external_product(p.k, p.l_b, cfg.reuse)
        mapping = map_external_product(cfg, p)

        fwd_polys = self.rows * counts.forward
        inv_polys = self.rows * counts.inverse
        pass_cycles = self.fft.cycles_per_pass

        fwd_passes = self.fft.passes_for(fwd_polys)
        forward_fft = -(-fwd_passes // cfg.fft_units_per_xpu) * pass_cycles
        inv_passes = self.ifft.passes_for(inv_polys)
        inverse_fft = -(-inv_passes // cfg.ifft_units_per_xpu) * pass_cycles

        # Supply datapath width (coefficients/cycle per XPU): each
        # decomposition unit moves two fft_lanes-wide vectors per cycle
        # (512-bit digit output), sized to keep the merge-split FFTs fed.
        supply_ports = cfg.fft_lanes * cfg.decomp_units_per_xpu * 2

        # Rotation: the A1 double-pointer rotator reads each resident ACC
        # coefficient once per iteration (the reorder unit routes it to
        # both pointer positions), across all rows and k+1 components.
        rotation = self.rows * (p.k + 1) * p.N / supply_ports

        # Decomposition: bit-slice + round on the digit stream; the digit
        # side carries l_b digits per source coefficient.
        decomposition = self.rows * (p.k + 1) * p.l_b * p.N / supply_ports

        # VPE array: each row consumes its forward spectra serially at
        # fft_lanes points/cycle, repeated for every column pass.
        vpe_stream = (
            (p.k + 1) * p.l_b * (p.N / 2 / cfg.fft_lanes) * mapping.column_passes
        )

        # BSK streaming from Private-A2: one transform-domain BSK_i per
        # iteration, multicast to all rows; the multicast port moves
        # fft_lanes complex points per column per cycle.
        bsk_points = p.polynomials_per_ggsw * (p.N / 2)
        bsk_stream = bsk_points / (cfg.fft_lanes * cfg.vpe_cols)

        # A variable-delay shifter (instead of the double-pointer rotator)
        # flushes the whole pipeline when the rotation amount changes, so
        # its stall lands on the critical path, not inside one stage.
        overhead = ITERATION_OVERHEAD_CYCLES + shifter_stall_cycles(p, cfg)

        return IterationBreakdown(
            rotation=rotation,
            decomposition=decomposition,
            forward_fft=forward_fft,
            vpe_stream=vpe_stream,
            inverse_fft=inverse_fft,
            bsk_stream=bsk_stream,
            overhead=overhead,
        )

    def iteration_cycles(self) -> float:
        """Steady-state cycles per blind-rotation iteration."""
        return self.iteration_breakdown().critical

    def blind_rotation_cycles(self) -> float:
        """Cycles for one full blind rotation (n iterations + fill)."""
        fill = self.fft.fill_latency + self.ifft.fill_latency
        return self.params.n * self.iteration_cycles() + fill

    def record_blind_rotations(self, count: int = 1) -> None:
        """Account ``count`` scheduled blind rotations on the perf counters.

        One blind rotation is this XPU's unit of scheduled work (a
        resident batch of ``vpe_rows`` bootstraps): per-stage busy cycles
        over all ``n`` iterations, the modelled double-pointer rotations,
        and the pipeline fill.  Whoever *executes* the modelled work (the
        simulator per steady-state group, the HW-scheduler per XPU
        instruction) calls this, so model evaluations never inflate the
        counters.
        """
        if not _COUNTERS.enabled or count <= 0:
            return
        bd = self.iteration_breakdown()
        fill = self.fft.fill_latency + self.ifft.fill_latency
        n = self.params.n
        for stage, cycles in bd.stage_cycle_map().items():
            _COUNTERS.add_cycles(f"xpu/stage/{stage}", count * n * cycles)
        _COUNTERS.add_cycles("xpu/stage/overhead", count * n * bd.overhead)
        _COUNTERS.add_cycles("xpu/fill", count * fill)
        _COUNTERS.add_ops(
            "rotator/rotations", count * n * self.rows * (self.params.k + 1)
        )

    def blind_rotation_seconds(self) -> float:
        """Wall-clock blind rotation time for the resident batch."""
        return self.blind_rotation_cycles() / (self.config.clock_ghz * 1e9)

    def batch_size(self) -> int:
        """Ciphertexts finished per blind rotation on this XPU."""
        return self.rows
