"""Binary encoding of the custom instruction streams (Section V-E).

The SW-scheduler emits instruction objects; a real deployment ships them
to the accelerator as a binary stream.  This module defines that wire
format and proves it lossless:

record layout (little-endian)::

    u8  engine      (1 = XPU, 2 = VPU, 3 = DMA)
    u8  opcode      (per-engine opcode table below)
    u16 group
    u32 count       (ciphertexts covered)
    u64 payload     (DMA bytes, or P-ALU MACs)
    u16 n_deps
    u16 reserved    (zero)
    u32 inst_id
    u32 x n_deps    dependency instruction ids

``encode_stream``/``decode_stream`` round-trip whole programs;
``stream_size_bytes`` reports the instruction-fetch footprint the DMA
model charges.
"""

from __future__ import annotations

import struct

from .isa import DmaOp, Engine, Instruction, InstructionStream, VpuOp, XpuOp

__all__ = [
    "encode_instruction",
    "decode_instruction",
    "encode_stream",
    "decode_stream",
    "stream_size_bytes",
]

_HEADER = struct.Struct("<BBHIQHHI")

_ENGINE_CODES = {Engine.XPU: 1, Engine.VPU: 2, Engine.DMA: 3}
_ENGINE_FROM_CODE = {v: k for k, v in _ENGINE_CODES.items()}

_OPCODE_TABLES = {
    Engine.XPU: list(XpuOp),
    Engine.VPU: list(VpuOp),
    Engine.DMA: list(DmaOp),
}


def _opcode_of(inst: Instruction) -> int:
    return _OPCODE_TABLES[inst.engine].index(inst.op)


def encode_instruction(inst: Instruction) -> bytes:
    """Serialize one instruction to its binary record."""
    payload = inst.data_bytes or inst.macs
    header = _HEADER.pack(
        _ENGINE_CODES[inst.engine],
        _opcode_of(inst),
        inst.group,
        inst.count,
        payload,
        len(inst.depends_on),
        0,
        inst.inst_id,
    )
    deps = struct.pack(f"<{len(inst.depends_on)}I", *inst.depends_on)
    return header + deps


def decode_instruction(data: bytes, offset: int = 0) -> tuple:
    """Decode one record; returns ``(Instruction, next_offset)``."""
    if len(data) - offset < _HEADER.size:
        raise ValueError("truncated instruction record")
    (engine_code, opcode, group, count, payload,
     n_deps, reserved, inst_id) = _HEADER.unpack_from(data, offset)
    if reserved != 0:
        raise ValueError("corrupt record: reserved field set")
    try:
        engine = _ENGINE_FROM_CODE[engine_code]
        op = _OPCODE_TABLES[engine][opcode]
    except (KeyError, IndexError):
        raise ValueError(
            f"unknown engine/opcode pair ({engine_code}, {opcode})"
        ) from None
    offset += _HEADER.size
    if len(data) - offset < 4 * n_deps:
        raise ValueError("truncated dependency list")
    deps = struct.unpack_from(f"<{n_deps}I", data, offset)
    offset += 4 * n_deps
    sizes = {}
    if engine is Engine.DMA:
        sizes["data_bytes"] = payload
    elif op is VpuOp.P_ALU:
        sizes["macs"] = payload
    inst = Instruction(inst_id, op, group, count=count, depends_on=deps, **sizes)
    return inst, offset


def encode_stream(stream: InstructionStream) -> bytes:
    """Serialize a whole program (preserving emission order)."""
    return b"".join(encode_instruction(inst) for inst in stream)


def decode_stream(data: bytes) -> list:
    """Decode a binary program back into instruction objects."""
    out = []
    offset = 0
    while offset < len(data):
        inst, offset = decode_instruction(data, offset)
        out.append(inst)
    return out


def stream_size_bytes(stream: InstructionStream) -> int:
    """Instruction-fetch footprint of a program."""
    return sum(_HEADER.size + 4 * len(inst.depends_on) for inst in stream)
