"""Functional Morphling machine: bootstrapping through the architecture.

The timing models say how *fast* Morphling is; this module shows the
architecture computes the *right thing*.  ``MorphlingMachine`` executes
real programmable bootstraps using the architectural components:

- the Private-A1 :class:`~repro.core.buffers.DoublePointerRotator`
  streams ``(ACC, X^t * ACC)`` pairs (instead of calling the ring
  primitive directly);
- the decomposition units gadget-decompose the streamed difference;
- the :class:`~repro.core.vpe_array.VpeArray` performs the external
  products in the transform domain with output-stationary accumulation,
  one shared BSK_i per iteration across all resident rows (the BSK reuse
  the paper exploits);
- the VPU steps (MS / SE / KS) run on the scheme substrate, batched.

Integration tests assert the machine's outputs decrypt identically to
the reference :func:`~repro.tfhe.bootstrap.programmable_bootstrap` - the
architecture-equals-algorithm check a real design verification flow
performs against its golden model.
"""

from __future__ import annotations

import numpy as np

from ..observability import BUS as _BUS, COUNTERS as _COUNTERS
from ..params import TFHEParams
from ..tfhe.bootstrap import key_switch_batch, modulus_switch
from ..tfhe.glwe import GlweCiphertext, glwe_trivial, sample_extract_batch
from ..tfhe.keys import KeySet
from ..tfhe.lwe import LweCiphertext
from ..tfhe.torus import TORUS_DTYPE
from .accelerator import MorphlingConfig
from .buffers import DoublePointerRotator
from .vpe_array import VpeArray

__all__ = ["MorphlingMachine"]


class MorphlingMachine:
    """Functional model of the accelerator executing real bootstraps."""

    def __init__(self, config: MorphlingConfig, keyset: KeySet) -> None:
        if keyset.params.k + 1 > config.vpe_cols:
            raise ValueError(
                f"k+1 = {keyset.params.k + 1} output columns exceed the "
                f"{config.vpe_cols}-column VPE array"
            )
        self.config = config
        self.keyset = keyset
        self.array = VpeArray(rows=config.vpe_rows, cols=config.vpe_cols)

    @property
    def params(self) -> TFHEParams:
        return self.keyset.params

    # ------------------------------------------------------------------
    def _rotated_difference(self, acc: GlweCiphertext, t: int) -> GlweCiphertext:
        """``X^t * ACC - ACC`` via the double-pointer rotator streams.

        Each component polynomial is read through pointer A (original)
        and pointer B (rotated); the difference feeds decomposition -
        exactly the Private-A1 datapath of Section V-C.
        """
        diff = np.empty_like(acc.data)
        for c in range(acc.data.shape[0]):
            rotator = DoublePointerRotator(acc.data[c], self.config.fft_lanes)
            original, rotated = rotator.stream(t)
            diff[c] = (rotated.astype(np.int64) - original.astype(np.int64)).astype(
                TORUS_DTYPE
            )
        return GlweCiphertext(diff)

    def blind_rotate_batch(self, switched: list, test_poly: np.ndarray) -> list:
        """Blind-rotate up to ``vpe_rows`` ciphertexts together.

        ``switched`` holds ``(a_tilde, b_tilde)`` pairs from modulus
        switching.  All rows advance iteration-by-iteration sharing each
        BSK_i, matching the hardware's column-broadcast schedule.
        """
        if len(switched) > self.config.vpe_rows:
            raise ValueError(
                f"batch of {len(switched)} exceeds {self.config.vpe_rows} rows"
            )
        params = self.params
        accs = [
            glwe_trivial(test_poly, params.k).data for _, b_t in switched
        ]
        accs = [
            GlweCiphertext(
                np.stack([
                    DoublePointerRotator(row, self.config.fft_lanes).stream(-b_t)[1]
                    for row in acc
                ])
            )
            for acc, (_, b_t) in zip(accs, switched)
        ]
        for i in range(params.n):
            # Rows whose switched mask element is zero skip this CMux.
            active = [
                (row, int(switched[row][0][i]))
                for row in range(len(switched))
                if int(switched[row][0][i]) != 0
            ]
            if not active:
                continue
            diffs = [self._rotated_difference(accs[row], t) for row, t in active]
            products = self.array.external_product_batch(self.keyset.bsk[i], diffs)
            for (row, _), product in zip(active, products):
                accs[row] = GlweCiphertext(accs[row].data + product.data)
        return accs

    def bootstrap_batch(self, cts: list, test_poly: np.ndarray) -> list:
        """Full MS -> BR -> SE -> KS for up to ``vpe_rows`` ciphertexts.

        The batch advances stage by stage (all ciphertexts modulus-switch
        before any blind rotation starts, and so on), which is the order
        the SW-scheduler lowers one group in and the order the static
        verifier's VER005 stage model legalises.  With the perf counters
        enabled each stage boundary emits an ordered event on the
        ``machine/stages`` track, named by the ISA op it corresponds to,
        so a functional run can be cross-checked against that model.
        """
        params = self.params
        counting = _COUNTERS.enabled
        if counting:
            _COUNTERS.event("machine/stages", "modulus_switch")
        switched = [modulus_switch(ct, params.N) for ct in cts]
        if counting:
            _COUNTERS.add_ops("machine/modulus_switches", len(cts))
            _COUNTERS.event("machine/stages", "blind_rotate")
        accs = self.blind_rotate_batch(switched, test_poly)
        if counting:
            _COUNTERS.add_ops("machine/blind_rotations", len(accs))
            _COUNTERS.event("machine/stages", "sample_extract")
        ext_a, ext_b = sample_extract_batch(np.stack([acc.data for acc in accs]))
        if counting:
            _COUNTERS.add_ops("machine/sample_extracts", len(accs))
            _COUNTERS.event("machine/stages", "key_switch")
        out_a, out_b = key_switch_batch(ext_a, ext_b, self.keyset.ksk)
        out = [LweCiphertext(out_a[r], out_b[r]) for r in range(len(accs))]
        if counting:
            _COUNTERS.add_ops("machine/key_switches", len(out))
        if _BUS.enabled:
            # True batch occupancy: ciphertexts dispatched vs. VPE rows
            # available — the live dashboard's occupancy bar.
            _BUS.publish("batch", "machine/bootstrap_batch",
                         value=float(len(out)),
                         capacity=self.config.vpe_rows)
        return out

    def bootstrap(self, ct: LweCiphertext, test_poly: np.ndarray) -> LweCiphertext:
        """Single-ciphertext convenience wrapper."""
        return self.bootstrap_batch([ct], test_poly)[0]
