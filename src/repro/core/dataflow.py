"""Dataflow ablation: ACC-output vs ACC-input vs BSK stationary (Section IV-B).

The paper picks the ACC-output-stationary dataflow for the VPE array and
argues the alternatives are worse on two axes:

1. *Buffer pressure*: input- and BSK-stationary keep the output partial
   sums in Private-A1 - and because Morphling accumulates in the
   transform domain, those partial sums are transform-domain data (two
   32-bit words per point, ``(k+1)*l_b`` live columns worth per
   ciphertext during the dot product), roughly doubling the working set
   vs the coefficient-domain ACC.
2. *External bandwidth*: BSK-stationary pins BSK_i on chip and streams
   the ACC of *every resident ciphertext* in and out per iteration,
   which multiplies the off-chip ciphertext traffic.

This module quantifies both so the ablation bench can rank the options.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..params import TFHEParams
from .accelerator import MorphlingConfig

__all__ = ["Dataflow", "DataflowCost", "dataflow_cost", "rank_dataflows"]


class Dataflow(enum.Enum):
    OUTPUT_STATIONARY = "acc-output-stationary"
    INPUT_STATIONARY = "acc-input-stationary"
    BSK_STATIONARY = "bsk-stationary"


@dataclass(frozen=True)
class DataflowCost:
    """Per-ciphertext costs of one dataflow choice."""

    dataflow: Dataflow
    a1_bytes_per_ciphertext: int
    external_bytes_per_iteration: int

    def dominates(self, other: "DataflowCost") -> bool:
        """True when no worse on both axes and better on at least one."""
        no_worse = (
            self.a1_bytes_per_ciphertext <= other.a1_bytes_per_ciphertext
            and self.external_bytes_per_iteration <= other.external_bytes_per_iteration
        )
        better = (
            self.a1_bytes_per_ciphertext < other.a1_bytes_per_ciphertext
            or self.external_bytes_per_iteration < other.external_bytes_per_iteration
        )
        return no_worse and better


def dataflow_cost(
    dataflow: Dataflow, config: MorphlingConfig, params: TFHEParams
) -> DataflowCost:
    """Buffer and bandwidth cost of one dataflow."""
    p = params
    coeff_acc = p.glwe_bytes  # (k+1) polynomials, 4 B/coefficient
    # Transform-domain partial sums: (k+1) output columns x N/2 complex
    # points x 8 B, i.e. twice the coefficient image.
    spectrum_acc = (p.k + 1) * (p.N // 2) * 8
    bsk_i_bytes = p.polynomials_per_ggsw * p.N * p.coeff_bytes

    if dataflow is Dataflow.OUTPUT_STATIONARY:
        # ACC stays in POLY-ACC-REG; A1 keeps only the coefficient ACC.
        return DataflowCost(dataflow, coeff_acc, bsk_i_bytes)
    if dataflow is Dataflow.INPUT_STATIONARY:
        # The transform-domain partial sums round-trip through A1.
        return DataflowCost(dataflow, coeff_acc + spectrum_acc, bsk_i_bytes)
    if dataflow is Dataflow.BSK_STATIONARY:
        # BSK_i is pinned; every resident ciphertext's ACC (plus its
        # transform-domain partial sums) streams per iteration.
        per_cipher = coeff_acc + spectrum_acc
        external = config.bootstrap_cores * 2 * coeff_acc
        return DataflowCost(dataflow, per_cipher, external)
    raise ValueError(f"unknown dataflow: {dataflow}")


def rank_dataflows(config: MorphlingConfig, params: TFHEParams) -> list:
    """All three dataflow costs, best (paper's choice) first."""
    costs = [dataflow_cost(d, config, params) for d in Dataflow]
    return sorted(
        costs,
        key=lambda c: (c.a1_bytes_per_ciphertext, c.external_bytes_per_iteration),
    )
