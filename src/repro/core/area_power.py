"""Analytical area/power model calibrated to Table IV (TSMC 28 nm, 1.2 GHz).

The paper reports a per-component breakdown of the shipped configuration;
we turn it into *unit* costs (one FFT, one VPE, one MB of buffer, ...) so
any :class:`~repro.core.accelerator.MorphlingConfig` can be priced - which
is what lets the ablation benches reason about equal-resource variants and
XPU-count sweeps.  At the default configuration the model reproduces
Table IV to rounding.

Unit costs are exact divisions of the published numbers:

===================  ===========================  =====================
component            area (mm^2)                  power (W)
===================  ===========================  =====================
decomposition unit   0.01 / 4                     0.0025 (from <0.01)
FFT unit             1.22 / 2                     0.91 / 2
Coef buffer          0.06 / 2                     0.03 / 2
twiddle buffer       0.75                         0.37
VPE                  4.71 / 16                    3.13 / 16
IFFT unit            2.45 / 4                     1.82 / 4
VPU lane             0.22 / 128                   0.13 / 128
NoC (per XPU port)   0.21 / 4                     0.17 / 4
SRAM per MB          Private-A1: 8.31 / 4, ...    per-buffer, see code
HBM2e PHY            14.90 (fixed per stack)      15.90
===================  ===========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

from .accelerator import MorphlingConfig

__all__ = ["ComponentCost", "AreaPowerModel", "TABLE_IV_PAPER"]

MIB = 1024 * 1024


@dataclass(frozen=True)
class ComponentCost:
    """Area (mm^2) and power (W) of one component instance or group."""

    area_mm2: float
    power_w: float

    def __mul__(self, count: float) -> "ComponentCost":
        return ComponentCost(self.area_mm2 * count, self.power_w * count)

    __rmul__ = __mul__

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(self.area_mm2 + other.area_mm2, self.power_w + other.power_w)


# Unit costs derived from Table IV (per instance / per MB).
_UNIT = {
    "decomposition": ComponentCost(0.01 / 4, 0.0025),
    "fft": ComponentCost(1.22 / 2, 0.91 / 2),
    "coef_buffer": ComponentCost(0.06 / 2, 0.03 / 2),
    "twiddle_buffer": ComponentCost(0.75, 0.37),
    "vpe": ComponentCost(4.71 / 16, 3.13 / 16),
    "ifft": ComponentCost(2.45 / 4, 1.82 / 4),
    "vpu_lane": ComponentCost(0.22 / 128, 0.13 / 128),
    "noc_port": ComponentCost(0.21 / 4, 0.17 / 4),
    "sram_a1_per_mb": ComponentCost(8.31 / 4, 4.27 / 4),
    "sram_a2_per_mb": ComponentCost(8.10 / 4, 3.99 / 4),
    "sram_b_per_mb": ComponentCost(4.05 / 2, 2.42 / 2),
    "sram_shared_per_mb": ComponentCost(2.02 / 1, 0.99 / 1),
    "hbm_phy": ComponentCost(14.90, 15.90),
}

#: The paper's Table IV totals, for regression checks.
TABLE_IV_PAPER = {
    "xpu": ComponentCost(9.23, 6.23),
    "4x_xpu": ComponentCost(36.95, 25.11),
    "vpu": ComponentCost(0.22, 0.13),
    "noc": ComponentCost(0.21, 0.17),
    "private_a1": ComponentCost(8.31, 4.27),
    "private_a2": ComponentCost(8.10, 3.99),
    "private_b": ComponentCost(4.05, 2.42),
    "shared": ComponentCost(2.02, 0.99),
    "hbm_phy": ComponentCost(14.90, 15.90),
    "total": ComponentCost(74.79, 53.00),
}


class AreaPowerModel:
    """Price a Morphling configuration."""

    def __init__(self, config: MorphlingConfig):
        self.config = config

    # -- per-block costs ------------------------------------------------
    def xpu_cost(self) -> ComponentCost:
        """One XPU: decomposition units, FFTs (+Coef), twiddles, VPEs, IFFTs."""
        cfg = self.config
        return (
            cfg.decomp_units_per_xpu * _UNIT["decomposition"]
            + cfg.fft_units_per_xpu * _UNIT["fft"]
            + cfg.fft_units_per_xpu * _UNIT["coef_buffer"]
            + _UNIT["twiddle_buffer"]
            + cfg.vpe_rows * cfg.vpe_cols * _UNIT["vpe"]
            + cfg.ifft_units_per_xpu * _UNIT["ifft"]
        )

    def vpu_cost(self) -> ComponentCost:
        return self.config.vpu_lanes * _UNIT["vpu_lane"]

    def noc_cost(self) -> ComponentCost:
        return self.config.num_xpus * _UNIT["noc_port"]

    def buffer_cost(self) -> ComponentCost:
        cfg = self.config
        return (
            (cfg.private_a1_bytes / MIB) * _UNIT["sram_a1_per_mb"]
            + (cfg.private_a2_bytes / MIB) * _UNIT["sram_a2_per_mb"]
            + (cfg.private_b_bytes / MIB) * _UNIT["sram_b_per_mb"]
            + (cfg.shared_bytes / MIB) * _UNIT["sram_shared_per_mb"]
        )

    def hbm_cost(self) -> ComponentCost:
        return _UNIT["hbm_phy"]

    # -- rollups ----------------------------------------------------------
    def breakdown(self) -> dict:
        """Component table in the same rows as Table IV."""
        cfg = self.config
        xpu = self.xpu_cost()
        rows = {
            f"{cfg.decomp_units_per_xpu}x Decomposition Unit":
                cfg.decomp_units_per_xpu * _UNIT["decomposition"],
            f"{cfg.fft_units_per_xpu}x FFT": cfg.fft_units_per_xpu * _UNIT["fft"],
            f"{cfg.fft_units_per_xpu}x Coef-Buffer":
                cfg.fft_units_per_xpu * _UNIT["coef_buffer"],
            "Twiddle-Buffer": _UNIT["twiddle_buffer"],
            f"{cfg.vpe_rows}x{cfg.vpe_cols} VPE Array":
                cfg.vpe_rows * cfg.vpe_cols * _UNIT["vpe"],
            f"{cfg.ifft_units_per_xpu}x IFFT": cfg.ifft_units_per_xpu * _UNIT["ifft"],
            "XPU": xpu,
            f"{cfg.num_xpus}x XPU": cfg.num_xpus * xpu,
            "VPU": self.vpu_cost(),
            "NoC": self.noc_cost(),
            f"Private-A1 Buffer ({cfg.private_a1_bytes // MIB} MB)":
                (cfg.private_a1_bytes / MIB) * _UNIT["sram_a1_per_mb"],
            f"Private-A2 Buffer ({cfg.private_a2_bytes // MIB} MB)":
                (cfg.private_a2_bytes / MIB) * _UNIT["sram_a2_per_mb"],
            f"Private-B Buffer ({cfg.private_b_bytes // MIB} MB)":
                (cfg.private_b_bytes / MIB) * _UNIT["sram_b_per_mb"],
            f"Shared Buffer ({cfg.shared_bytes // MIB} MB)":
                (cfg.shared_bytes / MIB) * _UNIT["sram_shared_per_mb"],
            "HBM2e PHY": self.hbm_cost(),
        }
        return rows

    def total(self) -> ComponentCost:
        cfg = self.config
        return (
            cfg.num_xpus * self.xpu_cost()
            + self.vpu_cost()
            + self.noc_cost()
            + self.buffer_cost()
            + self.hbm_cost()
        )

    # -- derived efficiency metrics ---------------------------------------
    def energy_per_bootstrap_mj(self, throughput_bs: float) -> float:
        """Millijoules per bootstrap at the given throughput."""
        if throughput_bs <= 0:
            raise ValueError("throughput must be positive")
        return self.total().power_w / throughput_bs * 1e3

    def throughput_per_mm2(self, throughput_bs: float) -> float:
        """Bootstraps per second per mm^2 of die."""
        if throughput_bs <= 0:
            raise ValueError("throughput must be positive")
        return throughput_bs / self.total().area_mm2
