"""HBM external-memory model (Sections IV-C and VI-B).

One HBM2e stack with 8 channels at a moderated average of 310 GB/s.
Channels are priority-split: 2 to the XPUs (BSK streaming) and 6 to the
VPU (KSK, LWE ciphertext and test-polynomial traffic).  The model
accounts per-bootstrap traffic with the BSK/KSK reuse factors applied and
converts byte volumes into transfer times per channel group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability import COUNTERS as _COUNTERS, REGISTRY as _METRICS
from ..params import TFHEParams
from .accelerator import MorphlingConfig

__all__ = ["TrafficBreakdown", "HbmModel"]

_HBM_BYTES = _METRICS.counter(
    "hbm_bytes_total", "Modelled HBM traffic in bytes, by channel group"
)
_HBM_TRANSFERS = _METRICS.counter(
    "hbm_transfers_total", "Modelled HBM transfers accounted, by channel group"
)


@dataclass(frozen=True)
class TrafficBreakdown:
    """Bytes moved per bootstrapped ciphertext, after reuse."""

    bsk_bytes: float
    ksk_bytes: float
    lwe_bytes: float
    test_poly_bytes: float

    @property
    def xpu_bytes(self) -> float:
        """Traffic served by the XPU channel group."""
        return self.bsk_bytes

    @property
    def vpu_bytes(self) -> float:
        """Traffic served by the VPU channel group."""
        return self.ksk_bytes + self.lwe_bytes + self.test_poly_bytes

    @property
    def total_bytes(self) -> float:
        return self.xpu_bytes + self.vpu_bytes


class HbmModel:
    """Bandwidth accounting for one Morphling instance."""

    def __init__(self, config: MorphlingConfig):
        self.config = config

    def per_bootstrap_traffic(
        self,
        params: TFHEParams,
        bsk_reuse: int,
        ksk_reuse: int,
    ) -> TrafficBreakdown:
        """Bytes per bootstrap with the given reuse factors.

        The BSK is fetched once per ``bsk_reuse`` ciphertexts (VPE column
        x XPU x resident-stream reuse); the KSK once per ``ksk_reuse``
        (the scheduler's 64-ciphertext group).  The test polynomial is a
        trivial GLWE held on chip per group; input/output LWE ciphertexts
        always move.
        """
        if bsk_reuse < 1 or ksk_reuse < 1:
            raise ValueError("reuse factors must be >= 1")
        return TrafficBreakdown(
            bsk_bytes=params.bsk_transform_bytes / bsk_reuse,
            ksk_bytes=params.ksk_bytes / ksk_reuse,
            lwe_bytes=2.0 * params.lwe_bytes,
            test_poly_bytes=params.glwe_bytes / ksk_reuse,
        )

    def xpu_transfer_seconds(self, data_bytes: float) -> float:
        """Seconds to move ``data_bytes`` over the XPU channel group."""
        if _METRICS.enabled:
            _HBM_BYTES.inc(data_bytes, channel="xpu")
            _HBM_TRANSFERS.inc(channel="xpu")
        if _COUNTERS.enabled:
            self._count_channel_bytes(data_bytes, group="xpu")
        return data_bytes / (self.config.xpu_bandwidth_gbs * 1e9)

    def vpu_transfer_seconds(self, data_bytes: float) -> float:
        """Seconds to move ``data_bytes`` over the VPU channel group."""
        if _METRICS.enabled:
            _HBM_BYTES.inc(data_bytes, channel="vpu")
            _HBM_TRANSFERS.inc(channel="vpu")
        if _COUNTERS.enabled:
            self._count_channel_bytes(data_bytes, group="vpu")
        return data_bytes / (self.config.vpu_bandwidth_gbs * 1e9)

    def _count_channel_bytes(self, data_bytes: float, group: str) -> None:
        """Per-channel perf counters: traffic interleaves evenly in-group.

        Channel ids follow the paper's priority split: channels
        ``0 .. xpu_hbm_channels-1`` serve the XPUs (BSK), the rest serve
        the VPU (KSK / LWE / test polynomials).
        """
        cfg = self.config
        if group == "xpu":
            base, width = 0, cfg.xpu_hbm_channels
        else:
            base, width = cfg.xpu_hbm_channels, cfg.vpu_hbm_channels
        if width < 1:
            return
        share = data_bytes / width
        for ch in range(base, base + width):
            _COUNTERS.add_bytes(f"hbm/channel/{ch}", share)

    def sustainable_bootstrap_rate(
        self, params: TFHEParams, bsk_reuse: int, ksk_reuse: int
    ) -> float:
        """Max bootstraps/second the memory system alone can feed.

        Each channel group bounds the rate independently (they carry
        disjoint traffic); the tighter group wins.
        """
        traffic = self.per_bootstrap_traffic(params, bsk_reuse, ksk_reuse)
        xpu_rate = (self.config.xpu_bandwidth_gbs * 1e9) / max(traffic.xpu_bytes, 1e-12)
        vpu_rate = (self.config.vpu_bandwidth_gbs * 1e9) / max(traffic.vpu_bytes, 1e-12)
        return min(xpu_rate, vpu_rate)
