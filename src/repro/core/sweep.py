"""Design-space sweep utility over MorphlingConfig knobs.

Wraps the simulator in a cartesian sweep: give it axes (config field ->
list of values) and a parameter set, get an
:class:`~repro.experiments.common.ExperimentResult`-style table of
throughput/latency/bottleneck per point, plus Pareto filtering against
the area model.  The Fig. 8 drivers are one-axis instances of this; the
design-space example uses the general form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..params import TFHEParams
from .accelerator import MorphlingConfig
from .area_power import AreaPowerModel
from .simulator import simulate_bootstrap

__all__ = ["SweepPoint", "sweep", "pareto_frontier"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    overrides: tuple  # ((field, value), ...)
    throughput_bs: float
    latency_ms: float
    bottleneck: str
    area_mm2: float
    power_w: float

    @property
    def throughput_per_mm2(self) -> float:
        return self.throughput_bs / self.area_mm2

    @property
    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.overrides)


def sweep(axes: dict, params: TFHEParams, base: MorphlingConfig = None) -> list:
    """Evaluate every point of the cartesian product of ``axes``.

    ``axes`` maps MorphlingConfig field names to value lists.  Points
    whose combination fails config validation are skipped (e.g. channel
    splits that oversubscribe the stack).
    """
    if not axes:
        raise ValueError("sweep needs at least one axis")
    base = base or MorphlingConfig()
    names = list(axes)
    points = []
    for values in itertools.product(*(axes[n] for n in names)):
        overrides = dict(zip(names, values))
        try:
            config = base.with_overrides(**overrides)
        except ValueError:
            continue
        report = simulate_bootstrap(config, params)
        cost = AreaPowerModel(config).total()
        points.append(SweepPoint(
            overrides=tuple(overrides.items()),
            throughput_bs=report.throughput_bs,
            latency_ms=report.bootstrap_latency_ms,
            bottleneck=report.bottleneck,
            area_mm2=cost.area_mm2,
            power_w=cost.power_w,
        ))
    return points


def pareto_frontier(points: list) -> list:
    """Points not dominated on (throughput up, area down).

    A point is dominated when another has >= throughput and <= area with
    at least one strict; the frontier is returned sorted by area.
    """
    frontier = []
    for p in points:
        dominated = any(
            q.throughput_bs >= p.throughput_bs
            and q.area_mm2 <= p.area_mm2
            and (q.throughput_bs > p.throughput_bs or q.area_mm2 < p.area_mm2)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area_mm2)
