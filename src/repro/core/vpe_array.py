"""2D systolic VPE array: mapping, utilization, and a functional model.

The array maps blind rotation as (Section V-A2):

- rows <-> independent LWE ciphertexts (bootstraps in flight), all
  sharing the same streamed BSK columns;
- columns <-> the ``k+1`` output columns of ``BSK_i``, all sharing the
  row's decomposed ACC-input stream;
- each VPE holds its output column's accumulator (POLY-ACC-REG) in the
  transform domain until all ``(k+1)*l_b`` partial products have landed
  (output-stationary dataflow).

``VpeArray.external_product_batch`` is the functional counterpart: it
computes a batch of external products exactly the way the array does -
per-element transform-domain MACs with per-column accumulators - and is
tested against the reference scheme implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import TFHEParams
from ..tfhe.ggsw import GgswCiphertext, external_product_spectrum_batch
from ..tfhe.glwe import GlweCiphertext
from .accelerator import MorphlingConfig

__all__ = ["ArrayMapping", "map_external_product", "VpeArray"]


@dataclass(frozen=True)
class ArrayMapping:
    """How one external-product wave occupies the array."""

    rows_used: int
    cols_used: int
    rows_total: int
    cols_total: int
    column_passes: int  # waves needed when k+1 > physical columns

    @property
    def utilization(self) -> float:
        """Fraction of VPEs doing useful MACs."""
        used = self.rows_used * self.cols_used
        # On the last column pass fewer columns may be active; weight it.
        full = self.rows_total * self.cols_total * self.column_passes
        return used * self.column_passes / full if full else 0.0


def map_external_product(config: MorphlingConfig, params: TFHEParams) -> ArrayMapping:
    """Place one iteration of blind rotation onto the VPE array.

    ``k+1`` output columns fold onto ``vpe_cols`` physical columns; when
    ``k+1 < vpe_cols`` the flexible-accumulation adder (Section V-A2)
    lets spare columns split the l_b levels, so columns never idle as
    long as ``(k+1)*l_b >= vpe_cols``.
    """
    out_cols = params.k + 1
    passes = -(-out_cols // config.vpe_cols)
    cols_used = min(out_cols, config.vpe_cols)
    if out_cols < config.vpe_cols and (params.k + 1) * params.l_b >= config.vpe_cols:
        cols_used = config.vpe_cols  # level-split keeps spare columns busy
    return ArrayMapping(
        rows_used=config.vpe_rows,
        cols_used=cols_used,
        rows_total=config.vpe_rows,
        cols_total=config.vpe_cols,
        column_passes=passes,
    )


class VpeArray:
    """Functional model of the output-stationary systolic array.

    Processes up to ``rows`` ciphertexts against one GGSW (the BSK of the
    current iteration), keeping per-(row, column) accumulators in the
    transform domain exactly like the hardware's POLY-ACC-REG pairs.
    """

    def __init__(self, rows: int = 4, cols: int = 4):
        if rows < 1 or cols < 1:
            raise ValueError("array must be at least 1x1")
        self.rows = rows
        self.cols = cols

    def external_product_batch(self, ggsw: GgswCiphertext, acc_inputs: list) -> list:
        """External products of every row's GLWE against one shared BSK_i.

        Each row streams its decomposed input spectra left-to-right; the
        BSK column spectra stream top-to-bottom and are *shared by all
        rows* - the BSK reuse the paper exploits.  Output accumulators
        leave the array through one inverse transform per column.

        The MAC itself is the scheme substrate's shared batched einsum
        kernel (:func:`~repro.tfhe.ggsw.external_product_spectrum_batch`):
        the functional machine and the scheme path execute literally the
        same contraction, with the array model contributing the
        row/column capacity checks.
        """
        if len(acc_inputs) > self.rows:
            raise ValueError(
                f"batch of {len(acc_inputs)} exceeds {self.rows} array rows"
            )
        k, l_b = ggsw.k, ggsw.l_b
        if k + 1 > self.cols:
            raise ValueError(
                f"k+1 = {k + 1} output columns exceed {self.cols} array columns"
            )
        for glwe in acc_inputs:
            if glwe.N != ggsw.N or glwe.k != k:
                raise ValueError("GLWE operand does not match the GGSW")
        stacked = np.stack([glwe.data for glwe in acc_inputs])
        out = external_product_spectrum_batch(
            ggsw.spectrum(), stacked, ggsw.beta_bits, l_b
        )
        return [GlweCiphertext(out[r]) for r in range(len(acc_inputs))]
