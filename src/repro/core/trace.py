"""Cycle-level pipeline trace of the XPU during blind rotation.

Timing models report aggregates; the trace shows the pipeline itself:
per-iteration start/end cycles of every stage (rotation, decomposition,
forward FFT, VPE MACs, inverse FFT), with stage overlap across
iterations - the picture a waveform viewer would give for the RTL.

Used three ways:

- regression: the traced steady-state iteration interval must equal the
  analytic :meth:`~repro.core.xpu.XpuModel.iteration_cycles`;
- analysis: per-stage occupancy (how busy each unit is) exposes the
  bottleneck the same way Fig. 7's discussion does;
- rendering: :func:`render_timeline` draws an ASCII pipeline diagram
  for documentation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TFHEParams
from .accelerator import MorphlingConfig
from .xpu import XpuModel

__all__ = ["StageSpan", "PipelineTrace", "trace_blind_rotation", "render_timeline"]

STAGES = ("rotation", "decomposition", "forward_fft", "vpe_stream", "inverse_fft")


@dataclass(frozen=True)
class StageSpan:
    """One stage's busy interval during one iteration."""

    iteration: int
    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineTrace:
    """All stage spans of a traced blind rotation."""

    spans: list
    iterations: int
    config: MorphlingConfig
    params: TFHEParams

    def stage_spans(self, stage: str) -> list:
        if stage not in STAGES:
            raise KeyError(f"unknown stage {stage!r}; known: {STAGES}")
        return [s for s in self.spans if s.stage == stage]

    def total_cycles(self) -> float:
        return max(s.end for s in self.spans) if self.spans else 0.0

    def steady_state_interval(self) -> float:
        """Cycles between consecutive iterations' completions (steady state)."""
        ends = sorted(s.end for s in self.stage_spans("inverse_fft"))
        if len(ends) < 3:
            raise ValueError(
                f"need at least 3 iterations for a steady-state read; this "
                f"trace has {len(ends)} (trace.iterations={self.iterations}); "
                f"re-trace with trace_blind_rotation(..., iterations>=3)"
            )
        return ends[-1] - ends[-2]

    def occupancy(self) -> dict:
        """Fraction of the traced window each stage spends busy.

        An empty trace window (no spans, or all zero-length) reports zero
        occupancy everywhere rather than dividing by zero.
        """
        total = self.total_cycles()
        if total <= 0:
            return dict.fromkeys(STAGES, 0.0)
        return {
            stage: sum(s.duration for s in self.stage_spans(stage)) / total
            for stage in STAGES
        }

    def bottleneck(self) -> str:
        occ = self.occupancy()
        return max(occ, key=occ.get)


def trace_blind_rotation(
    config: MorphlingConfig, params: TFHEParams, iterations: int = 8
) -> PipelineTrace:
    """Trace ``iterations`` blind-rotation iterations through the pipeline.

    Stage durations come from the calibrated
    :class:`~repro.core.xpu.XpuModel` breakdown; the trace plays them as
    a five-deep in-order pipeline: each stage of iteration ``i`` starts
    when both its own unit is free (its previous iteration ended) and
    its upstream stage of the same iteration has finished.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    model = XpuModel(config, params)
    bd = model.iteration_breakdown()
    durations = {
        "rotation": bd.rotation,
        "decomposition": bd.decomposition,
        "forward_fft": bd.forward_fft,
        "vpe_stream": bd.vpe_stream,
        "inverse_fft": bd.inverse_fft,
    }
    # The per-iteration overhead is a re-arm bubble on every unit (handoff
    # registers draining between iterations), so it paces the steady-state
    # interval exactly as the analytic model charges it.
    handoff = bd.overhead / (len(STAGES) - 1)
    spans = []
    unit_free = dict.fromkeys(STAGES, 0.0)
    for i in range(iterations):
        upstream_done = 0.0
        for stage in STAGES:
            start = max(unit_free[stage], upstream_done)
            end = start + durations[stage]
            spans.append(StageSpan(i, stage, start, end))
            unit_free[stage] = end + bd.overhead
            upstream_done = end + handoff
    return PipelineTrace(spans, iterations, config, params)


def render_timeline(trace: PipelineTrace, width: int = 72) -> str:
    """ASCII pipeline diagram: one row per stage, digits mark iterations."""
    total = trace.total_cycles()
    if total <= 0:
        return "(empty trace)"
    scale = width / total
    lines = []
    for stage in STAGES:
        row = [" "] * width
        for span in trace.stage_spans(stage):
            lo = int(span.start * scale)
            hi = max(lo + 1, int(span.end * scale))
            for x in range(lo, min(hi, width)):
                row[x] = str(span.iteration % 10)
        lines.append(f"{stage:14s} |{''.join(row)}|")
    lines.append(f"{'cycles':14s} |0{' ' * (width - len(str(int(total))) - 1)}{int(total)}|")
    return "\n".join(lines)
